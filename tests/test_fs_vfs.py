"""Unit tests for the in-memory filesystem."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    FileNotFoundInFrame,
    FilesystemError,
    IsADirectoryInFrame,
    NotADirectoryInFrame,
)
from repro.fs import FileKind, VirtualFilesystem, format_mode


@pytest.fixture()
def fs():
    return VirtualFilesystem()


class TestWriteAndRead:
    def test_write_then_read(self, fs):
        fs.write_file("/etc/motd", "hello\n")
        assert fs.read_text("/etc/motd") == "hello\n"

    def test_write_creates_parents(self, fs):
        fs.write_file("/a/b/c/d.txt", "x")
        assert fs.is_dir("/a/b/c")
        assert fs.is_dir("/a")

    def test_overwrite_replaces_content(self, fs):
        fs.write_file("/f", "one")
        fs.write_file("/f", "two")
        assert fs.read_text("/f") == "two"

    def test_relative_path_is_rooted(self, fs):
        fs.write_file("etc/conf", "x")
        assert fs.read_text("/etc/conf") == "x"

    def test_path_normalization(self, fs):
        fs.write_file("/etc/ssh/sshd_config", "Port 22\n")
        assert fs.read_text("/etc//ssh/./sshd_config") == "Port 22\n"

    def test_read_missing_raises(self, fs):
        with pytest.raises(FileNotFoundInFrame):
            fs.read_text("/nope")

    def test_read_directory_raises(self, fs):
        fs.mkdir("/etc")
        with pytest.raises(IsADirectoryInFrame):
            fs.read_text("/etc")

    def test_write_over_directory_raises(self, fs):
        fs.mkdir("/etc")
        with pytest.raises(IsADirectoryInFrame):
            fs.write_file("/etc", "no")

    def test_write_under_file_raises(self, fs):
        fs.write_file("/etc", "a file")
        with pytest.raises(NotADirectoryInFrame):
            fs.write_file("/etc/child", "x")


class TestMetadata:
    def test_default_stat(self, fs):
        fs.write_file("/f", "abc")
        stat = fs.stat("/f")
        assert stat.mode == 0o644
        assert stat.ownership == "0:0"
        assert stat.ownership_names == "root:root"
        assert stat.size == 3

    def test_explicit_metadata(self, fs):
        fs.write_file("/s", "", mode=0o600, uid=107, gid=112,
                      owner="mysql", group="mysql")
        stat = fs.stat("/s")
        assert stat.octal_mode == "600"
        assert stat.ownership == "107:112"
        assert stat.ownership_names == "mysql:mysql"

    def test_chmod(self, fs):
        fs.write_file("/f", "")
        fs.chmod("/f", 0o400)
        assert fs.stat("/f").mode == 0o400

    def test_chown(self, fs):
        fs.write_file("/f", "")
        fs.chown("/f", 33, 33, owner="www-data", group="www-data")
        assert fs.stat("/f").ownership == "33:33"
        assert fs.stat("/f").owner == "www-data"

    def test_chmod_missing_raises(self, fs):
        with pytest.raises(FileNotFoundInFrame):
            fs.chmod("/missing", 0o644)

    def test_format_mode_file(self, fs):
        fs.write_file("/f", "", mode=0o644)
        assert format_mode(fs.stat("/f")) == "-rw-r--r--"

    def test_format_mode_directory(self, fs):
        fs.mkdir("/d", mode=0o755)
        assert format_mode(fs.stat("/d")) == "drwxr-xr-x"

    def test_size_counts_bytes_not_chars(self, fs):
        fs.write_file("/f", "é")  # two UTF-8 bytes
        assert fs.stat("/f").size == 2


class TestDirectories:
    def test_listdir_sorted(self, fs):
        fs.write_file("/d/b", "")
        fs.write_file("/d/a", "")
        fs.write_file("/d/c", "")
        assert fs.listdir("/d") == ["a", "b", "c"]

    def test_listdir_on_file_raises(self, fs):
        fs.write_file("/f", "")
        with pytest.raises(NotADirectoryInFrame):
            fs.listdir("/f")

    def test_mkdir_idempotent(self, fs):
        fs.mkdir("/d")
        fs.mkdir("/d")
        assert fs.is_dir("/d")

    def test_remove_file(self, fs):
        fs.write_file("/d/f", "")
        fs.remove("/d/f")
        assert not fs.exists("/d/f")
        assert fs.listdir("/d") == []

    def test_remove_directory_recursive(self, fs):
        fs.write_file("/d/sub/f", "")
        fs.remove("/d")
        assert not fs.exists("/d/sub/f")
        assert not fs.exists("/d")

    def test_remove_root_refused(self, fs):
        with pytest.raises(FilesystemError):
            fs.remove("/")

    def test_walk_yields_all(self, fs):
        fs.write_file("/etc/ssh/sshd_config", "")
        fs.write_file("/etc/motd", "")
        walked = {dirpath: (dirs, files) for dirpath, dirs, files in fs.walk("/etc")}
        assert walked["/etc"] == (["ssh"], ["motd"])
        assert walked["/etc/ssh"] == ([], ["sshd_config"])

    def test_find_by_glob(self, fs):
        fs.write_file("/etc/sysctl.d/10-net.conf", "")
        fs.write_file("/etc/sysctl.d/readme.txt", "")
        assert fs.find("/etc/sysctl.d", "*.conf") == ["/etc/sysctl.d/10-net.conf"]

    def test_files_under_file_returns_itself(self, fs):
        fs.write_file("/etc/fstab", "")
        assert fs.files_under("/etc/fstab") == ["/etc/fstab"]

    def test_files_under_missing_is_empty(self, fs):
        assert fs.files_under("/nope") == []


class TestSymlinks:
    def test_symlink_resolution(self, fs):
        fs.write_file("/etc/real.conf", "data")
        fs.symlink("/etc/link.conf", "/etc/real.conf")
        assert fs.read_text("/etc/link.conf") == "data"

    def test_relative_symlink(self, fs):
        fs.write_file("/etc/real.conf", "data")
        fs.symlink("/etc/link.conf", "real.conf")
        assert fs.read_text("/etc/link.conf") == "data"

    def test_symlink_in_directory_component(self, fs):
        fs.write_file("/opt/app/conf/a.conf", "x")
        fs.symlink("/etc/app", "/opt/app/conf")
        assert fs.read_text("/etc/app/a.conf") == "x"

    def test_dangling_symlink(self, fs):
        fs.symlink("/l", "/missing")
        assert not fs.exists("/l")
        with pytest.raises(FileNotFoundInFrame):
            fs.read_text("/l")

    def test_symlink_loop_detected(self, fs):
        fs.symlink("/a", "/b")
        fs.symlink("/b", "/a")
        with pytest.raises(FileNotFoundInFrame):
            fs.read_text("/a")

    def test_lstat_does_not_follow(self, fs):
        fs.write_file("/real", "")
        fs.symlink("/link", "/real")
        assert fs.lstat("/link").kind is FileKind.SYMLINK
        assert fs.stat("/link").kind is FileKind.FILE

    def test_readlink(self, fs):
        fs.symlink("/link", "/target")
        assert fs.readlink("/link") == "/target"

    def test_readlink_on_regular_file_raises(self, fs):
        fs.write_file("/f", "")
        with pytest.raises(FileNotFoundInFrame):
            fs.readlink("/f")


_path_segments = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6), min_size=1, max_size=4
)


class TestProperties:
    @given(segments=_path_segments, content=st.text(max_size=64))
    def test_roundtrip_any_path(self, segments, content):
        fs = VirtualFilesystem()
        path = "/" + "/".join(segments)
        fs.write_file(path, content)
        assert fs.read_text(path) == content
        assert fs.exists(path)

    @given(segments=_path_segments)
    def test_parents_exist_after_write(self, segments):
        fs = VirtualFilesystem()
        path = "/" + "/".join(segments)
        fs.write_file(path, "")
        parent = "/".join(path.split("/")[:-1]) or "/"
        assert fs.is_dir(parent)

    @given(
        paths=st.lists(
            _path_segments.map(lambda segs: "/" + "/".join(segs)),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    def test_walk_visits_every_written_file(self, paths):
        fs = VirtualFilesystem()
        written = set()
        for path in paths:
            # Skip paths that collide with an already-written file acting
            # as a directory prefix.
            try:
                fs.write_file(path, "x")
                written.add(path)
            except (NotADirectoryInFrame, IsADirectoryInFrame):
                pass
        found = {
            f"{dirpath.rstrip('/')}/{name}"
            for dirpath, _dirs, files in fs.walk("/")
            for name in files
        }
        assert written <= found
