"""Every example must run clean -- examples are documentation that rots
fastest, so they are executed as part of the suite."""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "example", _EXAMPLES, ids=[path.stem for path in _EXAMPLES]
)
def test_example_runs_clean(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate what they do"


def test_example_inventory():
    # The deliverable requires a quickstart plus domain scenarios.
    names = {path.stem for path in _EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
