"""HistoryStore contract tests: round-trip fidelity, retention with
cascade, durability across reopen, and thread-safe concurrent writers.

The store is the monitor's source of truth -- every analyzer feature
(flaps, streaks, restart rehydration) reads back what these tests pin
down.
"""

import sqlite3
import threading

import pytest

from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.engine.batch import BatchScanner
from repro.history import HistoryStore, report_verdict_map
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity


@pytest.fixture(scope="module")
def summary():
    """One scanned fleet cycle shared by the read-back tests."""
    _daemon, images, containers = build_fleet(
        FleetSpec(images=1, containers_per_image=2, misconfig_rate=0.5,
                  seed=5)
    )
    entities = [DockerImageEntity(i) for i in images]
    entities += [ContainerEntity(c) for c in containers]
    entities.append(ubuntu_host_entity("hist-host", hardening=0.4, seed=2))
    frames = Crawler().crawl_many(entities)
    scanner = BatchScanner(load_builtin_validator())
    return scanner.scan_frames(frames)


class TestRoundTrip:
    def test_cycle_row_matches_summary(self, summary):
        with HistoryStore() as store:
            cycle_id = store.record_cycle(summary)
            row = store.cycle(cycle_id)
        counts = summary.report.counts()
        assert row is not None and not row.failed_cycle
        assert row.entities == summary.entities_scanned
        assert row.checks == counts["total"]
        assert row.compliant == counts["compliant"]
        assert row.noncompliant == counts["noncompliant"]
        assert row.errors == counts["error"]
        assert row.not_applicable == counts["not_applicable"]
        assert row.compliance == pytest.approx(summary.compliance_rate())
        assert row.started_at == pytest.approx(summary.started_at)
        assert row.elapsed_s == pytest.approx(summary.elapsed_s)

    def test_verdict_map_round_trips(self, summary):
        with HistoryStore() as store:
            cycle_id = store.record_cycle(summary)
            stored = store.verdict_map(cycle_id)
        assert stored == report_verdict_map(summary.report)

    def test_verdict_rows_carry_severity(self, summary):
        severities = {
            (r.target, r.entity, r.rule.name): r.rule.severity
            for r in summary.report
        }
        with HistoryStore() as store:
            cycle_id = store.record_cycle(summary)
            rows = store.verdicts(cycle_id)
        assert rows, "cycle stored no verdicts"
        for row in rows:
            assert row.severity == severities[row.key]

    def test_entity_rollups_and_targets(self, summary):
        with HistoryStore() as store:
            cycle_id = store.record_cycle(summary)
            targets = store.targets()
            trends = {
                target: store.entity_trend(target) for target in targets
            }
        assert targets == sorted(summary.entities)
        for target, rollup in summary.entities.items():
            trend = trends[target]
            assert len(trend) == 1
            assert trend[0].cycle_id == cycle_id
            assert trend[0].passed == rollup.passed
            assert trend[0].failed == rollup.failed
            assert trend[0].worst_severity == rollup.worst_severity

    def test_rule_history_tracks_cycles(self, summary):
        with HistoryStore() as store:
            ids = [store.record_cycle(summary) for _ in range(3)]
            key = next(iter(report_verdict_map(summary.report)))
            series = store.rule_history(*key)
            tail = store.rule_history(*key, last=2)
        assert [cycle for cycle, _verdict in series] == ids
        assert tail == series[-2:]

    def test_scan_error_cycle(self, summary):
        with HistoryStore() as store:
            good = store.record_cycle(summary)
            bad = store.record_scan_error("crawler exploded", elapsed_s=1.5)
            row = store.cycle(bad)
            assert row is not None and row.failed_cycle
            assert row.scan_error == "crawler exploded"
            assert row.checks == 0
            stats = store.stats()
        assert bad == good + 1
        assert stats.cycles_recorded == 2
        assert stats.error_cycles_recorded == 1


class TestDurability:
    def test_reopen_reads_back(self, summary, tmp_path):
        path = str(tmp_path / "history.sqlite")
        with HistoryStore(path) as store:
            cycle_id = store.record_cycle(summary)
            expected = store.verdict_map(cycle_id)
        with HistoryStore(path) as reopened:
            assert reopened.cycle_count() == 1
            assert reopened.latest_cycle_id() == cycle_id
            assert reopened.verdict_map(cycle_id) == expected

    def test_close_checkpoints_wal(self, summary, tmp_path):
        path = str(tmp_path / "history.sqlite")
        with HistoryStore(path) as store:
            store.record_cycle(summary)
        wal = tmp_path / "history.sqlite-wal"
        assert not wal.exists() or wal.stat().st_size == 0


class TestRetention:
    def test_prune_keeps_newest_and_cascades(self, summary, tmp_path):
        path = str(tmp_path / "history.sqlite")
        with HistoryStore(path, retain_cycles=3) as store:
            ids = [store.record_cycle(summary) for _ in range(7)]
            rows = store.cycles()
            assert [row.cycle_id for row in rows] == ids[-3:]
            assert store.stats().cycles_pruned == 4
            # Cascade: no verdict or rollup rows for pruned cycles.
            conn = sqlite3.connect(path)
            try:
                orphans = conn.execute(
                    "SELECT COUNT(*) FROM verdicts WHERE cycle_id < ?",
                    (ids[-3],),
                ).fetchone()[0]
                rollup_orphans = conn.execute(
                    "SELECT COUNT(*) FROM entity_rollups WHERE cycle_id < ?",
                    (ids[-3],),
                ).fetchone()[0]
            finally:
                conn.close()
            assert orphans == 0
            assert rollup_orphans == 0

    def test_explicit_prune(self, summary):
        with HistoryStore() as store:
            for _ in range(5):
                store.record_cycle(summary)
            assert store.prune(2) == 3
            assert store.cycle_count() == 2
            # One-off prune must not install a standing retention.
            assert store.retain_cycles is None

    def test_retain_cycles_validation(self):
        with pytest.raises(ValueError):
            HistoryStore(retain_cycles=0)


class TestConcurrency:
    def test_concurrent_writers_all_land(self, summary, tmp_path):
        path = str(tmp_path / "history.sqlite")
        writers, cycles_each = 4, 3
        with HistoryStore(path) as store:
            errors: list[Exception] = []

            def write() -> None:
                try:
                    for _ in range(cycles_each):
                        store.record_cycle(summary)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=write)
                       for _ in range(writers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert store.cycle_count() == writers * cycles_each
            expected = report_verdict_map(summary.report)
            for row in store.cycles():
                assert store.verdict_map(row.cycle_id) == expected

    def test_reader_coexists_with_writer(self, summary, tmp_path):
        path = str(tmp_path / "history.sqlite")
        with HistoryStore(path) as store:
            stop = threading.Event()
            errors: list[Exception] = []

            def read() -> None:
                try:
                    while not stop.is_set():
                        store.cycles(last=2)
                        store.stats()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            reader = threading.Thread(target=read)
            reader.start()
            try:
                for _ in range(5):
                    store.record_cycle(summary)
            finally:
                stop.set()
                reader.join()
            assert not errors
            assert store.cycle_count() == 5


class TestWindows:
    def test_verdict_windows_honor_window(self, summary):
        with HistoryStore() as store:
            ids = [store.record_cycle(summary) for _ in range(5)]
            windows = store.verdict_windows(2)
        expected_cycles = ids[-2:]
        assert windows
        for series in windows.values():
            assert [cycle for cycle, _verdict in series] == expected_cycles

    def test_attach_to_exports_counters(self, summary):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        with HistoryStore() as store:
            store.attach_to(telemetry.metrics)
            store.record_cycle(summary)
            from repro.telemetry.export import render_prometheus

            text = render_prometheus(telemetry.metrics)
        assert "repro_history_cycles_recorded_total 1" in text
        assert "repro_history_db_cycles 1" in text
        assert "repro_history_rows_written_total" in text
