"""Tests for the telemetry subsystem: spans, metrics, profiler, logs,
exporters, and the observability guarantees the pipeline makes
(well-formed span trees, deterministic counters, byte-identical reports
with telemetry on or off).
"""

import json
import logging
import re
import threading
import urllib.request

import pytest

from repro.crawler import ContainerEntity, Crawler, DockerImageEntity, HostEntity
from repro.cvl import Manifest, build_rule
from repro.engine import Verdict, render_json, render_text
from repro.engine.batch import BatchScanner, render_fleet_summary
from repro.engine.evaluators import evaluate_schema
from repro.engine.normalizer import Normalizer
from repro.engine.report import render_junit
from repro.engine.stages import STAGE_METRIC, StageTimings
from repro.fs import VirtualFilesystem
from repro.rules import load_builtin_validator
from repro.telemetry import (
    DISABLED,
    JsonLogFormatter,
    MetricsRegistry,
    RuleProfiler,
    SpanCollector,
    Telemetry,
    configure_logging,
    get_logger,
)
from repro.telemetry.export import (
    MetricsServer,
    render_prometheus,
    serve_metrics_once,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity


def _fleet_entities(images=2):
    _daemon, imgs, containers = build_fleet(
        FleetSpec(images=images, containers_per_image=2, misconfig_rate=0.5)
    )
    return [ContainerEntity(c) for c in containers] + [
        DockerImageEntity(i) for i in imgs
    ]


def _scan(workers=1, telemetry=None):
    telemetry = telemetry or Telemetry()
    validator = load_builtin_validator(telemetry=telemetry)
    scanner = BatchScanner(validator, workers=workers, telemetry=telemetry)
    summary = scanner.scan_entities(_fleet_entities(), workers=workers)
    return summary, telemetry


# ---- span collector ----------------------------------------------------------


class TestSpanCollector:
    def test_nesting_is_implicit_within_a_thread(self):
        spans = SpanCollector()
        with spans.span("outer", category="a"):
            with spans.span("inner", category="b"):
                pass
        inner, outer = sorted(spans.finished(), key=lambda s: s.name)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration_s >= 0.0

    def test_explicit_parent_crosses_threads(self):
        spans = SpanCollector()
        with spans.span("root") as root:
            def work():
                with spans.span("child", parent=root):
                    pass
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        child = next(s for s in spans.finished() if s.name == "child")
        assert child.parent_id == root.span_id
        assert child.thread_id != root.thread_id

    def test_record_preserves_measured_duration(self):
        spans = SpanCollector()
        spans.record("rule", category="rule",
                     start_s=spans.origin_perf, duration_s=0.25,
                     verdict="compliant")
        (span,) = spans.finished()
        assert span.duration_s == 0.25
        assert span.start_s == pytest.approx(0.0)
        assert span.attrs == {"verdict": "compliant"}

    def test_noop_collector_records_nothing(self):
        spans = DISABLED.spans
        with spans.span("whatever"):
            pass
        assert len(spans) == 0
        assert spans.current() is None
        assert spans.finished() == []


class TestScanCycleSpanTree:
    def test_tree_is_well_formed_under_workers(self):
        summary, telemetry = _scan(workers=4)
        spans = telemetry.spans.finished()
        assert spans, "an enabled scan must record spans"
        ids = {s.span_id for s in spans}
        assert len(ids) == len(spans)  # unique ids
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in ids, f"orphan parent on {span.name}"
        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["scan_cycle"]
        categories = {s.category for s in spans}
        assert {"cycle", "run", "frame", "stage", "crawl", "rule"} <= categories
        # Every frame span nests under the validation run span.
        run = next(s for s in spans if s.category == "run")
        for frame in (s for s in spans if s.category == "frame"):
            assert frame.parent_id == run.span_id
        # One frame span per scanned entity.
        frames = [s for s in spans if s.category == "frame"]
        assert len(frames) == summary.entities_scanned

    def test_rule_span_count_matches_report(self):
        summary, telemetry = _scan(workers=1)
        rule_spans = [
            s for s in telemetry.spans.finished() if s.category == "rule"
        ]
        assert len(rule_spans) == len(summary.report)


# ---- metrics registry --------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_labels_and_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", "help", labels=("verdict",))
        counter.inc(verdict="pass")
        counter.inc(2, verdict="fail")
        assert counter.value(verdict="pass") == 1
        assert counter.value(verdict="fail") == 2
        with pytest.raises(ValueError):
            counter.inc(wrong="label")

    def test_schema_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labels=("b",))
        with pytest.raises(ValueError):
            registry.gauge("x_total", labels=("a",))

    def test_histogram_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(2.55)
        assert hist.min() == 0.05
        assert hist.max() == 2.0
        assert hist.mean() == pytest.approx(0.85)

    def test_observe_aggregate_folds_extremes(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        hist.observe_aggregate(3.0, 4, min_value=0.01, max_value=2.5)
        assert hist.count() == 4
        assert hist.sum() == 3.0
        assert hist.min() == 0.01
        assert hist.max() == 2.5

    def test_pull_collector_runs_at_scrape_time(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pulled")
        registry.register_collector("src", lambda: gauge.set(42))
        registry.register_collector("src", lambda: gauge.set(7))  # replaces
        text = render_prometheus(registry)
        assert "pulled 7" in text

    def test_noop_registry_is_inert(self):
        noop = DISABLED.metrics
        counter = noop.counter("x_total")
        counter.inc()
        assert counter.value() == 0.0
        assert noop.render() == ""


class TestDeterministicCounters:
    def test_counts_identical_workers_1_vs_8(self):
        # Parse-cache misses race under concurrency, so determinism is
        # asserted only on the frame/rule counters the ISSUE guarantees.
        results = {}
        for workers in (1, 8):
            summary, telemetry = _scan(workers=workers)
            # Rule verdict/latency folds are pull-style (scrape-time).
            telemetry.metrics.collect()
            frames = telemetry.metrics.counter(
                "repro_frames_scanned_total"
            ).value()
            by_verdict = dict(
                telemetry.metrics.counter(
                    "repro_rules_evaluated_total", labels=("verdict",)
                ).samples()
            )
            results[workers] = (frames, by_verdict, summary.report.counts())
        assert results[1] == results[8]
        frames, by_verdict, counts = results[1]
        assert frames == 6  # 2 images * 2 containers + the 2 images
        assert sum(by_verdict.values()) == counts["total"]


# ---- exporters ---------------------------------------------------------------


class TestChromeTraceExport:
    def test_trace_loads_and_references_resolve(self, tmp_path):
        _summary, telemetry = _scan(workers=2)
        path = tmp_path / "trace.json"
        count = write_chrome_trace(telemetry.spans, str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == count == len(telemetry.spans)
        for event in complete:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert event["ts"] >= 0 and event["dur"] >= 0
        # Thread metadata labels every tid used by a span event.
        meta_tids = {
            e["tid"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {e["tid"] for e in complete} <= meta_tids

    def test_empty_collector_is_valid_trace(self):
        payload = to_chrome_trace(SpanCollector())
        assert payload["traceEvents"] == []


class TestPrometheusExport:
    SAMPLE = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
        r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'  # first label
        r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
        r" (-?\d+(\.\d+)?([eE][-+]?\d+)?|[-+]Inf|NaN)$"
    )

    def test_every_line_is_valid_exposition(self, tmp_path):
        _summary, telemetry = _scan(workers=2)
        path = tmp_path / "metrics.prom"
        samples = write_metrics(telemetry.metrics, str(path))
        lines = path.read_text().splitlines()
        assert samples == sum(
            1 for ln in lines if ln and not ln.startswith("#")
        )
        seen_types = {}
        for line in lines:
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split(" ", 3)
                seen_types[name] = kind
                continue
            if line.startswith("#"):
                assert line.startswith("# HELP")
                continue
            assert self.SAMPLE.match(line), f"bad exposition line: {line!r}"
        assert seen_types.get("repro_frames_scanned_total") == "counter"
        assert seen_types.get("repro_workers") == "gauge"
        assert seen_types.get(STAGE_METRIC) == "histogram"

    def test_histogram_buckets_cumulative_and_capped(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        text = render_prometheus(registry)
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("h_seconds_bucket")
        ]
        assert buckets == sorted(buckets)      # monotone
        assert buckets[-1] == 4                # +Inf == _count
        assert "h_seconds_count 4" in text
        assert "h_seconds_sum 6.05" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("p",)).inc(p='a"b\\c\nd')
        text = render_prometheus(registry)
        assert 'p="a\\"b\\\\c\\nd"' in text

    def test_one_shot_http_scrape(self):
        registry = MetricsRegistry()
        registry.counter("scraped_total").inc(3)
        result = {}

        def scrape_when_up(port):
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5
            ) as response:
                result["body"] = response.read().decode()
                result["ctype"] = response.headers["Content-Type"]

        with MetricsServer(registry) as server:
            scrape_when_up(server.port)
        assert "scraped_total 3" in result["body"]
        assert result["ctype"].startswith("text/plain")

    def test_serve_metrics_once_serves_exactly_one(self):
        registry = MetricsRegistry()
        registry.counter("once_total").inc()
        ports = {}
        ready = threading.Event()

        def serve():
            # Bind an ephemeral port, publish it, serve one request.
            from http.server import ThreadingHTTPServer

            from repro.telemetry.export import _make_handler

            server = ThreadingHTTPServer(
                ("127.0.0.1", 0), _make_handler(registry)
            )
            ports["port"] = server.server_address[1]
            ready.set()
            try:
                server.handle_request()
            finally:
                server.server_close()

        thread = threading.Thread(target=serve)
        thread.start()
        assert ready.wait(timeout=5)
        with urllib.request.urlopen(
            f"http://127.0.0.1:{ports['port']}/metrics", timeout=5
        ) as response:
            body = response.read().decode()
        thread.join(timeout=5)
        assert "once_total 1" in body
        assert serve_metrics_once is not None  # public API exists


# ---- stage timings -----------------------------------------------------------


class TestStageTimingsStats:
    def test_min_max_mean(self):
        timings = StageTimings()
        for seconds in (0.1, 0.3, 0.2):
            timings.add("parse", seconds)
        assert timings.min_seconds("parse") == pytest.approx(0.1)
        assert timings.max_seconds("parse") == pytest.approx(0.3)
        assert timings.mean_seconds("parse") == pytest.approx(0.2)
        stats = timings.as_dict()["parse"]
        assert stats["count"] == 3
        assert stats["seconds"] == pytest.approx(0.6)

    def test_render_format_unchanged(self):
        timings = StageTimings()
        timings.add("evaluate", 0.5)
        lines = timings.render().splitlines()
        assert lines[0] == f"{'stage':<12}{'time [ms]':>12}{'share':>8}{'ops':>10}"
        assert any(line.startswith("evaluate") for line in lines)
        extended = timings.render_extended().splitlines()
        assert "min [ms]" in extended[0] and "max [ms]" in extended[0]

    def test_publish_folds_into_registry(self):
        registry = MetricsRegistry()
        timings = StageTimings()
        timings.add("crawl", 0.2)
        timings.add("crawl", 0.4)
        timings.publish(registry)
        hist = registry.histogram(STAGE_METRIC, labels=("stage",))
        assert hist.count(stage="crawl") == 2
        assert hist.sum(stage="crawl") == pytest.approx(0.6)
        assert hist.min(stage="crawl") == pytest.approx(0.2)
        assert hist.max(stage="crawl") == pytest.approx(0.4)

    def test_merge_keeps_per_cycle_isolation(self):
        first, second = StageTimings(), StageTimings()
        first.add("parse", 0.1)
        second.add("parse", 0.2)
        total = StageTimings()
        total.merge(first)
        total.merge(second)
        assert total.count("parse") == 2
        assert first.count("parse") == 1  # unchanged


# ---- profiler ----------------------------------------------------------------


class TestRuleProfiler:
    def test_rankings(self):
        profiler = RuleProfiler()
        profiler.record("rule", "sshd/a", 0.5)
        profiler.record("rule", "sshd/b", 0.1, error=True)
        profiler.record("rule", "sshd/b", 0.1, error=True)
        profiler.record("lens", "nginx", 0.2)
        hottest = profiler.hottest("rule")
        assert [e.key for e in hottest] == ["sshd/a", "sshd/b"]
        assert [e.key for e in profiler.most_erroring()] == ["sshd/b"]
        assert profiler.hottest("lens")[0].calls == 1
        text = profiler.render(top=5)
        assert "hottest rules:" in text
        assert "most erroring:" in text

    def test_fleet_summary_renders_profile_section(self):
        summary, _telemetry = _scan(workers=1)
        text = render_fleet_summary(summary)
        assert "rule/lens profile (process-cumulative):" in text
        assert "hottest rules:" in text

    def test_disabled_scan_has_no_profile_section(self):
        validator = load_builtin_validator()
        scanner = BatchScanner(validator)
        summary = scanner.scan_entities(_fleet_entities())
        assert summary.profile is None
        assert "rule/lens profile" not in render_fleet_summary(summary)


# ---- reports: telemetry on/off parity + error detail -------------------------


class TestReportParity:
    def test_reports_byte_identical_with_and_without_telemetry(self):
        entity = ubuntu_host_entity(
            "parity-host", hardening=0.4, with_nginx=True, with_mysql=True
        )
        frame = Crawler().crawl(entity)
        plain = load_builtin_validator().validate_frame(frame)
        telemetry = Telemetry()
        instrumented = load_builtin_validator(
            telemetry=telemetry
        ).validate_frame(frame)
        for renderer in (
            lambda r: render_text(r, verbose=True),
            render_json,
            render_junit,
        ):
            assert renderer(plain) == renderer(instrumented)
        assert len(telemetry.spans) > 0  # telemetry did actually run


class TestErrorEvidence:
    def _error_result(self):
        fs = VirtualFilesystem()
        fs.write_file("/etc/fstab", "/dev/sda1 / ext4 defaults 0 1\n")
        frame = Crawler().crawl(
            HostEntity("err-host", fs), features=("files",)
        )
        rule = build_rule({
            "config_schema_name": "tmp_partition",
            "query_constraints": "nonexistent_column = ?",
            "query_constraints_value": ["/tmp"],
            "query_columns": "mount_point",
            "schema_parser": "fstab",
            "preferred_value": ["/tmp"],
            "preferred_value_match": "exact,all",
        })
        manifest = Manifest(
            entity="fstab", cvl_file="x.yaml",
            config_search_paths=["/etc/fstab"],
        )
        return evaluate_schema(rule, frame, manifest, Normalizer())

    def test_evidence_carries_exception_type_and_detail_traceback(self):
        result = self._error_result()
        assert result.verdict is Verdict.ERROR
        locations = [e.location for e in result.evidence]
        assert any(loc.startswith("exception:") for loc in locations)
        assert "Traceback" in result.detail

    def test_text_json_junit_render_the_error(self):
        from repro.engine import ValidationReport
        from repro.engine.report import render_result, result_to_dict

        result = self._error_result()
        text = render_result(result, verbose=True)
        assert "        | Traceback" in text
        payload = result_to_dict(result)
        assert "Traceback" in payload["detail"]
        exc_name = next(
            e.location.split(":", 1)[1]
            for e in result.evidence
            if e.location.startswith("exception:")
        )
        report = ValidationReport(target="err-host", results=[result])
        xml = render_junit(report)
        assert f'<error type="{exc_name}">' in xml
        assert "Traceback" in xml


# ---- structured logging ------------------------------------------------------


class TestStructuredLogging:
    def test_json_formatter_emits_parseable_lines(self):
        formatter = JsonLogFormatter()
        record = logging.LogRecord(
            "repro.engine", logging.WARNING, __file__, 1,
            "rule %s errored", ("sshd/x",), None,
        )
        record.entity = "web1"
        payload = json.loads(formatter.format(record))
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.engine"
        assert payload["message"] == "rule sshd/x errored"
        assert payload["entity"] == "web1"
        assert "ts" in payload

    def test_json_formatter_captures_exception(self):
        formatter = JsonLogFormatter()
        try:
            raise ValueError("boom")
        except ValueError:
            import sys

            record = logging.LogRecord(
                "repro", logging.ERROR, __file__, 1, "failed", (),
                sys.exc_info(),
            )
        payload = json.loads(formatter.format(record))
        assert payload["exc_type"] == "ValueError"
        assert "boom" in payload["traceback"]

    def test_configure_logging_idempotent(self):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        try:
            configure_logging("info")
            configure_logging("debug", json_output=True)
            ours = [
                h for h in root.handlers if h.name == "repro-telemetry"
            ]
            assert len(ours) == 1
            assert root.level == logging.DEBUG
            assert isinstance(ours[0].formatter, JsonLogFormatter)
            with pytest.raises(ValueError):
                configure_logging("loud")
        finally:
            root.handlers[:] = before
            root.setLevel(logging.NOTSET)

    def test_get_logger_namespaced(self):
        assert get_logger("engine").name == "repro.engine"


# ---- CLI ---------------------------------------------------------------------


class TestTelemetryCli:
    def test_validate_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.cli import main

        ssh = tmp_path / "root" / "etc" / "ssh"
        ssh.mkdir(parents=True)
        (ssh / "sshd_config").write_text("PermitRootLogin no\n")
        trace = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        main([
            "validate", "--root", str(tmp_path / "root"),
            "--targets", "sshd", "--workers", "2",
            "--trace-out", str(trace), "--metrics-out", str(prom),
        ])
        err = capsys.readouterr().err
        assert "spans" in err and "metric samples" in err
        assert json.loads(trace.read_text())["traceEvents"]
        assert "repro_frames_scanned_total 1" in prom.read_text()

    def test_json_junit_mutually_exclusive(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["validate", "--json", "--junit", "--root", "/tmp"])
        assert excinfo.value.code == 2
        assert "not allowed with" in capsys.readouterr().err

    def test_profile_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "profile", "--scenario", "fleet", "--size", "2",
            "--workers", "2",
            "--metrics-out", str(tmp_path / "m.prom"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hottest rules:" in out
        assert "stage" in out and "mean [ms]" in out
        assert (tmp_path / "m.prom").exists()
