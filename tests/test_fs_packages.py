"""Unit + property tests for the package database and version ordering."""

from hypothesis import given, strategies as st

from repro.fs import Package, PackageDatabase, compare_versions


class TestDatabase:
    def test_install_and_lookup(self):
        db = PackageDatabase([Package("nginx", "1.10.3")])
        assert db.installed("nginx")
        assert db.version_of("nginx") == "1.10.3"

    def test_missing_package(self):
        db = PackageDatabase()
        assert not db.installed("nginx")
        assert db.version_of("nginx") is None
        assert db.get("nginx") is None

    def test_install_upgrades(self):
        db = PackageDatabase([Package("app", "1.0")])
        db.install(Package("app", "2.0"))
        assert db.version_of("app") == "2.0"
        assert len(db) == 1

    def test_remove_is_idempotent(self):
        db = PackageDatabase([Package("app", "1.0")])
        db.remove("app")
        db.remove("app")
        assert not db.installed("app")

    def test_at_least(self):
        db = PackageDatabase([Package("openssl", "1.0.2g")])
        assert db.at_least("openssl", "1.0.1")
        assert db.at_least("openssl", "1.0.2g")
        assert not db.at_least("openssl", "1.1.0")
        assert not db.at_least("missing", "1.0")

    def test_iteration_sorted_by_name(self):
        db = PackageDatabase([Package("zsh", "5"), Package("bash", "4")])
        assert [p.name for p in db] == ["bash", "zsh"]


class TestVersionComparison:
    def test_numeric_ordering(self):
        assert compare_versions("1.9", "1.10") < 0

    def test_equal(self):
        assert compare_versions("2.0.1", "2.0.1") == 0

    def test_epoch_dominates(self):
        assert compare_versions("1:1.0", "2.0") > 0

    def test_revision_breaks_ties(self):
        assert compare_versions("1.0-1", "1.0-2") < 0

    def test_tilde_sorts_before_release(self):
        assert compare_versions("2.0~rc1", "2.0") < 0
        assert compare_versions("2.0~rc1", "2.0~rc2") < 0

    def test_letters_vs_digits(self):
        assert compare_versions("1.0a", "1.0") > 0

    def test_debian_style_full(self):
        assert compare_versions(
            "1:7.2p2-4ubuntu2.8", "1:7.2p2-4ubuntu2.10"
        ) < 0

    def test_longer_wins_when_prefix_equal(self):
        assert compare_versions("1.0.1", "1.0") > 0


_version = st.from_regex(r"[0-9]{1,3}(\.[0-9]{1,3}){0,3}", fullmatch=True)


class TestVersionProperties:
    @given(v=_version)
    def test_reflexive(self, v):
        assert compare_versions(v, v) == 0

    @given(a=_version, b=_version)
    def test_antisymmetric(self, a, b):
        assert compare_versions(a, b) == -compare_versions(b, a)

    @given(a=_version, b=_version, c=_version)
    def test_transitive(self, a, b, c):
        ordered = sorted([a, b, c], key=_key)
        assert compare_versions(ordered[0], ordered[1]) <= 0
        assert compare_versions(ordered[1], ordered[2]) <= 0
        assert compare_versions(ordered[0], ordered[2]) <= 0

    @given(a=_version, b=_version)
    def test_matches_numeric_tuple_order(self, a, b):
        tuple_a = tuple(int(part) for part in a.split("."))
        tuple_b = tuple(int(part) for part in b.split("."))
        expected = (tuple_a > tuple_b) - (tuple_a < tuple_b)
        got = compare_versions(a, b)
        assert (got > 0) == (expected > 0) and (got < 0) == (expected < 0)


def _key(version):
    import functools

    return functools.cmp_to_key(compare_versions)(version)
