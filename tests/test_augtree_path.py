"""Unit + property tests for path expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PathExpressionError
from repro.augtree import ConfigNode, parse_path


def _tree() -> ConfigNode:
    root = ConfigNode("(root)")
    http = root.add("http")
    for listen, protocols in [("443 ssl", "TLSv1.2"), ("80", None)]:
        server = http.add("server")
        server.add("listen", listen)
        if protocols:
            server.add("ssl_protocols", protocols)
    mysqld = root.add("mysqld")
    mysqld.add("ssl-ca", "/etc/mysql/cacert.pem")
    root.add("net.ipv4.ip_forward", "0")
    modroot = root.add("modprobe")
    for module in ("cramfs", "udf"):
        install = modroot.add("install", module)
        install.add("command", "/bin/true")
    return root


class TestBasicMatching:
    def test_single_segment(self):
        assert parse_path("http").match(_tree())[0].label == "http"

    def test_nested_path(self):
        values = [n.value for n in parse_path("http/server/listen").match(_tree())]
        assert values == ["443 ssl", "80"]

    def test_no_match_is_empty(self):
        assert parse_path("http/nothing").match(_tree()) == []

    def test_empty_expression_matches_root(self):
        root = _tree()
        assert parse_path("").match(root) == [root]

    def test_dotted_label_is_one_segment(self):
        matches = parse_path("net.ipv4.ip_forward").match(_tree())
        assert len(matches) == 1
        assert matches[0].value == "0"

    def test_dash_in_label(self):
        assert parse_path("mysqld/ssl-ca").match(_tree())[0].value == (
            "/etc/mysql/cacert.pem"
        )


class TestWildcards:
    def test_star_matches_any_child(self):
        labels = {n.label for n in parse_path("*").match(_tree())}
        assert labels == {"http", "mysqld", "net.ipv4.ip_forward", "modprobe"}

    def test_star_in_middle(self):
        values = [n.value for n in parse_path("http/*/listen").match(_tree())]
        assert values == ["443 ssl", "80"]

    def test_doublestar_descendant_or_self(self):
        values = [n.value for n in parse_path("**/listen").match(_tree())]
        assert values == ["443 ssl", "80"]

    def test_doublestar_deduplicates(self):
        matches = parse_path("**/**/listen").match(_tree())
        assert len(matches) == 2

    def test_doublestar_rejects_predicates(self):
        with pytest.raises(PathExpressionError):
            parse_path("**[1]/x")


class TestPredicates:
    def test_numeric_index_is_one_based(self):
        node = parse_path("http/server[2]/listen").match(_tree())[0]
        assert node.value == "80"

    def test_index_out_of_range_is_empty(self):
        assert parse_path("http/server[9]").match(_tree()) == []

    def test_last(self):
        node = parse_path("http/server[last()]/listen").match(_tree())[0]
        assert node.value == "80"

    def test_value_predicate(self):
        matches = parse_path("modprobe/install[.='cramfs']").match(_tree())
        assert len(matches) == 1
        assert matches[0].value == "cramfs"

    def test_value_predicate_then_child(self):
        node = parse_path("modprobe/install[.='cramfs']/command").match(_tree())[0]
        assert node.value == "/bin/true"

    def test_child_value_predicate(self):
        matches = parse_path("http/server[listen='80']").match(_tree())
        assert len(matches) == 1
        assert matches[0].child("ssl_protocols") is None

    def test_quoted_predicate_value_with_space(self):
        matches = parse_path("http/server[listen='443 ssl']").match(_tree())
        assert len(matches) == 1

    def test_stacked_predicates(self):
        matches = parse_path("http/server[listen='80'][1]").match(_tree())
        assert len(matches) == 1


class TestQuotingAndErrors:
    def test_quoted_label_with_slash(self):
        root = ConfigNode("(root)")
        root.add("a/b", "weird")
        assert parse_path('"a/b"').match(root)[0].value == "weird"

    def test_zero_index_rejected(self):
        with pytest.raises(PathExpressionError):
            parse_path("a[0]")

    def test_empty_segment_rejected(self):
        with pytest.raises(PathExpressionError):
            parse_path("a//b")

    def test_unbalanced_bracket_rejected(self):
        with pytest.raises(PathExpressionError):
            parse_path("a[1")

    def test_unterminated_quote_rejected(self):
        with pytest.raises(PathExpressionError):
            parse_path('"abc')

    def test_garbage_predicate_rejected(self):
        with pytest.raises(PathExpressionError):
            parse_path("a[?!]")

    def test_parse_is_cached(self):
        assert parse_path("http/server") is parse_path("http/server")


_labels = st.text(alphabet="abcxyz_", min_size=1, max_size=5)


class TestProperties:
    @given(labels=st.lists(_labels, min_size=1, max_size=5))
    def test_exact_chain_always_matches_itself(self, labels):
        root = ConfigNode("(root)")
        node = root
        for label in labels:
            node = node.add(label)
        matches = parse_path("/".join(labels)).match(root)
        assert node in matches

    @given(labels=st.lists(_labels, min_size=1, max_size=4))
    def test_doublestar_finds_leaf_anywhere(self, labels):
        root = ConfigNode("(root)")
        node = root
        for label in labels:
            node = node.add(label)
        matches = parse_path(f"**/{labels[-1]}").match(root)
        assert node in matches

    @given(count=st.integers(min_value=1, max_value=6))
    def test_indexes_partition_siblings(self, count):
        root = ConfigNode("(root)")
        for index in range(count):
            root.add("item", str(index))
        for position in range(1, count + 1):
            matches = parse_path(f"item[{position}]").match(root)
            assert [n.value for n in matches] == [str(position - 1)]
