"""Differential testing of lens source spans (ISSUE 7, satellite 1).

Every span a lens reports must round-trip against the raw text it was
parsed from: slicing ``text[span.start:span.end]`` has to land on the
construct that produced the node, and the (line, column) pair has to
agree with the offset.  The tests below re-read each reported span from
the raw file and check the node's value is recoverable from the slice
after normalizing the syntax the lens strips (quotes, backslash
continuations, whitespace runs).

Multi-line constructs get dedicated cases: nginx directives whose
arguments wrap across lines, nested blocks, and apache continuation
lines must span from their first line to their last.
"""

import re

import pytest

from repro.augtree.lenses import (
    ApacheLens,
    IniLens,
    JsonLens,
    NginxLens,
    PropertiesLens,
    SshdLens,
    SysctlLens,
    YamlLens,
    default_registry,
)
from repro.augtree.tree import ConfigNode, SourceSpan


# ---------------------------------------------------------------------------
# Span <-> text agreement machinery
# ---------------------------------------------------------------------------

def _normalize(text: str) -> str:
    """Collapse the syntax lenses strip so containment checks work."""
    text = text.replace("\\\n", " ")          # line continuations
    text = text.replace('"', "").replace("'", "")
    return re.sub(r"\s+", " ", text).strip()


def _walk(tree):
    root = getattr(tree, "root", tree)

    def inner(node: ConfigNode):
        yield node
        for child in node.children:
            yield from inner(child)

    yield from inner(root)


def _line_col_to_offset(text: str, line: int, column: int) -> int:
    """1-based (line, column) -> character offset into ``text``."""
    offset = 0
    for _ in range(line - 1):
        offset = text.index("\n", offset) + 1
    return offset + column - 1


def assert_spans_consistent(tree: ConfigNode, text: str) -> int:
    """Every span slices cleanly and contains its node's value.

    Returns the number of spanned nodes checked, so callers can assert
    coverage did not silently collapse to zero.
    """
    checked = 0
    for node in _walk(tree):
        span = node.span
        if span is None:
            continue
        checked += 1
        assert 0 <= span.start < span.end <= len(text), (node.path(), span)
        assert 1 <= span.line <= span.end_line, (node.path(), span)
        # (line, column) must agree with the character offsets.
        assert _line_col_to_offset(text, span.line, span.column) == span.start
        assert (
            _line_col_to_offset(text, span.end_line, span.end_column)
            == span.end
        ), (node.path(), span)
        slice_text = _normalize(text[span.start : span.end])
        if node.value:
            assert _normalize(str(node.value)) in slice_text, (
                node.path(), node.value, text[span.start : span.end],
            )
    return checked


# ---------------------------------------------------------------------------
# Per-lens differential cases
# ---------------------------------------------------------------------------

NGINX_TEXT = """\
user www-data;
http {
    server {
        listen 443 ssl;
        ssl_protocols SSLv3
            TLSv1.2;
        add_header X-Frame-Options "SAMEORIGIN";
    }
    server { listen 80; }
}
"""

APACHE_TEXT = """\
ServerTokens Prod
SSLCipherSuite HIGH:\\
    !aNULL:!MD5
<Directory /var/www>
    Options -Indexes
    AllowOverride None
</Directory>
"""

INI_TEXT = """\
[mysqld]
bind-address = 0.0.0.0
local-infile = 1

[client]
port = 3306
"""

SSHD_TEXT = """\
Port 22
PermitRootLogin yes
Match User admin
    PasswordAuthentication no
"""

SYSCTL_TEXT = """\
net.ipv4.ip_forward = 1
kernel.randomize_va_space=2
"""

PROPERTIES_TEXT = """\
dfs.permissions.enabled=false
dfs.replication = 3
long.value = one \\
    two
"""

JSON_TEXT = """\
{
  "log-driver": "json-file",
  "hosts": ["unix:///var/run/docker.sock", "tcp://0.0.0.0:2375"],
  "tls": false
}
"""

YAML_TEXT = """\
apiVersion: v1
spec:
  privileged: true
  ports:
    - 8080
    - 9090
"""


@pytest.mark.parametrize(
    "lens,text",
    [
        (NginxLens(), NGINX_TEXT),
        (ApacheLens(), APACHE_TEXT),
        (IniLens(), INI_TEXT),
        (SshdLens(), SSHD_TEXT),
        (SysctlLens(), SYSCTL_TEXT),
        (PropertiesLens(), PROPERTIES_TEXT),
        (JsonLens(), JSON_TEXT),
        (YamlLens(), YAML_TEXT),
    ],
    ids=["nginx", "apache", "ini", "sshd", "sysctl", "properties",
         "json", "yaml"],
)
def test_spans_reread_from_raw_text(lens, text):
    tree = lens.parse(text)
    assert assert_spans_consistent(tree, text) > 0


# ---------------------------------------------------------------------------
# Multi-line construct attribution (the satellite's headline cases)
# ---------------------------------------------------------------------------

class TestNginxMultiLine:
    def test_wrapped_directive_spans_all_its_lines(self):
        tree = NginxLens().parse(NGINX_TEXT)
        node = tree.first("http/server/ssl_protocols")
        assert node.value == "SSLv3 TLSv1.2"
        assert node.span.line == 5
        assert node.span.end_line == 6
        assert "TLSv1.2" in NGINX_TEXT[node.span.start : node.span.end]

    def test_block_spans_open_to_close_brace(self):
        tree = NginxLens().parse(NGINX_TEXT)
        http = tree.first("http")
        assert http.span.line == 2
        assert http.span.end_line == 10
        sliced = NGINX_TEXT[http.span.start : http.span.end]
        assert sliced.startswith("http")
        assert sliced.rstrip().endswith("}")

    def test_sibling_blocks_get_distinct_spans(self):
        tree = NginxLens().parse(NGINX_TEXT)
        servers = tree.match("http/server")
        assert len(servers) == 2
        assert servers[0].span.line < servers[1].span.line
        assert servers[0].span.end < servers[1].span.start

    def test_single_line_directive_is_exact(self):
        tree = NginxLens().parse(NGINX_TEXT)
        node = tree.first("user")
        assert NGINX_TEXT[node.span.start : node.span.end] == "user www-data;"


class TestApacheMultiLine:
    def test_continuation_line_extends_the_span(self):
        tree = ApacheLens().parse(APACHE_TEXT)
        node = tree.first("SSLCipherSuite")
        assert node.value.split() == ["HIGH:", "!aNULL:!MD5"]
        assert node.span.line == 2
        assert node.span.end_line == 3
        assert "!MD5" in APACHE_TEXT[node.span.start : node.span.end]

    def test_section_spans_open_to_close_tag(self):
        tree = ApacheLens().parse(APACHE_TEXT)
        section = tree.first("Directory")
        assert section.span.line == 4
        assert section.span.end_line == 7
        sliced = APACHE_TEXT[section.span.start : section.span.end]
        assert sliced.startswith("<Directory")
        assert sliced.rstrip().endswith("</Directory>")

    def test_directive_inside_section_spans_its_own_line(self):
        tree = ApacheLens().parse(APACHE_TEXT)
        node = tree.first("Directory/Options")
        assert node.span.line == node.span.end_line == 5


class TestPropertiesContinuation:
    def test_backslash_continuation_spans_both_lines(self):
        tree = PropertiesLens().parse(PROPERTIES_TEXT)
        node = tree.first("long.value")
        assert node.span.line == 3
        assert node.span.end_line == 4


# ---------------------------------------------------------------------------
# Registry-wide smoke: builtin sample files keep spanning
# ---------------------------------------------------------------------------

def test_registry_lenses_span_realistic_configs():
    """Each registered lens produces at least one spanned node on a
    minimal realistic document, and every span re-reads cleanly."""
    samples = {
        "nginx": "server { listen 80; }\n",
        "apache": "KeepAlive On\n",
        "ini": "[a]\nk = v\n",
        "sshd": "PermitRootLogin no\n",
        "sysctl": "kernel.sysrq = 0\n",
        "properties": "a.b=c\n",
        "json": '{"a": 1}\n',
        "yaml": "a: 1\n",
        "keyvalue": "KEY=value\n",
    }
    registry = default_registry()
    covered = 0
    for name, text in samples.items():
        if name not in registry:
            continue
        tree = registry.get(name).parse(text)
        assert assert_spans_consistent(tree, text) > 0, name
        covered += 1
    assert covered >= 8


def test_spans_do_not_affect_equality_or_serialization():
    """Span-aware and span-less trees must stay interchangeable."""
    spanned = NginxLens().parse("user www-data;\n")
    stripped = NginxLens().parse("user www-data;\n")
    for node in _walk(stripped):
        node.span = None
    assert spanned.root == stripped.root
    assert spanned.root.to_dict() == stripped.root.to_dict()
