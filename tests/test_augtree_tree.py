"""Unit tests for the config tree data model."""

from repro.augtree import ConfigNode, ConfigTree


def _sample_tree() -> ConfigTree:
    root = ConfigNode("(root)")
    http = root.add("http")
    server1 = http.add("server")
    server1.add("listen", "443 ssl")
    server1.add("ssl_protocols", "TLSv1.2 TLSv1.3")
    server2 = http.add("server")
    server2.add("listen", "80")
    root.add("user", "www-data")
    return ConfigTree(root, source="nginx.conf", lens="nginx")


class TestConfigNode:
    def test_add_sets_parent(self):
        root = ConfigNode("(root)")
        child = root.add("a", "1")
        assert child.parent is root
        assert child.value == "1"

    def test_child_returns_first(self):
        root = ConfigNode("(root)")
        root.add("k", "first")
        root.add("k", "second")
        assert root.child("k").value == "first"

    def test_children_named_preserves_order(self):
        root = ConfigNode("(root)")
        root.add("k", "1")
        root.add("other")
        root.add("k", "2")
        assert [n.value for n in root.children_named("k")] == ["1", "2"]

    def test_get_missing_is_none(self):
        assert ConfigNode("x").get("nope") is None

    def test_walk_preorder(self):
        tree = _sample_tree()
        labels = [node.label for node in tree.root.walk()]
        assert labels[0] == "(root)"
        assert labels.index("http") < labels.index("server")
        assert labels.index("server") < labels.index("listen")

    def test_path_excludes_root(self):
        tree = _sample_tree()
        listen = tree.first("http/server/listen")
        assert listen.path() == "http/server/listen"

    def test_index_among_siblings(self):
        tree = _sample_tree()
        servers = tree.match("http/server")
        assert [s.index_among_siblings() for s in servers] == [1, 2]

    def test_attach_existing_node(self):
        root = ConfigNode("(root)")
        orphan = ConfigNode("section", "v")
        root.attach(orphan)
        assert orphan.parent is root
        assert root.child("section") is orphan

    def test_equality_is_structural(self):
        a = ConfigNode("k", "v")
        b = ConfigNode("k", "v")
        assert a == b
        b.add("child")
        assert a != b

    def test_find_all(self):
        tree = _sample_tree()
        listens = tree.root.find_all(lambda n: n.label == "listen")
        assert len(listens) == 2


class TestToDict:
    def test_leaf(self):
        assert ConfigNode("k", "v").to_dict() == {"k": "v"}

    def test_repeated_labels_become_lists(self):
        tree = _sample_tree()
        data = tree.root.to_dict()["(root)"]
        assert isinstance(data["http"]["server"], list)
        assert data["http"]["server"][1]["listen"] == "80"

    def test_valueless_leaf_is_none(self):
        root = ConfigNode("(root)")
        root.add("flag")
        assert root.to_dict()["(root)"]["flag"] is None


class TestConfigTree:
    def test_value_of(self):
        tree = _sample_tree()
        assert tree.value_of("user") == "www-data"
        assert tree.value_of("missing") is None

    def test_first_none_when_no_match(self):
        assert _sample_tree().first("nope/nope") is None

    def test_size_excludes_root(self):
        tree = _sample_tree()
        assert tree.size() == 7

    def test_render_contains_values(self):
        rendered = _sample_tree().render()
        assert "443 ssl" in rendered
        assert "nginx.conf" in rendered

    def test_default_tree_is_empty(self):
        tree = ConfigTree()
        assert tree.size() == 0
        assert tree.match("anything") == []
