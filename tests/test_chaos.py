"""Chaos fabric: deterministic injection, degraded-but-accounted cycles.

The contract under test: with a fault plan armed, a scan cycle always
terminates, every injected fault is absorbed and accounted, stores
quarantine-and-rebuild instead of dying, and frames the plan could not
have touched produce byte-identical results to a fault-free run -- at
any worker count, on either executor.
"""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chaos.fabric import (
    ChaosFabric,
    ChaosPlanError,
    FaultPlan,
    FaultRule,
    arm_from_env,
    arm_plan,
    disarm,
    fabric,
)
from repro.chaos.plans import named_plan, plan_names, resolve_plan
from repro.chaos.quarantine import is_corruption, quarantine_database
from repro.chaos.runner import run_chaos
from repro.chaos.stats import DegradationStats
from repro.crawler import Crawler
from repro.engine import render_json, render_text
from repro.engine.artifact_store import ArtifactStore
from repro.engine.batch import BatchScanner, ScanStageError
from repro.engine.incremental import STATE_FILE, VerdictStore
from repro.history import HistoryStore
from repro.history.events import HealthEvent, WebhookSink
from repro.rules import load_builtin_validator
from repro.util import RetryError, retry_with_backoff
from repro.workloads import ubuntu_host_entity


@pytest.fixture(autouse=True)
def disarmed():
    """Every test starts and ends with the fabric at rest."""
    disarm()
    yield
    disarm()


@pytest.fixture(scope="module")
def host_frame():
    return Crawler().crawl(
        ubuntu_host_entity("chaos-host", hardening=0.5, seed=5,
                           with_nginx=True, with_mysql=True)
    )


def _plan(*rules, seed=42, name="test"):
    return FaultPlan(name=name, seed=seed,
                     rules=tuple(FaultRule(**r) for r in rules))


# ---------------------------------------------------------------------------
# Fabric semantics


class TestFabricDeterminism:
    def test_same_seed_same_decisions(self):
        decisions = []
        for _ in range(2):
            fab = ChaosFabric()
            fab.arm(_plan({"site": "fs.read", "probability": 0.5}),
                    export_env=False)
            run = [fab._draw("fs.read", f"/etc/f{i}") is not None
                   for i in range(64)]
            decisions.append(run)
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_different_seed_different_decisions(self):
        runs = {}
        for seed in (1, 2):
            fab = ChaosFabric()
            fab.arm(_plan({"site": "fs.read", "probability": 0.5},
                          seed=seed), export_env=False)
            runs[seed] = tuple(fab._draw("fs.read", f"/etc/f{i}") is not None
                               for i in range(64))
        assert runs[1] != runs[2]

    def test_count_caps_fires(self):
        fab = ChaosFabric()
        fab.arm(_plan({"site": "fs.read", "count": 3}), export_env=False)
        fired = sum(fab._draw("fs.read", "/etc/x") is not None
                    for _ in range(10))
        assert fired == 3

    def test_match_scopes_fires(self):
        fab = ChaosFabric()
        fab.arm(_plan({"site": "fs.read", "match": "*/nginx.conf"}),
                export_env=False)
        assert fab._draw("fs.read", "/etc/nginx/nginx.conf") is not None
        assert fab._draw("fs.read", "/etc/mysql/my.cnf") is None

    def test_env_round_trip(self):
        plan = _plan({"site": "lens.parse", "match": "*.cnf", "count": 2})
        arm_plan(plan)
        assert fabric().armed
        disarm()
        assert not fabric().armed
        # Re-export, then arm a fresh fabric the way a worker would.
        arm_plan(plan)
        try:
            fab = ChaosFabric()
            assert fab.arm_from_env()
            assert fab.plan == plan
        finally:
            disarm()
        assert not arm_from_env()  # env cleared by disarm

    def test_fire_injects_typed_absorbable_error(self):
        from repro.errors import FileNotFoundInFrame

        arm_plan(_plan({"site": "fs.read"}))
        with pytest.raises(FileNotFoundInFrame):
            fabric().fire("fs.read", "/etc/passwd")
        account = fabric().account
        assert account.injected == {"fs.read": 1}
        assert account.fired == [("fs.read", "/etc/passwd")]

    def test_store_error_is_sqlite_error(self):
        arm_plan(_plan({"site": "store.sqlite"}))
        with pytest.raises(sqlite3.Error) as excinfo:
            fabric().fire("store.sqlite", "/tmp/db")
        assert is_corruption(excinfo.value)

    def test_unknown_plan_name(self):
        with pytest.raises(ChaosPlanError):
            resolve_plan("no-such-plan")

    def test_shipped_plans_resolve(self):
        for name in plan_names():
            plan = named_plan(name)
            assert plan.name == name and plan.rules


# ---------------------------------------------------------------------------
# retry_with_backoff


class TestRetryWithBackoff:
    def test_succeeds_after_retries(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        assert retry_with_backoff(flaky, attempts=5, base_delay_s=0.1,
                                  label="t", sleep=sleeps.append) == "ok"
        assert calls["n"] == 3 and len(sleeps) == 2
        assert all(0 <= s <= 0.4 for s in sleeps)

    def test_raises_retry_error_after_attempts(self):
        def dead():
            raise OSError("down")

        with pytest.raises(RetryError) as excinfo:
            retry_with_backoff(dead, attempts=3, base_delay_s=0.0,
                               label="dead-endpoint", sleep=lambda _s: None)
        err = excinfo.value
        assert err.attempts == 3 and isinstance(err.last, OSError)
        assert "dead-endpoint" in str(err)

    def test_non_retryable_raises_through(self):
        def boom():
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_with_backoff(boom, attempts=3, retry_on=(OSError,),
                               label="t", sleep=lambda _s: None)

    def test_on_retry_hook_sees_each_failure(self):
        seen = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("once")

        retry_with_backoff(flaky, attempts=2, base_delay_s=0.0, label="t",
                           sleep=lambda _s: None,
                           on_retry=lambda n, e, d: seen.append((n, type(e))))
        assert seen == [(1, OSError)]

    def test_deadline_cuts_attempts_short(self):
        def dead():
            raise OSError("down")

        with pytest.raises(RetryError) as excinfo:
            retry_with_backoff(dead, attempts=100, base_delay_s=10.0,
                               deadline_s=0.0, label="t",
                               sleep=lambda _s: None)
        assert excinfo.value.attempts < 100


# ---------------------------------------------------------------------------
# Differential: unaffected frames byte-identical, thread x process


class TestDifferential:
    @pytest.mark.parametrize("executor", ("thread", "process"))
    @pytest.mark.parametrize("workers", (1, 8))
    def test_fs_error_blast_radius(self, workers, executor):
        result = run_chaos("fs-error", workers=workers, executor=executor,
                           size=3)
        assert result.ok, result.render()
        assert result.degradation.total_injected > 0
        assert result.affected_frames  # nginx frames differ, others don't
        assert not result.unexpected_diffs

    def test_parser_crash(self):
        result = run_chaos("parser-crash", workers=2, size=3)
        assert result.ok, result.render()
        assert result.degradation.faults_injected.get("lens.parse", 0) > 0

    def test_worker_kill_full_identity(self):
        # A killed worker respawns and the shard re-evaluates: every
        # frame must be byte-identical, not just the unaffected ones.
        result = run_chaos("worker-kill", workers=2, size=2)
        assert result.ok, result.render()
        assert result.degradation.faults_injected.get("exec.worker", 0) == 1
        assert not result.affected_frames
        assert not result.unexpected_diffs

    def test_store_corruption_quarantines_and_rebuilds(self):
        result = run_chaos("store-corruption", workers=2, size=2)
        assert result.ok, result.render()
        assert result.degradation.stores_quarantined >= 1
        assert not result.affected_frames

    def test_clock_skew_absorbed(self):
        result = run_chaos("clock-skew", workers=2, size=2)
        assert result.ok, result.render()
        assert result.degradation.faults_injected.get("clock.skew", 0) >= 1

    def test_null_plan_no_faults_no_diffs(self):
        result = run_chaos("null", workers=2, size=2)
        assert result.ok, result.render()
        assert result.degradation.total_injected == 0
        assert not result.affected_frames and not result.unexpected_diffs


class TestCleanRunByteIdentity:
    def test_armed_null_plan_output_identical(self, host_frame):
        validator = load_builtin_validator()
        try:
            clean = validator.validate_frame(host_frame)
            clean_text = render_text(clean, verbose=True)
            clean_json = render_json(clean)
        finally:
            validator.close()
        arm_plan(resolve_plan("null"))
        validator = load_builtin_validator()
        try:
            armed = validator.validate_frame(host_frame)
        finally:
            validator.close()
            disarm()
        assert render_text(armed, verbose=True) == clean_text
        assert render_json(armed) == clean_json
        assert "degraded" not in json.loads(clean_json)


# ---------------------------------------------------------------------------
# Deadlines


class TestDeadlines:
    def test_frame_deadline_quarantines_frames(self, host_frame):
        validator = load_builtin_validator(frame_deadline_s=0.0)
        try:
            report = validator.validate_frame(host_frame)
        finally:
            validator.close()
        degradation = report.degradation
        assert degradation is not None and degradation.degraded
        assert degradation.deadline_cancellations > 0
        cancelled = [r for r in report
                     if "cancelled: deadline exceeded" in r.message]
        assert cancelled
        doc = json.loads(render_json(report))
        assert doc["degraded"] is True

    def test_cycle_deadline_cycle_terminates(self, host_frame):
        arm_plan(_plan({"site": "rule.eval", "mode": "delay",
                        "delay_s": 0.05}))
        validator = load_builtin_validator(deadline_s=0.2)
        started = time.perf_counter()
        try:
            report = validator.validate_frame(host_frame)
        finally:
            validator.close()
            disarm()
        elapsed = time.perf_counter() - started
        assert elapsed < 30.0
        assert len(report) > 0
        degradation = report.degradation
        assert degradation is not None
        assert degradation.deadline_cancellations > 0

    def test_cancelled_results_not_persisted(self, host_frame):
        store = VerdictStore()
        validator = load_builtin_validator(frame_deadline_s=0.0,
                                           verdict_store=store)
        try:
            validator.validate_frame(host_frame)
        finally:
            validator.close()
        # The next full-budget cycle re-evaluates: nothing replays as a
        # cancelled ERROR.
        validator = load_builtin_validator(verdict_store=store)
        try:
            report = validator.validate_frame(host_frame)
        finally:
            validator.close()
        assert not [r for r in report
                    if "cancelled: deadline exceeded" in r.message]


# ---------------------------------------------------------------------------
# Store quarantine


class TestStoreQuarantine:
    def test_artifact_store_rebuilds_cold(self, tmp_path, host_frame):
        path = tmp_path / "artifacts.db"
        arm_plan(_plan({"site": "store.sqlite", "count": 1}))
        validator = load_builtin_validator(artifact_store=str(path))
        try:
            report = validator.validate_frame(host_frame)
        finally:
            validator.close()
            disarm()
        assert len(report) > 0
        quarantined = list(tmp_path.glob("artifacts.db.quarantined.*"))
        assert len(quarantined) == 1
        assert path.exists()  # rebuilt cold and still in use

    def test_artifact_store_corrupt_file_on_open(self, tmp_path):
        path = tmp_path / "artifacts.db"
        path.write_bytes(b"this is not a sqlite database at all")
        store = ArtifactStore(str(path))
        try:
            assert store.stats() is not None  # opened something usable
        finally:
            store.close()
        assert list(tmp_path.glob("artifacts.db.quarantined.*"))

    def test_verdict_store_corrupt_json_quarantined(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        (state / STATE_FILE).write_text("{not json", encoding="utf-8")
        store = VerdictStore.load(str(state))
        assert store is not None  # fresh store, no raise
        assert list(state.glob(STATE_FILE + ".quarantined.*"))

    def test_history_store_corrupt_db_quarantined(self, tmp_path):
        path = tmp_path / "history.sqlite"
        path.write_bytes(b"garbage" * 100)
        store = HistoryStore(str(path))
        try:
            store.record_scan_error("smoke", stage="crawl")
            assert len(store.cycles()) == 1
        finally:
            store.close()
        assert list(tmp_path.glob("history.sqlite.quarantined.*"))

    def test_quarantine_missing_file_counts_only(self):
        before = fabric().account.snapshot()
        assert quarantine_database("/nonexistent/nowhere.db",
                                   reason="test") is None
        delta = fabric().account.delta_since(before)
        assert delta["stores_quarantined"] == 1


# ---------------------------------------------------------------------------
# Webhook chaos + scan-error attribution


class TestWebhookChaos:
    def _event(self):
        return [HealthEvent(kind="fix", cycle_id=1, target="t",
                            entity="e", rule="r")]

    def test_injected_failure_accounted_on_drop(self):
        arm_plan(_plan({"site": "webhook.send"}))
        sink = WebhookSink("http://127.0.0.1:9/hook", timeout=0.2,
                           retries=1, backoff_s=0.0, sleep=lambda _s: None)
        sink.emit_many(self._event())
        account = fabric().account
        assert sink.failed_batches == 1
        assert account.injected.get("webhook.send", 0) > 0
        assert (account.absorbed.get("webhook.send", 0)
                == account.injected.get("webhook.send", 0))

    def test_injected_failure_absorbed_by_retry(self, monkeypatch):
        # Fault fires on the first post only (count=1): the retry
        # succeeds and the absorption is credited by the backoff hook.
        arm_plan(_plan({"site": "webhook.send", "count": 1}))
        sink = WebhookSink("http://127.0.0.1:9/hook", timeout=0.2,
                           retries=2, backoff_s=0.0, sleep=lambda _s: None)

        def fake_urlopen(request, timeout):
            class _Resp:
                def __enter__(self):
                    return self

                def __exit__(self, *exc):
                    return False

                def read(self):
                    return b"ok"

            return _Resp()

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        sink.emit_many(self._event())
        account = fabric().account
        assert sink.delivered == 1 and sink.failed_batches == 0
        assert account.absorbed.get("webhook.send", 0) == 1


class TestScanErrorAttribution:
    def test_crawl_failure_names_stage_and_frame(self):
        class ExplodingEntity:
            name = "bad-entity"
            kind = "container"

            def describe(self):
                return "container:bad-entity"

            def filesystem(self):
                raise RuntimeError("containerd gone")

            def package_db(self):
                return None

        validator = load_builtin_validator()
        scanner = BatchScanner(validator)
        try:
            with pytest.raises(ScanStageError) as excinfo:
                scanner.scan_entities([ExplodingEntity()])
        finally:
            validator.close()
        assert excinfo.value.stage == "crawl"

    def test_history_row_carries_stage_and_frame(self):
        with HistoryStore() as store:
            store.record_scan_error("RuntimeError: crawl died",
                                    stage="crawl",
                                    frame="container:web-1")
            row = store.cycles()[0]
        assert row.scan_error_stage == "crawl"
        assert row.scan_error_frame == "container:web-1"
        doc = row.to_dict()
        assert doc["scan_error_stage"] == "crawl"
        assert doc["scan_error_frame"] == "container:web-1"


# ---------------------------------------------------------------------------
# Monitor SIGTERM (subprocess; unix only)


@pytest.mark.skipif(not hasattr(signal, "SIGTERM") or os.name == "nt",
                    reason="POSIX signals required")
def test_monitor_sigterm_graceful(tmp_path):
    db = tmp_path / "history.sqlite"
    events = tmp_path / "events.ndjson"
    env = dict(os.environ)
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, "src"))
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "monitor",
         "--scenario", "host", "--size", "1", "--interval", "60",
         "--history-db", str(db), "--events-out", str(events)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        text=True,
    )
    try:
        deadline = time.time() + 60
        # Wait for the first cycle to land before signalling.
        while time.time() < deadline:
            if db.exists():
                try:
                    with HistoryStore(str(db)) as store:
                        if store.cycles():
                            break
                except sqlite3.Error:
                    pass
            time.sleep(0.2)
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, stderr
    assert "SIGTERM received" in stderr
    assert "monitor:" in stdout  # final stats flushed
    with HistoryStore(str(db)) as store:
        assert store.cycles()  # history intact after shutdown


# ---------------------------------------------------------------------------
# Never-hang property


@st.composite
def small_plans(draw):
    sites = draw(st.lists(
        st.sampled_from(("fs.read", "lens.parse", "rule.eval")),
        min_size=1, max_size=3, unique=True))
    rules = tuple(
        FaultRule(site=site,
                  probability=draw(st.floats(min_value=0.0, max_value=1.0)),
                  count=draw(st.integers(min_value=0, max_value=4)))
        for site in sites
    )
    return FaultPlan(name="prop", seed=draw(st.integers(0, 2 ** 16)),
                     rules=rules)


class TestNeverHang:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(plan=small_plans())
    def test_cycle_terminates_and_accounts(self, plan, host_frame):
        frame = host_frame
        arm_plan(plan, export_env=False)
        validator = load_builtin_validator()
        try:
            report = validator.validate_frame(frame)
        finally:
            validator.close()
            disarm()
        assert len(report) > 0
        degradation = report.degradation
        assert degradation is not None
        assert degradation.total_absorbed == degradation.total_injected


# ---------------------------------------------------------------------------
# Reporting surfaces


class TestDegradationReporting:
    def test_junit_degraded_property(self, host_frame):
        from repro.engine.report import render_junit

        arm_plan(_plan({"site": "fs.read"}))
        validator = load_builtin_validator()
        try:
            report = validator.validate_frame(host_frame)
        finally:
            validator.close()
            disarm()
        xml = render_junit(report)
        assert '<property name="degraded" value="true"/>' in xml

    def test_stats_render_and_dict_round_trip(self):
        account = fabric().account
        before = account.snapshot()
        account.note_injected("fs.read", "/etc/x")
        account.note_absorbed("fs.read")
        account.note_frame_quarantined()
        stats = DegradationStats.from_delta(account.delta_since(before),
                                            plan="unit")
        assert stats.degraded
        assert stats.total_injected == 1 == stats.total_absorbed
        doc = stats.to_dict()
        assert doc["plan"] == "unit"
        assert doc["frames_quarantined"] == 1
        assert "degradation:" in stats.render()
