"""Tests for the composite-rule expression language."""

import pytest

from repro.errors import CompositeExpressionError
from repro.cvl.composite_expr import (
    BoolOp,
    Comparison,
    DictContext,
    Not,
    Reference,
    evaluate_composite,
    parse_composite,
    referenced_entities,
)

PAPER_EXPR = (
    'mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" '
    "&& sysctl.net.ipv4.ip_forward && nginx.listen"
)


class TestParsing:
    def test_paper_listing1_expression(self):
        ast = parse_composite(PAPER_EXPR)
        assert isinstance(ast, BoolOp) and ast.op == "&&"
        comparison, sysctl_ref, nginx_ref = ast.children
        assert isinstance(comparison, Comparison)
        assert comparison.reference == Reference(
            entity="mysql",
            config="ssl-ca",
            config_path="mysqld",
            want_value=True,
        )
        assert comparison.literal == "/etc/mysql/cacert.pem"
        assert sysctl_ref == Reference("sysctl", "net.ipv4.ip_forward")
        assert nginx_ref == Reference("nginx", "listen")

    def test_dotted_config_belongs_to_first_entity_segment(self):
        ref = parse_composite("sysctl.net.ipv4.ip_forward")
        assert ref.entity == "sysctl"
        assert ref.config == "net.ipv4.ip_forward"

    def test_or_and_precedence(self):
        ast = parse_composite("a.x && b.y || c.z")
        assert isinstance(ast, BoolOp) and ast.op == "||"
        assert isinstance(ast.children[0], BoolOp)
        assert ast.children[0].op == "&&"

    def test_parentheses_override_precedence(self):
        ast = parse_composite("a.x && (b.y || c.z)")
        assert ast.op == "&&"
        assert isinstance(ast.children[1], BoolOp)
        assert ast.children[1].op == "||"

    def test_negation(self):
        ast = parse_composite("!a.x")
        assert isinstance(ast, Not)

    def test_not_equal_comparison(self):
        ast = parse_composite('a.key.VALUE != "bad"')
        assert isinstance(ast, Comparison) and ast.op == "!="

    def test_value_without_comparison(self):
        ast = parse_composite("a.key.VALUE")
        assert isinstance(ast, Reference) and ast.want_value

    def test_referenced_entities(self):
        assert referenced_entities(PAPER_EXPR) == {"mysql", "sysctl", "nginx"}

    def test_parse_cached(self):
        assert parse_composite("a.b") is parse_composite("a.b")

    def test_configpath_with_slashes(self):
        ref = parse_composite("nginx.listen.CONFIGPATH=[http/server]")
        assert ref.config_path == "http/server"

    def test_errors(self):
        for bad in [
            "",
            "&& a.b",
            "a.b &&",
            "(a.b",
            "justentity",
            'a.b == ',
            "a.b.CONFIGPATH=[open",
            'a.b == "unterminated',
        ]:
            with pytest.raises(CompositeExpressionError):
                parse_composite(bad)


class TestEvaluation:
    def _context(self, **overrides):
        context = DictContext(
            verdicts={("sysctl", "net.ipv4.ip_forward"): True},
            values={
                ("mysql", "mysqld", "ssl-ca"): "/etc/mysql/cacert.pem",
                ("nginx", "", "listen"): "443 ssl",
            },
        )
        context.verdicts.update(overrides.get("verdicts", {}))
        context.values.update(overrides.get("values", {}))
        return context

    def test_paper_expression_passes(self):
        result = evaluate_composite(PAPER_EXPR, self._context())
        assert result.passed
        assert len(result.term_results) == 3
        assert result.failed_terms() == []

    def test_wrong_certificate_path_fails(self):
        context = self._context(
            values={("mysql", "mysqld", "ssl-ca"): "/tmp/evil.pem"}
        )
        result = evaluate_composite(PAPER_EXPR, context)
        assert not result.passed
        assert len(result.failed_terms()) == 1

    def test_noncompliant_per_entity_rule_fails_term(self):
        context = self._context(
            verdicts={("sysctl", "net.ipv4.ip_forward"): False}
        )
        assert not evaluate_composite(PAPER_EXPR, context).passed

    def test_bare_reference_falls_back_to_presence(self):
        # nginx.listen has no per-entity rule; presence of the value wins.
        context = self._context()
        del context.values[("nginx", "", "listen")]
        assert not evaluate_composite(PAPER_EXPR, context).passed

    def test_absent_value_fails_both_comparisons(self):
        context = DictContext()
        assert not evaluate_composite('a.k.VALUE == "x"', context).passed
        assert not evaluate_composite('a.k.VALUE != "x"', context).passed

    def test_value_truthiness(self):
        truthy = DictContext(values={("a", "", "k"): "enabled"})
        falsy = DictContext(values={("a", "", "k"): "0"})
        assert evaluate_composite("a.k.VALUE", truthy).passed
        assert not evaluate_composite("a.k.VALUE", falsy).passed

    def test_or_shortcut(self):
        context = DictContext(values={("a", "", "x"): "1"})
        assert evaluate_composite("a.x || b.y", context).passed

    def test_negation_evaluation(self):
        context = DictContext()
        assert evaluate_composite("!a.gone", context).passed

    def test_term_results_render_readably(self):
        result = evaluate_composite(PAPER_EXPR, self._context())
        rendered = [term for term, _ok in result.term_results]
        assert (
            'mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem"'
            in rendered
        )
