"""Property-based tests for the composite expression language.

Strategy: generate random expression ASTs, render them to the concrete
syntax, re-parse, and check that evaluation agrees with direct AST
evaluation under random contexts -- a full round-trip of the grammar.
"""

from hypothesis import given, strategies as st

from repro.cvl.composite_expr import (
    BoolOp,
    Comparison,
    DictContext,
    Not,
    Reference,
    evaluate_composite,
    parse_composite,
)

_entities = st.sampled_from(["mysql", "nginx", "sysctl", "docker"])
_configs = st.sampled_from(
    ["ssl-ca", "listen", "net.ipv4.ip_forward", "user", "icc"]
)
_paths = st.sampled_from([None, "mysqld", "http/server"])
_literals = st.sampled_from(["on", "off", "/etc/mysql/cacert.pem", "0"])


@st.composite
def _references(draw):
    return Reference(
        entity=draw(_entities),
        config=draw(_configs),
        config_path=draw(_paths),
        want_value=draw(st.booleans()),
    )


@st.composite
def _terms(draw):
    reference = draw(_references())
    if draw(st.booleans()):
        # Comparisons require .VALUE semantics on the lookup side but the
        # renderer/parser treat the reference itself uniformly.
        return Comparison(
            reference=reference,
            op=draw(st.sampled_from(["==", "!="])),
            literal=draw(_literals),
        )
    return reference


def _expressions(depth: int = 2):
    if depth == 0:
        return _terms()
    sub = _expressions(depth - 1)
    return st.one_of(
        _terms(),
        st.builds(Not, sub),
        st.builds(
            lambda a, b, op: BoolOp(op, (a, b)),
            sub,
            sub,
            st.sampled_from(["&&", "||"]),
        ),
    )


@st.composite
def _contexts(draw):
    verdicts = {}
    values = {}
    for entity in ["mysql", "nginx", "sysctl", "docker"]:
        for config in ["ssl-ca", "listen", "net.ipv4.ip_forward", "user", "icc"]:
            if draw(st.booleans()):
                verdicts[(entity, config)] = draw(st.booleans())
            for path in ["", "mysqld", "http/server"]:
                if draw(st.integers(min_value=0, max_value=3)) == 0:
                    values[(entity, path, config)] = draw(_literals)
    return DictContext(verdicts=verdicts, values=values)


class TestRoundTrip:
    @given(ast=_expressions())
    def test_render_parse_roundtrip_structure(self, ast):
        reparsed = parse_composite(ast.render())
        assert reparsed.render() == ast.render()

    @given(ast=_expressions(), context=_contexts())
    def test_render_parse_preserves_truth(self, ast, context):
        rendered = ast.render()
        direct = ast.truth(context)
        via_text = evaluate_composite(rendered, context).passed
        assert direct == via_text

    @given(ast=_expressions(), context=_contexts())
    def test_double_negation(self, ast, context):
        negated_twice = Not(Not(ast))
        assert negated_twice.truth(context) == ast.truth(context)

    @given(a=_terms(), b=_terms(), context=_contexts())
    def test_de_morgan(self, a, b, context):
        left = Not(BoolOp("&&", (a, b))).truth(context)
        right = BoolOp("||", (Not(a), Not(b))).truth(context)
        assert left == right

    @given(ast=_expressions(), context=_contexts())
    def test_term_results_cover_every_leaf(self, ast, context):
        result = evaluate_composite(ast.render(), context)
        leaves = ast.render().count("==") + ast.render().count("!=")
        assert len(result.term_results) >= max(1, leaves)
