"""Tests for the simulated cloud control plane."""

import pytest

from repro.errors import CloudAPIError
from repro.crawler.cloud_sim import (
    CloudControlPlane,
    CloudUser,
    Instance,
    SecurityGroup,
    SecurityGroupRule,
)


@pytest.fixture()
def cloud():
    plane = CloudControlPlane()
    project = plane.create_project("web")
    group = SecurityGroup("mgmt")
    group.add_rule(
        SecurityGroupRule(protocol="tcp", port_min=22, port_max=22,
                          remote_cidr="10.0.0.0/8")
    )
    project.add_security_group(group)
    project.add_instance(Instance("frontend", security_groups=["mgmt"],
                                  key_name="ops"))
    project.add_user(CloudUser("alice", roles=["admin"], mfa_enabled=True))
    return plane


class TestResourceModel:
    def test_rule_world_open(self):
        assert SecurityGroupRule(remote_cidr="0.0.0.0/0").world_open
        assert SecurityGroupRule(remote_cidr="::/0").world_open
        assert not SecurityGroupRule(remote_cidr="10.0.0.0/8").world_open

    def test_rule_port_coverage(self):
        rule = SecurityGroupRule(port_min=20, port_max=25)
        assert rule.covers_port(22)
        assert not rule.covers_port(80)

    def test_duplicate_project_rejected(self, cloud):
        with pytest.raises(CloudAPIError):
            cloud.create_project("web")

    def test_unknown_project_rejected(self, cloud):
        with pytest.raises(CloudAPIError):
            cloud.project("ghost")

    def test_resource_ids_unique(self):
        assert Instance("a").instance_id != Instance("b").instance_id


class TestApi:
    def test_root_listing(self, cloud):
        assert cloud.get("/")["projects"] == ["web"]

    def test_project_summary(self, cloud):
        summary = cloud.get("/projects/web")
        assert summary["instances"] == ["frontend"]
        assert summary["security_groups"] == ["mgmt"]

    def test_collection_listing(self, cloud):
        groups = cloud.get("/projects/web/security-groups")
        assert groups[0]["name"] == "mgmt"
        assert groups[0]["security_group_rules"][0]["port_range_min"] == 22

    def test_single_resource(self, cloud):
        instance = cloud.get("/projects/web/instances/frontend")
        assert instance["key_name"] == "ops"
        assert instance["security_groups"] == [{"name": "mgmt"}]

    def test_users_collection(self, cloud):
        users = cloud.get("/projects/web/users")
        assert users[0]["mfa_enabled"] is True

    def test_unknown_collection_rejected(self, cloud):
        with pytest.raises(CloudAPIError):
            cloud.get("/projects/web/volumes")

    def test_unknown_resource_rejected(self, cloud):
        with pytest.raises(CloudAPIError):
            cloud.get("/projects/web/instances/ghost")

    def test_unknown_root_rejected(self, cloud):
        with pytest.raises(CloudAPIError):
            cloud.get("/flavors")
