"""Differential testing of incremental revalidation.

The contract (ISSUE 3): a validator running with a persistent
:class:`~repro.engine.incremental.VerdictStore` must render reports
**byte-identical** to a fresh full validator, at every worker count,
across scan cycles that mutate frames arbitrarily -- file content,
permissions, file adds/removes, package installs/removals, runtime-state
keys.  Incremental is a pure optimization or it is nothing.

Frames are rebuilt from serialized blobs each cycle (as a real scan
pipeline re-crawls entities each cycle); cumulative mutation scripts are
replayed onto the fresh frames so every cycle sees new frame objects
with fresh fingerprint memos.
"""

import random

import pytest

from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.crawler.serialize import dump_frame, load_frame
from repro.engine import VerdictStore, render_json, render_text
from repro.engine.results import Outcome
from repro.fs.packages import Package
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity

WORKER_COUNTS = (1, 8)


# ---------------------------------------------------------------------------
# Fleet construction and mutation machinery
# ---------------------------------------------------------------------------

def _crawl_fleet(seed: int = 11) -> list:
    _daemon, images, containers = build_fleet(
        FleetSpec(images=3, containers_per_image=2, misconfig_rate=0.4,
                  seed=seed)
    )
    entities = [DockerImageEntity(i) for i in images]
    entities += [ContainerEntity(c) for c in containers]
    # Hosts exercise the composite rules (cross-entity references).
    hosts = [
        ubuntu_host_entity(f"inc-host-{i}", hardening=0.5, seed=i,
                           with_nginx=True, with_mysql=True)
        for i in range(2)
    ]
    return Crawler().crawl_many(entities + hosts)


@pytest.fixture(scope="module")
def base_blobs():
    """Serialized fleet snapshots -- the immutable cycle-0 baseline."""
    return [dump_frame(frame) for frame in _crawl_fleet()]


def _etc_files(frame) -> list[str]:
    paths = []
    for dirpath, _dirs, filenames in frame.files.walk("/etc"):
        for name in filenames:
            paths.append(f"{dirpath.rstrip('/')}/{name}")
    return sorted(paths)


def _apply(frame, op) -> None:
    """Apply one concrete mutation op to a freshly rebuilt frame."""
    kind = op[0]
    if kind == "content":
        _, path, suffix = op
        if frame.files.exists(path):
            frame.files.write_file(path,
                                   frame.files.read_text(path) + suffix)
    elif kind == "chmod":
        _, path, mode = op
        if frame.files.exists(path):
            frame.files.chmod(path, mode)
    elif kind == "add":
        _, path, content = op
        frame.files.write_file(path, content)
    elif kind == "remove":
        _, path = op
        if frame.files.exists(path):
            frame.files.remove(path)
    elif kind == "pkg_add":
        _, name, version = op
        frame.packages.install(Package(name=name, version=version))
    elif kind == "pkg_remove":
        _, name = op
        frame.packages.remove(name)
    elif kind == "runtime":
        _, namespace, key, value = op
        frame.runtime.setdefault(namespace, {})[key] = value


def _gen_ops(rng: random.Random, frames, counter: int) -> list[tuple[int, tuple]]:
    """A batch of random (frame_index, op) mutations against current state."""
    ops: list[tuple[int, tuple]] = []
    for n in range(rng.randint(1, 4)):
        index = rng.randrange(len(frames))
        frame = frames[index]
        files = _etc_files(frame)
        kind = rng.choice(
            ["content", "chmod", "add", "remove",
             "pkg_add", "pkg_remove", "runtime"]
        )
        tag = f"{counter}-{n}"
        if kind == "content" and files:
            ops.append((index, ("content", rng.choice(files),
                                f"\n# mutation {tag}\n")))
        elif kind == "chmod" and files:
            ops.append((index, ("chmod", rng.choice(files),
                                rng.choice([0o600, 0o640, 0o644, 0o755,
                                            0o777]))))
        elif kind == "add":
            ops.append((index, ("add", f"/etc/ssh/mut_{tag}.conf",
                                f"# added {tag}\nPort 22\n")))
        elif kind == "remove" and files:
            ops.append((index, ("remove", rng.choice(files))))
        elif kind == "pkg_add":
            ops.append((index, ("pkg_add", f"mut-pkg-{tag}", "1.0")))
        elif kind == "pkg_remove":
            names = frame.packages.names()
            if names:
                ops.append((index, ("pkg_remove", rng.choice(names))))
        elif kind == "runtime":
            ops.append((index, ("runtime", "sshd", f"mut_{tag}", "yes")))
    return ops


def _rebuild(blobs, script) -> list:
    """Fresh frames from the baseline blobs with the cumulative script."""
    frames = [load_frame(blob) for blob in blobs]
    for index, op in script:
        _apply(frames[index], op)
    return frames


def _render_pair(report) -> tuple[str, str]:
    return render_text(report, verbose=True), render_json(report)


# ---------------------------------------------------------------------------
# Differential suite
# ---------------------------------------------------------------------------

class TestUnchangedFleet:
    def test_second_cycle_replays_everything(self, base_blobs):
        store = VerdictStore()
        frames = _rebuild(base_blobs, [])
        first = load_builtin_validator(verdict_store=store)
        first.validate_frames(frames, workers=1)

        frames = _rebuild(base_blobs, [])
        second = load_builtin_validator(verdict_store=store)
        report = second.validate_frames(frames, workers=1)

        stats = report.incremental
        assert stats is not None and stats.active
        assert stats.rules_evaluated == 0
        assert stats.composites_evaluated == 0
        assert stats.frames_dirty == 0
        assert stats.frames_clean == len(frames)
        assert stats.rules_replayed > 0

    def test_replay_byte_identical(self, base_blobs):
        frames = _rebuild(base_blobs, [])
        reference = _render_pair(
            load_builtin_validator().validate_frames(frames, workers=1)
        )
        store = VerdictStore()
        for workers in WORKER_COUNTS:
            frames = _rebuild(base_blobs, [])
            validator = load_builtin_validator(verdict_store=store)
            report = validator.validate_frames(frames, workers=workers)
            assert _render_pair(report) == reference


class TestRandomizedMutations:
    @pytest.mark.parametrize("seed", [3, 17])
    def test_incremental_matches_full_across_cycles(self, base_blobs, seed):
        rng = random.Random(seed)
        store = VerdictStore()
        script: list[tuple[int, tuple]] = []
        for cycle in range(4):
            frames = _rebuild(base_blobs, script)
            reference = _render_pair(
                load_builtin_validator().validate_frames(frames, workers=1)
            )
            for workers in WORKER_COUNTS:
                validator = load_builtin_validator(verdict_store=store)
                report = validator.validate_frames(frames, workers=workers)
                assert _render_pair(report) == reference, (
                    f"cycle {cycle}, workers {workers}: incremental report "
                    f"diverged from full validation"
                )
            script.extend(_gen_ops(rng, frames, cycle))

    def test_mutated_cycle_skips_clean_frames(self, base_blobs):
        store = VerdictStore()
        frames = _rebuild(base_blobs, [])
        load_builtin_validator(verdict_store=store).validate_frames(
            frames, workers=1
        )
        # Touch exactly one frame's sshd config.
        target = next(
            i for i, frame in enumerate(frames)
            if frame.files.exists("/etc/ssh/sshd_config")
        )
        script = [(target,
                   ("content", "/etc/ssh/sshd_config", "\n# touched\n"))]
        frames = _rebuild(base_blobs, script)
        report = load_builtin_validator(verdict_store=store).validate_frames(
            frames, workers=1
        )
        stats = report.incremental
        assert stats.frames_dirty == 1
        assert stats.frames_clean == len(frames) - 1
        assert 0 < stats.rules_evaluated < stats.rules_replayed


class TestCompositeInvalidation:
    def test_composite_reruns_when_referenced_rule_dirty(self, base_blobs):
        store = VerdictStore()
        frames = _rebuild(base_blobs, [])
        first = load_builtin_validator(verdict_store=store).validate_frames(
            frames, workers=1
        )
        composites = [r for r in first if r.outcome is Outcome.COMPOSITE]
        assert composites, "fleet must exercise composite rules"

        # Cycle 2 unchanged: composite replays.
        frames = _rebuild(base_blobs, [])
        clean = load_builtin_validator(verdict_store=store).validate_frames(
            frames, workers=1
        )
        assert clean.incremental.composites_evaluated == 0
        assert clean.incremental.composites_replayed == len(composites)

        # Dirty a host's sysctl state (composites reference sysctl rules):
        # the composite must be recomputed, not replayed.
        host_index = next(
            i for i, frame in enumerate(frames)
            if frame.entity_kind == "host"
        )
        script = [(host_index,
                   ("content", "/etc/sysctl.conf",
                    "\nnet.ipv4.ip_forward = 1\n"))]
        frames = _rebuild(base_blobs, script)
        reference = _render_pair(
            load_builtin_validator().validate_frames(frames, workers=1)
        )
        report = load_builtin_validator(verdict_store=store).validate_frames(
            frames, workers=1
        )
        assert _render_pair(report) == reference
        assert report.incremental.composites_evaluated == len(composites)
        assert report.incremental.composites_replayed == 0


class TestPersistence:
    def test_save_load_roundtrip_replays(self, base_blobs, tmp_path):
        state_dir = str(tmp_path / "state")
        store = VerdictStore()
        frames = _rebuild(base_blobs, [])
        reference = _render_pair(
            load_builtin_validator(verdict_store=store).validate_frames(
                frames, workers=1
            )
        )
        store.save(state_dir)

        reloaded = VerdictStore.load(state_dir)
        frames = _rebuild(base_blobs, [])
        report = load_builtin_validator(
            verdict_store=reloaded
        ).validate_frames(frames, workers=1)
        assert _render_pair(report) == reference
        stats = report.incremental
        assert stats.rules_evaluated == 0
        assert stats.composites_evaluated == 0

    def test_corrupt_state_degrades_to_cold_store(self, base_blobs, tmp_path):
        state_dir = tmp_path / "state"
        state_dir.mkdir()
        (state_dir / "verdicts.json").write_text("{not json")
        store = VerdictStore.load(str(state_dir))
        frames = _rebuild(base_blobs, [])
        report = load_builtin_validator(verdict_store=store).validate_frames(
            frames, workers=1
        )
        stats = report.incremental
        assert stats.rules_replayed == 0
        assert stats.rules_evaluated > 0

    def test_missing_state_dir_is_cold_store(self, tmp_path):
        store = VerdictStore.load(str(tmp_path / "nope"))
        assert store.stats().entries == 0


class TestRulesetInvalidation:
    MANIFEST = "svc: {config_search_paths: [/etc/svc], cvl_file: svc.yaml}"

    def _validator(self, rules_text, store):
        from repro.engine import ConfigValidator

        validator = ConfigValidator(
            resolver=lambda _path: rules_text, verdict_store=store
        )
        validator.add_manifest_text(self.MANIFEST)
        return validator

    def _frame(self):
        return load_frame(dump_frame(_make_svc_frame()))

    def test_rule_change_invalidates_entity_entries(self):
        store = VerdictStore()
        frame = self._frame()
        rules_v1 = 'config_name: Port\npreferred_value: ["22"]\n'
        self._validator(rules_v1, store).validate_frames([frame], workers=1)

        rules_v2 = 'config_name: Port\npreferred_value: ["2222"]\n'
        frame = self._frame()
        report = self._validator(rules_v2, store).validate_frames(
            [frame], workers=1
        )
        stats = report.incremental
        assert stats.rules_replayed == 0
        assert stats.rules_evaluated == 1
        # And the verdict reflects the new pack, not the cached one.
        fresh = self._validator(rules_v2, VerdictStore()).validate_frames(
            [self._frame()], workers=1
        )
        assert _render_pair(report) == _render_pair(fresh)

    def test_unchanged_ruleset_replays(self):
        store = VerdictStore()
        rules = 'config_name: Port\npreferred_value: ["22"]\n'
        self._validator(rules, store).validate_frames(
            [self._frame()], workers=1
        )
        report = self._validator(rules, store).validate_frames(
            [self._frame()], workers=1
        )
        assert report.incremental.rules_replayed == 1
        assert report.incremental.rules_evaluated == 0


class TestDuplicateIdentities:
    def test_duplicate_frames_disable_incremental(self, base_blobs):
        store = VerdictStore()
        frame_a = load_frame(base_blobs[0])
        frame_b = load_frame(base_blobs[0])
        report = load_builtin_validator(verdict_store=store).validate_frames(
            [frame_a, frame_b], workers=1
        )
        stats = report.incremental
        assert stats is not None and not stats.active
        assert stats.reason
        # The run is still a valid full validation.
        reference = load_builtin_validator().validate_frames(
            [load_frame(base_blobs[0]), load_frame(base_blobs[0])], workers=1
        )
        assert _render_pair(report) == _render_pair(reference)


def _make_svc_frame():
    from repro.crawler.frame import ConfigFrame
    from repro.fs.packages import PackageDatabase
    from repro.fs.vfs import VirtualFilesystem

    fs = VirtualFilesystem()
    fs.write_file("/etc/svc/svc.conf", "Port 22\n")
    return ConfigFrame(
        entity_name="svc-host",
        entity_kind="host",
        files=fs,
        packages=PackageDatabase([]),
        runtime={},
        metadata={},
    )
