"""Tests for frame serialization, drift analysis, and authoring tools."""

import json

import pytest

from repro.errors import CrawlerError, ReproError
from repro.crawler import Crawler, HostEntity
from repro.crawler.serialize import (
    dump_frame,
    frame_from_dict,
    frame_to_dict,
    load_frame,
)
from repro.engine.drift import diff_reports, render_drift
from repro.engine.results import Verdict
from repro.fs import VirtualFilesystem
from repro.authoring import (
    lint_validator,
    render_findings,
    render_rules_yaml,
    scaffold_rules,
)
from repro.cvl import load_rules
from repro.rules import load_builtin_validator
from repro.workloads import ubuntu_host_entity
from repro.workloads.hosts import nginx_conf


class TestFrameSerialization:
    def test_roundtrip_preserves_files_and_metadata(self, crawler):
        frame = crawler.crawl(ubuntu_host_entity("ser-host", hardening=1.0))
        restored = load_frame(dump_frame(frame))
        assert restored.entity_name == "ser-host"
        assert restored.read_config("/etc/ssh/sshd_config") == frame.read_config(
            "/etc/ssh/sshd_config"
        )
        assert restored.stat("/etc/ssh/sshd_config").mode == 0o600
        assert restored.runtime == frame.runtime
        assert restored.packages.installed("openssh-server")

    def test_roundtrip_verdicts_identical(self, crawler, validator):
        frame = crawler.crawl(
            ubuntu_host_entity("ser2", hardening=0.4, seed=6)
        )
        restored = load_frame(dump_frame(frame))
        before = [r.verdict for r in validator.validate_frame(frame)]
        after = [r.verdict for r in validator.validate_frame(restored)]
        assert before == after

    def test_document_is_plain_json(self, crawler):
        frame = crawler.crawl(ubuntu_host_entity("ser3"))
        document = json.loads(dump_frame(frame, indent=2))
        assert document["format"] == 1
        assert any(r["path"] == "/etc/fstab" for r in document["files"])

    def test_unknown_format_rejected(self):
        with pytest.raises(CrawlerError):
            frame_from_dict({"format": 99})

    def test_invalid_json_rejected(self):
        with pytest.raises(CrawlerError):
            load_frame("{nope")
        with pytest.raises(CrawlerError):
            load_frame("[1, 2]")

    def test_empty_frame_roundtrip(self):
        frame = Crawler().crawl(
            HostEntity("empty", VirtualFilesystem()), features=("files",)
        )
        restored = frame_from_dict(frame_to_dict(frame))
        assert restored.files.listdir("/") == []


class TestDrift:
    def _reports(self, validator, crawler, before_hardening, after_hardening):
        frame_a = crawler.crawl(
            ubuntu_host_entity("drift", hardening=before_hardening, seed=9)
        )
        frame_b = crawler.crawl(
            ubuntu_host_entity("drift", hardening=after_hardening, seed=9)
        )
        return (
            validator.validate_frame(frame_a),
            validator.validate_frame(frame_b),
        )

    def test_no_drift_between_identical_runs(self, validator, crawler):
        before, after = self._reports(validator, crawler, 1.0, 1.0)
        drift = diff_reports(before, after)
        assert len(drift) == 0 and drift.clean

    def test_regressions_detected(self, validator, crawler):
        before, after = self._reports(validator, crawler, 1.0, 0.5)
        drift = diff_reports(before, after)
        assert drift.regressions()
        assert not drift.clean
        assert all(
            entry.after is Verdict.NONCOMPLIANT for entry in drift.regressions()
        )

    def test_fixes_detected(self, validator, crawler):
        before, after = self._reports(validator, crawler, 0.5, 1.0)
        drift = diff_reports(before, after)
        assert drift.fixes() and drift.clean

    def test_appeared_and_disappeared(self, validator, crawler):
        frame_bare = crawler.crawl(ubuntu_host_entity("d2", hardening=1.0))
        frame_nginx = crawler.crawl(
            ubuntu_host_entity("d2", hardening=1.0, with_nginx=True)
        )
        drift = diff_reports(
            validator.validate_frame(frame_bare),
            validator.validate_frame(frame_nginx),
        )
        assert any(e.entity == "nginx" for e in drift.appeared())
        reverse = diff_reports(
            validator.validate_frame(frame_nginx),
            validator.validate_frame(frame_bare),
        )
        assert any(e.entity == "nginx" for e in reverse.disappeared())

    def test_render_drift(self, validator, crawler):
        before, after = self._reports(validator, crawler, 1.0, 0.3)
        text = render_drift(diff_reports(before, after))
        assert "[REGRESSED]" in text
        assert "# drift:" in text


class TestScaffold:
    def test_scaffold_from_nginx(self):
        rules = scaffold_rules(nginx_conf(hardened=True), "/etc/nginx/nginx.conf")
        by_name = {rule.name: rule for rule in rules}
        assert by_name["ssl_protocols"].preferred_value == ["TLSv1.2 TLSv1.3"]
        assert by_name["ssl_protocols"].config_path == ["http/server"]
        assert all(rule.has_tag("generated") for rule in rules)

    def test_scaffolded_profile_passes_its_source(self, crawler):
        from repro.cvl import Manifest, RuleSet
        from repro.engine import ConfigValidator

        config = nginx_conf(hardened=True)
        rules = scaffold_rules(config, "/etc/nginx/nginx.conf")
        validator = ConfigValidator()
        validator.add_ruleset(
            Manifest(entity="nginx", cvl_file="<scaffold>",
                     config_search_paths=["/etc/nginx"]),
            RuleSet(entity="nginx", rules=list(rules)),
        )
        fs = VirtualFilesystem()
        fs.write_file("/etc/nginx/nginx.conf", config)
        report = validator.validate_entity(HostEntity("golden", fs))
        assert report.compliant

    def test_scaffolded_profile_flags_drifted_copy(self, crawler):
        from repro.cvl import Manifest, RuleSet
        from repro.engine import ConfigValidator

        rules = scaffold_rules(
            nginx_conf(hardened=True), "/etc/nginx/nginx.conf"
        )
        validator = ConfigValidator()
        validator.add_ruleset(
            Manifest(entity="nginx", cvl_file="<scaffold>",
                     config_search_paths=["/etc/nginx"]),
            RuleSet(entity="nginx", rules=list(rules)),
        )
        fs = VirtualFilesystem()
        fs.write_file("/etc/nginx/nginx.conf", nginx_conf(hardened=False))
        report = validator.validate_entity(HostEntity("drifted", fs))
        assert report.failed()

    def test_rendered_yaml_reloads(self):
        rules = scaffold_rules(nginx_conf(hardened=True), "/etc/nginx/nginx.conf")
        text = render_rules_yaml(rules)
        reloaded = load_rules(text, "generated.yaml")
        assert len(reloaded.rules) == len(rules)

    def test_max_rules_cap(self):
        rules = scaffold_rules(
            nginx_conf(hardened=True), "/etc/nginx/nginx.conf", max_rules=3
        )
        assert len(rules) == 3

    def test_unknown_file_needs_explicit_lens(self):
        with pytest.raises(ReproError):
            scaffold_rules("k = v\n", "/opt/mystery")


class TestLint:
    def test_shipped_packs_are_clean(self):
        findings = lint_validator(load_builtin_validator())
        assert not [f for f in findings if f.level in ("error", "warning")], [
            f.render() for f in findings if f.level != "info"
        ]

    def _validator_with(self, rule_yaml, manifest_yaml=None):
        from repro.engine import ConfigValidator

        validator = ConfigValidator(resolver=lambda _path: rule_yaml)
        validator.add_manifest_text(
            manifest_yaml or "pack: {config_search_paths: [/etc], cvl_file: pack.yaml}"
        )
        return validator

    def test_missing_output_flagged(self):
        findings = lint_validator(
            self._validator_with(
                "config_name: k\npreferred_value: ['1']\ntags: ['#x']\n"
            )
        )
        assert any(f.code == "missing-output" for f in findings)

    def test_missing_tags_flagged(self):
        findings = lint_validator(
            self._validator_with(
                "config_name: k\nmatched_description: m\n"
                "not_present_description: n\n"
            )
        )
        assert any(f.code == "missing-tags" for f in findings)

    def test_duplicate_name_is_error(self):
        findings = lint_validator(
            self._validator_with(
                "config_name: k\ntags: ['#x']\nmatched_description: m\n"
                "not_present_description: n\n"
                "---\n"
                "config_name: k\ntags: ['#x']\nmatched_description: m\n"
                "not_present_description: n\n"
            )
        )
        assert any(
            f.code == "duplicate-name" and f.level == "error" for f in findings
        )

    def test_dangling_composite_is_error(self):
        findings = lint_validator(
            self._validator_with(
                "composite_rule_name: c\ncomposite_rule: ghost.key\n"
                "tags: ['#x']\n"
            )
        )
        assert any(f.code == "dangling-composite" for f in findings)

    def test_unknown_plugin_is_error(self):
        findings = lint_validator(
            self._validator_with(
                "script_name: s\nscript: 'nosuch key'\ntags: ['#x']\n"
                "matched_description: m\nnot_present_description: n\n"
                "preferred_value: ['1']\n"
                "not_matched_preferred_value_description: b\n"
            )
        )
        assert any(f.code == "unknown-plugin" for f in findings)

    def test_unknown_lens_is_error(self):
        findings = lint_validator(
            self._validator_with(
                "config_name: k\nlens: klingon\ntags: ['#x']\n"
                "matched_description: m\nnot_present_description: n\n"
            )
        )
        assert any(f.code == "unknown-lens" for f in findings)

    def test_render_findings_sorted_and_tallied(self):
        findings = lint_validator(
            self._validator_with("config_name: k\n")
        )
        text = render_findings(findings)
        assert "# " in text and "error(s)" in text


class TestScaffoldOtherFormats:
    def test_scaffold_from_ini(self):
        rules = scaffold_rules(
            "[mysqld]\nbind-address = 127.0.0.1\nlocal-infile = 0\n",
            "/etc/mysql/my.cnf",
        )
        by_name = {rule.name: rule for rule in rules}
        assert by_name["bind-address"].config_path == ["mysqld"]
        assert by_name["bind-address"].preferred_value == ["127.0.0.1"]

    def test_scaffold_from_sshd(self):
        rules = scaffold_rules(
            "PermitRootLogin no\nPort 22\n", "/etc/ssh/sshd_config"
        )
        by_name = {rule.name: rule for rule in rules}
        assert by_name["PermitRootLogin"].preferred_value == ["no"]
        assert by_name["PermitRootLogin"].config_path == [""]

    def test_repeated_values_collapse(self):
        rules = scaffold_rules(
            "http { server { listen 80; } server { listen 80; } }",
            "/etc/nginx/nginx.conf",
        )
        listen = [rule for rule in rules if rule.name == "listen"][0]
        assert listen.preferred_value == ["80"]

    def test_scaffold_from_json(self):
        rules = scaffold_rules(
            '{"icc": false, "log-driver": "syslog"}',
            "/etc/docker/daemon.json",
        )
        by_name = {rule.name: rule for rule in rules}
        assert by_name["icc"].preferred_value == ["false"]
