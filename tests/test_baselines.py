"""Tests for the baseline engines and the cross-engine agreement property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BaselineError, XCCDFError
from repro.crawler import Crawler
from repro.baselines.common_rules import TABLE2_RULES, openscap_guide_rules
from repro.baselines.cvl_runner import ConfigValidatorEngine, table2_validator
from repro.baselines.inspec import InspecEngine, render_control, run_shell
from repro.baselines.inspec.resources import resolve_resource
from repro.baselines.loc import encoding_report, mean_sizes, render_cvl
from repro.baselines.scripts import AdHocScriptEngine, render_script
from repro.baselines.xccdf import (
    CisCatEngine,
    OpenScapEngine,
    generate_oval,
    generate_xccdf,
    parse_benchmark,
)
from repro.workloads import ubuntu_host_entity


@pytest.fixture(scope="module")
def xccdf_documents():
    checks = list(TABLE2_RULES)
    return generate_xccdf(checks), generate_oval(checks)


class TestCommonRules:
    def test_exactly_forty(self):
        assert len(TABLE2_RULES) == 40

    def test_all_link_to_shipped_cvl_rules(self, validator):
        for check in TABLE2_RULES:
            manifest = validator.manifest(check.cvl_entity)
            rule = validator.ruleset_for(manifest).by_name(check.cvl_name)
            assert rule is not None, check.rule_id

    def test_system_service_targets_only(self):
        assert {c.cvl_entity for c in TABLE2_RULES} == {
            "sshd", "sysctl", "audit", "fstab", "modprobe",
        }

    def test_openscap_guide_is_forty_and_different(self):
        guide = openscap_guide_rules()
        assert len(guide) == 40
        assert {r.rule_id for r in guide}.isdisjoint(
            {r.rule_id for r in TABLE2_RULES}
        )


class TestXccdf:
    def test_generate_parse_roundtrip(self, xccdf_documents):
        benchmark = parse_benchmark(*xccdf_documents)
        assert len(benchmark.selected_rules()) == 40
        assert len(benchmark.definitions) == 40
        assert len(benchmark.tests) == 40
        assert len(benchmark.objects) >= 40

    def test_per_rule_encoding_is_verbose(self):
        from repro.baselines.xccdf.generator import xccdf_rule_line_count

        # The paper reports ~45 lines per rule under XCCDF/OVAL.
        count = xccdf_rule_line_count(TABLE2_RULES[6])
        assert count >= 25

    def test_openscap_passes_hardened_host(self, xccdf_documents, hardened_frame):
        results = OpenScapEngine().run(*xccdf_documents, hardened_frame)
        assert all(r.passed for r in results)

    def test_openscap_fails_stock_host(self, xccdf_documents, stock_frame):
        results = OpenScapEngine().run(*xccdf_documents, stock_frame)
        assert sum(not r.passed for r in results) > 20

    def test_ciscat_same_verdicts_slower_start(self, xccdf_documents, hardened_frame):
        engine = CisCatEngine(startup_rounds=10)
        results = engine.run(*xccdf_documents, hardened_frame)
        assert all(r.passed for r in results)
        assert engine._startup_digest  # startup phase actually ran

    def test_missing_definition_is_error(self, xccdf_documents):
        xccdf_text, _ = xccdf_documents
        with pytest.raises(XCCDFError):
            OpenScapEngine().run(xccdf_text, generate_oval([]), None)

    def test_invalid_xml_rejected(self):
        with pytest.raises(XCCDFError):
            parse_benchmark("<Benchmark", "<oval_definitions/>")


class TestBashSim:
    def test_grep_file(self, hardened_frame):
        out = run_shell(
            "grep 'PermitRootLogin' /etc/ssh/sshd_config", hardened_frame
        )
        assert "PermitRootLogin no" in out

    def test_pipeline_head(self, hardened_frame):
        out = run_shell(
            "grep -E -e '.' /etc/ssh/sshd_config | head -1", hardened_frame
        )
        assert len(out.splitlines()) == 1

    def test_grep_count(self, hardened_frame):
        out = run_shell("grep -c 'Match' /etc/ssh/sshd_config", hardened_frame)
        assert out == "0"

    def test_wc_l(self, hardened_frame):
        out = run_shell("cat /etc/fstab | wc -l", hardened_frame)
        assert int(out) >= 5

    def test_grep_invert(self, hardened_frame):
        out = run_shell(
            "grep 'nodev' /etc/fstab | grep -v 'tmpfs'", hardened_frame
        )
        assert "tmpfs" not in out

    def test_cut_fields(self, hardened_frame):
        out = run_shell("grep 'root' /etc/passwd | cut -d: -f7", hardened_frame)
        assert out == "/bin/bash"

    def test_missing_file_is_empty(self, hardened_frame):
        assert run_shell("grep 'x' /no/such/file", hardened_frame) == ""

    def test_unknown_command_rejected(self, hardened_frame):
        with pytest.raises(BaselineError):
            run_shell("awk '{print}' /etc/fstab", hardened_frame)


class TestInspecResources:
    def test_sshd_first_match_wins(self, crawler):
        entity = ubuntu_host_entity("r1")
        entity.filesystem().write_file(
            "/etc/ssh/sshd_config", "PermitRootLogin no\nPermitRootLogin yes\n"
        )
        frame = crawler.crawl(entity)
        resource = resolve_resource("sshd_config", frame)
        assert resource.its("PermitRootLogin") == "no"

    def test_sshd_lookup_case_insensitive(self, hardened_frame):
        resource = resolve_resource("sshd_config", hardened_frame)
        assert resource.its("permitrootlogin") == "no"

    def test_kernel_parameter(self, hardened_frame):
        resource = resolve_resource("kernel_parameter", hardened_frame)
        assert resource.its("net.ipv4.ip_forward") == "0"

    def test_etc_fstab_mount_options(self, hardened_frame):
        resource = resolve_resource("etc_fstab", hardened_frame)
        assert "nodev" in resource.mount_options("/tmp")
        assert resource.mount_options("/nope") is None

    def test_kernel_module_disabled(self, hardened_frame):
        resource = resolve_resource("kernel_module", hardened_frame)
        assert resource.disabled("cramfs")
        assert resource.blacklisted("dccp")
        assert not resource.disabled("ext4")

    def test_file_resource(self, hardened_frame):
        resource = resolve_resource("file", hardened_frame, "/etc/ssh/sshd_config")
        assert resource.exists
        assert resource.mode == "600"

    def test_unknown_resource_rejected(self, hardened_frame):
        with pytest.raises(BaselineError):
            resolve_resource("registry_key", hardened_frame)


class TestEngineAgreement:
    def test_all_engines_pass_hardened(self, xccdf_documents, hardened_frame):
        outcomes = {
            "openscap": [
                r.passed
                for r in OpenScapEngine().run(*xccdf_documents, hardened_frame)
            ],
            "inspec-dsl": [
                r.passed for r in InspecEngine("dsl").run(TABLE2_RULES, hardened_frame)
            ],
            "inspec-bash": [
                r.passed
                for r in InspecEngine("bash").run(TABLE2_RULES, hardened_frame)
            ],
            "scripts": [
                r.passed
                for r in AdHocScriptEngine().run(TABLE2_RULES, hardened_frame)
            ],
            "cvl": [
                r.passed
                for r in ConfigValidatorEngine().run(TABLE2_RULES, hardened_frame)
            ],
        }
        for name, passed in outcomes.items():
            assert all(passed), name

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1_000),
           hardening=st.sampled_from([0.0, 0.3, 0.6, 0.9]))
    def test_engines_agree_on_random_hosts(self, seed, hardening):
        """The same 40 rules must produce identical verdict vectors under
        every engine, whatever the host looks like."""
        frame = Crawler().crawl(
            ubuntu_host_entity(f"h{seed}", hardening=hardening, seed=seed)
        )
        xccdf_text = generate_xccdf(list(TABLE2_RULES))
        oval_text = generate_oval(list(TABLE2_RULES))
        vectors = {
            "openscap": [
                r.passed for r in OpenScapEngine().run(xccdf_text, oval_text, frame)
            ],
            "inspec-dsl": [
                r.passed for r in InspecEngine("dsl").run(TABLE2_RULES, frame)
            ],
            "inspec-bash": [
                r.passed for r in InspecEngine("bash").run(TABLE2_RULES, frame)
            ],
            "scripts": [
                r.passed for r in AdHocScriptEngine().run(TABLE2_RULES, frame)
            ],
            "cvl": [
                r.passed for r in ConfigValidatorEngine().run(TABLE2_RULES, frame)
            ],
        }
        reference = vectors["scripts"]
        for name, vector in vectors.items():
            mismatches = [
                TABLE2_RULES[i].rule_id
                for i, (a, b) in enumerate(zip(vector, reference))
                if a != b
            ]
            assert not mismatches, (name, mismatches)

    def test_table2_validator_scopes_to_common_rules(self):
        validator = table2_validator(TABLE2_RULES)
        assert validator.rule_count() == 40


class TestEncodingSizes:
    def test_listing6_shape(self):
        report = encoding_report(list(TABLE2_RULES))
        means = mean_sizes(report)
        # Paper Listing 6: XCCDF/OVAL 45 lines >> CVL 10 > Inspec 6-7.
        assert means["xccdf_oval"] > 2.5 * means["cvl"]
        assert means["cvl"] > means["inspec_dsl"]
        assert means["inspec_dsl"] >= 5
        assert means["script"] <= 2

    def test_permit_root_login_cvl_is_about_ten_lines(self):
        report = encoding_report(list(TABLE2_RULES))
        entry = next(e for e in report if e.rule_id == "cis-5.2.8")
        assert 8 <= entry.cvl <= 14
        assert entry.xccdf_oval >= 25
        assert 5 <= entry.inspec_dsl <= 9

    def test_render_cvl_one_line_per_keyword(self, validator):
        manifest = validator.manifest("sshd")
        rule = validator.ruleset_for(manifest).by_name("PermitRootLogin")
        rendered = render_cvl(rule.raw)
        assert len(rendered.splitlines()) == len(rule.raw)

    def test_render_control_and_script_nonempty(self):
        for check in TABLE2_RULES[:5]:
            assert "control" in render_control(check, "dsl")
            assert "describe bash" in render_control(check, "bash")
            assert "grep" in render_script(check)
