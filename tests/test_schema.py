"""Tests for schema tables, parsers, and the query mini-language."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import QueryError, SchemaError
from repro.schema import Query, SchemaTable, default_schema_registry, parse_query

PASSWD = (
    "root:x:0:0:root:/root:/bin/bash\n"
    "daemon:x:1:1:daemon:/usr/sbin:/usr/sbin/nologin\n"
    "ubuntu:x:1000:1000:Ubuntu:/home/ubuntu:/bin/bash\n"
)
FSTAB = (
    "# static file system information\n"
    "/dev/sda1 / ext4 errors=remount-ro 0 1\n"
    "/dev/sda2 /tmp ext4 nodev,nosuid,noexec 0 2\n"
    "tmpfs /run/shm tmpfs nodev 0 0\n"
)
AUDIT = (
    "-w /etc/passwd -p wa -k identity\n"
    "-a always,exit -F arch=b64 -S adjtimex -S settimeofday -k time-change\n"
    "-e 2\n"
)


@pytest.fixture(scope="module")
def registry():
    return default_schema_registry()


class TestSchemaTable:
    def test_append_and_access(self):
        table = SchemaTable("t", ["a", "b"])
        row = table.append(["1", "2"], line=3)
        assert row["a"] == "1"
        assert row[1] == "2"
        assert row.line == 3

    def test_short_rows_padded(self):
        table = SchemaTable("t", ["a", "b", "c"])
        row = table.append(["only"])
        assert row["c"] == ""

    def test_too_many_fields_rejected(self):
        table = SchemaTable("t", ["a"])
        with pytest.raises(SchemaError):
            table.append(["1", "2"])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            SchemaTable("t", ["a", "a"])

    def test_column_extraction(self):
        table = SchemaTable("t", ["a"])
        table.append(["1"])
        table.append(["2"])
        assert table.column("a") == ["1", "2"]

    def test_unknown_column_rejected(self):
        table = SchemaTable("t", ["a"])
        with pytest.raises(SchemaError):
            table.column("z")

    def test_row_as_dict_and_project(self):
        table = SchemaTable("t", ["a", "b"])
        row = table.append(["1", "2"])
        assert row.as_dict() == {"a": "1", "b": "2"}
        assert row.project(["b", "a"]) == ("2", "1")

    def test_row_unknown_key(self):
        table = SchemaTable("t", ["a"])
        row = table.append(["1"])
        with pytest.raises(KeyError):
            row["zzz"]
        assert row.get("zzz", "dflt") == "dflt"


class TestParsers:
    def test_passwd(self, registry):
        table = registry.get("passwd").parse(PASSWD)
        assert len(table) == 3
        assert table.rows[0]["shell"] == "/bin/bash"
        assert table.rows[1]["uid"] == "1"

    def test_fstab_skips_comments(self, registry):
        table = registry.get("fstab").parse(FSTAB)
        assert len(table) == 3
        assert table.rows[1]["dir"] == "/tmp"
        assert table.rows[1]["options"] == "nodev,nosuid,noexec"

    def test_audit_watch_rule(self, registry):
        table = registry.get("audit").parse(AUDIT)
        watch = table.rows[0]
        assert watch["kind"] == "watch"
        assert watch["path"] == "/etc/passwd"
        assert watch["perms"] == "wa"
        assert watch["key"] == "identity"

    def test_audit_syscall_rule(self, registry):
        table = registry.get("audit").parse(AUDIT)
        syscall = table.rows[1]
        assert syscall["kind"] == "syscall"
        assert "adjtimex" in syscall["syscalls"].split(",")
        assert "settimeofday" in syscall["syscalls"].split(",")
        assert syscall["fields"] == "arch=b64"

    def test_audit_control_rule(self, registry):
        table = registry.get("audit").parse(AUDIT)
        control = table.rows[2]
        assert control["kind"] == "control"
        assert "e=2" in control["fields"]

    def test_audit_unknown_flag_rejected(self, registry):
        with pytest.raises(SchemaError):
            registry.get("audit").parse("-z whatever\n")

    def test_audit_flag_missing_value_rejected(self, registry):
        with pytest.raises(SchemaError):
            registry.get("audit").parse("-w\n")

    def test_crontab_skips_env_lines(self, registry):
        table = registry.get("crontab").parse(
            "SHELL=/bin/sh\n17 * * * * root cd / && run-parts /etc/cron.hourly\n"
        )
        assert len(table) == 1
        assert table.rows[0]["user"] == "root"

    def test_group_members(self, registry):
        table = registry.get("group").parse("docker:x:999:alice,bob\n")
        assert table.rows[0]["members"] == "alice,bob"

    def test_for_file_dispatch(self, registry):
        assert registry.for_file("/etc/passwd").name == "passwd"
        assert registry.for_file("/etc/fstab").name == "fstab"
        assert registry.for_file("/etc/audit/audit.rules").name == "audit"
        assert registry.for_file("/etc/unknown") is None

    def test_unknown_parser_name(self, registry):
        with pytest.raises(SchemaError):
            registry.get("nope")


class TestQuery:
    @pytest.fixture()
    def fstab_table(self, registry):
        return registry.get("fstab").parse(FSTAB)

    def test_equality_with_placeholder(self, fstab_table):
        rows = Query("dir = ?", "*").execute(fstab_table, ["/tmp"])
        assert len(rows) == 1
        assert rows[0][0] == "/dev/sda2"

    def test_no_match_is_empty(self, fstab_table):
        assert Query("dir = ?", "*").execute(fstab_table, ["/var"]) == []

    def test_projection_single_column(self, fstab_table):
        rows = Query("dir = ?", "options").execute(fstab_table, ["/tmp"])
        assert rows == [("nodev,nosuid,noexec",)]

    def test_projection_multiple_columns(self, fstab_table):
        rows = Query("dir = ?", "device, type").execute(fstab_table, ["/tmp"])
        assert rows == [("/dev/sda2", "ext4")]

    def test_and(self, fstab_table):
        rows = Query("type = ? AND dir = ?", "*").execute(
            fstab_table, ["ext4", "/"]
        )
        assert len(rows) == 1

    def test_or(self, fstab_table):
        rows = Query("dir = ? OR dir = ?", "dir").execute(
            fstab_table, ["/tmp", "/run/shm"]
        )
        assert [r[0] for r in rows] == ["/tmp", "/run/shm"]

    def test_not(self, fstab_table):
        rows = Query("NOT type = ?", "dir").execute(fstab_table, ["tmpfs"])
        assert [r[0] for r in rows] == ["/", "/tmp"]

    def test_parentheses(self, fstab_table):
        rows = Query("(dir = ? OR dir = ?) AND type = ?", "dir").execute(
            fstab_table, ["/", "/run/shm", "tmpfs"]
        )
        assert [r[0] for r in rows] == ["/run/shm"]

    def test_like(self, fstab_table):
        rows = Query("options LIKE ?", "dir").execute(fstab_table, ["%nodev%"])
        assert [r[0] for r in rows] == ["/tmp", "/run/shm"]

    def test_in(self, fstab_table):
        rows = Query("dir IN (?, ?)", "dir").execute(
            fstab_table, ["/", "/tmp"]
        )
        assert [r[0] for r in rows] == ["/", "/tmp"]

    def test_not_equal(self, fstab_table):
        rows = Query("type != ?", "type").execute(fstab_table, ["ext4"])
        assert rows == [("tmpfs",)]

    def test_numeric_comparison(self, fstab_table):
        rows = Query("pass > ?", "dir").execute(fstab_table, ["0"])
        assert [r[0] for r in rows] == ["/", "/tmp"]

    def test_string_comparison_fallback(self, fstab_table):
        rows = Query("device >= ?", "device").execute(fstab_table, ["tmpfs"])
        assert rows == [("tmpfs",)]

    def test_empty_constraints_match_all(self, fstab_table):
        assert len(Query("", "*").execute(fstab_table)) == 3

    def test_quoted_literal(self, fstab_table):
        rows = Query("dir = '/tmp'", "dir").execute(fstab_table)
        assert rows == [("/tmp",)]

    def test_unbound_placeholder_rejected(self, fstab_table):
        with pytest.raises(QueryError):
            Query("dir = ?", "*").execute(fstab_table, [])

    def test_unknown_column_rejected(self, fstab_table):
        with pytest.raises(QueryError):
            Query("bogus = ?", "*").execute(fstab_table, ["x"])

    def test_syntax_errors(self):
        for bad in ["dir =", "= ?", "dir ? x", "(dir = ?", "dir IN ?"]:
            with pytest.raises(QueryError):
                parse_query(bad)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(QueryError):
            parse_query("a = 1 b = 2")

    def test_keywords_case_insensitive(self, fstab_table):
        rows = Query("dir = ? or dir = ?", "dir").execute(
            fstab_table, ["/", "/tmp"]
        )
        assert len(rows) == 2


class TestQueryProperties:
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=20), min_size=1, max_size=20
        ),
        threshold=st.integers(min_value=0, max_value=20),
    )
    def test_comparison_matches_python_filter(self, values, threshold):
        table = SchemaTable("t", ["n"])
        for value in values:
            table.append([str(value)])
        rows = Query("n <= ?", "n").execute(table, [str(threshold)])
        expected = [str(v) for v in values if v <= threshold]
        assert [r[0] for r in rows] == expected

    @given(
        words=st.lists(
            st.text(alphabet="abc", min_size=1, max_size=4),
            min_size=1,
            max_size=15,
        ),
        needle=st.text(alphabet="abc", min_size=1, max_size=2),
    )
    def test_like_matches_python_contains(self, words, needle):
        table = SchemaTable("t", ["w"])
        for word in words:
            table.append([word])
        rows = Query("w LIKE ?", "w").execute(table, [f"%{needle}%"])
        expected = [w for w in words if needle in w]
        assert [r[0] for r in rows] == expected


class TestPamParser:
    def test_basic_lines(self, registry):
        table = registry.get("pam").parse(
            "password requisite pam_pwquality.so retry=3 minlen=14\n"
        )
        row = table.rows[0]
        assert row["type"] == "password"
        assert row["control"] == "requisite"
        assert row["module"] == "pam_pwquality.so"
        assert "retry=3" in row["args"]

    def test_bracketed_control(self, registry):
        table = registry.get("pam").parse(
            "password [success=1 default=ignore] pam_unix.so sha512\n"
        )
        row = table.rows[0]
        assert row["control"] == "[success=1 default=ignore]"
        assert row["module"] == "pam_unix.so"
        assert row["args"] == "sha512"

    def test_include_lines(self, registry):
        table = registry.get("pam").parse("@include common-auth\n")
        assert table.rows[0]["type"] == "include"
        assert table.rows[0]["module"] == "common-auth"

    def test_unclosed_bracket_rejected(self, registry):
        with pytest.raises(SchemaError):
            registry.get("pam").parse("auth [success=1 pam_unix.so\n")

    def test_pattern_dispatch(self, registry):
        assert registry.for_file("/etc/pam.d/common-password").name == "pam"

    def test_limits_parser(self, registry):
        table = registry.get("limits").parse("* hard core 0\nroot soft nofile 65536\n")
        assert table.rows[0].as_dict() == {
            "domain": "*", "type": "hard", "item": "core", "value": "0",
        }
        assert registry.for_file("/etc/security/limits.conf").name == "limits"
