"""Tests for the Kubernetes manifests extension pack."""

import pytest

from repro.fs import VirtualFilesystem
from repro.crawler import HostEntity
from repro.rules import EXTENSION_TARGETS, load_builtin_validator
from repro.workloads import k8s_node_entity, kubernetes_manifest


@pytest.fixture()
def k8s_validator():
    return load_builtin_validator(only=["kubernetes"])


class TestKubernetesPack:
    def test_registered_as_extension(self):
        assert "kubernetes" in EXTENSION_TARGETS

    def test_hardened_node_passes(self, k8s_validator):
        report = k8s_validator.validate_entity(k8s_node_entity(hardened=True))
        assert report.compliant, [
            (r.rule.name, r.message) for r in report.failed()
        ]

    def test_stock_node_fails_expected_rules(self, k8s_validator):
        report = k8s_validator.validate_entity(k8s_node_entity(hardened=False))
        failed = {r.rule.name for r in report.failed()}
        assert {
            "privileged", "hostNetwork", "hostPID", "runAsNonRoot",
            "allowPrivilegeEscalation", "image", "memory",
        } <= failed

    def test_latest_tag_and_untagged_images_flagged(self, k8s_validator):
        manifest = kubernetes_manifest(hardened=True).replace(
            "registry.local/web:1.4.2", "registry.local/web"
        )
        fs = VirtualFilesystem()
        fs.mkdir("/etc/kubernetes/manifests", mode=0o755)
        fs.write_file("/etc/kubernetes/manifests/pod.yaml", manifest)
        report = k8s_validator.validate_entity(HostEntity("untagged", fs))
        assert "image" in {r.rule.name for r in report.failed()}

    def test_deployment_template_paths_also_matched(self, k8s_validator):
        deployment = """\
apiVersion: apps/v1
kind: Deployment
metadata: {name: api}
spec:
  template:
    spec:
      hostNetwork: true
      containers:
        - name: api
          image: registry.local/api:2.0
          securityContext:
            privileged: true
"""
        fs = VirtualFilesystem()
        fs.mkdir("/etc/kubernetes/manifests", mode=0o755)
        fs.write_file("/etc/kubernetes/manifests/deploy.yaml", deployment)
        report = k8s_validator.validate_entity(HostEntity("deploy", fs))
        failed = {r.rule.name for r in report.failed()}
        assert {"privileged", "hostNetwork"} <= failed

    def test_multiple_pods_one_bad_fails(self, k8s_validator):
        fs = VirtualFilesystem()
        fs.mkdir("/etc/kubernetes/manifests", mode=0o755)
        fs.write_file(
            "/etc/kubernetes/manifests/good.yaml",
            kubernetes_manifest(hardened=True),
        )
        fs.write_file(
            "/etc/kubernetes/manifests/bad.yaml",
            kubernetes_manifest(hardened=False),
        )
        report = k8s_validator.validate_entity(HostEntity("mixed", fs))
        assert "privileged" in {r.rule.name for r in report.failed()}

    def test_nodes_without_manifests_skipped(self, k8s_validator):
        fs = VirtualFilesystem()
        fs.write_file("/etc/hostname", "plain\n")
        report = k8s_validator.validate_entity(HostEntity("plain", fs))
        assert len(report) == 0

    def test_world_writable_manifest_dir_flagged(self, k8s_validator):
        entity = k8s_node_entity(hardened=True)
        entity.filesystem().chmod("/etc/kubernetes/manifests", 0o777)
        report = k8s_validator.validate_entity(entity)
        assert "/etc/kubernetes/manifests" in {
            r.rule.name for r in report.failed()
        }
