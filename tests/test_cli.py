"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCoverage:
    def test_table1_inventory(self, capsys):
        assert main(["coverage"]) == 0
        out = capsys.readouterr().out
        assert "Applications" in out
        assert "System services" in out
        assert "Cloud services" in out
        assert "TOTAL" in out

    def test_docker_targets_aggregated(self, capsys):
        main(["coverage"])
        out = capsys.readouterr().out
        assert "docker_containers" not in out  # folded into the docker row


class TestRulesListing:
    def test_list_sshd_rules(self, capsys):
        assert main(["rules", "sshd"]) == 0
        out = capsys.readouterr().out
        assert "PermitRootLogin" in out
        assert "#cisubuntu14.04_5.2.8" in out

    def test_unknown_target_is_error(self, capsys):
        assert main(["rules", "ghost"]) == 2
        assert "error:" in capsys.readouterr().err


class TestValidate:
    def test_validate_real_directory(self, tmp_path, capsys):
        ssh = tmp_path / "etc" / "ssh"
        ssh.mkdir(parents=True)
        (ssh / "sshd_config").write_text("PermitRootLogin yes\n")
        (ssh / "sshd_config").chmod(0o600)
        code = main(
            ["validate", "--root", str(tmp_path), "--targets", "sshd"]
        )
        out = capsys.readouterr().out
        assert code == 1  # findings present
        assert "[FAIL] sshd: PermitRootLogin" in out

    def test_validate_json_output(self, tmp_path, capsys):
        ssh = tmp_path / "etc" / "ssh"
        ssh.mkdir(parents=True)
        (ssh / "sshd_config").write_text("PermitRootLogin no\n")
        main(["validate", "--root", str(tmp_path), "--targets", "sshd", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["summary"]["total"] > 0

    def test_tag_filter(self, tmp_path, capsys):
        (tmp_path / "etc").mkdir()
        (tmp_path / "etc" / "sysctl.conf").write_text("net.ipv4.ip_forward = 0\n")
        main(
            ["validate", "--root", str(tmp_path), "--targets", "sysctl",
             "--tags", "#cisubuntu14.04_7.1.1"]
        )
        out = capsys.readouterr().out
        assert "ip_forward" in out
        assert "tcp_syncookies" not in out


class TestDemo:
    def test_demo_host_hardened_passes(self, capsys):
        assert main(["demo", "host", "--hardening", "1.0"]) == 0

    def test_demo_host_stock_fails(self, capsys):
        assert main(["demo", "host", "--hardening", "0.0"]) == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_demo_fleet(self, capsys):
        code = main(["demo", "fleet", "--size", "2", "--hardening", "0.5",
                     "--only-failures"])
        assert code in (0, 1)
        assert "# ConfigValidator report" in capsys.readouterr().out

    def test_demo_cloud(self, capsys):
        assert main(["demo", "cloud", "--hardening", "0.0"]) == 1


class TestDump:
    def test_dump_with_auto_lens(self, tmp_path, capsys):
        config = tmp_path / "nginx.conf"
        config.write_text("http { server { listen 443; } }\n")
        assert main(["dump", str(config)]) == 0
        out = capsys.readouterr().out
        assert "listen = '443'" in out

    def test_dump_with_forced_lens(self, tmp_path, capsys):
        config = tmp_path / "weird.file"
        config.write_text("k = v\n")
        assert main(["dump", str(config), "--lens", "keyvalue"]) == 0
        assert "k = 'v'" in capsys.readouterr().out

    def test_dump_unknown_file_without_lens(self, tmp_path, capsys):
        config = tmp_path / "mystery"
        config.write_text("???")
        assert main(["dump", str(config)]) == 2


class TestFrameWorkflow:
    def test_snapshot_then_validate_frame(self, tmp_path, capsys):
        root = tmp_path / "rootfs"
        (root / "etc" / "ssh").mkdir(parents=True)
        (root / "etc" / "ssh" / "sshd_config").write_text("PermitRootLogin no\n")
        frame_file = tmp_path / "frame.json"
        assert main(["snapshot", "--root", str(root), "--name", "captured",
                     "-o", str(frame_file)]) == 0
        assert frame_file.exists()
        code = main(["validate-frame", str(frame_file), "--targets", "sshd"])
        out = capsys.readouterr().out
        assert "captured" in out
        assert code in (0, 1)

    def test_snapshot_to_stdout(self, tmp_path, capsys):
        (tmp_path / "etc").mkdir()
        (tmp_path / "etc" / "motd").write_text("hi\n")
        assert main(["snapshot", "--root", str(tmp_path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == 1


class TestLintCommand:
    def test_shipped_packs_lint_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "0 error(s)" in capsys.readouterr().out


class TestScaffoldCommand:
    def test_scaffold_prints_cvl(self, tmp_path, capsys):
        config = tmp_path / "nginx.conf"
        config.write_text("http { server_tokens off; }\n")
        assert main(["scaffold", str(config)]) == 0
        out = capsys.readouterr().out
        assert 'config_name: "server_tokens"' in out

    def test_scaffold_with_forced_lens(self, tmp_path, capsys):
        config = tmp_path / "plain"
        config.write_text("alpha = 1\n")
        assert main(["scaffold", str(config), "--lens", "keyvalue"]) == 0
        assert 'config_name: "alpha"' in capsys.readouterr().out


class TestDriftCommand:
    def test_drift_between_two_snapshots(self, tmp_path, capsys):
        for name, value in [("day1.json", "no"), ("day2.json", "yes")]:
            root = tmp_path / name.replace(".json", "-root")
            (root / "etc" / "ssh").mkdir(parents=True)
            (root / "etc" / "ssh" / "sshd_config").write_text(
                f"PermitRootLogin {value}\n"
            )
            assert main(["snapshot", "--root", str(root), "--name", "web-7",
                         "-o", str(tmp_path / name)]) == 0
        capsys.readouterr()
        code = main(["drift", str(tmp_path / "day1.json"),
                     str(tmp_path / "day2.json"), "--targets", "sshd"])
        out = capsys.readouterr().out
        assert code == 1
        assert "[REGRESSED] sshd: PermitRootLogin" in out

    def test_drift_clean_exit_zero(self, tmp_path, capsys):
        root = tmp_path / "root"
        (root / "etc" / "ssh").mkdir(parents=True)
        (root / "etc" / "ssh" / "sshd_config").write_text("PermitRootLogin no\n")
        frame = tmp_path / "f.json"
        assert main(["snapshot", "--root", str(root), "-o", str(frame)]) == 0
        assert main(["drift", str(frame), str(frame), "--targets", "sshd"]) == 0


class TestRulesDirAndJunit:
    def _rules_repo(self, tmp_path):
        repo = tmp_path / "rules-repo"
        (repo / "component_configs").mkdir(parents=True)
        (repo / "manifest.yaml").write_text(
            "custom: {config_search_paths: [/etc/app],"
            " cvl_file: component_configs/custom.yaml}\n"
        )
        (repo / "component_configs" / "custom.yaml").write_text(
            "config_name: debug\nfile_context: ['app.conf']\n"
            "preferred_value: ['false']\npreferred_value_match: exact,all\n"
            "matched_description: ok\nnot_present_description: missing\n"
            "not_matched_preferred_value_description: bad\ntags: ['#custom']\n"
        )
        return repo

    def test_validate_with_rules_dir(self, tmp_path, capsys):
        repo = self._rules_repo(tmp_path)
        root = tmp_path / "root"
        (root / "etc" / "app").mkdir(parents=True)
        (root / "etc" / "app" / "app.conf").write_text("debug = true\n")
        code = main(["validate", "--root", str(root),
                     "--rules-dir", str(repo)])
        out = capsys.readouterr().out
        assert code == 1
        assert "[FAIL] custom: debug -- bad" in out

    def test_junit_output(self, tmp_path, capsys):
        repo = self._rules_repo(tmp_path)
        root = tmp_path / "root"
        (root / "etc" / "app").mkdir(parents=True)
        (root / "etc" / "app" / "app.conf").write_text("debug = true\n")
        main(["validate", "--root", str(root), "--rules-dir", str(repo),
              "--junit"])
        out = capsys.readouterr().out
        assert out.startswith('<?xml version="1.0"')
        assert "<failure" in out
        assert 'tests="1"' in out


class TestDirectoryResolver:
    def test_escape_rejected(self, tmp_path):
        from repro.errors import EngineError
        from repro.rules.repository import directory_resolver

        (tmp_path / "ok.yaml").write_text("config_name: x\n")
        resolver = directory_resolver(str(tmp_path))
        assert "config_name" in resolver("ok.yaml")
        import pytest as _pytest
        with _pytest.raises(EngineError):
            resolver("../outside.yaml")
        with _pytest.raises(EngineError):
            resolver("missing.yaml")

    def test_missing_directory_rejected(self):
        from repro.errors import EngineError
        from repro.rules.repository import directory_resolver
        import pytest as _pytest

        with _pytest.raises(EngineError):
            directory_resolver("/no/such/dir")

    def test_inheritance_across_directory_files(self, tmp_path):
        from repro.rules.repository import load_validator_from_directory

        (tmp_path / "manifest.yaml").write_text(
            "app: {config_search_paths: [/etc/app], cvl_file: child.yaml}\n"
        )
        (tmp_path / "base.yaml").write_text(
            "config_name: key\npreferred_value: ['1']\n"
        )
        (tmp_path / "child.yaml").write_text(
            "parent_cvl_file: base.yaml\nrules:\n"
            "  - config_name: key\n    preferred_value: ['2']\n"
        )
        validator = load_validator_from_directory(str(tmp_path))
        ruleset = validator.ruleset_for(validator.manifest("app"))
        assert ruleset.by_name("key").preferred_value == ["2"]


class TestFailOnSeverity:
    def _root(self, tmp_path):
        root = tmp_path / "sev-root"
        (root / "etc" / "ssh").mkdir(parents=True)
        # LogLevel wrong (medium), PermitRootLogin fine.
        (root / "etc" / "ssh" / "sshd_config").write_text(
            "PermitRootLogin no\nLogLevel QUIET\n"
        )
        (root / "etc" / "ssh" / "sshd_config").chmod(0o600)
        return root

    def test_medium_failure_blocks_at_medium(self, tmp_path, capsys):
        code = main(["validate", "--root", str(self._root(tmp_path)),
                     "--targets", "sshd", "--fail-on", "medium"])
        assert code == 1

    def test_medium_failure_passes_at_critical(self, tmp_path, capsys):
        code = main(["validate", "--root", str(self._root(tmp_path)),
                     "--targets", "sshd", "--fail-on", "critical"])
        assert code == 0


class TestFrameDiffCommand:
    def test_framediff_between_snapshots(self, tmp_path, capsys):
        for name, content in [("a.json", "Port 22\n"), ("b.json", "Port 2222\n")]:
            root = tmp_path / name.replace(".json", "-root")
            (root / "etc" / "ssh").mkdir(parents=True)
            (root / "etc" / "ssh" / "sshd_config").write_text(content)
            assert main(["snapshot", "--root", str(root),
                         "-o", str(tmp_path / name)]) == 0
        capsys.readouterr()
        code = main(["framediff", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json"), "--show", "/etc/ssh/sshd_config"])
        out = capsys.readouterr().out
        assert code == 1
        assert "[content " in out
        assert "-Port 22" in out and "+Port 2222" in out

    def test_framediff_identical_is_clean(self, tmp_path, capsys):
        root = tmp_path / "same-root"
        (root / "etc").mkdir(parents=True)
        (root / "etc" / "x").write_text("1\n")
        frame = tmp_path / "same.json"
        assert main(["snapshot", "--root", str(root), "-o", str(frame)]) == 0
        assert main(["framediff", str(frame), str(frame)]) == 0
