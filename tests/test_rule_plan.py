"""Compiled rule plans: trie units, plan cache, and differential identity.

The contract (ISSUE 6): a validator running with compiled rule plans
(fused single-pass tree evaluation) must render reports **byte-identical**
to the per-rule engine (``--no-plan``), at every worker count, with
incremental revalidation on or off, across scan cycles that mutate
frames arbitrarily.  Fusion is a pure optimization or it is nothing.
"""

import random

import pytest

from repro.errors import PathExpressionError
from repro.augtree import ConfigNode, parse_path
from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.crawler.frame import ConfigFrame
from repro.crawler.serialize import dump_frame, load_frame
from repro.cvl.loader import load_rules
from repro.cvl.manifest import Manifest
from repro.engine import ConfigValidator, VerdictStore, render_json, render_text
from repro.engine.incremental import ruleset_digest
from repro.engine.normalizer import Normalizer
from repro.engine.plan import (
    RulePlan,
    SegmentTrie,
    clear_plan_cache,
    plan_cache_stats,
    plan_for,
)
from repro.engine.report import render_junit
from repro.fs.packages import PackageDatabase
from repro.fs.vfs import VirtualFilesystem
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity

WORKER_COUNTS = (1, 8)


def _tree() -> ConfigNode:
    root = ConfigNode("(root)")
    http = root.add("http")
    for listen, protocols in [("443 ssl", "TLSv1.2"), ("80", None)]:
        server = http.add("server")
        server.add("listen", listen)
        if protocols:
            server.add("ssl_protocols", protocols)
    mysqld = root.add("mysqld")
    mysqld.add("ssl-ca", "/etc/mysql/cacert.pem")
    root.add("a/b", "weird")
    modroot = root.add("modprobe")
    for module in ("cramfs", "udf"):
        install = modroot.add("install", module)
        install.add("command", "/bin/true")
    return root


# ---------------------------------------------------------------------------
# SegmentTrie: many expressions, one traversal, per-slot identity
# ---------------------------------------------------------------------------

EXPRESSIONS = [
    "http/server/listen",            # shared prefix with the next two
    "http/server/ssl_protocols",
    "http/server",
    "*",                             # wildcard fan-out
    "**/listen",                     # descendant-or-self
    "**/**/command",                 # stacked ** must still dedup
    "http/server[2]/listen",         # numeric predicate (1-based)
    "http/server[last()]/listen",    # last() predicate
    "http/server[listen='80']",      # child-compare predicate
    "http/server[listen='443 ssl']", # quoted value with a space
    "modprobe/install[.='udf']/command",  # self-value predicate
    "http/server[listen='80'][1]",   # stacked predicates
    '"a/b"',                         # quoted label containing '/'
    "http/nothing/here",             # no match: slot must be absent
]


class TestSegmentTrie:
    def test_matches_each_expression_identically(self):
        root = _tree()
        trie = SegmentTrie()
        slots = {
            expr: trie.insert(parse_path(expr).segments, member)
            for member, expr in enumerate(EXPRESSIONS)
        }
        results = trie.match(root)
        for expr, slot in slots.items():
            expected = parse_path(expr).match(root)
            assert results.get(slot, []) == expected, expr

    def test_active_set_prunes_other_members_slots(self):
        root = _tree()
        trie = SegmentTrie()
        kept = trie.insert(parse_path("http/server/listen").segments, 0)
        pruned = trie.insert(parse_path("mysqld/ssl-ca").segments, 1)
        results = trie.match(root, active={0})
        assert kept in results
        assert pruned not in results

    def test_shared_prefix_still_separates_slots(self):
        root = _tree()
        trie = SegmentTrie()
        a = trie.insert(parse_path("http/server/listen").segments, 0)
        b = trie.insert(parse_path("http/server/listen").segments, 1)
        results = trie.match(root)
        assert results[a] == results[b]
        assert results[a] is not results[b]  # per-slot lists stay private

    def test_empty_expression_rejected(self):
        with pytest.raises(ValueError):
            SegmentTrie().insert((), 0)


# ---------------------------------------------------------------------------
# Plan compilation and the process-wide cache
# ---------------------------------------------------------------------------

SVC_MANIFEST = Manifest(
    entity="svc", cvl_file="svc.yaml", config_search_paths=["/etc/svc"]
)

SVC_RULES = """\
config_name: Port
preferred_value: ["22"]
---
config_name: Protocol
preferred_value: ["2"]
---
config_name: root/logging/level
file_context: ["app"]
preferred_value: ["info"]
"""


def _svc_plan(rules_text: str = SVC_RULES):
    ruleset = load_rules(rules_text, entity="svc")
    digest = ruleset_digest(SVC_MANIFEST, ruleset)
    return ruleset, digest


class TestPlanCompilation:
    def test_rules_group_by_file_context(self):
        ruleset, digest = _svc_plan()
        plan = RulePlan(SVC_MANIFEST, ruleset, digest)
        assert plan.usable
        assert plan.fused_rule_count == 3
        # Port/Protocol share the empty file_context; the app rule is alone.
        assert [len(unit.members) for unit in plan.units] == [2, 1]

    def test_unparsable_expression_falls_back(self):
        ruleset, digest = _svc_plan(
            SVC_RULES + '---\nconfig_name: "Broken["\npreferred_value: ["x"]\n'
        )
        with pytest.raises(PathExpressionError):
            parse_path("Broken[")
        plan = RulePlan(SVC_MANIFEST, ruleset, digest)
        assert plan.usable
        assert "Broken[" in plan.fallback_names
        assert plan.fused_rule_count == 3

    def test_duplicate_rule_names_disable_the_plan(self):
        ruleset, digest = _svc_plan(
            'config_name: Port\npreferred_value: ["22"]\n---\n'
            'config_name: Port\npreferred_value: ["2222"]\n'
        )
        plan = RulePlan(SVC_MANIFEST, ruleset, digest)
        assert not plan.usable
        assert plan.fused_rule_count == 0

    def test_cache_hits_on_same_digest(self):
        clear_plan_cache()
        ruleset, digest = _svc_plan()
        first = plan_for(SVC_MANIFEST, ruleset, digest)
        second = plan_for(SVC_MANIFEST, ruleset, digest)
        assert first is second
        stats = plan_cache_stats()
        assert stats.compiles == 1
        assert stats.hits == 1
        assert stats.entries == 1

    def test_digest_change_compiles_a_new_plan(self):
        clear_plan_cache()
        ruleset, digest = _svc_plan()
        first = plan_for(SVC_MANIFEST, ruleset, digest)
        ruleset.rules[0].enabled = False
        changed = ruleset_digest(SVC_MANIFEST, ruleset)
        assert changed != digest
        second = plan_for(SVC_MANIFEST, ruleset, changed)
        assert second is not first
        assert len(second.rules) == len(first.rules) - 1
        assert plan_cache_stats().compiles == 2


# ---------------------------------------------------------------------------
# File-target index (satellite: candidate_files reuse)
# ---------------------------------------------------------------------------

def _svc_frame() -> ConfigFrame:
    fs = VirtualFilesystem()
    fs.write_file("/etc/svc/svc.conf", "Port 22\n")
    fs.write_file("/etc/svc/app.ini", "level info\n")
    fs.write_file("/etc/svc/sites-enabled/web.conf", "listen 80\n")
    return ConfigFrame(
        entity_name="svc-host", entity_kind="host", files=fs,
        packages=PackageDatabase([]), runtime={}, metadata={},
    )


class TestFileTargetIndex:
    def test_selections_are_memoized_objects(self):
        normalizer = Normalizer()
        frame = _svc_frame()
        paths = ["/etc/svc"]
        listing = normalizer.files_in_search_paths(frame, paths)
        # Empty context returns the listing object itself.
        assert normalizer.candidate_files(frame, paths, []) is listing
        first = normalizer.candidate_files(frame, paths, ["*.conf"])
        second = normalizer.candidate_files(frame, paths, ["*.conf"])
        assert first is second  # cached list: callers must not mutate it

    def test_selection_semantics(self):
        normalizer = Normalizer()
        frame = _svc_frame()
        paths = ["/etc/svc"]
        assert normalizer.candidate_files(frame, paths, ["*.conf"]) == [
            "/etc/svc/svc.conf", "/etc/svc/sites-enabled/web.conf",
        ]
        assert normalizer.candidate_files(frame, paths, ["sites-enabled"]) == [
            "/etc/svc/sites-enabled/web.conf",
        ]
        assert normalizer.candidate_files(
            frame, paths, ["/etc/svc/*.ini"]
        ) == ["/etc/svc/app.ini"]


# ---------------------------------------------------------------------------
# Differential suite: planned vs --no-plan, byte for byte
# ---------------------------------------------------------------------------

def _crawl_fleet(seed: int = 23) -> list:
    _daemon, images, containers = build_fleet(
        FleetSpec(images=2, containers_per_image=2, misconfig_rate=0.4,
                  seed=seed)
    )
    entities = [DockerImageEntity(i) for i in images]
    entities += [ContainerEntity(c) for c in containers]
    hosts = [
        ubuntu_host_entity(f"plan-host-{i}", hardening=0.5, seed=i,
                           with_nginx=True, with_mysql=True)
        for i in range(2)
    ]
    return Crawler().crawl_many(entities + hosts)


@pytest.fixture(scope="module")
def base_blobs():
    """Serialized fleet snapshots -- the immutable cycle-0 baseline."""
    return [dump_frame(frame) for frame in _crawl_fleet()]


def _etc_files(frame) -> list[str]:
    paths = []
    for dirpath, _dirs, filenames in frame.files.walk("/etc"):
        for name in filenames:
            paths.append(f"{dirpath.rstrip('/')}/{name}")
    return sorted(paths)


def _gen_ops(rng: random.Random, frames, counter: int) -> list[tuple[int, tuple]]:
    """A batch of random (frame_index, op) mutations against current state."""
    ops: list[tuple[int, tuple]] = []
    for n in range(rng.randint(1, 4)):
        index = rng.randrange(len(frames))
        files = _etc_files(frames[index])
        kind = rng.choice(["content", "chmod", "add", "remove", "runtime"])
        tag = f"{counter}-{n}"
        if kind == "content" and files:
            ops.append((index, ("content", rng.choice(files),
                                f"\n# mutation {tag}\n")))
        elif kind == "chmod" and files:
            ops.append((index, ("chmod", rng.choice(files),
                                rng.choice([0o600, 0o640, 0o644, 0o777]))))
        elif kind == "add":
            ops.append((index, ("add", f"/etc/ssh/mut_{tag}.conf",
                                f"# added {tag}\nPort 22\n")))
        elif kind == "remove" and files:
            ops.append((index, ("remove", rng.choice(files))))
        elif kind == "runtime":
            ops.append((index, ("runtime", "sshd", f"mut_{tag}", "yes")))
    return ops


def _apply(frame, op) -> None:
    kind = op[0]
    if kind == "content":
        _, path, suffix = op
        if frame.files.exists(path):
            frame.files.write_file(path, frame.files.read_text(path) + suffix)
    elif kind == "chmod":
        _, path, mode = op
        if frame.files.exists(path):
            frame.files.chmod(path, mode)
    elif kind == "add":
        _, path, content = op
        frame.files.write_file(path, content)
    elif kind == "remove":
        _, path = op
        if frame.files.exists(path):
            frame.files.remove(path)
    elif kind == "runtime":
        _, namespace, key, value = op
        frame.runtime.setdefault(namespace, {})[key] = value


def _rebuild(blobs, script) -> list:
    frames = [load_frame(blob) for blob in blobs]
    for index, op in script:
        _apply(frames[index], op)
    return frames


def _render_triple(report) -> tuple[str, str, str]:
    return (
        render_text(report, verbose=True),
        render_json(report),
        render_junit(report),
    )


class TestDifferential:
    def test_planned_matches_no_plan_byte_identical(self, base_blobs):
        frames = _rebuild(base_blobs, [])
        reference = _render_triple(
            load_builtin_validator(use_plans=False).validate_frames(
                frames, workers=1
            )
        )
        for workers in WORKER_COUNTS:
            frames = _rebuild(base_blobs, [])
            report = load_builtin_validator().validate_frames(
                frames, workers=workers
            )
            assert _render_triple(report) == reference, (
                f"workers {workers}: planned report diverged from --no-plan"
            )
            assert report.plan is not None
            assert report.plan.rules_fused > 0
            assert report.plan.units_evaluated > 0
            assert report.plan.traversals_saved > 0

    def test_no_plan_report_carries_no_plan_stats(self, base_blobs):
        frames = _rebuild(base_blobs, [])
        report = load_builtin_validator(use_plans=False).validate_frames(
            frames, workers=1
        )
        assert report.plan is None

    @pytest.mark.parametrize("seed", [5, 29])
    def test_planned_matches_across_mutated_cycles(self, base_blobs, seed):
        """Planned x incremental stays identical to unplanned full runs."""
        rng = random.Random(seed)
        store = VerdictStore()
        script: list[tuple[int, tuple]] = []
        for cycle in range(3):
            frames = _rebuild(base_blobs, script)
            reference = _render_triple(
                load_builtin_validator(use_plans=False).validate_frames(
                    frames, workers=1
                )
            )
            for workers in WORKER_COUNTS:
                # Full planned run...
                report = load_builtin_validator().validate_frames(
                    frames, workers=workers
                )
                assert _render_triple(report) == reference, (
                    f"cycle {cycle}, workers {workers}: planned full run"
                )
            # ... and a planned incremental run sharing one store.
            report = load_builtin_validator(
                verdict_store=store
            ).validate_frames(frames, workers=1)
            assert _render_triple(report) == reference, (
                f"cycle {cycle}: planned incremental run"
            )
            assert report.incremental is not None and report.incremental.active
            script.extend(_gen_ops(rng, frames, cycle))

    def test_incremental_replay_still_skips_work(self, base_blobs):
        """Fused tapes must keep the skip/replay semantics intact."""
        store = VerdictStore()
        frames = _rebuild(base_blobs, [])
        load_builtin_validator(verdict_store=store).validate_frames(
            frames, workers=1
        )
        frames = _rebuild(base_blobs, [])
        report = load_builtin_validator(verdict_store=store).validate_frames(
            frames, workers=1
        )
        stats = report.incremental
        assert stats.rules_evaluated == 0
        assert stats.rules_replayed > 0
        # Nothing was fresh, so the planner had nothing to fuse.
        assert report.plan is not None
        assert report.plan.rules_fused == 0


class TestEngineFallbacks:
    MANIFEST = "svc: {config_search_paths: [/etc/svc], cvl_file: svc.yaml}"

    def _validator(self, rules_text, **kwargs):
        validator = ConfigValidator(
            resolver=lambda _path: rules_text, **kwargs
        )
        validator.add_manifest_text(self.MANIFEST)
        return validator

    def _frame(self):
        return load_frame(dump_frame(_svc_frame()))

    def _pair(self, rules_text):
        planned = self._validator(rules_text).validate_frames(
            [self._frame()], workers=1
        )
        unplanned = self._validator(rules_text, use_plans=False).validate_frames(
            [self._frame()], workers=1
        )
        return planned, unplanned

    def test_unparsable_expression_identical_error(self):
        rules = 'config_name: "Broken["\npreferred_value: ["x"]\n'
        planned, unplanned = self._pair(rules)
        assert _render_triple(planned) == _render_triple(unplanned)
        assert planned.plan.rules_fallback == 1

    def test_duplicate_names_run_unfused_identically(self):
        rules = (
            'config_name: Port\npreferred_value: ["22"]\n---\n'
            'config_name: Port\npreferred_value: ["2222"]\n'
        )
        planned, unplanned = self._pair(rules)
        assert _render_triple(planned) == _render_triple(unplanned)
        assert planned.plan.rules_fused == 0
