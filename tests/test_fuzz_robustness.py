"""Fuzz-style robustness properties.

Every parser in the system has a documented failure mode (its subsystem's
ReproError subclass).  Arbitrary input must either parse or raise exactly
that — never IndexError, RecursionError, or a hang.  These properties are
what make the validator safe to point at untrusted container filesystems.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    CompositeExpressionError,
    CVLError,
    LensError,
    PathExpressionError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.augtree.lenses import default_registry
from repro.augtree.path import parse_path
from repro.cvl.composite_expr import parse_composite
from repro.cvl.loader import load_rules
from repro.schema import default_schema_registry, parse_query

_text = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    max_size=300,
)
_configish = st.text(
    alphabet="abcdefgh =:{}[]<>/#;\"'\n\t.-_*!@()|&?%$,0123456789\\",
    max_size=300,
)


class TestLensRobustness:
    @pytest.mark.parametrize("lens_name", default_registry().names())
    @settings(max_examples=8, deadline=None)
    @given(text=_configish)
    def test_lens_parses_or_raises_lens_error(self, lens_name, text):
        lens = default_registry().get(lens_name)
        try:
            tree = lens.parse(text)
        except LensError:
            return
        assert tree.size() >= 0  # whatever parsed must be a usable tree

    @pytest.mark.parametrize("lens_name", default_registry().names())
    @settings(max_examples=4, deadline=None)
    @given(text=_text)
    def test_lens_survives_arbitrary_unicode(self, lens_name, text):
        lens = default_registry().get(lens_name)
        try:
            lens.parse(text)
        except LensError:
            pass


class TestSchemaRobustness:
    @pytest.mark.parametrize("parser_name", default_schema_registry().names())
    @settings(max_examples=8, deadline=None)
    @given(text=_configish)
    def test_parser_parses_or_raises_schema_error(self, parser_name, text):
        parser = default_schema_registry().get(parser_name)
        try:
            table = parser.parse(text)
        except SchemaError:
            return
        for row in table:
            assert len(row.values) == len(table.columns)


class TestExpressionRobustness:
    @settings(max_examples=20, deadline=None)
    @given(text=_configish)
    def test_path_expressions(self, text):
        try:
            parse_path(text)
        except PathExpressionError:
            pass

    @settings(max_examples=20, deadline=None)
    @given(text=_configish)
    def test_queries(self, text):
        try:
            parse_query(text)
        except QueryError:
            pass

    @settings(max_examples=20, deadline=None)
    @given(text=_configish)
    def test_composites(self, text):
        try:
            parse_composite(text)
        except CompositeExpressionError:
            pass


class TestLoaderRobustness:
    @settings(max_examples=25, deadline=None)
    @given(text=_configish)
    def test_load_rules_raises_only_cvl_errors(self, text):
        try:
            load_rules(text)
        except CVLError:
            pass

    @settings(max_examples=20, deadline=None)
    @given(
        mapping=st.dictionaries(
            st.sampled_from(
                ["config_name", "preferred_value", "tags", "severity",
                 "permission", "config_path", "enabled", "bogus_key",
                 "preferred_value_match", "script"]
            ),
            st.one_of(
                st.text(max_size=20),
                st.integers(),
                st.booleans(),
                st.lists(st.text(max_size=8), max_size=3),
                st.none(),
            ),
            max_size=6,
        )
    )
    def test_build_rule_raises_only_repro_errors(self, mapping):
        from repro.cvl.loader import build_rule

        try:
            build_rule(mapping)
        except ReproError:
            pass


class TestFrameJsonRobustness:
    @settings(max_examples=20, deadline=None)
    @given(text=_configish)
    def test_load_frame_raises_only_crawler_errors(self, text):
        from repro.errors import CrawlerError, FilesystemError
        from repro.crawler.serialize import load_frame

        try:
            load_frame(text)
        except (CrawlerError, FilesystemError):
            pass


class TestReDoSRegressions:
    """Inputs that previously caused catastrophic regex backtracking."""

    def test_path_expression_backslash_bomb(self):
        evil = '"' + "\\" * 200 + "x"
        with pytest.raises(PathExpressionError):
            parse_path(evil)

    def test_query_backslash_bomb(self):
        evil = "'" + "\\" * 200 + "x"
        with pytest.raises(QueryError):
            parse_query(evil)

    def test_double_quoted_query_backslash_bomb(self):
        evil = 'col = "' + "\\" * 200 + "x"
        with pytest.raises(QueryError):
            parse_query(evil)

    def test_composite_bare_equals_terminates(self):
        # Previously an infinite loop in the tokenizer.
        with pytest.raises(CompositeExpressionError):
            parse_composite("a = b")

    def test_composite_lone_equals_terminates(self):
        with pytest.raises(CompositeExpressionError):
            parse_composite("=")
