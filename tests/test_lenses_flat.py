"""Tests for the flat-format lenses: keyvalue, sysctl, sshd, modprobe,
properties."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LensError
from repro.augtree.lenses import (
    KeyValueLens,
    ModprobeLens,
    PropertiesLens,
    SshdLens,
    SysctlLens,
)


class TestKeyValueLens:
    def test_equals_separator(self):
        tree = KeyValueLens().parse("A = valA\n")
        assert tree.value_of("A") == "valA"

    def test_colon_separator(self):
        tree = KeyValueLens().parse("key: value\n")
        assert tree.value_of("key") == "value"

    def test_space_separator(self):
        tree = KeyValueLens().parse("key value\n")
        assert tree.value_of("key") == "value"

    def test_earliest_separator_wins(self):
        tree = KeyValueLens().parse("key = a:b\n")
        assert tree.value_of("key") == "a:b"

    def test_bare_flag_has_no_value(self):
        tree = KeyValueLens().parse("standalone\n")
        assert tree.first("standalone").value is None

    def test_comments_and_blanks_skipped(self):
        tree = KeyValueLens().parse("# comment\n\n; other comment\nk = v\n")
        assert tree.size() == 1

    def test_inline_comment_stripped(self):
        tree = KeyValueLens().parse("k = v # trailing\n")
        assert tree.value_of("k") == "v"

    def test_quoted_value_unquoted(self):
        tree = KeyValueLens().parse('k = "hello world"\n')
        assert tree.value_of("k") == "hello world"

    def test_hash_inside_quotes_preserved(self):
        tree = KeyValueLens().parse('k = "a # b"\n')
        assert tree.value_of("k") == "a # b"

    def test_backslash_continuation(self):
        tree = KeyValueLens().parse("k = one \\\ntwo\n")
        assert tree.value_of("k") == "one two"

    def test_repeated_keys_kept(self):
        tree = KeyValueLens().parse("k = 1\nk = 2\n")
        assert [n.value for n in tree.match("k")] == ["1", "2"]

    @given(
        pairs=st.dictionaries(
            st.text(alphabet="abcdef_", min_size=1, max_size=8),
            st.text(alphabet="xyz0123456789", min_size=1, max_size=8),
            min_size=1,
            max_size=10,
        )
    )
    def test_roundtrip_property(self, pairs):
        text = "\n".join(f"{k} = {v}" for k, v in pairs.items())
        tree = KeyValueLens().parse(text)
        for key, value in pairs.items():
            assert tree.value_of(key) == value


class TestSysctlLens:
    def test_dotted_keys_stay_single_labels(self):
        tree = SysctlLens().parse("net.ipv4.ip_forward = 0\n")
        assert tree.value_of("net.ipv4.ip_forward") == "0"
        assert tree.first("net") is None

    def test_missing_equals_raises_with_line(self):
        with pytest.raises(LensError) as exc:
            SysctlLens().parse("ok = 1\nbroken line\n")
        assert "line 2" in str(exc.value)

    def test_empty_key_rejected(self):
        with pytest.raises(LensError):
            SysctlLens().parse("= 1\n")

    def test_semicolon_comments(self):
        tree = SysctlLens().parse("; comment\nkernel.x = 1\n")
        assert tree.size() == 1

    def test_value_with_spaces(self):
        tree = SysctlLens().parse("net.ipv4.ping_group_range = 0 2147483647\n")
        assert tree.value_of("net.ipv4.ping_group_range") == "0 2147483647"


class TestSshdLens:
    def test_space_form(self):
        tree = SshdLens().parse("PermitRootLogin no\n")
        assert tree.value_of("PermitRootLogin") == "no"

    def test_equals_form(self):
        tree = SshdLens().parse("PermitRootLogin=no\n")
        assert tree.value_of("PermitRootLogin") == "no"

    def test_match_blocks_nest(self):
        tree = SshdLens().parse(
            "X11Forwarding no\n"
            "Match User bob\n"
            "  X11Forwarding yes\n"
            "Match Address 10.0.0.0/8\n"
            "  PermitRootLogin yes\n"
        )
        assert tree.value_of("X11Forwarding") == "no"
        matches = tree.match("Match")
        assert [m.value for m in matches] == ["User bob", "Address 10.0.0.0/8"]
        assert tree.value_of("Match[1]/X11Forwarding") == "yes"

    def test_keyword_case_preserved(self):
        tree = SshdLens().parse("permitrootlogin no\n")
        assert tree.first("permitrootlogin") is not None

    def test_multiarg_value(self):
        tree = SshdLens().parse("AllowUsers alice bob carol\n")
        assert tree.value_of("AllowUsers") == "alice bob carol"

    def test_comments_skipped(self):
        tree = SshdLens().parse("# PermitRootLogin yes\nPort 22\n")
        assert tree.first("PermitRootLogin") is None


class TestModprobeLens:
    def test_install_directive(self):
        tree = ModprobeLens().parse("install cramfs /bin/true\n")
        assert tree.value_of("install[.='cramfs']/command") == "/bin/true"

    def test_blacklist(self):
        tree = ModprobeLens().parse("blacklist dccp\n")
        assert tree.first("blacklist[.='dccp']") is not None

    def test_options_split_into_children(self):
        tree = ModprobeLens().parse("options snd_hda slots=1 power_save=0\n")
        node = tree.first("options[.='snd_hda']")
        assert node.get("slots") == "1"
        assert node.get("power_save") == "0"

    def test_alias(self):
        tree = ModprobeLens().parse("alias net-pf-31 off\n")
        assert tree.value_of("alias[.='net-pf-31']/module") == "off"

    def test_unknown_directive_rejected(self):
        with pytest.raises(LensError):
            ModprobeLens().parse("frobnicate cramfs\n")

    def test_directive_without_module_rejected(self):
        with pytest.raises(LensError):
            ModprobeLens().parse("install\n")


class TestPropertiesLens:
    def test_equals(self):
        tree = PropertiesLens().parse("log4j.rootLogger=INFO, console\n")
        assert tree.value_of("log4j.rootLogger") == "INFO, console"

    def test_colon(self):
        tree = PropertiesLens().parse("key: value\n")
        assert tree.value_of("key") == "value"

    def test_whitespace_separator(self):
        tree = PropertiesLens().parse("key value\n")
        assert tree.value_of("key") == "value"

    def test_escaped_space_in_key(self):
        tree = PropertiesLens().parse("a\\ b = c\n")
        assert tree.value_of('"a b"') == "c"

    def test_bang_comment(self):
        tree = PropertiesLens().parse("! a comment\nk=v\n")
        assert tree.size() == 1

    def test_continuation(self):
        tree = PropertiesLens().parse("k=one,\\\ntwo\n")
        assert tree.value_of("k") == "one,two"
