"""Unit tests for the union/overlay filesystem (Docker layer semantics)."""

import pytest

from repro.errors import FileNotFoundInFrame
from repro.fs import (
    OverlayFilesystem,
    VirtualFilesystem,
    flatten,
    whiteout_for,
)
from repro.fs.overlay import OPAQUE_MARKER


def _layer(**files) -> VirtualFilesystem:
    fs = VirtualFilesystem()
    for path, content in files.items():
        fs.write_file("/" + path.replace("__", "/"), content)
    return fs


class TestShadowing:
    def test_upper_layer_wins(self):
        lower = _layer(**{"etc__conf": "old"})
        upper = _layer(**{"etc__conf": "new"})
        overlay = OverlayFilesystem([lower, upper])
        assert overlay.read_text("/etc/conf") == "new"

    def test_lower_visible_when_not_shadowed(self):
        lower = _layer(**{"etc__base": "base"})
        upper = _layer(**{"etc__extra": "extra"})
        overlay = OverlayFilesystem([lower, upper])
        assert overlay.read_text("/etc/base") == "base"
        assert overlay.read_text("/etc/extra") == "extra"

    def test_listdir_merges_layers(self):
        lower = _layer(**{"etc__a": "", "etc__b": ""})
        upper = _layer(**{"etc__c": ""})
        overlay = OverlayFilesystem([lower, upper])
        assert overlay.listdir("/etc") == ["a", "b", "c"]

    def test_stat_comes_from_topmost_provider(self):
        lower = VirtualFilesystem()
        lower.write_file("/f", "x", mode=0o644)
        upper = VirtualFilesystem()
        upper.write_file("/f", "y", mode=0o600)
        overlay = OverlayFilesystem([lower, upper])
        assert overlay.stat("/f").mode == 0o600

    def test_empty_layerlist_rejected(self):
        with pytest.raises(ValueError):
            OverlayFilesystem([])


class TestWhiteouts:
    def test_whiteout_hides_lower_file(self):
        lower = _layer(**{"etc__secret": "hide me"})
        upper = VirtualFilesystem()
        upper.write_file(whiteout_for("/etc/secret"), "")
        overlay = OverlayFilesystem([lower, upper])
        assert not overlay.exists("/etc/secret")
        with pytest.raises(FileNotFoundInFrame):
            overlay.read_text("/etc/secret")

    def test_whiteout_hides_from_listdir(self):
        lower = _layer(**{"etc__secret": "", "etc__keep": ""})
        upper = VirtualFilesystem()
        upper.write_file(whiteout_for("/etc/secret"), "")
        overlay = OverlayFilesystem([lower, upper])
        assert overlay.listdir("/etc") == ["keep"]

    def test_recreate_after_whiteout_in_same_layer(self):
        lower = _layer(**{"etc__conf": "v1"})
        upper = VirtualFilesystem()
        upper.write_file(whiteout_for("/etc/conf"), "")
        upper.write_file("/etc/conf", "v2")
        overlay = OverlayFilesystem([lower, upper])
        assert overlay.read_text("/etc/conf") == "v2"

    def test_whiteout_of_directory_hides_children(self):
        lower = _layer(**{"opt__app__conf": "x"})
        upper = VirtualFilesystem()
        upper.write_file(whiteout_for("/opt/app"), "")
        overlay = OverlayFilesystem([lower, upper])
        assert not overlay.exists("/opt/app/conf")
        assert not overlay.exists("/opt/app")

    def test_whiteout_markers_invisible(self):
        lower = _layer(**{"etc__gone": ""})
        upper = VirtualFilesystem()
        upper.write_file(whiteout_for("/etc/gone"), "")
        overlay = OverlayFilesystem([lower, upper])
        assert ".wh.gone" not in overlay.listdir("/etc")

    def test_opaque_directory_hides_lower_entries(self):
        lower = _layer(**{"etc__app__old": ""})
        upper = VirtualFilesystem()
        upper.write_file(f"/etc/app/{OPAQUE_MARKER}", "")
        upper.write_file("/etc/app/new", "")
        overlay = OverlayFilesystem([lower, upper])
        assert overlay.listdir("/etc/app") == ["new"]
        assert not overlay.exists("/etc/app/old")


class TestFlatten:
    def test_flatten_materializes_merged_view(self):
        lower = _layer(**{"etc__a": "A", "etc__b": "old"})
        upper = _layer(**{"etc__b": "new"})
        merged = flatten(OverlayFilesystem([lower, upper]))
        assert merged.read_text("/etc/a") == "A"
        assert merged.read_text("/etc/b") == "new"

    def test_flatten_preserves_metadata(self):
        lower = VirtualFilesystem()
        lower.write_file("/s", "x", mode=0o600, uid=5, gid=6,
                         owner="app", group="app")
        merged = flatten(OverlayFilesystem([lower]))
        stat = merged.stat("/s")
        assert (stat.mode, stat.uid, stat.gid) == (0o600, 5, 6)

    def test_flatten_applies_whiteouts(self):
        lower = _layer(**{"etc__gone": ""})
        upper = VirtualFilesystem()
        upper.write_file(whiteout_for("/etc/gone"), "")
        merged = flatten(OverlayFilesystem([lower, upper]))
        assert not merged.exists("/etc/gone")


class TestThreeLayers:
    def test_middle_layer_deletion_then_top_recreation(self):
        bottom = _layer(**{"f": "v1"})
        middle = VirtualFilesystem()
        middle.write_file(whiteout_for("/f"), "")
        top = _layer(**{"f": "v3"})
        overlay = OverlayFilesystem([bottom, middle, top])
        assert overlay.read_text("/f") == "v3"

    def test_deletion_stays_effective_without_recreation(self):
        bottom = _layer(**{"f": "v1"})
        middle = VirtualFilesystem()
        middle.write_file(whiteout_for("/f"), "")
        top = _layer(**{"other": ""})
        overlay = OverlayFilesystem([bottom, middle, top])
        assert not overlay.exists("/f")
