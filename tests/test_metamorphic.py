"""Metamorphic properties of the engine and substrates.

These don't check specific verdicts -- they check invariants that must
hold under transformations: reordering rules, duplicating frames,
filtering by tags, flattening overlays, serializing frames.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.fs import OverlayFilesystem, VirtualFilesystem, flatten
from repro.crawler import Crawler, HostEntity
from repro.crawler.serialize import dump_frame, load_frame
from repro.cvl import Manifest, RuleSet
from repro.engine import ConfigValidator, Verdict
from repro.rules import load_builtin_validator
from repro.workloads import generate_keyvalue_config, generate_tree_rules, ubuntu_host_entity


def _verdict_map(report):
    return {
        (r.entity, r.rule.name): r.verdict
        for r in report
        if r.rule.rule_type != "composite"
    }


class TestEngineMetamorphic:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_rule_order_does_not_change_verdicts(self, seed):
        config = generate_keyvalue_config(60, misconfig_rate=0.3, seed=seed)
        fs = VirtualFilesystem()
        fs.write_file("/etc/synthetic/synthetic.conf", config)
        frame = Crawler().crawl(HostEntity("m", fs), features=("files",))

        rules = list(generate_tree_rules(60))
        shuffled = list(rules)
        random.Random(seed).shuffle(shuffled)

        def run(rule_list):
            validator = ConfigValidator()
            validator.add_ruleset(
                Manifest(entity="synthetic", cvl_file="<m>",
                         config_search_paths=["/etc/synthetic"]),
                RuleSet(entity="synthetic", rules=rule_list),
            )
            return _verdict_map(validator.validate_frame(frame))

        assert run(rules) == run(shuffled)

    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        hardening=st.sampled_from([0.0, 0.5, 1.0]),
    )
    def test_duplicating_a_frame_keeps_per_rule_verdicts(self, seed, hardening):
        validator = load_builtin_validator(only=["sshd", "sysctl", "fstab"])
        frame = Crawler().crawl(
            ubuntu_host_entity("dup", hardening=hardening, seed=seed)
        )
        single = _verdict_map(validator.validate_frame(frame))
        doubled_report = validator.validate_frames([frame, frame])
        # Every (entity, rule) verdict from the single run appears, with the
        # same value, in the doubled run.
        doubled = _verdict_map(doubled_report)
        assert single == doubled

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_tag_filter_yields_subset_with_same_verdicts(self, seed):
        validator = load_builtin_validator(only=["sshd", "sysctl"])
        frame = Crawler().crawl(
            ubuntu_host_entity("tagf", hardening=0.5, seed=seed)
        )
        full = _verdict_map(validator.validate_frame(frame))
        filtered = _verdict_map(
            validator.validate_frame(frame, tags=["#cis"])
        )
        assert set(filtered) <= set(full)
        for key, verdict in filtered.items():
            assert full[key] == verdict

    @settings(max_examples=3, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        hardening=st.sampled_from([0.2, 0.8]),
    )
    def test_validation_is_deterministic(self, seed, hardening):
        validator = load_builtin_validator(only=["sshd", "audit"])
        frame = Crawler().crawl(
            ubuntu_host_entity("det", hardening=hardening, seed=seed)
        )
        first = _verdict_map(validator.validate_frame(frame))
        second = _verdict_map(validator.validate_frame(frame))
        assert first == second


_layer_files = st.dictionaries(
    st.sampled_from(["/etc/a", "/etc/b", "/etc/sub/c", "/opt/d"]),
    st.text(alphabet="xyz", max_size=5),
    max_size=4,
)


class TestSubstrateMetamorphic:
    @settings(max_examples=20, deadline=None)
    @given(layers=st.lists(_layer_files, min_size=1, max_size=4))
    def test_flatten_preserves_overlay_view(self, layers):
        stacks = []
        for files in layers:
            fs = VirtualFilesystem()
            for path, content in files.items():
                fs.write_file(path, content)
            stacks.append(fs)
        overlay = OverlayFilesystem(stacks)
        merged = flatten(overlay)
        overlay_files = {
            f"{d}/{n}".replace("//", "/")
            for d, _s, names in overlay.walk("/")
            for n in names
        }
        merged_files = {
            f"{d}/{n}".replace("//", "/")
            for d, _s, names in merged.walk("/")
            for n in names
        }
        assert overlay_files == merged_files
        for path in overlay_files:
            assert merged.read_text(path) == overlay.read_text(path)

    @settings(max_examples=10, deadline=None)
    @given(files=_layer_files, seed=st.integers(min_value=0, max_value=99))
    def test_serialize_roundtrip_preserves_walk(self, files, seed):
        fs = VirtualFilesystem()
        for path, content in files.items():
            fs.write_file(path, content, mode=0o640 if seed % 2 else 0o644)
        frame = Crawler().crawl(HostEntity("s", fs), features=("files",))
        restored = load_frame(dump_frame(frame))
        assert list(restored.files.walk("/")) == list(frame.files.walk("/"))
        for path in files:
            assert restored.read_config(path) == frame.read_config(path)
            assert restored.stat(path).mode == frame.stat(path).mode
