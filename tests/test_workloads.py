"""Tests for the workload generators (determinism, rates, shapes)."""

from repro.crawler import Crawler
from repro.workloads import (
    FleetSpec,
    build_cloud_project,
    build_fleet,
    build_ubuntu_host,
    generate_keyvalue_config,
    generate_tree_rules,
    ubuntu_host_entity,
)
from repro.workloads.rulegen import generate_nginx_config, generate_sysctl_config
from repro.augtree.lenses import NginxLens, SysctlLens


class TestHosts:
    def test_deterministic_for_same_seed(self):
        a = build_ubuntu_host(hardening=0.5, seed=42)
        b = build_ubuntu_host(hardening=0.5, seed=42)
        assert a.read_text("/etc/ssh/sshd_config") == b.read_text(
            "/etc/ssh/sshd_config"
        )

    def test_different_seeds_differ(self):
        a = build_ubuntu_host(hardening=0.5, seed=1)
        b = build_ubuntu_host(hardening=0.5, seed=2)
        assert a.read_text("/etc/ssh/sshd_config") != b.read_text(
            "/etc/ssh/sshd_config"
        )

    def test_hardening_extremes(self):
        hardened = build_ubuntu_host(hardening=1.0)
        stock = build_ubuntu_host(hardening=0.0)
        assert "PermitRootLogin no" in hardened.read_text("/etc/ssh/sshd_config")
        assert "PermitRootLogin yes" in stock.read_text("/etc/ssh/sshd_config")
        assert "/tmp" in hardened.read_text("/etc/fstab")
        assert "/tmp" not in stock.read_text("/etc/fstab")

    def test_entity_carries_packages(self):
        entity = ubuntu_host_entity("p")
        assert entity.package_db().installed("openssh-server")

    def test_optional_applications(self):
        fs = build_ubuntu_host(with_nginx=True, with_hadoop=True)
        assert fs.exists("/etc/nginx/nginx.conf")
        assert fs.exists("/etc/hadoop/yarn-site.xml")
        bare = build_ubuntu_host()
        assert not bare.exists("/etc/nginx/nginx.conf")


class TestFleet:
    def test_shape(self):
        daemon, images, containers = build_fleet(
            FleetSpec(images=6, containers_per_image=3, seed=5)
        )
        assert len(images) == 6
        assert len(containers) == 18
        assert len(daemon.images()) == 6
        assert len(daemon.containers()) == 18

    def test_deterministic(self):
        _d1, _i1, c1 = build_fleet(FleetSpec(images=4, seed=9))
        _d2, _i2, c2 = build_fleet(FleetSpec(images=4, seed=9))
        assert [c.host_config.privileged for c in c1] == [
            c.host_config.privileged for c in c2
        ]

    def test_zero_misconfig_rate_is_fully_hardened(self):
        _d, images, containers = build_fleet(
            FleetSpec(images=4, containers_per_image=2, misconfig_rate=0.0)
        )
        assert all(c.host_config.memory > 0 for c in containers)
        assert all(not c.host_config.privileged for c in containers)
        assert all(i.config.user for i in images)

    def test_full_misconfig_rate_has_findings_everywhere(self):
        _d, images, containers = build_fleet(
            FleetSpec(images=4, containers_per_image=2, misconfig_rate=1.0)
        )
        assert all(c.host_config.memory == 0 for c in containers)
        assert all(not i.config.user for i in images)


class TestCloud:
    def test_violations_toggle(self):
        crawler = Crawler()
        clean = crawler.crawl(build_cloud_project("c1", violations=False))
        dirty = crawler.crawl(build_cloud_project("c2", violations=True))
        assert clean.runtime_value("cloud", "derived.world_open_ssh") == "false"
        assert dirty.runtime_value("cloud", "derived.world_open_ssh") == "true"

    def test_instance_count(self):
        entity = build_cloud_project("c3", instances=7)
        assert len(entity.cloud.project("c3").instances) == 7


class TestRuleGen:
    def test_keyvalue_config_size_and_rate(self):
        text = generate_keyvalue_config(100, misconfig_rate=0.0)
        assert text.count("= enabled") == 100
        text = generate_keyvalue_config(100, misconfig_rate=1.0)
        assert text.count("= disabled") == 100

    def test_tree_rules_match_config(self):
        rules = generate_tree_rules(10)
        assert len(rules) == 10
        assert rules.rules[3].name == "setting_0003"

    def test_generated_nginx_parses(self):
        tree = NginxLens().parse(generate_nginx_config(25))
        assert len(tree.match("http/server")) == 25

    def test_generated_sysctl_parses(self):
        tree = SysctlLens().parse(generate_sysctl_config(200))
        assert tree.size() == 200
