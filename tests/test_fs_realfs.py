"""Tests for the real-filesystem adapter (uses pytest tmp_path)."""

import pytest

from repro.errors import FileNotFoundInFrame, IsADirectoryInFrame
from repro.fs import FileKind, RealFilesystem


@pytest.fixture()
def rootfs(tmp_path):
    (tmp_path / "etc" / "ssh").mkdir(parents=True)
    (tmp_path / "etc" / "ssh" / "sshd_config").write_text("PermitRootLogin no\n")
    (tmp_path / "etc" / "motd").write_text("welcome\n")
    return RealFilesystem(str(tmp_path))


class TestRealFilesystem:
    def test_read_text(self, rootfs):
        assert rootfs.read_text("/etc/motd") == "welcome\n"

    def test_exists(self, rootfs):
        assert rootfs.exists("/etc/ssh/sshd_config")
        assert not rootfs.exists("/etc/nothing")

    def test_is_dir(self, rootfs):
        assert rootfs.is_dir("/etc")
        assert not rootfs.is_dir("/etc/motd")

    def test_listdir(self, rootfs):
        assert rootfs.listdir("/etc") == ["motd", "ssh"]

    def test_missing_read_raises(self, rootfs):
        with pytest.raises(FileNotFoundInFrame):
            rootfs.read_text("/nope")

    def test_read_directory_raises(self, rootfs):
        with pytest.raises(IsADirectoryInFrame):
            rootfs.read_text("/etc")

    def test_stat_kind_and_mode(self, rootfs, tmp_path):
        (tmp_path / "etc" / "motd").chmod(0o640)
        stat = rootfs.stat("/etc/motd")
        assert stat.kind is FileKind.FILE
        assert stat.mode == 0o640

    def test_stat_missing_raises(self, rootfs):
        with pytest.raises(FileNotFoundInFrame):
            rootfs.stat("/nope")

    def test_walk_and_find(self, rootfs):
        assert rootfs.find("/", "sshd_config") == ["/etc/ssh/sshd_config"]

    def test_rooting_prevents_escape_above_root(self, rootfs):
        # ".." segments are normalized before hitting the host path.
        assert not rootfs.exists("/../../etc/passwd-outside")
