"""Tests for the content-addressed parse cache and stage instrumentation."""

import threading

import pytest

from repro.crawler import Crawler, HostEntity
from repro.engine import ConfigValidator
from repro.engine.normalizer import Normalizer
from repro.engine.parse_cache import CacheStats, ParseCache, content_digest
from repro.engine.stages import STAGES, StageTimings
from repro.fs import VirtualFilesystem


def _frame(files: dict[str, str]):
    fs = VirtualFilesystem()
    for path, content in files.items():
        fs.write_file(path, content)
    return Crawler().crawl(HostEntity("cache-host", fs))


class TestParseCache:
    def test_hit_and_miss_counters(self):
        cache = ParseCache(maxsize=8)
        calls = []
        key = (content_digest("a=1\n"), "tree", "keyvalue")
        for _ in range(3):
            cache.get_or_parse(key, 4, lambda: calls.append(1) or "artifact")
        stats = cache.stats()
        assert len(calls) == 1
        assert (stats.hits, stats.misses) == (2, 1)
        assert stats.bytes_parsed == 4
        assert stats.bytes_deduped == 8
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction_is_bounded(self):
        cache = ParseCache(maxsize=2)
        for i in range(5):
            cache.get_or_parse((f"digest{i}", "tree", "kv"), 1, lambda i=i: i)
        stats = cache.stats()
        assert len(cache) == 2
        assert stats.evictions == 3
        # Least-recently-used entries left; the newest two remain.
        assert cache.get_or_parse(("digest4", "tree", "kv"), 1,
                                  lambda: "reparsed") == 4

    def test_lru_recency_updated_on_hit(self):
        cache = ParseCache(maxsize=2)
        cache.get_or_parse(("a", "tree", "kv"), 1, lambda: "A")
        cache.get_or_parse(("b", "tree", "kv"), 1, lambda: "B")
        cache.get_or_parse(("a", "tree", "kv"), 1, lambda: "A2")  # refresh a
        cache.get_or_parse(("c", "tree", "kv"), 1, lambda: "C")   # evicts b
        assert cache.get_or_parse(("a", "tree", "kv"), 1, lambda: "miss") == "A"
        assert cache.get_or_parse(("b", "tree", "kv"), 1,
                                  lambda: "miss") == "miss"

    def test_maxsize_zero_disables_storage(self):
        cache = ParseCache(maxsize=0)
        calls = []
        key = ("digest", "tree", "kv")
        for _ in range(3):
            cache.get_or_parse(key, 1, lambda: calls.append(1) or "x")
        assert len(calls) == 3
        assert len(cache) == 0
        assert cache.stats().misses == 3

    def test_parse_failure_caches_nothing(self):
        cache = ParseCache()

        def boom():
            raise ValueError("bad parse")

        with pytest.raises(ValueError):
            cache.get_or_parse(("d", "tree", "kv"), 1, boom)
        assert len(cache) == 0
        assert cache.get_or_parse(("d", "tree", "kv"), 1, lambda: "ok") == "ok"

    def test_clear_resets_counters(self):
        cache = ParseCache()
        cache.get_or_parse(("d", "tree", "kv"), 5, lambda: "x")
        cache.clear()
        assert cache.stats() == CacheStats()

    def test_thread_hammering_is_consistent(self):
        cache = ParseCache(maxsize=64)
        barrier = threading.Barrier(8)
        results = []

        def worker():
            barrier.wait()
            for i in range(200):
                value = cache.get_or_parse(
                    (f"digest{i % 16}", "tree", "kv"), 1, lambda i=i: i % 16
                )
                results.append((i % 16, value))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(key == value for key, value in results)
        stats = cache.stats()
        assert stats.lookups == 8 * 200
        assert len(cache) == 16


class TestContentAddressing:
    def test_identical_content_parses_once_across_frames(self):
        content = "PermitRootLogin no\nPort 22\n"
        frames = [
            _frame({"/etc/ssh/sshd_config": content}) for _ in range(4)
        ]
        cache = ParseCache()
        normalizer = Normalizer(cache=cache)
        trees = [
            normalizer.tree_for(frame, "/etc/ssh/sshd_config")
            for frame in frames
        ]
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 3
        assert all(tree is trees[0] for tree in trees)

    def test_different_content_parses_separately(self):
        frame_a = _frame({"/etc/ssh/sshd_config": "Port 22\n"})
        frame_b = _frame({"/etc/ssh/sshd_config": "Port 2222\n"})
        cache = ParseCache()
        normalizer = Normalizer(cache=cache)
        tree_a = normalizer.tree_for(frame_a, "/etc/ssh/sshd_config")
        tree_b = normalizer.tree_for(frame_b, "/etc/ssh/sshd_config")
        assert cache.stats().misses == 2
        assert tree_a.first("Port").value != tree_b.first("Port").value

    def test_cache_survives_across_runs(self):
        """The validator-owned cache dedupes across scan cycles."""
        content = "Port 22\n"
        validator = ConfigValidator(
            resolver=lambda _path: "config_name: Port\npreferred_value: ['22']\n"
        )
        validator.add_manifest_text(
            "sshd: {config_search_paths: [/etc/ssh], cvl_file: sshd.yaml}"
        )
        for _ in range(3):
            frame = _frame({"/etc/ssh/sshd_config": content})
            report = validator.validate_frame(frame)
            assert report.compliant
        stats = validator.cache_stats()
        assert stats.misses == 1
        assert stats.hits == 2

    def test_frame_tokens_never_alias(self):
        """Unlike id(), tokens of dead frames are never reused."""
        seen = set()
        for _ in range(50):
            frame = _frame({"/etc/a": "x"})
            assert frame.cache_token not in seen
            seen.add(frame.cache_token)

    def test_files_in_search_paths_returns_cached_list(self):
        frame = _frame({"/etc/ssh/sshd_config": "Port 22\n"})
        normalizer = Normalizer()
        first = normalizer.files_in_search_paths(frame, ["/etc/ssh"])
        second = normalizer.files_in_search_paths(frame, ["/etc/ssh"])
        assert first is second  # no per-call copying


class TestStageTimings:
    def test_accumulates_and_renders(self):
        timings = StageTimings()
        timings.add("parse", 0.25, count=3)
        timings.add("evaluate", 0.75)
        assert timings.seconds("parse") == pytest.approx(0.25)
        assert timings.count("parse") == 3
        assert timings.total_seconds == pytest.approx(1.0)
        rendered = timings.render()
        for stage in STAGES:
            assert stage in rendered
        assert "25.0%" in rendered and "75.0%" in rendered

    def test_timer_context(self):
        timings = StageTimings()
        with timings.timer("crawl"):
            pass
        assert timings.count("crawl") == 1
        assert timings.seconds("crawl") >= 0.0

    def test_merge(self):
        first, second = StageTimings(), StageTimings()
        first.add("parse", 1.0)
        second.add("parse", 2.0, count=2)
        first.merge(second)
        assert first.seconds("parse") == pytest.approx(3.0)
        assert first.count("parse") == 3

    def test_thread_safety(self):
        timings = StageTimings()

        def worker():
            for _ in range(1000):
                timings.add("evaluate", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert timings.count("evaluate") == 8000
        assert timings.seconds("evaluate") == pytest.approx(8.0)
