"""Thread-vs-process telemetry parity for the cross-process trace fabric.

The process backend must be *observationally* equivalent to the thread
backend, not just result-equivalent: a merged trace carries the same
frame/stage/rule spans (on worker pid lanes), the per-rule profiler
reports the same call counts, and the deterministic Prometheus counters
land on the same values.  Two categories are legitimately
backend-specific and excluded from the strict comparison:

- ``parse`` spans: every worker process parses into its own cache, so a
  process run records more parse spans than a thread run (same files,
  different dedup domain);
- ``shard`` spans: the dispatch envelope around each worker shard only
  exists under the process backend.

The fault tests then kill/fault workers mid-cycle and assert a partial
worker capture never corrupts the merged trace -- the shard falls back
to the parent, which records the telemetry itself.
"""

import json
from collections import Counter as MultiSet

import pytest

from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.engine import render_text
from repro.engine.incremental import VerdictStore
from repro.exec import ProcessBackend
from repro.rules import load_builtin_validator
from repro.telemetry import Telemetry
from repro.telemetry.export import to_chrome_trace, write_chrome_trace
from repro.telemetry.traceview import (
    analyze_trace,
    load_trace,
    render_trace_analysis,
)
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity

WORKER_COUNTS = (1, 8)

#: Categories excluded from the strict multiset comparison (see module
#: docstring).
BACKEND_SPECIFIC = frozenset({"parse", "shard"})


def make_frames(seed=11, images=3, containers=2, hosts=2):
    _daemon, imgs, containers_ = build_fleet(
        FleetSpec(images=images, containers_per_image=containers,
                  misconfig_rate=0.4, seed=seed)
    )
    entities = [DockerImageEntity(i) for i in imgs]
    entities += [ContainerEntity(c) for c in containers_]
    entities += [
        ubuntu_host_entity(f"trace-host-{i}", hardening=0.5, seed=i,
                           with_nginx=True, with_mysql=True)
        for i in range(hosts)
    ]
    return Crawler().crawl_many(entities)


@pytest.fixture(scope="module")
def frames():
    return make_frames()


def scan(frames, *, executor, workers, use_plans=True, store=None,
         shard_size=2, fault_shards=None):
    """One telemetry-on cycle; returns (telemetry, report, spans)."""
    telemetry = Telemetry()
    validator = load_builtin_validator(
        telemetry=telemetry, use_plans=use_plans, verdict_store=store,
    )
    validator.executor = executor
    validator.shard_size = shard_size
    if fault_shards is not None:
        backend = ProcessBackend(timeout_s=30)
        backend.fault_shards = fault_shards
        validator._exec_backend = backend
    try:
        report = validator.validate_frames(frames, workers=workers)
        spans = telemetry.spans.finished()
    finally:
        validator.close()
    return telemetry, report, spans


def family_samples(telemetry, name):
    telemetry.metrics.collect()
    for family in telemetry.metrics.families():
        if family.name == name:
            return family.samples()
    return []


def observed_state(telemetry, spans):
    """Everything that must match across backends, as a plain dict."""
    telemetry.metrics.collect()
    family_names = {f.name for f in telemetry.metrics.families()}
    return {
        "span_multiset": MultiSet(
            (span.name, span.category) for span in spans
            if span.category not in BACKEND_SPECIFIC
        ),
        "rules_evaluated": family_samples(
            telemetry, "repro_rules_evaluated_total"),
        "frames_scanned": family_samples(
            telemetry, "repro_frames_scanned_total"),
        "rule_eval_counts": [
            (key, child.count) for key, child in family_samples(
                telemetry, "repro_rule_eval_seconds")
        ],
        "profiler_rules": sorted(
            (entry.key, entry.calls, entry.errors)
            for entry in telemetry.profiler.entries("rule")
        ),
        # The dispatch layer's own families only exist under sharded
        # backends; everything else must agree.
        "families": {name for name in family_names
                     if not name.startswith("repro_exec_")},
    }


def assert_trace_well_formed(spans):
    """Every parent reference resolves; one root is the run span.

    (Plan compilation may record additional parent-side root events
    outside the run span -- both backends do, so parity still holds.)
    """
    ids = {span.span_id for span in spans}
    roots = [span for span in spans if span.parent_id is None]
    assert len(ids) == len(spans), "duplicate span ids after merge"
    assert any(root.name == "validate_frames" for root in roots)
    for span in spans:
        if span.parent_id is not None:
            assert span.parent_id in ids, (
                f"dangling parent {span.parent_id} on {span.name}"
            )


class TestTelemetryParity:
    @pytest.mark.parametrize("use_plans", (True, False),
                             ids=("plan", "no-plan"))
    @pytest.mark.parametrize("incremental", (False, True),
                             ids=("full", "incremental"))
    def test_process_observations_match_thread(self, frames, use_plans,
                                               incremental):
        reference = None
        for executor in ("thread", "process"):
            for workers in WORKER_COUNTS:
                store = VerdictStore() if incremental else None
                if store is not None:
                    # Warm cycle outside the observed telemetry.
                    warm = load_builtin_validator(
                        verdict_store=store, use_plans=use_plans)
                    warm.validate_frames(frames)
                    warm.close()
                telemetry, _report, spans = scan(
                    frames, executor=executor, workers=workers,
                    use_plans=use_plans, store=store,
                )
                state = observed_state(telemetry, spans)
                assert_trace_well_formed(spans)
                if reference is None:
                    reference = state
                    continue
                for key in ("span_multiset", "rules_evaluated",
                            "frames_scanned", "rule_eval_counts",
                            "profiler_rules", "families"):
                    assert state[key] == reference[key], (
                        f"{key} diverged: {executor} x {workers} workers "
                        f"(plans={use_plans}, incremental={incremental})"
                    )

    def test_profiler_reports_worker_rules(self, frames):
        telemetry, report, _spans = scan(
            frames, executor="process", workers=4)
        entries = telemetry.profiler.entries("rule")
        assert entries, "no worker rule profiles reached the parent"
        assert sum(e.calls for e in entries) == len(report)
        rendered = telemetry.profiler.render(top=5)
        assert "hottest rules" in rendered


class TestWorkerLanes:
    def test_worker_spans_on_distinct_pid_lanes(self, frames):
        telemetry, _report, spans = scan(
            frames, executor="process", workers=4)
        worker_pids = {span.pid for span in spans if span.pid is not None}
        assert len(worker_pids) >= 2, "expected multiple worker lanes"
        worker_cats = {span.category for span in spans
                       if span.pid is not None}
        assert {"frame", "stage", "rule"} <= worker_cats
        # Parent-side spans (run span, shard envelopes) carry no pid
        # override and render on the parent lane.
        assert all(span.pid is None for span in spans
                   if span.category == "shard")

    def test_chrome_export_has_per_pid_metadata(self, frames):
        telemetry, _report, spans = scan(
            frames, executor="process", workers=4)
        payload = to_chrome_trace(telemetry.spans)
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "process_name"}
        assert any(n.startswith("repro worker (pid ") for n in names)
        assert any(n == "repro (parent)" for n in names)
        # Every event's pid has a process_name row.
        named_pids = {e["pid"] for e in meta if e["name"] == "process_name"}
        assert {e["pid"] for e in complete} <= named_pids

    def test_worker_frames_inside_their_shard_window(self, frames):
        _telemetry, _report, spans = scan(
            frames, executor="process", workers=4)
        by_id = {span.span_id: span for span in spans}
        shard_frames = 0
        for span in spans:
            if span.category != "frame" or span.pid is None:
                continue
            node = span
            while node.parent_id is not None:
                node = by_id[node.parent_id]
                if node.category == "shard":
                    break
            assert node.category == "shard", (
                f"worker frame {span.name} not under a shard span"
            )
            # Wall-clock re-basing vs the parent's perf-counter shard
            # window: allow a small skew margin.
            slack = 0.05
            assert span.start_s >= node.start_s - slack
            assert (span.start_s + span.duration_s
                    <= node.start_s + node.duration_s + slack)
            shard_frames += 1
        assert shard_frames == len(frames)


class TestFaultDegradation:
    @pytest.mark.parametrize("fault", ("exit", "error"))
    def test_partial_capture_never_corrupts_the_trace(self, frames, fault):
        baseline_telemetry, baseline_report, baseline_spans = scan(
            frames, executor="thread", workers=4)
        reference = observed_state(baseline_telemetry, baseline_spans)
        telemetry, report, spans = scan(
            frames, executor="process", workers=2,
            fault_shards={0: fault},
        )
        assert (render_text(report, verbose=True)
                == render_text(baseline_report, verbose=True))
        assert report.exec_stats.frames_fallback > 0
        assert_trace_well_formed(spans)
        state = observed_state(telemetry, spans)
        # The faulted shard's frames re-validate in the parent, which
        # records their telemetry itself -- observations still match the
        # thread backend exactly.
        for key in ("span_multiset", "rules_evaluated", "frames_scanned",
                    "profiler_rules"):
            assert state[key] == reference[key], f"{key} diverged ({fault})"


class TestTraceAnalysis:
    @pytest.fixture(scope="class")
    def trace_path(self, frames, tmp_path_factory):
        telemetry, _report, _spans = scan(
            frames, executor="process", workers=4)
        path = tmp_path_factory.mktemp("trace") / "merged.json"
        write_chrome_trace(telemetry.spans, str(path))
        return str(path)

    def test_analysis_sections(self, trace_path):
        events = load_trace(trace_path)
        analysis = analyze_trace(events, top=10)
        assert analysis["root"]["name"] == "validate_frames"
        assert analysis["processes"] >= 3
        path = analysis["critical_path"]
        assert path and path[0]["name"] == "validate_frames"
        assert all(hop["duration_ms"] >= 0 for hop in path)
        shards = analysis["shards"]
        assert shards is not None
        assert shards["count"] == sum(
            1 for e in events if e.cat == "shard")
        assert shards["queue_wait_ms"] >= 0
        assert shards["execution_ms"] > 0
        labels = {lane["label"] for lane in analysis["workers"]}
        assert "parent" in labels
        assert any(label.startswith("worker pid") for label in labels)
        rendered = render_trace_analysis(analysis, top=10)
        assert "critical path" in rendered
        assert "worker lanes" in rendered
        assert "shards (" in rendered

    def test_cli_trace_json(self, trace_path, capsys):
        from repro.cli import main

        assert main(["trace", trace_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] > 0
        assert payload["shards"]["count"] > 0

    def test_cli_trace_text_and_errors(self, trace_path, capsys, tmp_path):
        from repro.cli import main

        assert main(["trace", trace_path]) == 0
        assert "critical path" in capsys.readouterr().out
        bogus = tmp_path / "not-a-trace.json"
        bogus.write_text("{}")
        assert main(["trace", str(bogus)]) == 2
