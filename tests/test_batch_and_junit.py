"""Tests for the fleet batch scanner, severity policy, and JUnit output."""

import xml.etree.ElementTree as ET

import pytest

from repro.crawler import ContainerEntity, DockerImageEntity
from repro.engine.batch import (
    BatchScanner,
    FleetSummary,
    render_fleet_summary,
    severity_rank,
)
from repro.engine.report import render_junit
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity


@pytest.fixture(scope="module")
def fleet_summary():
    validator = load_builtin_validator()
    _daemon, images, containers = build_fleet(
        FleetSpec(images=5, containers_per_image=3, misconfig_rate=0.5, seed=21)
    )
    entities = [DockerImageEntity(i) for i in images]
    entities += [ContainerEntity(c) for c in containers]
    scanner = BatchScanner(validator)
    return scanner.scan_entities(entities)


class TestSeverityRank:
    def test_order(self):
        assert severity_rank("critical") > severity_rank("high")
        assert severity_rank("high") > severity_rank("medium")
        assert severity_rank("medium") > severity_rank("low")
        assert severity_rank("low") > severity_rank("informational")

    def test_unknown_is_lowest(self):
        assert severity_rank("nonsense") == 0


class TestBatchScanner:
    def test_summary_shape(self, fleet_summary):
        assert isinstance(fleet_summary, FleetSummary)
        assert fleet_summary.entities_scanned == 20
        assert fleet_summary.throughput > 0
        assert 0.0 < fleet_summary.compliance_rate() < 1.0

    def test_rule_rollups_consistent_with_report(self, fleet_summary):
        total_failed = sum(r.failed for r in fleet_summary.rules.values())
        assert total_failed == len(fleet_summary.report.failed())
        total_passed = sum(r.passed for r in fleet_summary.rules.values())
        assert total_passed == len(fleet_summary.report.passed())

    def test_top_failing_rules_sorted(self, fleet_summary):
        top = fleet_summary.top_failing_rules(5)
        fails = [rollup.failed for rollup in top]
        assert fails == sorted(fails, reverse=True)

    def test_worst_entities_have_findings(self, fleet_summary):
        worst = fleet_summary.worst_entities(3)
        assert worst[0].failed >= worst[-1].failed
        assert worst[0].failed > 0

    def test_failures_at_least_filters_by_severity(self, fleet_summary):
        high = fleet_summary.failures_at_least("high")
        assert all(
            r.rule.severity in ("high", "critical") for r in high
        )
        assert len(high) <= len(fleet_summary.failures_at_least("low"))

    def test_tag_rollup_counts_failures(self, fleet_summary):
        assert fleet_summary.tag_failures.get("#cis", 0) > 0

    def test_scan_frames_path(self):
        from repro.crawler import Crawler

        validator = load_builtin_validator()
        frames = Crawler().crawl_many(
            [ubuntu_host_entity("fa", hardening=1.0),
             ubuntu_host_entity("fb", hardening=0.0)]
        )
        summary = BatchScanner(validator).scan_frames(frames)
        assert summary.entities_scanned == 2
        assert summary.report.failed()

    def test_render_summary(self, fleet_summary):
        text = render_fleet_summary(fleet_summary)
        assert "top failing rules:" in text
        assert "worst entities:" in text
        assert "failures by tag:" in text
        assert "compliance:" in text


class TestErrorAndNARollups:
    """Erroring/inapplicable rules must show up on the dashboard."""

    RULES = """
config_name: Port
file_context: ["sshd_config"]
preferred_value: ["22"]
---
config_schema_name: broken_schema
schema_parser: no_such_parser
query_constraints: "dir = ?"
query_constraints_value: ["/tmp"]
query_columns: "*"
---
script_name: needs_docker
script: docker HostConfig.Privileged
preferred_value: ["false"]
"""

    @pytest.fixture(scope="class")
    def summary(self):
        from repro.crawler import Crawler, HostEntity
        from repro.engine import ConfigValidator
        from repro.fs import VirtualFilesystem

        validator = ConfigValidator(resolver=lambda _path: self.RULES)
        validator.add_manifest_text(
            "svc: {config_search_paths: [/etc/ssh], cvl_file: svc.yaml}"
        )
        entities = []
        for name, port in (("good-host", 22), ("bad-host", 2222)):
            fs = VirtualFilesystem()
            fs.write_file("/etc/ssh/sshd_config", f"Port {port}\n")
            entities.append(HostEntity(name, fs))
        frames = Crawler().crawl_many(entities)
        return BatchScanner(validator).scan_frames(frames)

    def test_error_rollup_counted(self, summary):
        rollup = summary.rules[("svc", "broken_schema")]
        assert rollup.errors == 2
        assert rollup.message
        assert rollup.checked == 0  # errors never count as pass/fail

    def test_not_applicable_rollup_counted(self, summary):
        rollup = summary.rules[("svc", "needs_docker")]
        assert rollup.not_applicable == 2
        assert rollup.errors == 0
        assert rollup.checked == 0

    def test_pass_fail_rollup_unaffected(self, summary):
        rollup = summary.rules[("svc", "Port")]
        assert (rollup.passed, rollup.failed) == (1, 1)
        assert rollup.errors == rollup.not_applicable == 0

    def test_erroring_rules_ranking(self, summary):
        flagged = summary.erroring_rules()
        assert [r.rule_name for r in flagged] == [
            "broken_schema", "needs_docker"
        ]

    def test_errors_do_not_create_entity_rollups(self, summary):
        # Only the Port rule produced pass/fail, so each entity rollup
        # checked exactly one rule.
        assert all(e.checked == 1 for e in summary.entities.values())

    def test_render_shows_error_section(self, summary):
        text = render_fleet_summary(summary)
        assert "rules with errors:" in text
        assert "svc/broken_schema" in text
        # N/A-only rules are not errors and stay out of that section.
        assert "svc/needs_docker" not in text


class TestJUnitOutput:
    @pytest.fixture(scope="class")
    def report(self):
        validator = load_builtin_validator(only=["sshd", "sysctl"])
        return validator.validate_entity(
            ubuntu_host_entity("junit-host", hardening=0.5, seed=3)
        )

    def test_wellformed_xml(self, report):
        root = ET.fromstring(render_junit(report))
        assert root.tag == "testsuite"
        assert int(root.get("tests")) == report.counts()["total"]
        assert int(root.get("failures")) == report.counts()["noncompliant"]

    def test_failures_carry_messages(self, report):
        root = ET.fromstring(render_junit(report))
        failures = root.findall(".//failure")
        assert len(failures) == len(report.failed())
        assert all(f.get("message") for f in failures)

    def test_passing_cases_are_empty_elements(self, report):
        root = ET.fromstring(render_junit(report))
        passed = [
            case
            for case in root.findall("testcase")
            if not list(case)
        ]
        assert len(passed) == len(report.passed())

    def test_quoting_survives_odd_rule_names(self, validator):
        report = validator.validate_entity(
            ubuntu_host_entity("quoting", hardening=1.0)
        )
        # modprobe rule names contain quotes and brackets.
        xml_text = render_junit(report)
        root = ET.fromstring(xml_text)
        names = {case.get("name") for case in root.iter("testcase")}
        assert any("install[.='cramfs']" in name for name in names)
