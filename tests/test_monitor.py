"""FleetMonitor contract tests.

The acceptance bar for the monitor (ISSUE 4):

* its regression/fix events must *exactly* match what
  :func:`repro.engine.drift.diff_reports` computes between consecutive
  cycle reports;
* its per-cycle report must stay byte-identical to a standalone
  ``repro validate`` of the same fleet state at any worker count --
  monitoring is observation, never perturbation;
* ``/metrics`` and ``/status`` must be scrapeable *while* the loop is
  running;
* flap detection must agree with a brute-force sliding-window oracle on
  randomized verdict oscillations (hypothesis).
"""

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest
from hypothesis import given, settings, strategies as st

from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.crawler.serialize import dump_frame, load_frame
from repro.engine import render_json
from repro.engine.batch import BatchScanner
from repro.engine.drift import diff_reports
from repro.history import (
    EventLog,
    FlapDetector,
    FleetMonitor,
    HealthAnalyzer,
    HealthEvent,
    HistoryStore,
    MonitorConfig,
    WebhookSink,
    count_transitions,
)
from repro.rules import load_builtin_validator
from repro.telemetry import Telemetry
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity

SSHD = "/etc/ssh/sshd_config"


@pytest.fixture(scope="module")
def base_blobs():
    """A small serialized fleet: 1 image, 1 container, 1 host."""
    _daemon, images, containers = build_fleet(
        FleetSpec(images=1, containers_per_image=1, misconfig_rate=0.3,
                  seed=9)
    )
    entities = [DockerImageEntity(i) for i in images]
    entities += [ContainerEntity(c) for c in containers]
    entities.append(
        ubuntu_host_entity("mon-host", hardening=0.8, seed=4)
    )
    return [dump_frame(frame) for frame in Crawler().crawl_many(entities)]


def _host_frame(frames):
    for frame in frames:
        if frame.files.exists(SSHD):
            return frame
    raise AssertionError("no frame with an sshd_config")


def _fleet_state(blobs, cycle_no):
    """Fresh frames for one cycle: cycle 2 regresses sshd, 3+ reverts."""
    frames = [load_frame(blob) for blob in blobs]
    if cycle_no == 2:
        host = _host_frame(frames)
        text = host.files.read_text(SSHD)
        host.files.write_file(
            SSHD,
            text.replace("PermitRootLogin no", "PermitRootLogin yes")
            + "\nPasswordAuthentication yes\n",
        )
    return frames


def _make_monitor(blobs, store, *, cycles, workers=1, telemetry=None,
                  sinks=(), reports=None, provider=None, **config):
    scanner = BatchScanner(load_builtin_validator(),
                           telemetry=telemetry or Telemetry())

    def on_cycle(_cycle_no, cycle_id, summary, events):
        if reports is not None:
            reports.append((cycle_id, summary, list(events)))

    return FleetMonitor(
        scanner, store,
        frames_provider=provider or (lambda n: _fleet_state(blobs, n)),
        config=MonitorConfig(interval_s=0.0, max_cycles=cycles,
                             workers=workers, **config),
        sinks=sinks,
        on_cycle=on_cycle,
    )


def _drift_events(reports):
    """The oracle: diff consecutive reports exactly as ``repro drift``
    would, keyed the same way the monitor's events are."""
    expected = []
    for previous, current in zip(reports, reports[1:]):
        drift = diff_reports(previous, current)
        for kind, entries in (("regression", drift.regressions()),
                              ("fix", drift.fixes())):
            for entry in entries:
                expected.append((
                    kind, entry.target, entry.entity, entry.rule_name,
                    entry.before.value if entry.before else "",
                    entry.after.value if entry.after else "",
                ))
    return expected


def _event_tuples(events):
    return [(e.kind, e.target, e.entity, e.rule, e.before, e.after)
            for e in events if e.kind in ("regression", "fix")]


class TestEventStream:
    def test_events_exactly_match_diff_reports(self, base_blobs):
        reports = []
        with HistoryStore() as store:
            monitor = _make_monitor(base_blobs, store, cycles=4,
                                    reports=reports)
            stats = monitor.run()
        assert stats.cycles == 4 and stats.scan_errors == 0
        observed = [event for _id, _summary, events in reports
                    for event in events]
        expected = _drift_events(
            [summary.report for _id, summary, _events in reports]
        )
        assert _event_tuples(observed) == expected
        # The scripted mutation must actually produce both event kinds.
        kinds = {event.kind for event in observed}
        assert "regression" in kinds and "fix" in kinds

    def test_events_persist_to_ndjson(self, base_blobs, tmp_path):
        path = str(tmp_path / "events.ndjson")
        reports = []
        with HistoryStore() as store, EventLog(path) as event_log:
            monitor = _make_monitor(base_blobs, store, cycles=3,
                                    sinks=(event_log,), reports=reports)
            monitor.run()
        emitted = [event for _id, _summary, events in reports
                   for event in events]
        assert emitted, "mutation produced no events"
        replayed = EventLog.read(path)
        assert [e.to_dict() for e in replayed] \
            == [e.to_dict() for e in emitted]

    def test_scan_error_is_survived(self, base_blobs):
        def provider(cycle_no):
            if cycle_no == 2:
                raise RuntimeError("crawler exploded")
            return _fleet_state(base_blobs, 1)

        reports = []
        with HistoryStore() as store:
            monitor = _make_monitor(base_blobs, store, cycles=3,
                                    reports=reports, provider=provider)
            stats = monitor.run()
            error_rows = [row for row in store.cycles()
                          if row.failed_cycle]
        assert stats.cycles == 3
        assert stats.scan_errors == 1
        assert stats.events_by_kind.get("scan_error") == 1
        # The error cycle is a row; the next good cycle diffs against
        # the last good one, so the identical fleet produces no events.
        _id, summary, events = reports[-1]
        assert summary is not None and events == []
        assert len(error_rows) == 1
        assert error_rows[0].scan_error.startswith("RuntimeError")

    def test_restart_diffs_against_stored_cycle(self, base_blobs):
        """Across a daemon restart the first diff runs on stored
        verdicts and must classify identically to a live diff."""
        reports = []
        with HistoryStore() as store:
            first = _make_monitor(base_blobs, store, cycles=1,
                                  reports=reports)
            first.run()
            # "Restart": a brand-new monitor + analyzer on the same
            # store observes the mutated fleet as its first cycle.
            second = _make_monitor(
                base_blobs, store, cycles=1, reports=reports,
                provider=lambda _n: _fleet_state(base_blobs, 2),
            )
            second.run()
        live_expected = _drift_events(
            [summary.report for _id, summary, _events in reports]
        )
        _id, _summary, restart_events = reports[-1]
        assert _event_tuples(restart_events) == live_expected
        assert live_expected, "restart cycle produced no drift"


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_final_report_matches_standalone_validate(self, base_blobs,
                                                      workers):
        with HistoryStore() as store:
            monitor = _make_monitor(base_blobs, store, cycles=3,
                                    workers=workers)
            monitor.run()
            monitored = render_json(monitor.last_summary.report)
        reference = load_builtin_validator().validate_frames(
            _fleet_state(base_blobs, 3), workers=1
        )
        assert monitored == render_json(reference)


class TestLiveEndpoint:
    def test_endpoints_scrapeable_mid_run(self, base_blobs):
        with HistoryStore() as store:
            monitor = _make_monitor(base_blobs, store, cycles=6,
                                    status_cycles=4)
            monitor.config.interval_s = 0.25
            server = monitor.serve(0)
            thread = threading.Thread(target=monitor.run)
            thread.start()
            try:
                base = f"http://127.0.0.1:{server.port}"
                deadline = time.time() + 30
                while not monitor.ready and time.time() < deadline:
                    time.sleep(0.02)
                assert monitor.ready, "no cycle completed in 30s"
                assert thread.is_alive(), "loop ended before the scrape"

                with urllib.request.urlopen(f"{base}/healthz") as response:
                    assert response.read() == b"ok\n"
                with urllib.request.urlopen(f"{base}/readyz") as response:
                    assert response.read() == b"ready\n"
                with urllib.request.urlopen(f"{base}/status") as response:
                    status = json.loads(response.read())
                assert status["ready"] is True
                assert status["cycles_completed"] >= 1
                assert status["max_cycles"] == 6
                assert status["last_cycle"]["checks"] > 0
                with urllib.request.urlopen(f"{base}/metrics") as response:
                    metrics = response.read().decode("utf-8")
                assert "repro_monitor_cycles_total" in metrics
                assert "repro_history_db_cycles" in metrics
                assert "repro_fleet_compliance_ratio" in metrics
                with urllib.request.urlopen(f"{base}/history") as response:
                    history = json.loads(response.read())
                assert 1 <= len(history["cycles"]) <= 4
                assert history["targets"]
            finally:
                monitor.request_stop()
                thread.join()
                server.close()

    def test_readyz_503_before_first_cycle(self, base_blobs):
        with HistoryStore() as store:
            monitor = _make_monitor(base_blobs, store, cycles=1)
            server = monitor.serve(0)
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(
                        f"http://127.0.0.1:{server.port}/readyz"
                    )
                assert excinfo.value.code == 503
            finally:
                server.close()


class _WebhookReceiver(BaseHTTPRequestHandler):
    batches: list[dict] = []
    failures_left = 0

    def do_POST(self):  # noqa: N802 (http.server naming)
        body = self.rfile.read(int(self.headers["Content-Length"]))
        if type(self).failures_left > 0:
            type(self).failures_left -= 1
            self.send_response(500)
            self.end_headers()
            return
        type(self).batches.append(json.loads(body))
        self.send_response(200)
        self.end_headers()

    def log_message(self, *args):
        pass


@pytest.fixture()
def webhook_server():
    _WebhookReceiver.batches = []
    _WebhookReceiver.failures_left = 0
    server = ThreadingHTTPServer(("127.0.0.1", 0), _WebhookReceiver)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_port}/hook", _WebhookReceiver
    server.shutdown()
    server.server_close()


class TestWebhookSink:
    def _events(self):
        return [HealthEvent(kind="regression", cycle_id=7, target="t",
                            entity="e", rule="r", before="compliant",
                            after="noncompliant")]

    def test_delivers_batch(self, webhook_server):
        url, receiver = webhook_server
        sink = WebhookSink(url, timeout=5.0)
        events = self._events()
        sink.emit_many(events)
        assert sink.delivered == 1 and sink.failed_batches == 0
        assert receiver.batches == [
            {"events": [events[0].to_dict()]}
        ]

    def test_retries_then_succeeds(self, webhook_server):
        url, receiver = webhook_server
        receiver.failures_left = 1
        sink = WebhookSink(url, timeout=5.0, retries=2, backoff_s=0.01)
        sink.emit_many(self._events())
        assert sink.delivered == 1 and sink.failed_batches == 0

    def test_dead_endpoint_never_raises(self):
        sink = WebhookSink("http://127.0.0.1:9/hook", timeout=0.2,
                           retries=1, backoff_s=0.0)
        sink.emit_many(self._events())
        assert sink.delivered == 0 and sink.failed_batches == 1


class TestFlapDetection:
    def test_oscillation_starts_then_stability_ends_a_flap(self):
        detector = FlapDetector(window=6, min_transitions=3)
        key = ("host:a", "sshd", "root-login")
        verdicts = ["compliant", "noncompliant", "compliant",
                    "noncompliant"]
        events = [detector.observe_cycle({key: v}) for v in verdicts]
        assert events[-1] == ([key], [])          # 3rd transition: start
        assert detector.flapping() == [key]
        stable = [detector.observe_cycle({key: "noncompliant"})
                  for _ in range(5)]
        # The flap ends exactly once, when the oscillation scrolls out
        # of the window, and never restarts.
        assert [ends for _starts, ends in stable].count([key]) == 1
        assert all(starts == [] for starts, _ends in stable)
        assert detector.flapping() == []

    def test_disappearing_key_ends_its_flap(self):
        detector = FlapDetector(window=4, min_transitions=2)
        key = ("host:a", "sshd", "root-login")
        for verdict in ("compliant", "noncompliant", "compliant"):
            detector.observe_cycle({key: verdict})
        assert detector.flapping() == [key]
        starts, ends = detector.observe_cycle({})
        assert (starts, ends) == ([], [key])
        assert detector.series(key) == ()

    @settings(max_examples=60, deadline=None)
    @given(
        verdicts=st.lists(
            st.sampled_from(["compliant", "noncompliant", "error"]),
            min_size=1, max_size=40,
        ),
        window=st.integers(min_value=2, max_value=8),
        data=st.data(),
    )
    def test_matches_sliding_window_oracle(self, verdicts, window, data):
        """At every step, flapping state equals the brute-force oracle
        (>= min_transitions changes within the last ``window``
        verdicts), and start/end events are exactly its transitions."""
        min_transitions = data.draw(
            st.integers(min_value=1, max_value=window - 1)
        )
        detector = FlapDetector(window=window,
                                min_transitions=min_transitions)
        key = ("f", "e", "r")
        was_flapping = False
        for step, verdict in enumerate(verdicts):
            starts, ends = detector.observe_cycle({key: verdict})
            tail = verdicts[max(0, step + 1 - window):step + 1]
            oracle = count_transitions(tail) >= min_transitions
            assert (key in detector.flapping()) == oracle
            assert starts == ([key] if oracle and not was_flapping else [])
            assert ends == ([key] if was_flapping and not oracle else [])
            was_flapping = oracle

    def test_monitor_emits_flap_events_for_oscillating_rule(
            self, base_blobs):
        """End to end: a fleet whose sshd posture oscillates every cycle
        must surface flap_start through the monitor."""
        reports = []
        with HistoryStore() as store:
            monitor = _make_monitor(
                base_blobs, store, cycles=5, reports=reports,
                provider=lambda n: _fleet_state(base_blobs,
                                                2 if n % 2 == 0 else 1),
                flap_window=4, flap_min_transitions=3,
            )
            stats = monitor.run()
        assert stats.events_by_kind.get("flap_start", 0) >= 1
        flapping = monitor.analyzer.flapping_details()
        assert flapping
        assert all(entry["transitions"] >= 3 for entry in flapping)

    def test_detector_parameter_validation(self):
        with pytest.raises(ValueError):
            FlapDetector(window=1)
        with pytest.raises(ValueError):
            FlapDetector(window=4, min_transitions=4)


class TestAnalyzerRehydration:
    def test_seeded_detector_resumes_mid_streak(self, base_blobs):
        """Rehydration from the store must not re-announce flaps the
        previous process already reported."""
        reports = []
        with HistoryStore() as store:
            oscillate = lambda n: _fleet_state(base_blobs,  # noqa: E731
                                               2 if n % 2 == 0 else 1)
            first = _make_monitor(base_blobs, store, cycles=4,
                                  reports=reports, provider=oscillate,
                                  flap_window=4, flap_min_transitions=3)
            first.run()
            flapping_before = first.analyzer.flapping()
            assert flapping_before
            analyzer = HealthAnalyzer(store, flap_window=4,
                                      flap_min_transitions=3)
            assert analyzer.flapping() == flapping_before


class TestMonitorCli:
    def test_monitor_cli_end_to_end(self, tmp_path):
        """`repro monitor --max-cycles 2` over the synthetic fleet:
        store populated, event log created, /metrics live mid-run, and
        the final report byte-identical to the standalone scan."""
        from repro.cli import main

        db = tmp_path / "history.sqlite"
        events = tmp_path / "events.ndjson"
        port_file = tmp_path / "port"
        report_out = tmp_path / "report.json"
        argv = [
            "monitor", "--scenario", "fleet", "--size", "1",
            "--interval", "0.4", "--max-cycles", "2",
            "--history-db", str(db), "--events-out", str(events),
            "--port", "0", "--port-file", str(port_file),
            "--report-out", str(report_out),
        ]
        result: dict = {}

        def run() -> None:
            result["exit"] = main(argv)

        thread = threading.Thread(target=run)
        thread.start()
        try:
            deadline = time.time() + 60
            while not port_file.exists() and time.time() < deadline:
                time.sleep(0.05)
            assert port_file.exists(), "monitor never bound its port"
            port = int(port_file.read_text())
            scraped = ""
            while thread.is_alive() and time.time() < deadline:
                try:
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/metrics", timeout=2
                    ) as response:
                        scraped = response.read().decode("utf-8")
                    if "repro_monitor_cycles_total" in scraped:
                        break  # a cycle has completed mid-run
                except (urllib.error.URLError, OSError):
                    pass
                time.sleep(0.05)
        finally:
            thread.join()
        assert result["exit"] == 0
        assert "repro_monitor_cycles_total" in scraped
        assert events.exists()
        with HistoryStore(str(db)) as store:
            assert store.cycle_count() == 2
            assert all(not row.failed_cycle for row in store.cycles())
        # Byte-identity against the CLI's own fleet builder.
        import argparse

        from repro.cli import _monitor_entities
        from repro.engine import render_json as render

        args = argparse.Namespace(root="", scenario="fleet", size=1,
                                  hardening=0.5, name="host")
        reference = load_builtin_validator().validate_entities(
            _monitor_entities(args)
        )
        assert report_out.read_text() == render(reference) + "\n"
