"""Tests for the crawler, frames, and runtime plugins."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CrawlerError
from repro.fs import VirtualFilesystem
from repro.crawler import (
    CloudEntity,
    ContainerEntity,
    Crawler,
    DockerImageEntity,
    HostEntity,
)
from repro.crawler.docker_sim import DockerDaemon, HostConfig, ImageBuilder
from repro.crawler.plugins import flatten_json
from repro.workloads import build_cloud_project


def _mysql_host() -> HostEntity:
    fs = VirtualFilesystem()
    fs.write_file(
        "/etc/mysql/my.cnf",
        "[mysqld]\nssl-ca = /etc/mysql/ca.pem\nssl-cert = /etc/mysql/c.pem\n"
        "local-infile = 0\n",
    )
    fs.write_file("/etc/sysctl.conf", "net.ipv4.ip_forward = 1\n")
    return HostEntity("db-host", fs)


class TestFlattenJson:
    def test_nested_dict(self):
        flat = flatten_json({"a": {"b": {"c": 1}}})
        assert flat == {"a.b.c": "1"}

    def test_booleans_lowercase(self):
        flat = flatten_json({"x": True, "y": False})
        assert flat == {"x": "true", "y": "false"}

    def test_none_is_empty_string(self):
        assert flatten_json({"x": None}) == {"x": ""}

    def test_scalar_list_joined_and_indexed(self):
        flat = flatten_json({"caps": ["A", "B"]})
        assert flat["caps"] == "A,B"
        assert flat["caps.0"] == "A"
        assert flat["caps.1"] == "B"

    def test_empty_containers(self):
        flat = flatten_json({"a": [], "b": {}})
        assert flat == {"a": "", "b": ""}

    def test_list_of_dicts_indexed_only(self):
        flat = flatten_json({"m": [{"s": "/x"}]})
        assert flat == {"m.0.s": "/x"}

    @given(
        mapping=st.dictionaries(
            st.text(alphabet="abc", min_size=1, max_size=3),
            st.one_of(st.integers(), st.booleans(), st.text(max_size=5)),
            max_size=6,
        )
    )
    def test_flat_mapping_preserves_every_key(self, mapping):
        flat = flatten_json(mapping)
        assert set(flat) == set(mapping)


class TestCrawler:
    def test_frame_contents(self):
        crawler = Crawler()
        frame = crawler.crawl(_mysql_host())
        assert frame.entity_kind == "host"
        assert frame.read_config("/etc/mysql/my.cnf").startswith("[mysqld]")
        assert frame.metadata["name"] == "db-host"

    def test_unknown_feature_rejected(self):
        with pytest.raises(CrawlerError):
            Crawler().crawl(_mysql_host(), features=("files", "telepathy"))

    def test_feature_selection_skips_runtime(self):
        frame = Crawler().crawl(_mysql_host(), features=("files",))
        assert frame.runtime == {}

    def test_crawl_many_preserves_order(self):
        crawler = Crawler()
        frames = crawler.crawl_many([_mysql_host(), _mysql_host()])
        assert len(frames) == 2


class TestMySQLPlugin:
    def test_variables_derived_from_my_cnf(self):
        frame = Crawler().crawl(_mysql_host())
        assert frame.runtime_value("mysql", "have_ssl") == "YES"
        assert frame.runtime_value("mysql", "local_infile") == "0"

    def test_defaults_without_ssl(self):
        fs = VirtualFilesystem()
        fs.write_file("/etc/mysql/my.cnf", "[mysqld]\n")
        frame = Crawler().crawl(HostEntity("h", fs))
        assert frame.runtime_value("mysql", "have_ssl") == "DISABLED"

    def test_plugin_skipped_without_my_cnf(self):
        fs = VirtualFilesystem()
        fs.write_file("/etc/hostname", "h\n")
        frame = Crawler().crawl(HostEntity("h", fs))
        assert "mysql" not in frame.runtime


class TestSysctlPlugin:
    def test_conf_overrides_defaults(self):
        frame = Crawler().crawl(_mysql_host())
        assert frame.runtime_value("sysctl", "net.ipv4.ip_forward") == "1"

    def test_live_state_overrides_conf(self):
        entity = _mysql_host()
        entity.live_sysctl["net.ipv4.ip_forward"] = "0"
        frame = Crawler().crawl(entity)
        assert frame.runtime_value("sysctl", "net.ipv4.ip_forward") == "0"

    def test_exposes_unpinned_defaults(self):
        frame = Crawler().crawl(_mysql_host())
        # Not in sysctl.conf, but visible like `sysctl -a` (paper 2.1.3).
        assert frame.runtime_value("sysctl", "kernel.randomize_va_space") == "2"

    def test_not_run_for_containers(self):
        image = ImageBuilder().add_file("/etc/os-release", "x").build("i")
        daemon = DockerDaemon()
        daemon.add_image(image)
        container = daemon.run("i:latest", "c")
        frame = Crawler().crawl(ContainerEntity(container))
        assert "sysctl" not in frame.runtime


class TestDockerPlugin:
    def test_container_state_flattened(self):
        image = ImageBuilder().user("app").build("i")
        daemon = DockerDaemon()
        daemon.add_image(image)
        container = daemon.run(
            "i:latest", "c", host_config=HostConfig(privileged=True)
        )
        frame = Crawler().crawl(ContainerEntity(container))
        assert frame.runtime_value("docker", "HostConfig.Privileged") == "true"
        assert frame.runtime_value("docker", "Config.User") == "app"

    def test_image_state_flattened(self):
        image = ImageBuilder().user("app").build("i", "2.0")
        frame = Crawler().crawl(DockerImageEntity(image))
        assert frame.runtime_value("docker", "RepoTags") == "i:2.0"


class TestCloudPlugin:
    def test_derived_keys(self):
        entity = build_cloud_project("p", violations=True)
        frame = Crawler().crawl(entity)
        assert frame.runtime_value("cloud", "derived.world_open_ssh") == "true"
        assert frame.runtime_value("cloud", "derived.users_without_mfa") == "bob"
        assert "vm-000" in frame.runtime_value(
            "cloud", "derived.instances_without_keypair"
        )

    def test_clean_project(self):
        entity = build_cloud_project("clean", violations=False)
        frame = Crawler().crawl(entity)
        assert frame.runtime_value("cloud", "derived.world_open_ssh") == "false"
        assert frame.runtime_value("cloud", "derived.users_without_mfa") == ""

    def test_cloud_entity_reads_controller_files(self):
        entity = build_cloud_project("files", violations=False)
        frame = Crawler().crawl(entity)
        assert "provider = fernet" in frame.read_config(
            "/etc/keystone/keystone.conf"
        )
