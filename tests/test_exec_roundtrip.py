"""Serialization round-trips for everything that crosses a process
boundary under ``--executor process`` (satellite of the exec subsystem).

Every artifact the backend ships -- frames, rule results with source
spans, provenance records, ERROR results with tracebacks, verdict-store
slices, stats deltas -- must survive ``encode``/``decode`` with no
observable difference: rendered output byte-identical, spans and
provenance structurally equal.
"""

import traceback

import pytest

from repro.augtree.tree import SourceSpan
from repro.crawler import Crawler
from repro.crawler.serialize import frame_from_dict, frame_to_dict
from repro.engine import render_json, render_text
from repro.engine.incremental import VerdictStore
from repro.engine.results import Evidence, Outcome, RuleResult, Verdict
from repro.exec.envelope import (
    FrameReport,
    InitConfig,
    ShardEnvelope,
    ShardResult,
    decode,
    encode,
)
from repro.exec.backend import build_init_config
from repro.rules import load_builtin_validator
from repro.workloads import ubuntu_host_entity


@pytest.fixture(scope="module")
def host_frame():
    return Crawler().crawl(
        ubuntu_host_entity("rt-host", hardening=0.4, seed=3,
                           with_nginx=True, with_mysql=True)
    )


@pytest.fixture(scope="module")
def provenance_report(host_frame):
    validator = load_builtin_validator(provenance=True)
    report = validator.validate_frame(host_frame)
    for result in report:
        result.provenance  # materialize deferred markers
    return report


class TestFrameRoundTrip:
    def test_frame_document_pickles(self, host_frame):
        doc = frame_to_dict(host_frame)
        rebuilt = frame_from_dict(decode(encode(doc)))
        assert rebuilt.describe() == host_frame.describe()

    def test_rebuilt_frame_validates_identically(self, host_frame):
        rebuilt = frame_from_dict(decode(encode(frame_to_dict(host_frame))))
        original = load_builtin_validator().validate_frame(host_frame)
        mirrored = load_builtin_validator().validate_frame(rebuilt)
        assert render_text(original, verbose=True) == render_text(
            mirrored, verbose=True)
        assert render_json(original) == render_json(mirrored)


class TestResultRoundTrip:
    def test_spans_survive_pickling(self, host_frame):
        report = load_builtin_validator().validate_frame(host_frame)
        spanned = [
            result for result in report
            if any(e.span is not None for e in result.evidence)
        ]
        assert spanned, "host frame must produce span-bearing evidence"
        for result in spanned:
            clone = decode(encode(result))
            for before, after in zip(result.evidence, clone.evidence):
                assert after.span == before.span
                assert isinstance(after.span, SourceSpan) or after.span is None

    def test_provenance_survives_pickling_byte_identically(
            self, provenance_report):
        with_provenance = [
            r for r in provenance_report if r.provenance is not None
        ]
        assert with_provenance
        for result in with_provenance:
            clone = decode(encode(result))
            assert clone.provenance is not None
            assert clone.provenance.to_dict() == result.provenance.to_dict()

    def test_provenance_json_byte_identical(self, provenance_report):
        cloned = decode(encode(list(provenance_report.results)))
        before = [r.provenance.to_dict() for r in provenance_report
                  if r.provenance is not None]
        after = [r.provenance.to_dict() for r in cloned
                 if r.provenance is not None]
        assert before == after

    def test_error_result_with_traceback(self, provenance_report):
        rule = provenance_report.results[0].rule
        try:
            raise ValueError("lens exploded mid-parse")
        except ValueError as error:
            detail = traceback.format_exc()
            evidence = Evidence.from_exception(error)
        result = RuleResult(
            rule=rule, entity="sshd", target="host:rt-host",
            verdict=Verdict.ERROR, outcome=Outcome.EVALUATION_ERROR,
            message="unexpected error", evidence=[evidence], detail=detail,
        )
        clone = decode(encode(result))
        assert clone.detail == detail
        assert "ValueError: lens exploded mid-parse" in clone.detail
        assert clone.evidence[0].location == "exception:ValueError"
        assert clone.verdict is Verdict.ERROR


class TestEnvelopeRoundTrip:
    def test_init_config_for_builtin_validator_pickles(self):
        validator = load_builtin_validator()
        blob = encode(build_init_config(validator))
        config = decode(blob)
        assert isinstance(config, InitConfig)
        assert len(config.packs) == len(
            [m for m in validator.manifests() if m.enabled])

    def test_shard_envelope_round_trip(self, host_frame):
        envelope = ShardEnvelope(
            shard_index=3,
            frame_docs=[frame_to_dict(host_frame)],
            tags=["ssh"], use_plans=False, provenance=True, timings=True,
            store_doc={"format": 1, "entries": []},
        )
        clone = decode(encode(envelope))
        assert clone.shard_index == 3
        assert clone.tags == ["ssh"]
        assert clone.provenance and clone.timings and not clone.use_plans
        assert clone.store_doc == envelope.store_doc

    def test_result_sharing_survives_one_pickle(self, provenance_report):
        """A result in both placements and fresh must cross as ONE object
        (the parent's telemetry counts fresh results by identity)."""
        results = list(provenance_report.results[:4])
        report = FrameReport(
            frame_key="host:rt-host",
            placements=[("sshd", results)],
            fresh=results,
        )
        shard = decode(encode(ShardResult(shard_index=0, reports=[report])))
        placed = shard.reports[0].placements[0][1]
        fresh = shard.reports[0].fresh
        assert all(a is b for a, b in zip(placed, fresh))

    def test_unpicklable_payload_raises_at_encode(self):
        with pytest.raises(Exception):
            encode(ShardEnvelope(
                shard_index=0,
                frame_docs=[{"bad": lambda: None}],
            ))


class TestVerdictStoreSlices:
    def test_export_import_absorb_round_trip(self, host_frame):
        parent = VerdictStore()
        validator = load_builtin_validator(verdict_store=parent)
        validator.validate_frame(host_frame)
        key = host_frame.describe()
        doc = decode(encode(parent.export_slice([key],
                                                include_counters=True)))
        worker = VerdictStore.import_slice(doc)
        # The worker-side slice replays the frame exactly like the parent.
        replay = load_builtin_validator(verdict_store=worker)
        report = replay.validate_frame(host_frame)
        baseline = load_builtin_validator(
            verdict_store=parent).validate_frame(host_frame)
        assert report.incremental.rules_replayed > 0
        assert render_text(report, verbose=True) == render_text(
            baseline, verbose=True)
        # Absorbing the worker slice back is lossless and idempotent.
        fresh = VerdictStore()
        fresh.absorb_slice(worker.export_slice([key], include_counters=True))
        again = load_builtin_validator(verdict_store=fresh).validate_frame(
            host_frame)
        assert render_text(again, verbose=True) == render_text(
            baseline, verbose=True)

    def test_malformed_slice_is_dropped(self):
        store = VerdictStore()
        store.absorb_slice({"format": 999, "entries": "nonsense"})
        store.absorb_slice(None)
        assert VerdictStore.import_slice({"garbage": True}) is not None
