"""End-to-end integration scenarios, including the paper's worked examples."""

from repro import (
    ConfigValidator,
    ContainerEntity,
    Crawler,
    DockerImageEntity,
    HostEntity,
    Verdict,
    load_builtin_validator,
)
from repro.fs import VirtualFilesystem
from repro.crawler.docker_sim import DockerDaemon, HostConfig, ImageBuilder
from repro.workloads import FleetSpec, build_cloud_project, build_fleet


class TestPaperListings:
    """The exact rules from paper Listings 1-5 evaluated end-to-end."""

    RULES = {
        "component_configs/nginx.yaml": """
config_name: ssl_protocols
config_path: ["server", "http/server"]
config_description: "Enables the specified SSL protocols."
preferred_value: [ "TLSv1.2", "TLSv1.3" ]
non_preferred_value: [ "SSLv2", "SSLv3", "TLSv1 ", "TLSv1.1" ]
non_preferred_value_match: substr ,any
preferred_value_match: substr ,any
not_present_description: "ssl_protocols is not present."
not_matched_preferred_value_description: "Non -recommended TLS ver."
matched_description: "ssl_protocols key is set to TLS v1.2/1.3"
tags: ["#security", "#ssl", "#owasp"]
require_other_configs: [ listen , ssl_certificate , ssl_certificate_key ]
file_context: ["nginx.conf", "sites-enabled"]
""",
        "mysql.yaml": """
path_name: /etc/mysql/my.cnf
path_description: "Permissions and ownership for mysql config file"
ownership: "0:0"
permission: 644
tags: [ "#owasp" ]
---
composite_rule_name: "mysql ssl -ca path and sysctl and nginx SSL"
composite_rule_description: "Check if nginx is running with SSL , ip_forward is disabled , and mysql server ssl -ca has a cert"
composite_rule: mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" && sysctl.net.ipv4.ip_forward && nginx.listen
tags: ["docker", "nginx", "sysctl"]
matched_description: "mysql server ssl -ca has a cert , ip_forward is disabled , and nginx has SSL enabled."
not_matched_preferred_value_description: "Either mysql server ssl -ca does not have a cert , or ip_forward is enabled , or nginx has SSL disabled."
""",
        "fstab.yaml": """
config_schema_name: check_tmp_separate_partition
config_schema_description: "Check if /tmp is on a separate partition"
query_constraints: "dir = ?"
query_constraints_value: ["/tmp"]
query_columns: "*"
non_preferred_value: [""]
non_preferred_value_match: exact ,all
schema_parser: fstab
not_matched_preferred_value_description: "/tmp not on sep. partition"
matched_description: "/tmp is on a separate partition"
tags: ["#cis", "#cisubuntu14.04_2.1"]
""",
        "sysctl.yaml": """
config_name: net.ipv4.ip_forward
file_context: ["sysctl.conf"]
preferred_value: ["0"]
preferred_value_match: exact,all
matched_description: "ip_forward is disabled"
""",
    }

    MANIFEST = """
nginx:
  enabled: True
  config_search_paths:
    - /etc/nginx
  cvl_file: "component_configs/nginx.yaml"
mysql: {config_search_paths: [/etc/mysql], cvl_file: mysql.yaml}
fstab: {config_search_paths: [/etc/fstab], cvl_file: fstab.yaml}
sysctl: {config_search_paths: [/etc/sysctl.conf], cvl_file: sysctl.yaml}
"""

    def _validator(self):
        validator = ConfigValidator(resolver=self.RULES.__getitem__)
        validator.add_manifest_text(self.MANIFEST)
        return validator

    def _host(self, *, good=True):
        fs = VirtualFilesystem()
        fs.write_file(
            "/etc/nginx/nginx.conf",
            """
http {
  server {
    listen 443 ssl;
    ssl_certificate /etc/nginx/cert.pem;
    ssl_certificate_key /etc/nginx/key.pem;
    ssl_protocols %s;
  }
}
""" % ("TLSv1.2 TLSv1.3" if good else "SSLv3 TLSv1.2"),
        )
        fs.write_file(
            "/etc/mysql/my.cnf",
            "[mysqld]\nssl-ca = %s\n"
            % ("/etc/mysql/cacert.pem" if good else "/tmp/wrong.pem"),
            mode=0o644,
        )
        fs.write_file(
            "/etc/sysctl.conf",
            f"net.ipv4.ip_forward = {'0' if good else '1'}\n",
        )
        fs.write_file(
            "/etc/fstab",
            "/dev/sda1 / ext4 defaults 0 1\n"
            + ("/dev/sda2 /tmp ext4 nodev 0 2\n" if good else ""),
        )
        return HostEntity("paper-host", fs)

    def test_all_listings_pass_on_good_host(self):
        report = self._validator().validate_entity(self._host(good=True))
        assert report.compliant
        assert report.counts()["total"] == 5

    def test_all_listings_fail_on_bad_host(self):
        report = self._validator().validate_entity(self._host(good=False))
        failed = {r.rule.name for r in report.failed()}
        assert failed == {
            "ssl_protocols",
            "check_tmp_separate_partition",
            "net.ipv4.ip_forward",
            "mysql ssl -ca path and sysctl and nginx SSL",
        }

    def test_listing2_messages_match_paper(self):
        report = self._validator().validate_entity(self._host(good=False))
        ssl = [r for r in report if r.rule.name == "ssl_protocols"][0]
        assert ssl.message == "Non -recommended TLS ver."
        report = self._validator().validate_entity(self._host(good=True))
        ssl = [r for r in report if r.rule.name == "ssl_protocols"][0]
        assert ssl.message == "ssl_protocols key is set to TLS v1.2/1.3"


class TestImageAndContainerDrift:
    """Validate an image, then a container that drifted from it."""

    def test_container_drift_detected(self):
        validator = load_builtin_validator()
        builder = ImageBuilder()
        builder.add_file("/etc/ssh/sshd_config", "PermitRootLogin no\nPort 22\n")
        builder.user("app").healthcheck("CMD", "true")
        image = builder.build("drifty", "1.0")
        daemon = DockerDaemon()
        daemon.add_image(image)
        container = daemon.run(
            "drifty:1.0",
            "c1",
            host_config=HostConfig(
                memory=256 << 20, cpu_shares=2, pids_limit=64,
                readonly_rootfs=True, restart_policy="on-failure",
                security_opt=["no-new-privileges"],
            ),
        )
        # runtime drift: someone enabled root login inside the container
        container.write_file("/etc/ssh/sshd_config", "PermitRootLogin yes\n")

        image_report = validator.validate_entity(DockerImageEntity(image))
        container_report = validator.validate_entity(ContainerEntity(container))

        image_sshd = {
            r.rule.name: r.verdict for r in image_report.for_entity("sshd")
        }
        container_sshd = {
            r.rule.name: r.verdict for r in container_report.for_entity("sshd")
        }
        assert image_sshd["PermitRootLogin"] is Verdict.COMPLIANT
        assert container_sshd["PermitRootLogin"] is Verdict.NONCOMPLIANT

    def test_image_layers_shadow_base_misconfiguration(self):
        validator = load_builtin_validator()
        base_builder = ImageBuilder()
        base_builder.add_file("/etc/ssh/sshd_config", "PermitRootLogin yes\n")
        base = base_builder.build("base", "1.0")
        fixed = (
            ImageBuilder(base)
            .add_file("/etc/ssh/sshd_config", "PermitRootLogin no\n")
            .build("fixed", "1.0")
        )
        base_report = validator.validate_entity(DockerImageEntity(base))
        fixed_report = validator.validate_entity(DockerImageEntity(fixed))
        name = "PermitRootLogin"
        assert any(r.failed for r in base_report if r.rule.name == name)
        assert all(r.passed for r in fixed_report if r.rule.name == name)


class TestFleetScale:
    def test_hundred_entity_group_run(self):
        validator = load_builtin_validator()
        _daemon, images, containers = build_fleet(
            FleetSpec(images=20, containers_per_image=4, misconfig_rate=0.4,
                      seed=3)
        )
        entities = [ContainerEntity(c) for c in containers]
        entities += [DockerImageEntity(i) for i in images]
        report = validator.validate_entities(entities)
        assert len(entities) == 100
        assert report.errors() == []
        # every container produced docker_containers results
        container_targets = {
            r.target for r in report if r.entity == "docker_containers"
        }
        assert len(container_targets) == 100


class TestMixedEstate:
    def test_host_plus_cloud_plus_containers_in_one_run(self, hardened_host):
        validator = load_builtin_validator()
        cloud = build_cloud_project("estate", violations=True)
        _d, images, containers = build_fleet(FleetSpec(images=2, seed=1))
        entities = [hardened_host, cloud]
        entities += [ContainerEntity(c) for c in containers[:3]]
        report = validator.validate_entities(entities)
        kinds = {r.target.split(":", 1)[0].split(",")[0] for r in report}
        assert report.counts()["total"] > 100
        openstack_failures = {
            r.rule.name for r in report.failed() if r.entity == "openstack"
        }
        assert "no_world_open_ssh" in openstack_failures
