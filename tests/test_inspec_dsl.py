"""Unit tests for the Inspec-style DSL (matchers, describes, controls)."""

import pytest

from repro.errors import BaselineError
from repro.fs import VirtualFilesystem
from repro.crawler import Crawler, HostEntity
from repro.baselines.inspec.dsl import (
    Control,
    Describe,
    Profile,
    should_cmp_lte,
    should_eq,
    should_exist,
    should_include,
    should_match,
)


@pytest.fixture()
def frame():
    fs = VirtualFilesystem()
    fs.write_file(
        "/etc/ssh/sshd_config",
        "PermitRootLogin no\nMaxAuthTries 4\nPort 22\n",
        mode=0o600,
    )
    fs.write_file("/etc/sysctl.conf", "net.ipv4.ip_forward = 0\n")
    return Crawler().crawl(HostEntity("dsl-host", fs), features=("files",))


class TestMatchers:
    def test_should_eq(self):
        assert should_eq("no")("no")
        assert not should_eq("no")("yes")

    def test_should_match_handles_none(self):
        assert should_match("no|without-password")("no")
        assert not should_match("no")(None)

    def test_should_exist(self):
        assert should_exist()("anything")
        assert not should_exist()("")
        assert not should_exist()(None)

    def test_should_include_string_and_list(self):
        assert should_include("nodev")("rw,nodev,nosuid")
        assert should_include("a")(["a", "b"])
        assert not should_include("z")(["a", "b"])
        assert not should_include("z")(None)

    def test_should_cmp_lte(self):
        assert should_cmp_lte(4)("4")
        assert should_cmp_lte(4)("3")
        assert not should_cmp_lte(4)("6")
        assert not should_cmp_lte(4)("not-a-number")
        assert not should_cmp_lte(4)(None)


class TestDescribe:
    def test_resource_its_property(self, frame):
        block = Describe(
            subject_kind="resource",
            subject="sshd_config",
            its="PermitRootLogin",
        ).should("eq no", should_eq("no"))
        assert block.evaluate(frame)

    def test_resource_without_its_returns_resource(self, frame):
        block = Describe(
            subject_kind="resource",
            subject="file",
            subject_args=("/etc/ssh/sshd_config",),
        ).should("exists", lambda resource: resource.exists)
        assert block.evaluate(frame)

    def test_bash_subject_with_extraction(self, frame):
        block = Describe(
            subject_kind="bash",
            subject="grep 'PermitRootLogin' /etc/ssh/sshd_config | head -1",
            extract=(r"PermitRootLogin\s+(\S+)", 1),
        ).should("eq no", should_eq("no"))
        assert block.evaluate(frame)

    def test_extraction_miss_yields_none(self, frame):
        block = Describe(
            subject_kind="bash",
            subject="grep 'NoSuchKey' /etc/ssh/sshd_config",
            extract=(r"NoSuchKey\s+(\S+)", 1),
        ).should("eq x", should_eq("x"))
        assert not block.evaluate(frame)

    def test_multiple_matchers_all_must_hold(self, frame):
        block = Describe(
            subject_kind="resource", subject="sshd_config", its="MaxAuthTries"
        )
        block.should("lte 4", should_cmp_lte(4))
        block.should("eq 4", should_eq("4"))
        assert block.evaluate(frame)
        block.should("eq 3", should_eq("3"))
        assert not block.evaluate(frame)

    def test_unknown_subject_kind_rejected(self, frame):
        block = Describe(subject_kind="powershell", subject="Get-Item")
        with pytest.raises(BaselineError):
            block.resolve(frame)


class TestControlAndProfile:
    def test_control_requires_describes(self, frame):
        with pytest.raises(BaselineError):
            Control(control_id="empty").evaluate(frame)

    def test_control_all_describes_must_pass(self, frame):
        control = Control(control_id="c", title="combo")
        control.describe(
            Describe(
                subject_kind="resource", subject="sshd_config",
                its="PermitRootLogin",
            ).should("eq", should_eq("no"))
        )
        control.describe(
            Describe(
                subject_kind="resource", subject="kernel_parameter",
                its="net.ipv4.ip_forward",
            ).should("eq", should_eq("0"))
        )
        assert control.evaluate(frame)

    def test_profile_accumulates_controls(self, frame):
        profile = Profile(name="p")
        profile.add(Control(control_id="a"))
        profile.add(Control(control_id="b"))
        assert [c.control_id for c in profile.controls] == ["a", "b"]
