"""Targeted tests for less-traveled paths across subsystems."""

import pytest

from repro.errors import BaselineError, CVLSyntaxError
from repro.fs import VirtualFilesystem
from repro.crawler import Crawler, HostEntity
from repro.cvl.loader import build_rule, load_rules
from repro.baselines.common_rules import LineCheck
from repro.baselines.inspec.bashsim import run_shell
from repro.baselines.xccdf import (
    OpenScapEngine,
    generate_oval,
    generate_xccdf,
    parse_benchmark,
)


def _frame(**files):
    fs = VirtualFilesystem()
    for path, content in files.items():
        fs.write_file(
            "/" + path.replace("__", "/").replace("_conf", ".conf"), content
        )
    return Crawler().crawl(HostEntity("gap", fs), features=("files",))


class TestOvalNegation:
    """expect="absent" rules become negated OVAL criteria."""

    _ABSENT = LineCheck(
        rule_id="neg-1",
        title="No telnet entries",
        files=("/etc/inetd.conf",),
        pattern=r"^\s*telnet",
        expect="absent",
        description="telnet must not be enabled",
    )

    def test_generated_criteria_negated(self):
        oval = generate_oval([self._ABSENT])
        assert 'negate="true"' in oval

    def test_absent_rule_passes_when_pattern_missing(self):
        frame = _frame(etc__inetd_conf="ftp stream tcp\n")
        results = OpenScapEngine().run(
            generate_xccdf([self._ABSENT]), generate_oval([self._ABSENT]), frame
        )
        assert results[0].passed

    def test_absent_rule_fails_when_pattern_present(self):
        frame = _frame(etc__inetd_conf="telnet stream tcp\n")
        results = OpenScapEngine().run(
            generate_xccdf([self._ABSENT]), generate_oval([self._ABSENT]), frame
        )
        assert not results[0].passed

    def test_missing_file_counts_as_absent(self):
        frame = _frame(etc__hostname="x\n")
        results = OpenScapEngine().run(
            generate_xccdf([self._ABSENT]), generate_oval([self._ABSENT]), frame
        )
        assert results[0].passed

    def test_parse_preserves_negate(self):
        benchmark = parse_benchmark(
            generate_xccdf([self._ABSENT]), generate_oval([self._ABSENT])
        )
        definition = next(iter(benchmark.definitions.values()))
        assert definition.negate


class TestBashSimExtras:
    def test_tail(self, hardened_frame):
        out = run_shell("cat /etc/fstab | tail -2", hardened_frame)
        assert len(out.splitlines()) == 2

    def test_echo_then_grep(self, hardened_frame):
        assert run_shell("echo hello world | grep hello", hardened_frame) == (
            "hello world"
        )

    def test_grep_dash_e_flag(self, hardened_frame):
        out = run_shell(
            "grep -e 'PermitRootLogin' /etc/ssh/sshd_config", hardened_frame
        )
        assert "PermitRootLogin" in out

    def test_grep_case_insensitive(self, hardened_frame):
        out = run_shell(
            "grep -i 'permitrootlogin' /etc/ssh/sshd_config", hardened_frame
        )
        assert "PermitRootLogin" in out

    def test_unsupported_grep_flag_rejected(self, hardened_frame):
        with pytest.raises(BaselineError):
            run_shell("grep -P 'x' /etc/fstab", hardened_frame)

    def test_grep_without_pattern_rejected(self, hardened_frame):
        with pytest.raises(BaselineError):
            run_shell("grep", hardened_frame)

    def test_wc_unsupported_args_rejected(self, hardened_frame):
        with pytest.raises(BaselineError):
            run_shell("cat /etc/fstab | wc -c", hardened_frame)

    def test_pipe_inside_quotes_not_split(self, hardened_frame):
        out = run_shell("echo 'a|b'", hardened_frame)
        assert out == "a|b"


class TestLoaderEdgeCases:
    def test_query_columns_list_form(self):
        rule = build_rule({
            "config_schema_name": "q",
            "query_columns": ["user", "shell"],
            "schema_parser": "passwd",
        })
        assert rule.query_columns == "user,shell"

    def test_ownership_integer_zero(self):
        rule = build_rule({"path_name": "/x", "ownership": 0})
        assert rule.ownership == "0:0"

    def test_entity_name_in_file_header(self):
        ruleset = load_rules(
            "entity_name: custom\nrules:\n  - config_name: k\n"
        )
        assert ruleset.entity == "custom"

    def test_explicit_entity_argument_wins_when_header_missing(self):
        ruleset = load_rules("config_name: k\n", entity="given")
        assert ruleset.entity == "given"

    def test_file_header_with_unknown_key_rejected(self):
        with pytest.raises(CVLSyntaxError):
            load_rules("entity_name: x\nschedule: hourly\nrules: []\n")

    def test_empty_stream_is_empty_ruleset(self):
        assert len(load_rules("")) == 0

    def test_multiple_documents_with_header_and_rules(self):
        text = (
            "entity_name: combo\nrules:\n  - config_name: a\n"
            "---\n"
            "config_name: b\n"
        )
        ruleset = load_rules(text)
        assert {rule.name for rule in ruleset.rules} == {"a", "b"}


class TestRuleSetHelpers:
    def test_of_type_and_with_tag(self):
        ruleset = load_rules(
            "config_name: a\ntags: ['#x']\n---\npath_name: /p\ntags: ['#y']\n"
        )
        assert len(ruleset.of_type("tree")) == 1
        assert len(ruleset.of_type("path")) == 1
        assert [rule.name for rule in ruleset.with_tag("#y")] == ["/p"]

    def test_by_name_missing_is_none(self):
        assert load_rules("config_name: a\n").by_name("zzz") is None


class TestEngineTagAndCompositeFilter:
    def test_composite_respects_tag_filter(self):
        from repro.engine import ConfigValidator

        rules = {
            "pack.yaml": (
                "config_name: k\nfile_context: ['f']\ntags: ['#a']\n"
                "---\n"
                "composite_rule_name: c\ncomposite_rule: pack.k\n"
                "tags: ['#b']\n"
            )
        }
        validator = ConfigValidator(resolver=rules.__getitem__)
        validator.add_manifest_text(
            "pack: {config_search_paths: [/etc], cvl_file: pack.yaml}"
        )
        fs = VirtualFilesystem()
        fs.write_file("/etc/f", "k = v\n")
        entity = HostEntity("t", fs)
        report_a = validator.validate_entity(entity, tags=["#a"])
        assert {r.rule.name for r in report_a} == {"k"}
        report_b = validator.validate_entity(entity, tags=["#b"])
        assert {r.rule.name for r in report_b} == {"c"}
