"""Determinism of the parallel fleet pipeline.

``scan_frames(workers=N)`` must be a pure optimization: for any worker
count the rendered reports are byte-identical to the sequential path and
composite rules see the identical merged cross-frame context, on a fleet
with a real mixture of passes and findings (``misconfig_rate > 0``).
"""

import threading

import pytest

from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.engine import ConfigValidator, render_json, render_text
from repro.engine.batch import BatchScanner
from repro.engine.results import Outcome
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity

WORKER_COUNTS = (1, 4, 8)


@pytest.fixture(scope="module")
def fleet_frames():
    _daemon, images, containers = build_fleet(
        FleetSpec(images=6, containers_per_image=4, misconfig_rate=0.4, seed=11)
    )
    entities = [DockerImageEntity(i) for i in images]
    entities += [ContainerEntity(c) for c in containers]
    # Host frames exercise the composite rules (they reference sysctl etc.).
    host_entities = [
        ubuntu_host_entity(f"det-host-{i}", hardening=0.5, seed=i,
                           with_nginx=True, with_mysql=True)
        for i in range(3)
    ]
    return Crawler().crawl_many(entities + host_entities)


class TestValidateFramesDeterminism:
    def test_rendered_reports_byte_identical(self, fleet_frames):
        validator = load_builtin_validator()
        texts, payloads = [], []
        for workers in WORKER_COUNTS:
            report = validator.validate_frames(fleet_frames, workers=workers)
            texts.append(render_text(report, verbose=True))
            payloads.append(render_json(report))
        assert texts[0] == texts[1] == texts[2]
        assert payloads[0] == payloads[1] == payloads[2]

    def test_composite_verdicts_identical(self, fleet_frames):
        validator = load_builtin_validator()
        composite_runs = []
        for workers in WORKER_COUNTS:
            report = validator.validate_frames(fleet_frames, workers=workers)
            composite_runs.append(
                [
                    (r.rule.name, r.verdict, r.detail)
                    for r in report
                    if r.outcome is Outcome.COMPOSITE
                ]
            )
        assert composite_runs[0], "fleet must exercise composite rules"
        assert composite_runs[0] == composite_runs[1] == composite_runs[2]

    def test_fresh_validator_per_worker_count(self, fleet_frames):
        """Determinism must not depend on a warmed shared cache."""
        texts = [
            render_text(
                load_builtin_validator().validate_frames(
                    fleet_frames, workers=workers
                ),
                verbose=True,
            )
            for workers in WORKER_COUNTS
        ]
        assert texts[0] == texts[1] == texts[2]

    def test_scan_frames_summary_deterministic(self, fleet_frames):
        validator = load_builtin_validator()
        scanner = BatchScanner(validator)
        summaries = [
            scanner.scan_frames(fleet_frames, workers=workers)
            for workers in WORKER_COUNTS
        ]
        reference = summaries[0]
        for summary in summaries[1:]:
            assert render_text(summary.report) == render_text(reference.report)
            assert {
                key: (r.passed, r.failed, r.errors, r.not_applicable)
                for key, r in summary.rules.items()
            } == {
                key: (r.passed, r.failed, r.errors, r.not_applicable)
                for key, r in reference.rules.items()
            }
            assert summary.tag_failures == reference.tag_failures

    def test_mixed_fleet_has_findings(self, fleet_frames):
        report = load_builtin_validator().validate_frames(fleet_frames,
                                                          workers=4)
        assert report.failed() and report.passed()


class TestCrawlManyDeterminism:
    def test_order_preserved_parallel(self):
        _daemon, images, containers = build_fleet(
            FleetSpec(images=4, containers_per_image=3, misconfig_rate=0.3,
                      seed=5)
        )
        entities = [DockerImageEntity(i) for i in images]
        entities += [ContainerEntity(c) for c in containers]
        crawler = Crawler()
        sequential = crawler.crawl_many(entities)
        parallel = crawler.crawl_many(entities, workers=8)
        assert [f.describe() for f in parallel] == [
            f.describe() for f in sequential
        ]


class TestRulesetLoadingConcurrency:
    """ruleset_for must be idempotent when hammered from many threads."""

    RULES = """
config_name: Port
preferred_value: ["22"]
"""

    def _validator(self, counts):
        def resolver(path):
            counts[path] = counts.get(path, 0) + 1
            return self.RULES

        validator = ConfigValidator(resolver=resolver)
        validator.add_manifest_text(
            "\n".join(
                f"svc{i}: {{config_search_paths: [/etc/svc{i}], "
                f"cvl_file: svc{i}.yaml}}"
                for i in range(6)
            )
        )
        return validator

    def test_single_flight_under_hammering(self):
        counts: dict[str, int] = {}
        validator = self._validator(counts)
        manifests = validator.manifests()
        rulesets: list[list] = [[] for _ in range(16)]
        barrier = threading.Barrier(16)

        def hammer(slot):
            barrier.wait()
            for _ in range(50):
                for manifest in manifests:
                    rulesets[slot].append(validator.ruleset_for(manifest))

        threads = [
            threading.Thread(target=hammer, args=(slot,)) for slot in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Every pack resolved exactly once, every caller saw the same object.
        assert counts == {f"svc{i}.yaml": 1 for i in range(6)}
        reference = {m.entity: validator.ruleset_for(m) for m in manifests}
        for slot_results in rulesets:
            for i, ruleset in enumerate(slot_results):
                entity = manifests[i % len(manifests)].entity
                assert ruleset is reference[entity]

    def test_rule_count_from_threads(self):
        counts: dict[str, int] = {}
        validator = self._validator(counts)
        results: list[int] = []

        def count():
            results.append(validator.rule_count())

        threads = [threading.Thread(target=count) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(results)) == 1
        assert all(value == 1 for value in counts.values())
