"""Tests for the accounts extension pack (schema queries over passwd/shadow)."""

import pytest

from repro.fs import VirtualFilesystem
from repro.crawler import HostEntity
from repro.rules import EXTENSION_TARGETS, load_builtin_validator

GOOD_PASSWD = (
    "root:x:0:0:root:/root:/bin/bash\n"
    "daemon:x:1:1:daemon:/usr/sbin:/usr/sbin/nologin\n"
    "www-data:x:33:33:www-data:/var/www:/usr/sbin/nologin\n"
    "mysql:x:107:112:MySQL:/nonexistent:/bin/false\n"
)
GOOD_SHADOW = "root:*:17000:0:99999:7:::\ndaemon:*:17000:0:99999:7:::\n"
GOOD_GROUP = "root:x:0:\nsudo:x:27:ubuntu\n"


def _host(passwd=GOOD_PASSWD, shadow=GOOD_SHADOW, group=GOOD_GROUP,
          login_defs="PASS_MAX_DAYS 90\nPASS_MIN_DAYS 7\nPASS_WARN_AGE 7\n",
          limits="* hard core 0\n"):
    fs = VirtualFilesystem()
    fs.write_file("/etc/passwd", passwd, mode=0o644)
    fs.write_file("/etc/shadow", shadow, mode=0o640, gid=42, group="shadow")
    fs.write_file("/etc/group", group, mode=0o644)
    fs.write_file("/etc/login.defs", login_defs, mode=0o644)
    fs.write_file("/etc/security/limits.conf", limits, mode=0o644)
    fs.write_file(
        "/etc/pam.d/common-password",
        "password requisite pam_pwquality.so retry=3\n"
        "password [success=1 default=ignore] pam_unix.so sha512\n",
        mode=0o644,
    )
    return HostEntity("accounts-host", fs)


@pytest.fixture()
def accounts_validator():
    return load_builtin_validator(only=["accounts"])


class TestAccountsPack:
    def test_registered_as_extension(self):
        assert "accounts" in EXTENSION_TARGETS

    def test_clean_host_passes(self, accounts_validator):
        report = accounts_validator.validate_entity(_host())
        assert report.compliant, [
            (r.rule.name, r.message) for r in report.failed()
        ]

    def test_empty_password_detected(self, accounts_validator):
        shadow = GOOD_SHADOW + "backdoor::17000:0:99999:7:::\n"
        report = accounts_validator.validate_entity(_host(shadow=shadow))
        failed = {r.rule.name for r in report.failed()}
        assert "no_empty_password_fields" in failed

    def test_second_uid_zero_detected(self, accounts_validator):
        passwd = GOOD_PASSWD + "toor:x:0:0:evil:/root:/bin/bash\n"
        report = accounts_validator.validate_entity(_host(passwd=passwd))
        failed = {r.rule.name for r in report.failed()}
        assert "only_root_uid_zero" in failed

    def test_legacy_plus_entry_detected(self, accounts_validator):
        passwd = GOOD_PASSWD + "+::::::\n"
        report = accounts_validator.validate_entity(_host(passwd=passwd))
        failed = {r.rule.name for r in report.failed()}
        assert "no_legacy_plus_passwd" in failed

    def test_daemon_login_shell_detected(self, accounts_validator):
        passwd = GOOD_PASSWD.replace(
            "www-data:x:33:33:www-data:/var/www:/usr/sbin/nologin",
            "www-data:x:33:33:www-data:/var/www:/bin/bash",
        )
        report = accounts_validator.validate_entity(_host(passwd=passwd))
        failed = {r.rule.name for r in report.failed()}
        assert "system_accounts_nologin" in failed

    def test_root_group_members_detected(self, accounts_validator):
        group = GOOD_GROUP.replace("root:x:0:", "root:x:0:eve")
        report = accounts_validator.validate_entity(_host(group=group))
        failed = {r.rule.name for r in report.failed()}
        assert "root_group_empty" in failed

    def test_missing_root_entry_detected(self, accounts_validator):
        passwd = GOOD_PASSWD.replace(
            "root:x:0:0:root:/root:/bin/bash\n", ""
        )
        report = accounts_validator.validate_entity(_host(passwd=passwd))
        failed = {r.rule.name for r in report.failed()}
        assert "root_entry_present" in failed

    def test_world_readable_shadow_detected(self, accounts_validator):
        entity = _host()
        entity.filesystem().chmod("/etc/shadow", 0o644)
        report = accounts_validator.validate_entity(entity)
        failed = {r.rule.name for r in report.failed()}
        assert "/etc/shadow" in failed

    def test_pack_skipped_without_account_files(self, accounts_validator):
        fs = VirtualFilesystem()
        fs.write_file("/opt/app/config", "x")
        report = accounts_validator.validate_entity(HostEntity("bare", fs))
        assert len(report) == 0


    def test_unbounded_password_age_detected(self, accounts_validator):
        report = accounts_validator.validate_entity(
            _host(login_defs="PASS_MAX_DAYS 99999\n")
        )
        failed = {r.rule.name for r in report.failed()}
        assert "PASS_MAX_DAYS" in failed

    def test_unrestricted_core_dumps_detected(self, accounts_validator):
        report = accounts_validator.validate_entity(_host(limits="# empty\n"))
        failed = {r.rule.name for r in report.failed()}
        assert "core_dumps_restricted" in failed

    def test_weak_password_hash_detected(self, accounts_validator):
        entity = _host()
        entity.filesystem().write_file(
            "/etc/pam.d/common-password",
            "password requisite pam_pwquality.so retry=3\n"
            "password [success=1 default=ignore] pam_unix.so md5\n",
        )
        report = accounts_validator.validate_entity(entity)
        failed = {r.rule.name for r in report.failed()}
        assert "pam_unix_sha512" in failed
        assert "pam_pwquality_enforced" not in failed

    def test_missing_pwquality_detected(self, accounts_validator):
        entity = _host()
        entity.filesystem().write_file(
            "/etc/pam.d/common-password",
            "password [success=1 default=ignore] pam_unix.so sha512\n",
        )
        report = accounts_validator.validate_entity(entity)
        failed = {r.rule.name for r in report.failed()}
        assert "pam_pwquality_enforced" in failed
