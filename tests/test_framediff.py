"""Tests for frame-level diffing."""

from repro.fs import VirtualFilesystem
from repro.crawler import Crawler, HostEntity
from repro.crawler.framediff import diff_frames, render_frame_diff
from repro.fs.packages import Package, PackageDatabase
from repro.workloads import ubuntu_host_entity


def _frame(files: dict[str, tuple], packages=None):
    fs = VirtualFilesystem()
    for path, (content, mode) in files.items():
        fs.write_file(path, content, mode=mode)
    entity = HostEntity("diff-host", fs, packages=PackageDatabase(packages or []))
    return Crawler().crawl(entity, features=("files", "packages"))


class TestDiffFrames:
    def test_identical_frames_are_empty(self):
        files = {"/etc/a": ("x\n", 0o644)}
        diff = diff_frames(_frame(files), _frame(files))
        assert diff.empty

    def test_added_and_removed(self):
        before = _frame({"/etc/old": ("x\n", 0o644)})
        after = _frame({"/etc/new": ("y\n", 0o644)})
        diff = diff_frames(before, after)
        changes = {(c.path, c.change) for c in diff.files}
        assert ("/etc/new", "added") in changes
        assert ("/etc/old", "removed") in changes

    def test_content_change_counts_lines(self):
        before = _frame({"/etc/f": ("a\nb\nc\n", 0o644)})
        after = _frame({"/etc/f": ("a\nB\nc\nd\n", 0o644)})
        diff = diff_frames(before, after)
        content = [c for c in diff.files if c.change == "content"][0]
        assert "2 line(s)" in content.detail

    def test_metadata_change(self):
        before = _frame({"/etc/f": ("x\n", 0o644)})
        after = _frame({"/etc/f": ("x\n", 0o600)})
        diff = diff_frames(before, after)
        metadata = [c for c in diff.files if c.change == "metadata"][0]
        assert "644 -> 600" in metadata.detail

    def test_package_changes(self):
        before = _frame({"/etc/f": ("x\n", 0o644)},
                        [Package("nginx", "1.10"), Package("old", "1")])
        after = _frame({"/etc/f": ("x\n", 0o644)},
                       [Package("nginx", "1.12"), Package("new", "2")])
        diff = diff_frames(before, after)
        assert diff.packages_added == ["new"]
        assert diff.packages_removed == ["old"]
        assert diff.packages_changed == ["nginx"]

    def test_runtime_changes(self, crawler):
        before = crawler.crawl(ubuntu_host_entity("r", hardening=1.0))
        entity = ubuntu_host_entity("r", hardening=1.0)
        entity.live_sysctl["net.ipv4.ip_forward"] = "1"
        after = crawler.crawl(entity)
        diff = diff_frames(before, after)
        assert "net.ipv4.ip_forward" in diff.runtime_changed.get("sysctl", [])

    def test_render_summary(self):
        before = _frame({"/etc/f": ("a\n", 0o644)})
        after = _frame({"/etc/f": ("b\n", 0o600), "/etc/g": ("", 0o644)})
        text = render_frame_diff(diff_frames(before, after))
        assert "[added" in text
        assert "[content" in text
        assert "[metadata" in text

    def test_render_with_unified_diff(self):
        before = _frame({"/etc/f": ("a\nb\n", 0o644)})
        after = _frame({"/etc/f": ("a\nc\n", 0o644)})
        text = render_frame_diff(
            diff_frames(before, after),
            unified_for=["/etc/f"],
            baseline=before,
            current=after,
        )
        assert "-b" in text and "+c" in text

    def test_render_empty(self):
        frame = _frame({"/etc/f": ("x\n", 0o644)})
        assert "no differences" in render_frame_diff(diff_frames(frame, frame))

    def test_explains_verdict_drift(self, crawler, validator):
        """The file diff should point at the config behind a regression."""
        good = crawler.crawl(ubuntu_host_entity("x", hardening=1.0))
        bad = crawler.crawl(ubuntu_host_entity("x", hardening=0.0))
        frame_diff = diff_frames(good, bad)
        assert "/etc/ssh/sshd_config" in frame_diff.changed_paths()
        assert "/etc/fstab" in frame_diff.changed_paths()
