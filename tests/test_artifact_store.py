"""The persistent content-addressed artifact store (second parse tier).

The store is an accelerator, not a source of truth: every test that
corrupts, shrinks, or disables it asserts that lookups degrade to
"parse again" instead of raising.
"""

import sqlite3

import pytest

from repro.augtree.tree import SourceSpan
from repro.engine.artifact_store import (
    LENS_VERSION,
    STORE_FILE,
    ArtifactStore,
    ArtifactStoreStats,
    store_path_for,
)
from repro.engine.parse_cache import ParseCache, content_digest_and_size


def make_key(text: str, kind: str = "tree", parser: str = "keyvalue"):
    digest, nbytes = content_digest_and_size(text)
    return (digest, kind, parser), nbytes


class TestStoreBasics:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "a.sqlite")
        key, nbytes = make_key("Port 22\n")
        assert store.load(key, nbytes) is None
        store.save(key, {"Port": "22"}, nbytes)
        assert store.load(key, nbytes) == {"Port": "22"}
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.stored) == (1, 1, 1)
        assert stats.entries == 1
        assert stats.bytes_loaded == nbytes
        store.close()

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "a.sqlite"
        key, nbytes = make_key("x = 1\n")
        with ArtifactStore(path) as store:
            store.save(key, ["artifact"], nbytes)
        with ArtifactStore(path) as fresh:
            assert fresh.load(key, nbytes) == ["artifact"]

    def test_kind_and_parser_segregate_keys(self, tmp_path):
        store = ArtifactStore(tmp_path / "a.sqlite")
        key_tree, nbytes = make_key("v", kind="tree")
        key_table, _ = make_key("v", kind="table")
        store.save(key_tree, "as-tree", nbytes)
        assert store.load(key_table, nbytes) is None
        assert store.load(key_tree, nbytes) == "as-tree"
        store.close()

    def test_version_partitions_artifacts(self, tmp_path):
        """A LENS_VERSION bump must turn old rows into misses."""
        path = tmp_path / "a.sqlite"
        key, nbytes = make_key("Port 22\n")
        with ArtifactStore(path) as store:
            store.save(key, "old", nbytes)
        conn = sqlite3.connect(path)
        conn.execute("UPDATE artifacts SET version=?",
                     (LENS_VERSION + ".stale",))
        conn.commit()
        conn.close()
        with ArtifactStore(path) as fresh:
            assert fresh.load(key, nbytes) is None

    def test_store_path_for(self, tmp_path):
        assert store_path_for(tmp_path) == tmp_path / STORE_FILE

    def test_clear(self, tmp_path):
        store = ArtifactStore(tmp_path / "a.sqlite")
        key, nbytes = make_key("data")
        store.save(key, 1, nbytes)
        store.clear()
        assert store.load(key, nbytes) is None
        assert store.stats().entries == 0
        store.close()


class TestEvictionAndBudget:
    def test_lru_eviction_by_bytes(self, tmp_path):
        blob = "y" * 100
        one_size = len(
            __import__("pickle").dumps(blob, protocol=5)
        )
        store = ArtifactStore(tmp_path / "a.sqlite",
                              max_bytes=one_size * 2)
        keys = []
        for i in range(3):
            key, nbytes = make_key(f"file-{i}")
            keys.append((key, nbytes))
            store.save(key, blob, nbytes)
        stats = store.stats()
        assert stats.evictions >= 1
        assert stats.disk_bytes <= one_size * 2
        # Newest row survives; the oldest-used was evicted.
        assert store.load(keys[-1][0], keys[-1][1]) == blob
        assert store.load(keys[0][0], keys[0][1]) is None
        store.close()

    def test_load_touches_lru_order(self, tmp_path):
        blob = "z" * 100
        one_size = len(__import__("pickle").dumps(blob, protocol=5))
        store = ArtifactStore(tmp_path / "a.sqlite",
                              max_bytes=one_size * 2)
        (key_a, n_a), (key_b, n_b) = make_key("a"), make_key("b")
        store.save(key_a, blob, n_a)
        store.save(key_b, blob, n_b)
        assert store.load(key_a, n_a) == blob  # a is now most recent
        key_c, n_c = make_key("c")
        store.save(key_c, blob, n_c)           # evicts b, not a
        assert store.load(key_a, n_a) == blob
        assert store.load(key_b, n_b) is None
        store.close()

    def test_oversized_artifact_skipped(self, tmp_path):
        store = ArtifactStore(tmp_path / "a.sqlite", max_bytes=64)
        key, nbytes = make_key("big")
        store.save(key, "x" * 10_000, nbytes)
        assert store.stats().entries == 0
        store.close()


class TestCorruptionTolerance:
    def test_corrupt_blob_is_dropped_not_raised(self, tmp_path):
        path = tmp_path / "a.sqlite"
        key, nbytes = make_key("Port 22\n")
        with ArtifactStore(path) as store:
            store.save(key, {"Port": "22"}, nbytes)
        conn = sqlite3.connect(path)
        conn.execute("UPDATE artifacts SET blob=?", (b"\x80garbage",))
        conn.commit()
        conn.close()
        store = ArtifactStore(path)
        assert store.load(key, nbytes) is None
        stats = store.stats()
        assert stats.load_errors == 1
        assert stats.entries == 0  # the bad row was deleted
        assert not store.broken
        store.close()

    def test_unpicklable_value_counts_store_error(self, tmp_path):
        store = ArtifactStore(tmp_path / "a.sqlite")
        key, nbytes = make_key("f")
        store.save(key, lambda: None, nbytes)
        assert store.stats().store_errors == 1
        assert store.load(key, nbytes) is None
        store.close()

    def test_unopenable_path_disables_store(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("plain file, not a directory")
        store = ArtifactStore(target / "a.sqlite")
        assert store.broken
        key, nbytes = make_key("x")
        store.save(key, 1, nbytes)            # no-ops, never raises
        assert store.load(key, nbytes) is None
        store.close()


class TestStats:
    def test_add_sums_counters_maxes_gauges(self):
        a = ArtifactStoreStats(hits=2, misses=1, entries=10, disk_bytes=100)
        b = ArtifactStoreStats(hits=3, misses=4, entries=7, disk_bytes=300)
        a.add(b)
        assert (a.hits, a.misses) == (5, 5)
        assert (a.entries, a.disk_bytes) == (10, 300)

    def test_delta_since(self):
        base = ArtifactStoreStats(hits=2, stored=1, entries=5, disk_bytes=50)
        now = ArtifactStoreStats(hits=7, stored=3, entries=9, disk_bytes=90)
        delta = now.delta_since(base)
        assert (delta.hits, delta.stored) == (5, 2)
        assert (delta.entries, delta.disk_bytes) == (9, 90)

    def test_render_and_dict(self):
        stats = ArtifactStoreStats(hits=3, misses=1)
        assert "3 hits / 1 misses" in stats.render()
        assert stats.to_dict()["hits"] == 3
        assert stats.hit_rate == pytest.approx(0.75)


class TestParseCacheTier:
    def test_memory_miss_consults_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "a.sqlite")
        warm = ParseCache(16, store=store)
        key, nbytes = make_key("Port 22\n")
        calls = []
        warm.get_or_parse(key, nbytes, lambda: calls.append(1) or "parsed")
        assert calls == [1]
        # A cold in-memory cache on the same store: no second parse.
        cold = ParseCache(16, store=store)
        value = cold.get_or_parse(
            key, nbytes, lambda: calls.append(2) or "reparsed")
        assert value == "parsed"
        assert calls == [1]
        stats = cold.stats()
        # Store-served lookups stay in-memory misses, but the bytes are
        # credited to the store, not bytes_parsed.
        assert stats.misses == 1
        assert stats.bytes_parsed == 0
        assert store.stats().bytes_loaded == nbytes
        store.close()

    def test_write_through_on_parse(self, tmp_path):
        store = ArtifactStore(tmp_path / "a.sqlite")
        cache = ParseCache(16, store=store)
        key, nbytes = make_key("x")
        cache.get_or_parse(key, nbytes, lambda: "fresh")
        assert store.stats().stored == 1
        assert store.load(key, nbytes) == "fresh"
        store.close()

    def test_resize_in_place(self):
        cache = ParseCache(8)
        for i in range(8):
            cache.get_or_parse((f"d{i}", "tree", "p"), 1, lambda: i)
        cache.resize(2)
        assert len(cache) == 2
        assert cache.maxsize == 2
        stats = cache.stats()
        assert stats.evictions == 6

    def test_spanned_artifacts_survive_the_store(self, tmp_path):
        """Artifacts carrying SourceSpans round-trip through sqlite."""
        store = ArtifactStore(tmp_path / "a.sqlite")
        span = SourceSpan(3, 4, 3, 9, 20, 25)
        key, nbytes = make_key("spanful")
        store.save(key, {"value": ("22", span)}, nbytes)
        loaded = store.load(key, nbytes)
        assert loaded["value"][1] == span
        store.close()
