"""Shared fixtures: synthetic entities, frames, and the builtin validator."""

from __future__ import annotations

import pytest

from repro.crawler import Crawler
from repro.rules import load_builtin_validator
from repro.workloads import ubuntu_host_entity


@pytest.fixture(scope="session")
def crawler():
    return Crawler()


@pytest.fixture(scope="session")
def hardened_host():
    return ubuntu_host_entity(
        "hardened",
        hardening=1.0,
        with_nginx=True,
        with_mysql=True,
        with_apache=True,
        with_hadoop=True,
    )


@pytest.fixture(scope="session")
def stock_host():
    return ubuntu_host_entity(
        "stock", hardening=0.0, with_nginx=True, with_mysql=True
    )


@pytest.fixture(scope="session")
def hardened_frame(crawler, hardened_host):
    return crawler.crawl(hardened_host)


@pytest.fixture(scope="session")
def stock_frame(crawler, stock_host):
    return crawler.crawl(stock_host)


@pytest.fixture()
def validator():
    # Function-scoped: tests mutate rule enablement.
    return load_builtin_validator()
