"""Verdict provenance contract tests (ISSUE 7, tentpole + satellite 3).

The contract, stated once:

* **Completeness** -- with provenance on, *every* result carries a
  record, and every NONCOMPLIANT/ERROR verdict explains itself: a
  predicate, and for value-based tree-rule failures at least one source
  anchor whose span re-reads cleanly from the frame's file text.  This
  must hold at every worker count, full and incremental, plans on and
  off.
* **Byte-identity** -- with provenance off, reports are byte-identical
  to a provenance-capable engine's output; no record leaks into JSON.
* **Replay fidelity** -- incremental replays rehydrate stored records
  with ``route=replayed`` and the original route preserved as
  ``origin``; a provenance-off cycle over a record-carrying store stays
  record-free.
* **Durability** -- records survive the history store round-trip, and
  the ``--since`` analyzer finds failing-streak starts from them.
"""

import json

import pytest

from repro.augtree.tree import SourceSpan
from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.cvl.model import TreeRule
from repro.crawler.serialize import dump_frame, load_frame
from repro.engine import VerdictStore, render_json, render_text
from repro.engine.batch import BatchScanner
from repro.engine.explain import (
    explanation_to_dict,
    failing_streak_start,
    render_explanation,
    render_transition,
)
from repro.engine.provenance import (
    ROUTE_COMPOSITE,
    ROUTE_DIRECT,
    ROUTE_FUSED,
    ROUTE_REPLAYED,
    ProvenanceRecord,
    SourceAnchor,
)
from repro.engine.results import Verdict
from repro.history import HistoryStore
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity

WORKER_COUNTS = (1, 8)

FAILING = (Verdict.NONCOMPLIANT, Verdict.ERROR)


# ---------------------------------------------------------------------------
# Fleet fixture: serialized blobs so each case gets pristine frames
# ---------------------------------------------------------------------------

def _crawl_fleet() -> list:
    _daemon, images, containers = build_fleet(
        FleetSpec(images=2, containers_per_image=2, misconfig_rate=0.5,
                  seed=19)
    )
    entities = [DockerImageEntity(i) for i in images]
    entities += [ContainerEntity(c) for c in containers]
    hosts = [
        ubuntu_host_entity(f"prov-host-{i}", hardening=0.3, seed=i,
                           with_nginx=True, with_mysql=True)
        for i in range(2)
    ]
    return Crawler().crawl_many(entities + hosts)


@pytest.fixture(scope="module")
def blobs():
    return [dump_frame(frame) for frame in _crawl_fleet()]


def _frames(blobs):
    return [load_frame(blob) for blob in blobs]


def _validator(**kwargs):
    return load_builtin_validator(**kwargs)


def _assert_record_complete(result, frame) -> int:
    """One failing result's record is structurally valid; returns the
    number of spans that were re-read against the frame's file text.

    ``frame`` is None for composite results (their target names the whole
    group); those are checked structurally but carry no file anchors.
    """
    record = result.provenance
    assert record is not None, (result.entity, result.rule.name)
    assert record.route in (
        ROUTE_DIRECT, ROUTE_FUSED, ROUTE_COMPOSITE, ROUTE_REPLAYED,
    )
    assert record.predicate, (result.entity, result.rule.name)
    if frame is None:
        assert record.route in (ROUTE_COMPOSITE, ROUTE_REPLAYED)
        assert record.referents, (result.entity, result.rule.name)
        return 0
    spans_checked = 0
    for anchor in record.anchors:
        if anchor.span is None:
            continue
        span = anchor.span
        assert anchor.file, (result.entity, result.rule.name)
        text = frame.read_config(anchor.file)
        assert 0 <= span.start < span.end <= len(text), (
            result.entity, result.rule.name, anchor.file, span,
        )
        sliced = text[span.start : span.end]
        # The one-line excerpt stored alongside the span must come from
        # the line the span starts on.
        if anchor.excerpt:
            assert anchor.excerpt.strip() in (
                text.splitlines()[span.line - 1]
            ), (anchor.excerpt, span)
        assert sliced.strip(), (result.entity, result.rule.name)
        spans_checked += 1
    return spans_checked


# ---------------------------------------------------------------------------
# Completeness: every failing verdict explains itself, in every mode
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("use_plans", [True, False],
                         ids=["plan", "no-plan"])
@pytest.mark.parametrize("incremental", [False, True],
                         ids=["full", "incremental"])
def test_every_failing_verdict_has_provenance(
    blobs, workers, use_plans, incremental,
):
    store = VerdictStore() if incremental else None
    validator = _validator(workers=workers, verdict_store=store,
                           use_plans=use_plans, provenance=True)
    frames = _frames(blobs)
    by_target = {frame.describe(): frame for frame in frames}
    report = validator.validate_frames(frames, workers=workers)

    failing = [r for r in report.results if r.verdict in FAILING]
    assert failing, "fixture fleet must produce failures"
    assert all(r.provenance is not None for r in report.results)

    total_spans = 0
    for result in failing:
        total_spans += _assert_record_complete(
            result, by_target.get(result.target)
        )
    # The fleet's nginx/mysql misconfigurations are file-backed: a
    # meaningful share of failures must resolve to real source spans.
    assert total_spans > 0


def test_value_failures_carry_at_least_one_span(blobs):
    """Tree-rule failures decided by a found value must anchor it."""
    validator = _validator(provenance=True)
    frames = _frames(blobs)
    report = validator.validate_frames(frames, workers=4)
    value_failures = [
        r for r in report.results
        if r.verdict is Verdict.NONCOMPLIANT
        and isinstance(r.rule, TreeRule)
        and r.evidence
        and any(e.span is not None for e in r.evidence)
    ]
    assert value_failures, "fixture must produce span-backed tree failures"
    for result in value_failures:
        spanned = [a for a in result.provenance.anchors
                   if a.span is not None]
        assert spanned, (result.entity, result.rule.name)


# ---------------------------------------------------------------------------
# Byte-identity: provenance is an observability layer, not a behavior
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_provenance_off_reports_are_byte_identical(blobs, workers):
    frames_a, frames_b = _frames(blobs), _frames(blobs)
    off = _validator(workers=workers).validate_frames(
        frames_a, workers=workers,
    )
    on = _validator(workers=workers, provenance=True).validate_frames(
        frames_b, workers=workers,
    )
    assert render_text(on, verbose=True) == render_text(off, verbose=True)
    assert render_json(off) == render_json(
        _validator(workers=workers).validate_frames(
            _frames(blobs), workers=workers,
        )
    )


def test_off_mode_json_has_no_provenance_keys(blobs):
    report = _validator().validate_frames(_frames(blobs), workers=4)
    payload = json.loads(render_json(report))
    assert all("provenance" not in r for r in payload["results"])


def test_on_mode_json_embeds_records(blobs):
    report = _validator(provenance=True).validate_frames(
        _frames(blobs), workers=4,
    )
    payload = json.loads(render_json(report))
    embedded = [r for r in payload["results"] if "provenance" in r]
    assert len(embedded) == len(payload["results"])
    sample = embedded[0]["provenance"]
    assert {"route", "origin", "predicate"} <= set(sample)


# ---------------------------------------------------------------------------
# Replay fidelity across incremental cycles
# ---------------------------------------------------------------------------

def test_replayed_verdicts_rehydrate_records(blobs):
    store = VerdictStore()
    validator = _validator(verdict_store=store, provenance=True)
    first = validator.validate_frames(_frames(blobs), workers=4)
    second = validator.validate_frames(_frames(blobs), workers=4)

    assert render_text(first, verbose=True) == render_text(
        second, verbose=True
    )
    routes = {r.provenance.route for r in second.results}
    assert routes == {ROUTE_REPLAYED}
    origins = {r.provenance.origin for r in second.results}
    assert ROUTE_REPLAYED not in origins
    assert origins & {ROUTE_DIRECT, ROUTE_FUSED}


def test_provenance_off_cycle_on_recorded_store_stays_clean(blobs):
    store = VerdictStore()
    validator = _validator(verdict_store=store, provenance=True)
    validator.validate_frames(_frames(blobs), workers=4)

    plain = _validator(verdict_store=store)
    baseline = _validator()
    replayed = plain.validate_frames(_frames(blobs), workers=4)
    full = baseline.validate_frames(_frames(blobs), workers=4)
    assert all(r.provenance is None for r in replayed.results)
    assert render_text(replayed, verbose=True) == render_text(
        full, verbose=True
    )


def test_provenance_on_cycle_misses_recordless_store(blobs):
    """A store filled without records cannot satisfy a --provenance run:
    the engine must re-evaluate rather than replay record-less entries."""
    store = VerdictStore()
    _validator(verdict_store=store).validate_frames(
        _frames(blobs), workers=4,
    )
    wanting = _validator(verdict_store=store, provenance=True)
    report = wanting.validate_frames(_frames(blobs), workers=4)
    assert all(r.provenance is not None for r in report.results)
    assert {r.provenance.route for r in report.results} <= {
        ROUTE_DIRECT, ROUTE_FUSED, ROUTE_COMPOSITE,
    }


# ---------------------------------------------------------------------------
# History-store durability and --since analysis
# ---------------------------------------------------------------------------

def test_history_store_round_trips_records(blobs):
    scanner = BatchScanner(_validator(provenance=True))
    summary = scanner.scan_frames(_frames(blobs))
    failing = [r for r in summary.report.results if r.verdict in FAILING]
    with HistoryStore() as store:
        cycle_id = store.record_cycle(summary)
        sample = failing[0]
        stored = store.provenance_for(
            sample.target, sample.entity, sample.rule.name,
            cycle_id=cycle_id,
        )
        assert stored == sample.provenance.to_dict()
        # Newest-record lookup (cycle_id=None) finds the same payload.
        assert store.provenance_for(
            sample.target, sample.entity, sample.rule.name,
        ) == stored
        assert store.provenance_for(
            sample.target, sample.entity, "no-such-rule",
        ) is None


class TestFailingStreakStart:
    def test_not_failing_now(self):
        assert failing_streak_start([(1, "noncompliant"),
                                     (2, "compliant")]) is None
        assert failing_streak_start([]) is None

    def test_streak_with_last_pass(self):
        history = [(1, "compliant"), (2, "compliant"),
                   (3, "noncompliant"), (4, "error"), (5, "noncompliant")]
        assert failing_streak_start(history) == (3, 2)

    def test_failing_from_first_cycle(self):
        history = [(1, "noncompliant"), (2, "noncompliant")]
        assert failing_streak_start(history) == (1, None)

    def test_flap_uses_latest_streak(self):
        history = [(1, "noncompliant"), (2, "compliant"),
                   (3, "noncompliant")]
        assert failing_streak_start(history) == (3, 2)


# ---------------------------------------------------------------------------
# Explanation rendering
# ---------------------------------------------------------------------------

def _one_spanned_failure(blobs):
    validator = _validator(provenance=True)
    frames = _frames(blobs)
    report = validator.validate_frames(frames, workers=4)
    by_target = {frame.describe(): frame for frame in frames}
    for result in report.results:
        if result.verdict is Verdict.NONCOMPLIANT and any(
            a.span is not None for a in result.provenance.anchors
        ):
            return result, by_target[result.target]
    raise AssertionError("no spanned failure in fixture fleet")


def test_render_explanation_includes_source_block(blobs):
    result, frame = _one_spanned_failure(blobs)
    text = render_explanation(
        result, read_text=lambda _target, path: frame.read_config(path),
    )
    assert f"[NONCOMPLIANT] {result.entity}/{result.rule.name}" in text
    assert "-->" in text
    assert "^" in text           # caret underline rendered
    assert "why:" in text
    anchor = result.provenance.first_spanned_anchor()
    assert f"{anchor.file}:{anchor.span.line}:" in text


def test_render_explanation_without_record_hints_at_flag(blobs):
    report = _validator().validate_frames(_frames(blobs), workers=4)
    failing = next(r for r in report.results if r.verdict in FAILING)
    text = render_explanation(failing)
    assert "run with --provenance" in text


def test_explanation_to_dict_round_trips_record(blobs):
    result, _frame = _one_spanned_failure(blobs)
    payload = explanation_to_dict(result)
    assert payload["rule"] == result.rule.name
    assert payload["rule_source_line"] == result.rule.source_line
    assert ProvenanceRecord.from_dict(
        payload["provenance"]
    ).predicate == result.provenance.predicate


def test_render_transition_diffs_anchored_lines():
    def record(excerpt):
        return ProvenanceRecord(
            route=ROUTE_DIRECT, origin=ROUTE_DIRECT,
            predicate="a found value matches non_preferred_value",
            observed=[excerpt.split()[-1]], expected={},
            anchors=[SourceAnchor(
                file="/etc/nginx/nginx.conf", path="x", value="v",
                span=None, excerpt=excerpt,
            )],
        ).to_dict()

    # Spanless anchors are excluded from the diff -- exercise both arms.
    text = render_transition(
        "host:h", "nginx", "ssl_protocols",
        first_fail=7, last_pass=6,
        failing=record("ssl_protocols SSLv3;"),
        passing=record("ssl_protocols TLSv1.2;"),
    )
    assert "first failing cycle: 7 (last passed: 6)" in text
    assert "why:" in text

    spanned_fail = ProvenanceRecord.from_dict(
        record("ssl_protocols SSLv3;")
    )
    spanned_fail.anchors[0] = SourceAnchor(
        file="/etc/nginx/nginx.conf", path="x", value="v",
        span=SourceSpan(8, 9, 8, 30, 100, 121),
        excerpt="ssl_protocols SSLv3;",
    )
    spanned_pass = ProvenanceRecord.from_dict(
        record("ssl_protocols TLSv1.2;")
    )
    spanned_pass.anchors[0] = SourceAnchor(
        file="/etc/nginx/nginx.conf", path="x", value="v",
        span=SourceSpan(8, 9, 8, 32, 100, 123),
        excerpt="ssl_protocols TLSv1.2;",
    )
    diffed = render_transition(
        "host:h", "nginx", "ssl_protocols",
        first_fail=7, last_pass=6,
        failing=spanned_fail.to_dict(), passing=spanned_pass.to_dict(),
    )
    assert "- ssl_protocols TLSv1.2;" in diffed
    assert "+ ssl_protocols SSLv3;" in diffed
