"""Tests for the simulated Docker substrate."""

import pytest

from repro.errors import DockerSimError
from repro.crawler.docker_sim import (
    DockerDaemon,
    HostConfig,
    ImageBuilder,
    Mount,
)


@pytest.fixture()
def daemon():
    return DockerDaemon()


def _simple_image(name="app", tag="1.0"):
    builder = ImageBuilder()
    builder.add_file("/etc/app.conf", "debug = false\n")
    builder.install_package("libc6", "2.23")
    builder.env("PATH", "/usr/bin").expose("8080/tcp").user("app")
    return builder.build(name, tag)


class TestImageBuilder:
    def test_build_creates_layers_and_config(self):
        image = _simple_image()
        assert image.reference == "app:1.0"
        assert image.config.user == "app"
        assert image.filesystem().read_text("/etc/app.conf") == "debug = false\n"

    def test_each_new_layer_is_separate(self):
        builder = ImageBuilder()
        builder.add_file("/a", "1")
        builder.new_layer()
        builder.add_file("/b", "2")
        image = builder.build("x")
        assert len(image.layers) == 2

    def test_derived_image_inherits_base(self):
        base = _simple_image("base")
        child = ImageBuilder(base).add_file("/child", "c").build("child")
        fs = child.filesystem()
        assert fs.read_text("/etc/app.conf") == "debug = false\n"
        assert fs.read_text("/child") == "c"
        assert child.config.user == "app"
        assert child.packages.installed("libc6")

    def test_derived_image_overrides_file(self):
        base = _simple_image("base")
        child = (
            ImageBuilder(base)
            .add_file("/etc/app.conf", "debug = true\n")
            .build("child")
        )
        assert child.filesystem().read_text("/etc/app.conf") == "debug = true\n"
        # base is untouched
        assert base.filesystem().read_text("/etc/app.conf") == "debug = false\n"

    def test_remove_whiteouts_base_file(self):
        base = _simple_image("base")
        child = ImageBuilder(base).remove("/etc/app.conf").build("child")
        assert not child.filesystem().exists("/etc/app.conf")

    def test_image_ids_unique(self):
        assert _simple_image().image_id != _simple_image().image_id

    def test_healthcheck_recorded_in_inspect(self):
        builder = ImageBuilder()
        builder.healthcheck("CMD", "curl", "-f", "http://localhost/")
        image = builder.build("h")
        assert image.inspect()["Config"]["Healthcheck"]["Test"][0] == "CMD"

    def test_empty_build_gets_one_empty_layer(self):
        image = ImageBuilder().build("empty")
        assert len(image.layers) == 1


class TestContainers:
    def test_run_and_lookup(self, daemon):
        daemon.add_image(_simple_image())
        container = daemon.run("app:1.0", "web1")
        assert daemon.container("web1") is container
        assert container.state == "running"

    def test_default_tag_latest(self, daemon):
        daemon.add_image(_simple_image(tag="latest"))
        assert daemon.image("app").tag == "latest"

    def test_run_unknown_image_rejected(self, daemon):
        with pytest.raises(DockerSimError):
            daemon.run("ghost:1.0", "c")

    def test_duplicate_name_rejected(self, daemon):
        daemon.add_image(_simple_image())
        daemon.run("app:1.0", "dup")
        with pytest.raises(DockerSimError):
            daemon.run("app:1.0", "dup")

    def test_container_writes_do_not_touch_image(self, daemon):
        daemon.add_image(_simple_image())
        container = daemon.run("app:1.0", "w")
        container.write_file("/etc/app.conf", "patched\n")
        assert container.filesystem().read_text("/etc/app.conf") == "patched\n"
        assert daemon.image("app:1.0").filesystem().read_text(
            "/etc/app.conf"
        ) == "debug = false\n"

    def test_env_merging(self, daemon):
        daemon.add_image(_simple_image())
        container = daemon.run("app:1.0", "e", env={"EXTRA": "1"})
        assert container.env["PATH"] == "/usr/bin"
        assert container.env["EXTRA"] == "1"

    def test_stop_sets_state(self, daemon):
        daemon.add_image(_simple_image())
        container = daemon.run("app:1.0", "s")
        container.stop(exit_code=3)
        assert container.state == "exited"
        assert container.exit_code == 3
        assert daemon.containers() == []
        assert len(daemon.containers(all_states=True)) == 1

    def test_inspect_shape(self, daemon):
        daemon.add_image(_simple_image())
        config = HostConfig(
            privileged=True,
            port_bindings={"8080/tcp": "0.0.0.0:80"},
            mounts=[Mount("/data", "/data", read_only=True)],
        )
        container = daemon.run("app:1.0", "i", host_config=config)
        inspected = container.inspect()
        assert inspected["HostConfig"]["Privileged"] is True
        assert inspected["HostConfig"]["PortBindings"]["8080/tcp"][0][
            "HostPort"
        ] == "80"
        assert inspected["Mounts"][0]["RW"] is False
        assert inspected["State"]["Running"] is True

    def test_remove_container(self, daemon):
        daemon.add_image(_simple_image())
        daemon.run("app:1.0", "rm-me")
        daemon.remove_container("rm-me")
        with pytest.raises(DockerSimError):
            daemon.container("rm-me")


class TestDaemonConfig:
    def test_default_daemon_json_is_hardened(self, daemon):
        config = daemon.daemon_config()
        assert config["icc"] is False
        assert config["no-new-privileges"] is True

    def test_daemon_json_parsed(self):
        daemon = DockerDaemon()
        daemon.host_fs.write_file(
            "/etc/docker/daemon.json", '{"icc": false}\n'
        )
        assert daemon.daemon_config() == {"icc": False}

    def test_docker_sock_metadata(self, daemon):
        stat = daemon.host_fs.stat("/var/run/docker.sock")
        assert stat.mode == 0o660
        assert stat.group == "docker"
