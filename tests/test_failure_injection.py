"""Failure injection: broken plugins, runtime fallbacks, whiteout edges."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PluginError
from repro.fs import OverlayFilesystem, VirtualFilesystem, flatten, whiteout_for
from repro.crawler import Crawler, HostEntity
from repro.crawler.plugins import PluginRegistry, RuntimePlugin
from repro.engine import ConfigValidator, Verdict


class _ExplodingPlugin(RuntimePlugin):
    name = "exploding"
    kinds = ("host",)

    def extract(self, entity):
        raise RuntimeError("boom")


class _FixedPlugin(RuntimePlugin):
    name = "fixed"
    kinds = ("host",)

    def extract(self, entity):
        return {"key": "value"}


def _registry():
    registry = PluginRegistry()
    registry.register(_ExplodingPlugin())
    registry.register(_FixedPlugin())
    return registry


class TestPluginFailureIsolation:
    def test_broken_plugin_does_not_block_others(self):
        crawler = Crawler(plugins=_registry())
        frame = crawler.crawl(HostEntity("h", VirtualFilesystem()))
        assert frame.runtime_value("fixed", "key") == "value"
        assert "exploding" not in frame.runtime
        assert "boom" in frame.metadata["plugin_error:exploding"]

    def test_strict_mode_aborts(self):
        crawler = Crawler(plugins=_registry())
        with pytest.raises(PluginError):
            crawler.crawl(
                HostEntity("h", VirtualFilesystem()), strict_plugins=True
            )

    def test_script_rules_na_when_plugin_failed(self):
        crawler = Crawler(plugins=_registry())
        rules = {
            "pack.yaml": (
                "script_name: s\nscript: 'exploding some.key'\n"
                "preferred_value: ['1']\ntags: ['#x']\n"
            )
        }
        validator = ConfigValidator(
            resolver=rules.__getitem__, crawler=crawler
        )
        validator.add_manifest_text("pack: {cvl_file: pack.yaml}")
        report = validator.validate_entity(HostEntity("h", VirtualFilesystem()))
        result = report.results[0]
        assert result.verdict is Verdict.NOT_APPLICABLE


class TestCompositeRuntimeFallback:
    def test_composite_reads_runtime_namespace_when_file_lacks_key(self):
        # sysctl.conf does not pin the key, but the live sysctl namespace
        # (matching the component name) carries it.
        rules = {
            "sysctl.yaml": (
                "composite_rule_name: live_check\n"
                'composite_rule: sysctl.net.ipv4.tcp_syncookies.VALUE == "1"\n'
                "tags: ['#x']\nmatched_description: ok\n"
                "not_matched_preferred_value_description: bad\n"
            )
        }
        validator = ConfigValidator(resolver=rules.__getitem__)
        validator.add_manifest_text(
            "sysctl: {config_search_paths: [/etc/sysctl.conf], cvl_file: sysctl.yaml}"
        )
        fs = VirtualFilesystem()
        fs.write_file("/etc/sysctl.conf", "kernel.randomize_va_space = 2\n")
        entity = HostEntity("h", fs, live_sysctl={"net.ipv4.tcp_syncookies": "1"})
        report = validator.validate_entity(entity)
        composite = report.results[-1]
        assert composite.rule.name == "live_check"
        assert composite.verdict is Verdict.COMPLIANT

    def test_file_value_preferred_over_runtime(self):
        rules = {
            "sysctl.yaml": (
                "composite_rule_name: file_wins\n"
                'composite_rule: sysctl.net.ipv4.ip_forward.VALUE == "0"\n'
                "tags: ['#x']\nmatched_description: ok\n"
                "not_matched_preferred_value_description: bad\n"
            )
        }
        validator = ConfigValidator(resolver=rules.__getitem__)
        validator.add_manifest_text(
            "sysctl: {config_search_paths: [/etc/sysctl.conf], cvl_file: sysctl.yaml}"
        )
        fs = VirtualFilesystem()
        fs.write_file("/etc/sysctl.conf", "net.ipv4.ip_forward = 0\n")
        entity = HostEntity("h", fs, live_sysctl={"net.ipv4.ip_forward": "1"})
        report = validator.validate_entity(entity)
        assert report.results[-1].verdict is Verdict.COMPLIANT


_names = st.sampled_from(["a", "b", "c"])


class TestOverlayWhiteoutProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        lower_files=st.sets(_names, min_size=1, max_size=3),
        deleted=st.sets(_names, max_size=2),
        readded=st.sets(_names, max_size=2),
    )
    def test_flatten_agrees_with_overlay_under_whiteouts(
        self, lower_files, deleted, readded
    ):
        lower = VirtualFilesystem()
        for name in lower_files:
            lower.write_file(f"/etc/{name}", f"lower-{name}")
        upper = VirtualFilesystem()
        for name in deleted:
            upper.write_file(whiteout_for(f"/etc/{name}"), "")
        for name in readded:
            upper.write_file(f"/etc/{name}", f"upper-{name}")
        overlay = OverlayFilesystem([lower, upper])
        merged = flatten(overlay)

        for name in lower_files | deleted | readded:
            path = f"/etc/{name}"
            assert overlay.exists(path) == merged.exists(path), path
            if overlay.exists(path):
                assert overlay.read_text(path) == merged.read_text(path)
                # semantics: re-added wins; deleted-only is gone; rest lower
                if name in readded:
                    assert overlay.read_text(path) == f"upper-{name}"
                elif name in deleted:
                    raise AssertionError(f"{path} should have been deleted")
