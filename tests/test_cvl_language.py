"""Tests for CVL keywords, match specs, the loader, and manifests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    CVLKeywordError,
    CVLSyntaxError,
    InheritanceError,
    ManifestError,
)
from repro.cvl import (
    ALL_KEYWORDS,
    COMMON_KEYWORDS,
    KEYWORDS_BY_TYPE,
    MatchSpec,
    PathRule,
    SchemaRule,
    ScriptRule,
    TreeRule,
    allowed_keywords,
    build_rule,
    infer_rule_type,
    load_manifests,
    load_rules,
    parse_match_spec,
)


class TestKeywordInventory:
    def test_total_is_46(self):
        assert len(ALL_KEYWORDS) == 46

    def test_group_sizes_match_paper(self):
        assert len(COMMON_KEYWORDS) == 19
        assert len(KEYWORDS_BY_TYPE["tree"]) == 9
        assert len(KEYWORDS_BY_TYPE["schema"]) == 6
        assert len(KEYWORDS_BY_TYPE["path"]) == 6
        assert len(KEYWORDS_BY_TYPE["script"]) == 3
        assert len(KEYWORDS_BY_TYPE["composite"]) == 3

    def test_groups_are_disjoint(self):
        seen = set(COMMON_KEYWORDS)
        for group in KEYWORDS_BY_TYPE.values():
            assert not (seen & group)
            seen |= group

    def test_infer_rule_type(self):
        assert infer_rule_type({"config_name": "x"}) == "tree"
        assert infer_rule_type({"config_schema_name": "x"}) == "schema"
        assert infer_rule_type({"path_name": "x"}) == "path"
        assert infer_rule_type({"script_name": "x"}) == "script"
        assert infer_rule_type({"composite_rule_name": "x"}) == "composite"
        assert infer_rule_type({"tags": []}) is None
        assert infer_rule_type({"config_name": "a", "path_name": "b"}) is None

    def test_allowed_keywords_union(self):
        assert "config_path" in allowed_keywords("tree")
        assert "config_path" not in allowed_keywords("schema")
        assert "tags" in allowed_keywords("schema")


class TestMatchSpec:
    def test_paper_format_with_stray_space(self):
        spec = parse_match_spec("substr ,all")
        assert spec == MatchSpec("substr", "all")

    def test_default_quantifier_any(self):
        assert parse_match_spec("exact") == MatchSpec("exact", "any")

    def test_none_uses_default(self):
        assert parse_match_spec(None, MatchSpec("regex", "all")) == MatchSpec(
            "regex", "all"
        )

    def test_bad_mode_rejected(self):
        with pytest.raises(CVLKeywordError):
            parse_match_spec("fuzzy,any")

    def test_bad_quantifier_rejected(self):
        with pytest.raises(CVLKeywordError):
            parse_match_spec("exact,most")

    def test_three_parts_rejected(self):
        with pytest.raises(CVLKeywordError):
            parse_match_spec("exact,any,really")

    def test_exact_any(self):
        spec = MatchSpec("exact", "any")
        assert spec.matches("no", ["no", "yes"])
        assert not spec.matches("maybe", ["no", "yes"])

    def test_substr_all(self):
        spec = MatchSpec("substr", "all")
        assert spec.matches("TLSv1.2 TLSv1.3", ["TLSv1.2", "TLSv1.3"])
        assert not spec.matches("TLSv1.2", ["TLSv1.2", "TLSv1.3"])

    def test_substr_any(self):
        spec = MatchSpec("substr", "any")
        assert spec.matches("SSLv3 TLSv1.2", ["SSLv2", "SSLv3"])

    def test_regex(self):
        spec = MatchSpec("regex", "all")
        assert spec.matches("3", ["^[1-4]$"])
        assert not spec.matches("6", ["^[1-4]$"])

    def test_case_insensitive(self):
        spec = MatchSpec("exact", "any")
        assert spec.matches("Off", ["off"], case_insensitive=True)
        assert not spec.matches("Off", ["off"])

    def test_empty_rule_values_never_match(self):
        assert not MatchSpec("exact", "any").matches("x", [])

    def test_bad_regex_raises(self):
        with pytest.raises(CVLKeywordError):
            MatchSpec("regex", "any").matches("x", ["("])

    @given(value=st.text(max_size=20), values=st.lists(st.text(max_size=5), max_size=4))
    def test_all_implies_any(self, value, values):
        spec_all = MatchSpec("substr", "all")
        spec_any = MatchSpec("substr", "any")
        if values and spec_all.matches(value, values):
            assert spec_any.matches(value, values)


_LISTING2 = """
config_name: ssl_protocols
config_path: ["server", "http/server"]
config_description: "Enables the specified SSL protocols."
preferred_value: [ "TLSv1.2", "TLSv1.3" ]
non_preferred_value: [ "SSLv2", "SSLv3", "TLSv1", "TLSv1.1" ]
non_preferred_value_match: substr ,any
preferred_value_match: substr ,all
not_present_description: "ssl_protocols is not present."
not_matched_preferred_value_description: "Non -recommended TLS ver."
matched_description: "ssl_protocols key is set to TLS v1.2/1.3"
tags: ["#security", "#ssl", "#owasp"]
require_other_configs: [ listen , ssl_certificate , ssl_certificate_key ]
file_context: ["nginx.conf", "sites -enabled"]
"""


class TestLoader:
    def test_paper_listing2_tree_rule(self):
        ruleset = load_rules(_LISTING2, "nginx.yaml", entity="nginx")
        rule = ruleset.rules[0]
        assert isinstance(rule, TreeRule)
        assert rule.name == "ssl_protocols"
        assert rule.config_path == ["server", "http/server"]
        assert rule.preferred_match == MatchSpec("substr", "all")
        assert rule.non_preferred_match == MatchSpec("substr", "any")
        assert rule.require_other_configs == [
            "listen", "ssl_certificate", "ssl_certificate_key",
        ]
        assert rule.has_tag("security")
        assert rule.has_tag("#OWASP")

    def test_paper_listing3_schema_rule(self):
        text = """
config_schema_name: check_tmp_separate_partition
config_schema_description: "Check if /tmp is on a separate partition"
query_constraints: "dir = ?"
query_constraints_value: ["/tmp"]
query_columns: "*"
non_preferred_value: [""]
non_preferred_value_match: exact ,all
not_matched_preferred_value_description: "/tmp not on sep. partition"
matched_description: "/tmp is on a separate partition"
tags: ["#cis", "#cisubuntu14.04_2.1"]
"""
        rule = load_rules(text).rules[0]
        assert isinstance(rule, SchemaRule)
        assert rule.query_constraints == "dir = ?"
        assert rule.query_constraints_value == ["/tmp"]
        assert rule.non_preferred_value == [""]

    def test_paper_listing4_path_rule(self):
        text = """
path_name: /etc/mysql/my.cnf
path_description: "Permissions and ownership for mysql config file"
ownership: "0:0"
permission: 644
tags: [ "#owasp" ]
"""
        rule = load_rules(text).rules[0]
        assert isinstance(rule, PathRule)
        assert rule.permission == 0o644
        assert rule.ownership == "0:0"

    def test_permission_int_read_as_octal(self):
        rule = build_rule({"path_name": "/x", "permission": 600})
        assert rule.permission == 0o600

    def test_bad_permission_rejected(self):
        with pytest.raises(CVLKeywordError):
            build_rule({"path_name": "/x", "permission": "rwxr"})

    def test_script_rule_needs_plugin_and_key(self):
        rule = build_rule(
            {"script_name": "s", "script": "docker HostConfig.Privileged"}
        )
        assert isinstance(rule, ScriptRule)
        assert rule.plugin_and_key() == ("docker", "HostConfig.Privileged")
        with pytest.raises(CVLKeywordError):
            build_rule({"script_name": "s", "script": "justplugin"})

    def test_composite_expression_validated_at_load(self):
        with pytest.raises(Exception):
            build_rule(
                {"composite_rule_name": "c", "composite_rule": "a.b &&"}
            )

    def test_unknown_keyword_rejected_with_suggestion(self):
        with pytest.raises(CVLKeywordError) as exc:
            build_rule({"config_name": "x", "preferred_valu": ["1"]})
        assert "preferred_value" in str(exc.value)

    def test_type_specific_keyword_on_wrong_type_rejected(self):
        with pytest.raises(CVLKeywordError):
            build_rule({"path_name": "/x", "config_path": ["a"]})

    def test_missing_name_rejected(self):
        with pytest.raises(CVLKeywordError):
            build_rule({"rule_type": "tree", "preferred_value": ["x"]})

    def test_bad_severity_rejected(self):
        with pytest.raises(CVLKeywordError):
            build_rule({"config_name": "x", "severity": "catastrophic"})

    def test_invalid_yaml_rejected(self):
        with pytest.raises(CVLSyntaxError):
            load_rules("config_name: [unclosed")

    def test_non_mapping_document_rejected(self):
        with pytest.raises(CVLSyntaxError):
            load_rules("- 1\n- [2]\n")

    def test_list_document_of_rules(self):
        text = "- config_name: a\n- config_name: b\n"
        ruleset = load_rules(text)
        assert [rule.name for rule in ruleset.rules] == ["a", "b"]

    def test_rules_key_document(self):
        text = "entity_name: nginx\nrules:\n  - config_name: a\n"
        ruleset = load_rules(text)
        assert ruleset.entity == "nginx"
        assert ruleset.rules[0].name == "a"

    def test_booleans_in_values_normalized(self):
        rule = build_rule({"config_name": "x", "preferred_value": [True]})
        assert rule.preferred_value == ["true"]

    def test_numbers_in_values_normalized(self):
        rule = build_rule({"config_name": "x", "preferred_value": [0, 2]})
        assert rule.preferred_value == ["0", "2"]


class TestInheritance:
    PARENT = """
config_name: PermitRootLogin
preferred_value: ["no"]
tags: ["#cis"]
---
config_name: X11Forwarding
preferred_value: ["no"]
"""

    def test_child_overrides_parent_value(self):
        child = """
parent_cvl_file: parent.yaml
rules:
  - config_name: PermitRootLogin
    preferred_value: ["no", "without-password"]
"""
        ruleset = load_rules(
            child, resolver=lambda path: self.PARENT
        )
        rule = ruleset.by_name("PermitRootLogin")
        assert rule.preferred_value == ["no", "without-password"]
        assert rule.has_tag("cis")  # merged key-by-key, tags preserved
        assert ruleset.by_name("X11Forwarding") is not None

    def test_child_adds_new_rules(self):
        child = """
parent_cvl_file: parent.yaml
rules:
  - config_name: Banner
    preferred_value: ["/etc/issue.net"]
"""
        ruleset = load_rules(child, resolver=lambda path: self.PARENT)
        assert len(ruleset.rules) == 3

    def test_disabled_rules(self):
        child = """
parent_cvl_file: parent.yaml
disabled_rules: ["X11Forwarding"]
rules: []
"""
        ruleset = load_rules(child, resolver=lambda path: self.PARENT)
        assert not ruleset.by_name("X11Forwarding").enabled
        assert ruleset.by_name("PermitRootLogin").enabled

    def test_disabling_unknown_rule_rejected(self):
        child = (
            "parent_cvl_file: parent.yaml\ndisabled_rules: ['Ghost']\nrules: []\n"
        )
        with pytest.raises(InheritanceError):
            load_rules(child, resolver=lambda path: self.PARENT)

    def test_parent_without_resolver_rejected(self):
        with pytest.raises(InheritanceError):
            load_rules("parent_cvl_file: p.yaml\nrules: []\n")

    def test_cyclic_parents_rejected(self):
        cyclic = "parent_cvl_file: self.yaml\nrules: []\n"
        with pytest.raises(InheritanceError):
            load_rules(cyclic, resolver=lambda path: cyclic)

    def test_grandparent_chain(self):
        documents = {
            "base.yaml": "config_name: A\npreferred_value: ['1']\n",
            "mid.yaml": (
                "parent_cvl_file: base.yaml\nrules:\n"
                "  - config_name: B\n    preferred_value: ['2']\n"
            ),
        }
        child = (
            "parent_cvl_file: mid.yaml\nrules:\n"
            "  - config_name: A\n    preferred_value: ['9']\n"
        )
        ruleset = load_rules(child, resolver=documents.__getitem__)
        assert ruleset.by_name("A").preferred_value == ["9"]
        assert ruleset.by_name("B").preferred_value == ["2"]


class TestManifests:
    def test_paper_listing5(self):
        text = """
nginx:
  enabled: True
  config_search_paths:
    - /etc/nginx
  cvl_file: "component_configs/nginx.yaml"
"""
        manifest = load_manifests(text)[0]
        assert manifest.entity == "nginx"
        assert manifest.enabled
        assert manifest.config_search_paths == ["/etc/nginx"]
        assert manifest.cvl_file == "component_configs/nginx.yaml"

    def test_multiple_entities_in_one_document(self):
        manifests = load_manifests(
            "a: {cvl_file: a.yaml}\nb: {cvl_file: b.yaml}\n"
        )
        assert [m.entity for m in manifests] == ["a", "b"]

    def test_entity_kinds(self):
        manifest = load_manifests(
            "d: {cvl_file: d.yaml, entity_kinds: [container, image]}"
        )[0]
        assert manifest.applies_to_kind("container")
        assert not manifest.applies_to_kind("host")

    def test_no_kinds_applies_everywhere(self):
        manifest = load_manifests("d: {cvl_file: d.yaml}")[0]
        assert manifest.applies_to_kind("host")
        assert manifest.applies_to_kind("cloud")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ManifestError):
            load_manifests("d: {cvl_file: d.yaml, entity_kinds: [vm]}")

    def test_missing_cvl_file_rejected(self):
        with pytest.raises(ManifestError):
            load_manifests("d: {enabled: True}")

    def test_unknown_key_rejected(self):
        with pytest.raises(ManifestError):
            load_manifests("d: {cvl_file: x, frequency: daily}")

    def test_non_boolean_enabled_rejected(self):
        with pytest.raises(ManifestError):
            load_manifests("d: {cvl_file: x, enabled: 'yes'}")

    def test_string_search_path_promoted_to_list(self):
        manifest = load_manifests(
            "d: {cvl_file: x, config_search_paths: /etc/d}"
        )[0]
        assert manifest.config_search_paths == ["/etc/d"]
