"""Byte-identity differential suite for the executor backends.

The process backend is a pure optimization: for any combination of
worker count, rule plans, incremental mode, and provenance, its reports,
fleet summaries, and provenance output must be byte-identical to the
thread backend's.  The graceful-degradation tests then kill and fault
workers mid-cycle and assert the cycle still completes with identical
output -- slower, never wrong, never hung.
"""

import pytest

from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.engine import render_json, render_text
from repro.engine.batch import BatchScanner, render_fleet_summary
from repro.engine.incremental import VerdictStore
from repro.exec import ExecStats, ProcessBackend, ThreadBackend
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity

#: Small enough for the 1-shard degenerate case, large enough that 8
#: workers actually produce multiple shards.
WORKER_COUNTS = (1, 8)


def make_frames(seed=11, images=3, containers=2, hosts=2):
    _daemon, imgs, containers_ = build_fleet(
        FleetSpec(images=images, containers_per_image=containers,
                  misconfig_rate=0.4, seed=seed)
    )
    entities = [DockerImageEntity(i) for i in imgs]
    entities += [ContainerEntity(c) for c in containers_]
    entities += [
        ubuntu_host_entity(f"diff-host-{i}", hardening=0.5, seed=i,
                           with_nginx=True, with_mysql=True)
        for i in range(hosts)
    ]
    return Crawler().crawl_many(entities)


@pytest.fixture(scope="module")
def frames():
    return make_frames()


def run(frames, *, executor, workers, use_plans=True, store=None,
        provenance=False):
    validator = load_builtin_validator(
        verdict_store=store, use_plans=use_plans, provenance=provenance,
    )
    validator.executor = executor
    try:
        report = validator.validate_frames(frames, workers=workers)
        return report, render_text(report, verbose=True), render_json(report)
    finally:
        validator.close()


class TestByteIdentityMatrix:
    @pytest.mark.parametrize("use_plans", (True, False),
                             ids=("plan", "no-plan"))
    @pytest.mark.parametrize("incremental", (False, True),
                             ids=("full", "incremental"))
    def test_process_matches_thread(self, frames, use_plans, incremental):
        reference = None
        for executor in ("thread", "process"):
            for workers in WORKER_COUNTS:
                store = VerdictStore() if incremental else None
                if store is not None:
                    # Warm cycle first: the comparison cycle replays.
                    run(frames, executor=executor, workers=workers,
                        use_plans=use_plans, store=store)
                _report, text, payload = run(
                    frames, executor=executor, workers=workers,
                    use_plans=use_plans, store=store,
                )
                if reference is None:
                    reference = (text, payload)
                else:
                    assert (text, payload) == reference, (
                        f"{executor} x {workers} workers diverged "
                        f"(plans={use_plans}, incremental={incremental})"
                    )

    def test_provenance_byte_identical(self, frames):
        outputs = []
        for executor in ("thread", "process"):
            report, _text, _payload = run(
                frames, executor=executor, workers=4, provenance=True)
            outputs.append([
                (r.rule.name, r.target,
                 r.provenance.to_dict() if r.provenance else None)
                for r in report
            ])
        assert outputs[0] == outputs[1]
        assert any(p is not None for _n, _t, p in outputs[0])

    def test_shard_size_does_not_change_output(self, frames):
        texts = []
        for shard_size in (1, 3, 100):
            validator = load_builtin_validator()
            validator.executor = "process"
            validator.shard_size = shard_size
            try:
                report = validator.validate_frames(frames, workers=2)
                texts.append(render_text(report, verbose=True))
            finally:
                validator.close()
        assert texts[0] == texts[1] == texts[2]

    def test_fleet_summaries_identical(self, frames):
        summaries = []
        for executor in ("thread", "process"):
            validator = load_builtin_validator()
            validator.executor = executor
            scanner = BatchScanner(validator, workers=4)
            try:
                summaries.append(scanner.scan_frames(frames, workers=4))
            finally:
                validator.close()
        thread_summary, process_summary = summaries
        assert render_text(process_summary.report) == render_text(
            thread_summary.report)
        assert process_summary.tag_failures == thread_summary.tag_failures
        assert {
            key: (r.passed, r.failed, r.errors, r.not_applicable)
            for key, r in process_summary.rules.items()
        } == {
            key: (r.passed, r.failed, r.errors, r.not_applicable)
            for key, r in thread_summary.rules.items()
        }
        # The process cycle carries executor stats; thread does not.
        assert process_summary.exec_stats is not None
        assert thread_summary.exec_stats is None
        assert "executor: process" in render_fleet_summary(process_summary)


class TestExecStatsAccounting:
    def test_cycle_stats(self, frames):
        validator = load_builtin_validator()
        validator.executor = "process"
        try:
            report = validator.validate_frames(frames, workers=2)
        finally:
            validator.close()
        stats = report.exec_stats
        assert isinstance(stats, ExecStats)
        assert stats.frames_shipped == len(frames)
        assert stats.frames_fallback == 0
        assert stats.shards == len(stats.shard_seconds)
        assert stats.bytes_out > 0 and stats.bytes_in > 0
        assert stats.worker_cache.get("misses", 0) > 0
        payload = stats.to_dict()
        assert payload["backend"] == "process"
        assert "frames shipped" in stats.render()

    def test_parent_store_absorbs_worker_counters(self, frames, tmp_path):
        """Worker-side artifact hits/stores surface in the parent
        store's stats (and therefore its pull-style metrics)."""
        path = tmp_path / "artifacts.sqlite"
        for _cycle in range(2):
            validator = load_builtin_validator(
                executor="process", artifact_store=path)
            try:
                validator.validate_frames(frames, workers=2)
                absorbed = validator.artifact_store.stats()
            finally:
                validator.close()
        # Cycle 1 stored artifacts from the workers; cycle 2's workers
        # hit them.  The parent performed no lookups of its own, so any
        # nonzero counters must have been absorbed from shard deltas.
        assert absorbed.hits > 0
        assert absorbed.entries > 0

    def test_incremental_ships_only_dirty_frames(self, frames):
        store = VerdictStore()
        validator = load_builtin_validator(verdict_store=store)
        validator.executor = "process"
        try:
            first = validator.validate_frames(frames, workers=2)
            second = validator.validate_frames(frames, workers=2)
        finally:
            validator.close()
        assert first.exec_stats.frames_shipped == len(frames)
        # Unchanged fleet: every frame replays in the parent.
        assert second.exec_stats.frames_shipped == 0
        assert second.exec_stats.frames_local == len(frames)
        assert second.incremental.rules_replayed > 0


class TestGracefulDegradation:
    def test_killed_worker_completes_cycle(self, frames):
        baseline = render_text(
            load_builtin_validator().validate_frames(frames), verbose=True)
        validator = load_builtin_validator()
        backend = ProcessBackend(timeout_s=20)
        validator.executor = "process"
        validator._exec_backend = backend
        backend.fault_shards = {0: "exit"}  # shard 0's worker dies hard
        try:
            report = validator.validate_frames(frames, workers=2)
        finally:
            validator.close()
        assert render_text(report, verbose=True) == baseline
        stats = report.exec_stats
        assert stats.worker_failures >= 1
        assert stats.respawns >= 1
        assert stats.frames_fallback > 0

    def test_worker_exception_falls_back_without_respawn(self, frames):
        baseline = render_text(
            load_builtin_validator().validate_frames(frames), verbose=True)
        validator = load_builtin_validator()
        backend = ProcessBackend()
        validator.executor = "process"
        validator._exec_backend = backend
        backend.fault_shards = {0: "error"}
        try:
            report = validator.validate_frames(frames, workers=2)
        finally:
            validator.close()
        assert render_text(report, verbose=True) == baseline
        stats = report.exec_stats
        assert stats.worker_failures == 1
        assert stats.respawns == 0
        assert stats.frames_fallback > 0

    def test_unpicklable_run_state_falls_back_to_threads(self, frames):
        validator = load_builtin_validator()
        validator.executor = "process"
        # A closure resolver-style unpicklable hanging off a manifest
        # poisons the init blob; the whole cycle must run on threads.
        validator.manifests()[0].enabled_hook = lambda: True
        try:
            report = validator.validate_frames(frames, workers=2)
        finally:
            validator.close()
        baseline = render_text(
            load_builtin_validator().validate_frames(frames), verbose=True)
        assert render_text(report, verbose=True) == baseline


class TestProcessCrawl:
    def test_crawl_many_process_matches_thread(self):
        _daemon, images, containers = build_fleet(
            FleetSpec(images=3, containers_per_image=2, misconfig_rate=0.3,
                      seed=5)
        )
        entities = [DockerImageEntity(i) for i in images]
        entities += [ContainerEntity(c) for c in containers]
        crawler = Crawler()
        threaded = crawler.crawl_many(entities, workers=4)
        validator = load_builtin_validator()
        backend = ProcessBackend()
        try:
            processed = crawler.crawl_many(
                entities, workers=2, executor=backend,
                init_source=validator)
            assert [f.describe() for f in processed] == [
                f.describe() for f in threaded]
            report_a = load_builtin_validator().validate_frames(threaded)
            report_b = load_builtin_validator().validate_frames(processed)
            assert render_text(report_a, verbose=True) == render_text(
                report_b, verbose=True)
        finally:
            backend.close()
            validator.close()

    def test_validate_entities_process_executor(self):
        _daemon, images, containers = build_fleet(
            FleetSpec(images=2, containers_per_image=2, misconfig_rate=0.3,
                      seed=9)
        )
        entities = [DockerImageEntity(i) for i in images]
        entities += [ContainerEntity(c) for c in containers]
        thread_validator = load_builtin_validator()
        process_validator = load_builtin_validator(executor="process")
        try:
            thread_report = thread_validator.validate_entities(
                entities, workers=2)
            process_report = process_validator.validate_entities(
                entities, workers=2)
            assert render_text(process_report, verbose=True) == render_text(
                thread_report, verbose=True)
        finally:
            process_validator.close()


class TestBackendObjects:
    def test_thread_backend_defers_to_engine(self, frames):
        validator = load_builtin_validator()
        validator.executor = ThreadBackend()
        try:
            report = validator.validate_frames(frames, workers=2)
        finally:
            validator.close()
        assert report.exec_stats is None
        baseline = render_text(
            load_builtin_validator().validate_frames(frames), verbose=True)
        assert render_text(report, verbose=True) == baseline

    def test_unknown_executor_rejected(self, frames):
        from repro.engine.engine import EngineError

        validator = load_builtin_validator(executor="fork-bomb")
        with pytest.raises(EngineError):
            validator.validate_frames(frames[:1])

    def test_pool_persists_across_cycles(self, frames):
        validator = load_builtin_validator(executor="process")
        try:
            validator.validate_frames(frames, workers=2)
            backend = validator._exec_backend
            pool_key = backend._pool_key
            assert pool_key is not None
            validator.validate_frames(frames, workers=2)
            assert backend._pool_key == pool_key
            assert backend._pool is not None
        finally:
            validator.close()
        assert backend._pool is None
