"""Tests for the Normalizer (caching, discovery) and the error hierarchy."""

import pytest

import repro.errors as errors
from repro.errors import LensError, ReproError, SchemaError
from repro.fs import VirtualFilesystem
from repro.crawler import Crawler, HostEntity
from repro.engine.normalizer import Normalizer


def _frame(**files):
    fs = VirtualFilesystem()
    for path, content in files.items():
        fs.write_file("/" + path.replace("__", "/"), content)
    return Crawler().crawl(HostEntity("n", fs), features=("files",))


class TestDiscovery:
    def test_files_in_search_paths_cached(self):
        frame = _frame(etc__a="1", etc__b="2")
        normalizer = Normalizer()
        first = normalizer.files_in_search_paths(frame, ["/etc"])
        second = normalizer.files_in_search_paths(frame, ["/etc"])
        assert first == second == ["/etc/a", "/etc/b"]

    def test_candidate_files_substring_context(self):
        frame = _frame(
            etc__nginx__nginx_conf="", etc__nginx__sites_enabled__site="",
        )
        normalizer = Normalizer()
        files = normalizer.candidate_files(
            frame, ["/etc/nginx"], ["sites_enabled"]
        )
        assert files == ["/etc/nginx/sites_enabled/site"]

    def test_candidate_files_glob_context(self):
        frame = _frame(etc__x__a_conf="", etc__x__b_txt="")
        normalizer = Normalizer()
        files = normalizer.candidate_files(frame, ["/etc/x"], ["*_conf"])
        assert files == ["/etc/x/a_conf"]

    def test_no_context_returns_everything(self):
        frame = _frame(etc__x__a="", etc__x__b="")
        normalizer = Normalizer()
        assert len(normalizer.candidate_files(frame, ["/etc/x"], [])) == 2


class TestParsingCache:
    def test_tree_cached_per_frame_and_lens(self):
        frame = _frame(etc__sysctl_conf="a.b = 1\n")
        normalizer = Normalizer()
        tree1 = normalizer.tree_for(frame, "/etc/sysctl_conf", "sysctl")
        tree2 = normalizer.tree_for(frame, "/etc/sysctl_conf", "sysctl")
        assert tree1 is tree2
        # A different lens name is a different cache entry.
        tree3 = normalizer.tree_for(frame, "/etc/sysctl_conf", "keyvalue")
        assert tree3 is not tree1

    def test_different_frames_not_conflated(self):
        frame_a = _frame(etc__f="k = 1\n")
        frame_b = _frame(etc__f="k = 2\n")
        normalizer = Normalizer()
        assert normalizer.tree_for(frame_a, "/etc/f").value_of("k") == "1"
        assert normalizer.tree_for(frame_b, "/etc/f").value_of("k") == "2"

    def test_table_cached(self):
        frame = _frame(etc__fstab="/dev/sda1 / ext4 defaults 0 1\n")
        normalizer = Normalizer()
        assert normalizer.table_for(frame, "/etc/fstab") is normalizer.table_for(
            frame, "/etc/fstab"
        )

    def test_table_without_parser_raises(self):
        frame = _frame(etc__odd="whatever\n")
        with pytest.raises(SchemaError):
            Normalizer().table_for(frame, "/etc/odd")

    def test_try_tree_swallows_lens_errors(self):
        frame = _frame(etc__sysctl_conf="not an assignment\n")
        normalizer = Normalizer()
        assert normalizer.try_tree(frame, "/etc/sysctl_conf", "sysctl") is None

    def test_tree_for_unknown_lens_raises(self):
        frame = _frame(etc__f="k = 1\n")
        with pytest.raises(LensError):
            Normalizer().tree_for(frame, "/etc/f", "quantum")


class TestErrorHierarchy:
    def test_every_public_error_derives_from_reproerror(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError), name

    def test_lens_error_carries_location(self):
        error = LensError("nginx", "boom", line=7)
        assert error.lens == "nginx"
        assert "line 7" in str(error)

    def test_cvl_syntax_error_names_source(self):
        error = errors.CVLSyntaxError("bad", source="pack.yaml")
        assert "pack.yaml" in str(error)

    def test_catching_base_covers_subsystems(self):
        for exc in (
            errors.FileNotFoundInFrame("x"),
            errors.QueryError("x"),
            errors.CVLKeywordError("x"),
            errors.DockerSimError("x"),
            errors.CloudAPIError("x"),
            errors.XCCDFError("x"),
        ):
            with pytest.raises(ReproError):
                raise exc
