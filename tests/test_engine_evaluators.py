"""Tests for the per-rule-type evaluators."""

import pytest

from repro.fs import VirtualFilesystem
from repro.crawler import Crawler, HostEntity
from repro.cvl import Manifest, build_rule
from repro.engine import Outcome, Verdict
from repro.engine.evaluators import (
    evaluate_path,
    evaluate_schema,
    evaluate_script,
    evaluate_tree,
)
from repro.engine.normalizer import Normalizer


def _frame(**files):
    fs = VirtualFilesystem()
    for path, content in files.items():
        fs.write_file("/" + path.replace("__", "/"), content)
    return Crawler().crawl(HostEntity("test-host", fs), features=("files",))


def _manifest(entity="sshd", paths=("/etc/ssh",), **kwargs):
    return Manifest(
        entity=entity, cvl_file="x.yaml", config_search_paths=list(paths),
        **kwargs,
    )


def _tree_rule(**overrides):
    mapping = {
        "config_name": "PermitRootLogin",
        "config_path": [""],
        "file_context": ["sshd_config"],
        "preferred_value": ["no"],
        "preferred_value_match": "exact,all",
        "not_present_description": "missing",
        "not_matched_preferred_value_description": "bad value",
        "matched_description": "ok",
    }
    mapping.update(overrides)
    return build_rule(mapping)


class TestTreeEvaluator:
    def test_compliant(self):
        frame = _frame(etc__ssh__sshd_config="PermitRootLogin no\n")
        result = evaluate_tree(_tree_rule(), frame, _manifest(), Normalizer())
        assert result.verdict is Verdict.COMPLIANT
        assert result.message == "ok"
        assert result.evidence[0].value == "no"

    def test_noncompliant_value(self):
        frame = _frame(etc__ssh__sshd_config="PermitRootLogin yes\n")
        result = evaluate_tree(_tree_rule(), frame, _manifest(), Normalizer())
        assert result.verdict is Verdict.NONCOMPLIANT
        assert result.outcome is Outcome.NOT_MATCHED_PREFERRED
        assert result.message == "bad value"

    def test_not_present_defaults_to_fail(self):
        frame = _frame(etc__ssh__sshd_config="Port 22\n")
        result = evaluate_tree(_tree_rule(), frame, _manifest(), Normalizer())
        assert result.verdict is Verdict.NONCOMPLIANT
        assert result.outcome is Outcome.NOT_PRESENT
        assert result.message == "missing"

    def test_not_present_pass(self):
        frame = _frame(etc__ssh__sshd_config="Port 22\n")
        rule = _tree_rule(not_present_pass=True)
        result = evaluate_tree(rule, frame, _manifest(), Normalizer())
        assert result.verdict is Verdict.COMPLIANT

    def test_non_preferred_beats_preferred(self):
        frame = _frame(etc__nginx__nginx_conf="")
        frame = _frame(
            etc__ssh__sshd_config="Ciphers aes256-cbc,aes256-gcm\n"
        )
        rule = build_rule({
            "config_name": "Ciphers",
            "file_context": ["sshd_config"],
            "preferred_value": ["aes256-gcm"],
            "preferred_value_match": "substr,any",
            "non_preferred_value": ["-cbc"],
            "non_preferred_value_match": "substr,any",
        })
        result = evaluate_tree(rule, frame, _manifest(), Normalizer())
        assert result.outcome is Outcome.MATCHED_NON_PREFERRED

    def test_multiple_occurrences_all_must_comply(self):
        frame = _frame(
            etc__nginx__nginx_conf=(
                "http { server { autoindex off; } server { autoindex on; } }"
            )
        )
        rule = build_rule({
            "config_name": "autoindex",
            "config_path": ["http/server"],
            "file_context": ["nginx_conf"],
            "preferred_value": ["off"],
            "preferred_value_match": "exact,all",
            "lens": "nginx",
        })
        result = evaluate_tree(
            rule, frame, _manifest("nginx", ("/etc/nginx",)), Normalizer()
        )
        assert result.verdict is Verdict.NONCOMPLIANT
        assert len(result.evidence) == 2

    def test_first_match_only_ignores_later_occurrences(self):
        frame = _frame(
            etc__ssh__sshd_config="PermitRootLogin no\nPermitRootLogin yes\n"
        )
        rule = _tree_rule(first_match_only=True)
        result = evaluate_tree(rule, frame, _manifest(), Normalizer())
        assert result.verdict is Verdict.COMPLIANT

    def test_config_path_alternatives_union(self):
        frame = _frame(
            etc__nginx__nginx_conf="server { listen 80; }"
        )
        rule = build_rule({
            "config_name": "listen",
            "config_path": ["http/server", "server"],
            "file_context": ["nginx_conf"],
            "lens": "nginx",
        })
        result = evaluate_tree(
            rule, frame, _manifest("nginx", ("/etc/nginx",)), Normalizer()
        )
        assert result.verdict is Verdict.COMPLIANT  # presence-only rule

    def test_require_other_configs_missing_is_not_applicable(self):
        frame = _frame(
            etc__nginx__nginx_conf="server { ssl_protocols TLSv1.2; }"
        )
        rule = build_rule({
            "config_name": "ssl_protocols",
            "config_path": ["server"],
            "file_context": ["nginx_conf"],
            "require_other_configs": ["listen", "ssl_certificate"],
            "preferred_value": ["TLSv1.2"],
            "lens": "nginx",
        })
        result = evaluate_tree(
            rule, frame, _manifest("nginx", ("/etc/nginx",)), Normalizer()
        )
        assert result.verdict is Verdict.NOT_APPLICABLE
        assert result.outcome is Outcome.MISSING_DEPENDENCY

    def test_value_separator_splits_before_matching(self):
        frame = _frame(etc__ssh__sshd_config="Protocol 2,1\n")
        rule = build_rule({
            "config_name": "Protocol",
            "file_context": ["sshd_config"],
            "preferred_value": ["2"],
            "preferred_value_match": "exact,all",
            "value_separator": ",",
        })
        result = evaluate_tree(rule, frame, _manifest(), Normalizer())
        assert result.verdict is Verdict.NONCOMPLIANT  # the "1" item fails

    def test_case_insensitive_matching(self):
        frame = _frame(etc__apache2__apache2_conf="TraceEnable OFF\n")
        rule = build_rule({
            "config_name": "TraceEnable",
            "file_context": ["apache2_conf"],
            "preferred_value": ["off"],
            "preferred_value_match": "exact,all",
            "case_insensitive": True,
            "lens": "apache",
        })
        result = evaluate_tree(
            rule, frame, _manifest("apache", ("/etc/apache2",)), Normalizer()
        )
        assert result.verdict is Verdict.COMPLIANT

    def test_path_expression_config_name(self):
        frame = _frame(
            etc__modprobe_d__cis_conf="install cramfs /bin/true\n"
        )
        rule = build_rule({
            "config_name": "install[.='cramfs']/command",
            "rule_type": "tree",
            "file_context": ["cis_conf"],
            "preferred_value": ["/bin/true", "/bin/false"],
            "preferred_value_match": "exact,any",
            "lens": "modprobe",
        })
        result = evaluate_tree(
            rule, frame, _manifest("modprobe", ("/etc/modprobe_d",)), Normalizer()
        )
        assert result.verdict is Verdict.COMPLIANT

    def test_unparseable_file_skipped_still_finds_others(self):
        frame = _frame(
            etc__ssh__broken="install\x00garbage {{{",
            etc__ssh__sshd_config="PermitRootLogin no\n",
        )
        result = evaluate_tree(
            _tree_rule(file_context=["sshd_config", "broken"]),
            frame,
            _manifest(),
            Normalizer(),
        )
        assert result.verdict is Verdict.COMPLIANT


class TestSchemaEvaluator:
    def _rule(self, **overrides):
        mapping = {
            "config_schema_name": "check_tmp_separate_partition",
            "query_constraints": "dir = ?",
            "query_constraints_value": ["/tmp"],
            "query_columns": "*",
            "schema_parser": "fstab",
            "non_preferred_value": [""],
            "non_preferred_value_match": "exact,all",
            "not_matched_preferred_value_description": "/tmp not separate",
            "matched_description": "/tmp separate",
        }
        mapping.update(overrides)
        return build_rule(mapping)

    def test_paper_listing3_pass(self):
        frame = _frame(etc__fstab="/dev/sda2 /tmp ext4 nodev 0 2\n")
        result = evaluate_schema(
            self._rule(), frame, _manifest("fstab", ("/etc/fstab",)), Normalizer()
        )
        assert result.verdict is Verdict.COMPLIANT
        assert result.message == "/tmp separate"

    def test_paper_listing3_fail_when_absent(self):
        frame = _frame(etc__fstab="/dev/sda1 / ext4 defaults 0 1\n")
        result = evaluate_schema(
            self._rule(), frame, _manifest("fstab", ("/etc/fstab",)), Normalizer()
        )
        assert result.verdict is Verdict.NONCOMPLIANT
        assert result.message == "/tmp not separate"

    def test_option_projection_with_preferred(self):
        frame = _frame(etc__fstab="/dev/sda2 /tmp ext4 nodev,nosuid 0 2\n")
        rule = self._rule(
            query_columns="options",
            preferred_value=["nodev"],
            preferred_value_match="substr,all",
        )
        result = evaluate_schema(
            rule, frame, _manifest("fstab", ("/etc/fstab",)), Normalizer()
        )
        assert result.verdict is Verdict.COMPLIANT

    def test_missing_file_is_not_present(self):
        frame = _frame(etc__hostname="x\n")
        result = evaluate_schema(
            self._rule(), frame, _manifest("fstab", ("/etc/fstab",)), Normalizer()
        )
        assert result.outcome is Outcome.NOT_PRESENT

    def test_bad_query_is_error(self):
        frame = _frame(etc__fstab="/dev/sda1 / ext4 defaults 0 1\n")
        rule = self._rule(query_constraints="nonexistent_column = ?")
        result = evaluate_schema(
            rule, frame, _manifest("fstab", ("/etc/fstab",)), Normalizer()
        )
        assert result.verdict is Verdict.ERROR

    def test_multirow_projection_joined_with_colon(self):
        frame = _frame(etc__passwd="root:x:0:0:r:/root:/bin/bash\n")
        rule = build_rule({
            "config_schema_name": "root_shell",
            "query_constraints": "user = ?",
            "query_constraints_value": ["root"],
            "query_columns": "user, shell",
            "schema_parser": "passwd",
            "preferred_value": ["root:/bin/bash"],
            "preferred_value_match": "exact,all",
        })
        result = evaluate_schema(
            rule, frame, _manifest("passwd", ("/etc/passwd",)), Normalizer()
        )
        assert result.verdict is Verdict.COMPLIANT


class TestPathEvaluator:
    def test_paper_listing4_pass(self):
        fs = VirtualFilesystem()
        fs.write_file("/etc/mysql/my.cnf", "", mode=0o644, uid=0, gid=0)
        frame = Crawler().crawl(HostEntity("h", fs), features=("files",))
        rule = build_rule({
            "path_name": "/etc/mysql/my.cnf",
            "ownership": "0:0",
            "permission": 644,
        })
        result = evaluate_path(rule, frame, _manifest("mysql"))
        assert result.verdict is Verdict.COMPLIANT

    def test_wrong_permission(self):
        fs = VirtualFilesystem()
        fs.write_file("/etc/mysql/my.cnf", "", mode=0o666)
        frame = Crawler().crawl(HostEntity("h", fs), features=("files",))
        rule = build_rule({"path_name": "/etc/mysql/my.cnf", "permission": 644})
        result = evaluate_path(rule, frame, _manifest("mysql"))
        assert result.verdict is Verdict.NONCOMPLIANT
        assert result.outcome is Outcome.METADATA_MISMATCH
        assert "666" in result.detail

    def test_permission_mask(self):
        fs = VirtualFilesystem()
        fs.write_file("/f", "", mode=0o600)
        frame = Crawler().crawl(HostEntity("h", fs), features=("files",))
        rule = build_rule({"path_name": "/f", "permission_mask": 644})
        assert evaluate_path(rule, frame, _manifest()).passed
        fs.chmod("/f", 0o664)
        frame = Crawler().crawl(HostEntity("h", fs), features=("files",))
        assert not evaluate_path(rule, frame, _manifest()).passed

    def test_symbolic_ownership_accepted(self):
        fs = VirtualFilesystem()
        fs.write_file("/s", "", uid=999, gid=999, owner="app", group="app")
        frame = Crawler().crawl(HostEntity("h", fs), features=("files",))
        rule = build_rule({"path_name": "/s", "ownership": "app:app"})
        assert evaluate_path(rule, frame, _manifest()).passed

    def test_wrong_ownership(self):
        fs = VirtualFilesystem()
        fs.write_file("/s", "", uid=1000, gid=1000)
        frame = Crawler().crawl(HostEntity("h", fs), features=("files",))
        rule = build_rule({"path_name": "/s", "ownership": "0:0"})
        assert not evaluate_path(rule, frame, _manifest()).passed

    def test_missing_path_fails(self):
        frame = _frame(etc__hostname="x")
        rule = build_rule({"path_name": "/etc/shadow", "permission": 640})
        result = evaluate_path(rule, frame, _manifest())
        assert result.outcome is Outcome.NOT_PRESENT
        assert result.verdict is Verdict.NONCOMPLIANT

    def test_exists_false_forbids_presence(self):
        frame = _frame(etc__hostname="x", root__dangerous="")
        rule = build_rule({"path_name": "/root/dangerous", "exists": False})
        result = evaluate_path(rule, frame, _manifest())
        assert result.verdict is Verdict.NONCOMPLIANT
        assert result.outcome is Outcome.PRESENT_UNEXPECTEDLY

    def test_exists_false_passes_when_absent(self):
        frame = _frame(etc__hostname="x")
        rule = build_rule({"path_name": "/root/dangerous", "exists": False})
        assert evaluate_path(rule, frame, _manifest()).passed


class TestScriptEvaluator:
    def _frame_with_runtime(self, namespace, mapping):
        frame = _frame(etc__hostname="x")
        frame.runtime[namespace] = mapping
        return frame

    def _rule(self, script, **overrides):
        mapping = {"script_name": "check", "script": script}
        mapping.update(overrides)
        return build_rule(mapping)

    def test_preferred_match(self):
        frame = self._frame_with_runtime("docker", {"HostConfig.Privileged": "false"})
        rule = self._rule("docker HostConfig.Privileged",
                          preferred_value=["false"])
        result = evaluate_script(rule, frame, _manifest("docker"))
        assert result.passed
        assert result.evidence[0].location == "docker:HostConfig.Privileged"

    def test_non_preferred_match(self):
        frame = self._frame_with_runtime("docker", {"HostConfig.NetworkMode": "host"})
        rule = self._rule("docker HostConfig.NetworkMode",
                          non_preferred_value=["host"])
        assert not evaluate_script(rule, frame, _manifest("docker")).passed

    def test_missing_namespace_not_applicable(self):
        frame = _frame(etc__hostname="x")
        rule = self._rule("docker HostConfig.Privileged",
                          preferred_value=["false"])
        result = evaluate_script(rule, frame, _manifest("docker"))
        assert result.verdict is Verdict.NOT_APPLICABLE
        assert result.outcome is Outcome.PLUGIN_UNAVAILABLE

    def test_missing_key_not_present(self):
        frame = self._frame_with_runtime("docker", {})
        rule = self._rule("docker Some.Key", preferred_value=["x"])
        result = evaluate_script(rule, frame, _manifest("docker"))
        assert result.outcome is Outcome.NOT_PRESENT
        assert result.verdict is Verdict.NONCOMPLIANT

    def test_missing_key_with_not_present_pass(self):
        frame = self._frame_with_runtime("docker", {})
        rule = self._rule("docker Mounts.0.Source",
                          non_preferred_value=["/var/run/docker.sock"],
                          not_present_pass=True)
        assert evaluate_script(rule, frame, _manifest("docker")).passed
