"""Tests for the shipped rule packs (paper Table 1 coverage)."""

import pytest

from repro.crawler import ContainerEntity, DockerImageEntity
from repro.engine import Verdict
from repro.rules import (
    SYSTEM_SERVICE_TARGETS,
    TABLE1_TARGETS,
    inventory,
    load_builtin_validator,
    total_rules,
)
from repro.workloads import FleetSpec, build_cloud_project, build_fleet, ubuntu_host_entity


class TestInventory:
    def test_eleven_targets(self):
        targets = [t for group in TABLE1_TARGETS.values() for t in group]
        assert len(targets) == 11

    def test_categories_match_paper(self):
        assert TABLE1_TARGETS["Applications"] == ["apache", "nginx", "hadoop", "mysql"]
        assert TABLE1_TARGETS["System services"] == [
            "audit", "fstab", "sshd", "sysctl", "modprobe",
        ]
        assert TABLE1_TARGETS["Cloud services"] == ["openstack", "docker"]

    def test_at_least_135_rules(self):
        # The paper reports 135 rules; our packs meet or exceed that.
        assert total_rules() >= 135

    def test_every_pack_loads_and_is_nonempty(self):
        counts = inventory()
        for target, count in counts.items():
            assert count > 0, target

    def test_all_audit_rules_cis_tagged(self, validator):
        manifest = validator.manifest("audit")
        for rule in validator.ruleset_for(manifest):
            assert rule.has_tag("cis"), rule.name

    def test_applications_use_owasp_family_tags(self, validator):
        for target in ("apache", "nginx"):
            manifest = validator.manifest(target)
            for rule in validator.ruleset_for(manifest):
                assert any(
                    rule.has_tag(tag) for tag in ("owasp", "hipaa", "pci")
                ), (target, rule.name)

    def test_openstack_uses_ossg_tags(self, validator):
        manifest = validator.manifest("openstack")
        for rule in validator.ruleset_for(manifest):
            assert rule.has_tag("ossg"), rule.name

    def test_docker_packs_cover_cis_docker(self, validator):
        cis_ids = set()
        for entity in ("docker", "docker_containers"):
            manifest = validator.manifest(entity)
            for rule in validator.ruleset_for(manifest):
                cis_ids.update(
                    tag for tag in rule.tags if tag.startswith("#cisdocker")
                )
        # Paper: 41% of the CIS Docker checklist (~84 checks) ~= 34 rules.
        assert len(cis_ids) >= 25

    def test_system_service_targets_subset(self):
        assert set(SYSTEM_SERVICE_TARGETS) < {
            t for group in TABLE1_TARGETS.values() for t in group
        }

    def test_only_filter_disables_other_targets(self):
        validator = load_builtin_validator(only=["sshd"])
        enabled = [m.entity for m in validator.manifests() if m.enabled]
        assert enabled == ["sshd"]


class TestHostScenarios:
    def test_hardened_host_is_fully_compliant(self, validator, hardened_host):
        report = validator.validate_entity(hardened_host)
        assert report.compliant, [
            (r.entity, r.rule.name, r.message)
            for r in report.failed() + report.errors()
        ]

    def test_stock_host_fails_many_rules(self, validator, stock_host):
        report = validator.validate_entity(stock_host)
        counts = report.counts()
        assert counts["noncompliant"] > counts["compliant"]
        assert counts["error"] == 0

    def test_stock_host_fails_root_login(self, validator, stock_host):
        report = validator.validate_entity(stock_host)
        failures = {r.rule.name: r for r in report.failed()}
        assert "PermitRootLogin" in failures
        assert failures["PermitRootLogin"].message == (
            "PermitRootLogin is present but it is enabled."
        )

    def test_paper_composite_rule_on_full_host(self, validator, hardened_host):
        report = validator.validate_entity(hardened_host)
        composite = [
            r for r in report
            if r.rule.name == "mysql ssl-ca path and sysctl and nginx SSL"
        ]
        assert composite and composite[0].verdict is Verdict.COMPLIANT


class TestFleetScenarios:
    @pytest.fixture(scope="class")
    def fleet_report(self):
        validator = load_builtin_validator()
        _daemon, images, containers = build_fleet(
            FleetSpec(images=4, containers_per_image=2, misconfig_rate=0.5, seed=11)
        )
        entities = [ContainerEntity(c) for c in containers]
        entities += [DockerImageEntity(i) for i in images]
        return validator.validate_entities(entities)

    def test_fleet_produces_no_errors(self, fleet_report):
        assert fleet_report.errors() == []

    def test_fleet_has_mixed_verdicts(self, fleet_report):
        counts = fleet_report.counts()
        assert counts["compliant"] > 0
        assert counts["noncompliant"] > 0

    def test_container_rules_only_on_containers(self, fleet_report):
        for result in fleet_report.for_entity("docker_containers"):
            assert result.target.startswith(("container:", "image:"))

    def test_privileged_container_detected(self):
        validator = load_builtin_validator()
        # misconfig_rate=1: every knob bad; seed chosen to include privileged
        _d, _i, containers = build_fleet(
            FleetSpec(images=6, containers_per_image=2, misconfig_rate=1.0, seed=2)
        )
        report = validator.validate_entities(
            [ContainerEntity(c) for c in containers]
        )
        privileged_failures = [
            r for r in report.failed()
            if r.rule.name == "container_not_privileged"
        ]
        assert privileged_failures


class TestCloudScenarios:
    def test_clean_project_one_expected_finding(self, validator):
        entity = build_cloud_project("clean-x", violations=False)
        report = validator.validate_entity(entity)
        # Only the strict "no world-open ingress at all" rule fires (the
        # public 443 web tier is world-open by design).
        assert {r.rule.name for r in report.failed()} == {"no_world_open_ingress"}

    def test_violating_project_fails_across_the_board(self, validator):
        entity = build_cloud_project("dirty-x", violations=True)
        report = validator.validate_entity(entity)
        failed = {r.rule.name for r in report.failed()}
        assert {"no_world_open_ssh", "admins_have_mfa",
                "instances_have_keypairs", "provider"} <= failed
