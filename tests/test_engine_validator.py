"""Tests for the ConfigValidator engine: scoping, composites, reports."""

import json

import pytest

from repro.errors import EngineError, EntityNotFound
from repro.fs import VirtualFilesystem
from repro.crawler import Crawler, HostEntity
from repro.cvl import Manifest, load_rules
from repro.engine import (
    ConfigValidator,
    Verdict,
    render_json,
    render_result,
    render_text,
    summarize_by_entity,
)

RULES = {
    "sshd.yaml": """
config_name: PermitRootLogin
file_context: ["sshd_config"]
preferred_value: ["no"]
preferred_value_match: substr,all
matched_description: "Root login is disabled."
not_matched_preferred_value_description: "PermitRootLogin is present but it is enabled."
tags: ["#security", "#cis"]
---
path_name: /etc/ssh/sshd_config
permission_mask: 644
tags: ["#cis"]
""",
    "sysctl.yaml": """
config_name: net.ipv4.ip_forward
file_context: ["sysctl.conf"]
preferred_value: ["0"]
preferred_value_match: exact,all
tags: ["#cis"]
""",
    "nginx.yaml": """
config_name: listen
config_path: ["server", "http/server"]
file_context: ["nginx.conf"]
tags: ["#owasp"]
---
composite_rule_name: cross_entity
composite_rule: sysctl.net.ipv4.ip_forward && nginx.listen
matched_description: "both good"
not_matched_preferred_value_description: "one bad"
""",
}

MANIFEST = """
sshd: {config_search_paths: [/etc/ssh], cvl_file: sshd.yaml}
sysctl: {config_search_paths: [/etc/sysctl.conf], cvl_file: sysctl.yaml}
nginx: {config_search_paths: [/etc/nginx], cvl_file: nginx.yaml}
"""


def _validator() -> ConfigValidator:
    validator = ConfigValidator(resolver=RULES.__getitem__)
    validator.add_manifest_text(MANIFEST)
    return validator


def _host(forward="0", root_login="no", with_nginx=True) -> HostEntity:
    fs = VirtualFilesystem()
    fs.write_file("/etc/ssh/sshd_config", f"PermitRootLogin {root_login}\n",
                  mode=0o600)
    fs.write_file("/etc/sysctl.conf", f"net.ipv4.ip_forward = {forward}\n")
    if with_nginx:
        fs.write_file("/etc/nginx/nginx.conf", "http { server { listen 443; } }")
    return HostEntity("h", fs)


class TestValidatorCore:
    def test_full_pass(self):
        report = _validator().validate_entity(_host())
        assert report.compliant
        assert report.counts()["total"] == 5

    def test_failures_reported(self):
        report = _validator().validate_entity(_host(forward="1", root_login="yes"))
        failed = {r.rule.name for r in report.failed()}
        assert failed == {"PermitRootLogin", "net.ipv4.ip_forward", "cross_entity"}

    def test_tag_filtering(self):
        report = _validator().validate_entity(_host(), tags=["#owasp"])
        assert {r.rule.name for r in report} == {"listen"}

    def test_component_skipped_when_absent(self):
        report = _validator().validate_entity(_host(with_nginx=False))
        per_entity = [r for r in report.for_entity("nginx")
                      if r.rule.rule_type != "composite"]
        assert not per_entity
        # composite referencing nginx becomes N/A, not a failure
        composites = [r for r in report if r.rule.name == "cross_entity"]
        assert composites[0].verdict is Verdict.NOT_APPLICABLE

    def test_manifest_disabled(self):
        validator = _validator()
        validator.manifest("nginx").enabled = False
        report = validator.validate_entity(_host())
        assert not report.for_entity("nginx")

    def test_kind_scoping(self):
        validator = _validator()
        validator.manifest("nginx").entity_kinds = ["container"]
        report = validator.validate_entity(_host())
        per_entity = [r for r in report.for_entity("nginx")
                      if r.rule.rule_type != "composite"]
        assert not per_entity

    def test_unknown_manifest_lookup(self):
        with pytest.raises(EntityNotFound):
            _validator().manifest("ghost")

    def test_missing_resolver_is_engine_error(self):
        validator = ConfigValidator()
        validator.add_manifest(Manifest(entity="x", cvl_file="x.yaml"))
        with pytest.raises(EngineError):
            validator.ruleset_for(validator.manifest("x"))

    def test_add_ruleset_bypasses_resolver(self):
        validator = ConfigValidator()
        ruleset = load_rules("config_name: k\nfile_context: [f]\n")
        validator.add_ruleset(
            Manifest(entity="e", cvl_file="inline", config_search_paths=["/"]),
            ruleset,
        )
        fs = VirtualFilesystem()
        fs.write_file("/f", "k = v\n")
        report = validator.validate_entity(HostEntity("h", fs))
        assert report.counts()["total"] == 1

    def test_rule_count(self):
        assert _validator().rule_count() == 5

    def test_ruleset_cached(self):
        validator = _validator()
        manifest = validator.manifest("sshd")
        assert validator.ruleset_for(manifest) is validator.ruleset_for(manifest)


class TestCrossEntityComposites:
    def test_composite_spans_two_frames(self):
        validator = _validator()
        sysctl_fs = VirtualFilesystem()
        sysctl_fs.write_file("/etc/sysctl.conf", "net.ipv4.ip_forward = 0\n")
        nginx_fs = VirtualFilesystem()
        nginx_fs.write_file("/etc/nginx/nginx.conf",
                            "http { server { listen 443; } }")
        report = validator.validate_entities(
            [HostEntity("sys-host", sysctl_fs), HostEntity("web-host", nginx_fs)]
        )
        composite = [r for r in report if r.rule.name == "cross_entity"][0]
        assert composite.verdict is Verdict.COMPLIANT

    def test_composite_evaluated_once_per_group(self):
        validator = _validator()
        report = validator.validate_entities([_host(), _host()])
        composites = [r for r in report if r.rule.name == "cross_entity"]
        assert len(composites) == 1

    def test_composite_fails_with_evidence(self):
        report = _validator().validate_entity(_host(forward="1"))
        composite = [r for r in report if r.rule.name == "cross_entity"][0]
        assert composite.verdict is Verdict.NONCOMPLIANT
        assert composite.message == "one bad"
        values = {e.location: e.value for e in composite.evidence}
        assert values["sysctl.net.ipv4.ip_forward"] == "false"


class TestReportRendering:
    def test_text_report(self):
        report = _validator().validate_entity(_host(root_login="yes"))
        text = render_text(report, verbose=True)
        assert "[FAIL] sshd: PermitRootLogin" in text
        assert "# 5 checks:" in text

    def test_only_failures(self):
        report = _validator().validate_entity(_host(root_login="yes"))
        text = render_text(report, only_failures=True)
        assert "[PASS]" not in text
        assert "[FAIL]" in text

    def test_json_report(self):
        report = _validator().validate_entity(_host())
        data = json.loads(render_json(report))
        assert data["summary"]["total"] == 5
        assert {r["rule"] for r in data["results"]} >= {"PermitRootLogin"}
        assert all("verdict" in r for r in data["results"])

    def test_render_single_result_with_action(self):
        report = _validator().validate_entity(_host(root_login="yes"))
        failing = report.failed()[0]
        failing.rule.suggested_action = "set PermitRootLogin no"
        rendered = render_result(failing, verbose=True)
        assert "action: set PermitRootLogin no" in rendered

    def test_summarize_by_entity(self):
        report = _validator().validate_entity(_host(root_login="yes"))
        summary = summarize_by_entity(report)
        assert summary["sshd"]["noncompliant"] == 1
        assert summary["sysctl"]["compliant"] == 1

    def test_report_selectors(self):
        report = _validator().validate_entity(_host(root_login="yes"))
        assert len(report.with_tag("#cis")) == 3
        assert report.by_severity("medium")
        assert report.errors() == []


class TestTiming:
    def test_durations_recorded(self):
        report = _validator().validate_entity(_host())
        timed = [r for r in report if r.rule.rule_type != "composite"]
        assert all(r.duration_s >= 0 for r in timed)
        assert any(r.duration_s > 0 for r in timed)

    def test_slowest_sorted_descending(self):
        report = _validator().validate_entity(_host())
        slowest = report.slowest(3)
        durations = [r.duration_s for r in slowest]
        assert durations == sorted(durations, reverse=True)
