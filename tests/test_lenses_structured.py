"""Tests for the structured lenses: nginx, apache, ini, xml, hadoop, json,
yaml, and the registry."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LensError
from repro.augtree.lenses import (
    ApacheLens,
    HadoopLens,
    IniLens,
    JsonLens,
    NginxLens,
    XmlLens,
    YamlLens,
    default_registry,
    lens_for_file,
)


class TestNginxLens:
    def test_simple_directive(self):
        tree = NginxLens().parse("worker_processes auto;\n")
        assert tree.value_of("worker_processes") == "auto"

    def test_nested_blocks(self):
        tree = NginxLens().parse(
            "http { server { listen 443 ssl; } server { listen 80; } }"
        )
        assert [n.value for n in tree.match("http/server/listen")] == [
            "443 ssl",
            "80",
        ]

    def test_block_with_arguments(self):
        tree = NginxLens().parse("http { location /api { proxy_pass http://b; } }")
        location = tree.first("http/location")
        assert location.value == "/api"
        assert location.get("proxy_pass") == "http://b"

    def test_valueless_directive(self):
        tree = NginxLens().parse("events { }")
        assert tree.first("events").value is None

    def test_quoted_arguments(self):
        tree = NginxLens().parse('add_header X-Test "a; b { }";\n')
        assert tree.value_of("add_header") == "X-Test a; b { }"

    def test_comments_ignored(self):
        tree = NginxLens().parse("# server { bad }\nuser www-data; # inline\n")
        assert tree.size() == 1

    def test_missing_semicolon_rejected(self):
        with pytest.raises(LensError):
            NginxLens().parse("user www-data")

    def test_unbalanced_brace_rejected(self):
        with pytest.raises(LensError):
            NginxLens().parse("http { server {")

    def test_stray_close_rejected(self):
        with pytest.raises(LensError):
            NginxLens().parse("}")

    def test_unterminated_string_rejected(self):
        with pytest.raises(LensError):
            NginxLens().parse('user "www')

    @given(depth=st.integers(min_value=1, max_value=8))
    def test_deep_nesting_roundtrip(self, depth):
        text = ""
        for level in range(depth):
            text += f"level{level} {{\n"
        text += "leaf yes;\n" + "}\n" * depth
        tree = NginxLens().parse(text)
        path = "/".join(f"level{level}" for level in range(depth)) + "/leaf"
        assert tree.value_of(path) == "yes"


class TestApacheLens:
    def test_flat_directive(self):
        tree = ApacheLens().parse("ServerTokens Prod\n")
        assert tree.value_of("ServerTokens") == "Prod"

    def test_section_nesting(self):
        tree = ApacheLens().parse(
            "<Directory /var/www/>\n  Options -Indexes\n</Directory>\n"
        )
        directory = tree.first("Directory")
        assert directory.value == "/var/www/"
        assert directory.get("Options") == "-Indexes"

    def test_nested_sections(self):
        tree = ApacheLens().parse(
            "<VirtualHost *:443>\n<Directory />\nAllowOverride None\n"
            "</Directory>\n</VirtualHost>\n"
        )
        assert tree.value_of("VirtualHost/Directory/AllowOverride") == "None"

    def test_mismatched_close_rejected(self):
        with pytest.raises(LensError):
            ApacheLens().parse("<Directory />\n</VirtualHost>\n")

    def test_unclosed_section_rejected(self):
        with pytest.raises(LensError):
            ApacheLens().parse("<Directory />\nOptions None\n")

    def test_case_insensitive_close(self):
        tree = ApacheLens().parse("<ifmodule x>\nA b\n</IfModule>\n")
        assert tree.value_of("ifmodule/A") == "b"

    def test_quoted_args_unquoted(self):
        tree = ApacheLens().parse('DocumentRoot "/var/www/html"\n')
        assert tree.value_of("DocumentRoot") == "/var/www/html"


class TestIniLens:
    def test_sections_and_keys(self):
        tree = IniLens().parse("[mysqld]\nssl-ca = /etc/ca.pem\n")
        assert tree.value_of("mysqld/ssl-ca") == "/etc/ca.pem"

    def test_bare_flag(self):
        tree = IniLens().parse("[mysqld]\nskip-networking\n")
        node = tree.first("mysqld/skip-networking")
        assert node is not None and node.value is None

    def test_global_section_for_preamble_keys(self):
        tree = IniLens().parse("top = 1\n[s]\nk = 2\n")
        assert tree.value_of("(global)/top") == "1"

    def test_include_directive_preserved(self):
        tree = IniLens().parse("!includedir /etc/mysql/conf.d/\n")
        assert tree.value_of("!includedir") == "/etc/mysql/conf.d/"

    def test_repeated_sections(self):
        tree = IniLens().parse("[s]\nk = 1\n[s]\nk = 2\n")
        assert [n.value for n in tree.match("s/k")] == ["1", "2"]

    def test_malformed_header_rejected(self):
        with pytest.raises(LensError):
            IniLens().parse("[broken\n")

    def test_quoted_value(self):
        tree = IniLens().parse("[s]\nk = 'quoted'\n")
        assert tree.value_of("s/k") == "quoted"


class TestXmlAndHadoop:
    def test_generic_xml_tree(self):
        tree = XmlLens().parse("<a><b attr='1'>text</b></a>")
        assert tree.value_of("a/b") == "text"
        assert tree.value_of("a/b/@attr") == "1"

    def test_invalid_xml_rejected(self):
        with pytest.raises(LensError):
            XmlLens().parse("<a><b></a>")

    def test_namespace_stripped(self):
        tree = XmlLens().parse('<a xmlns="urn:x"><b>v</b></a>')
        assert tree.value_of("a/b") == "v"

    def test_hadoop_properties_flattened(self):
        tree = HadoopLens().parse(
            "<configuration><property>"
            "<name>dfs.permissions.enabled</name><value>true</value>"
            "</property></configuration>"
        )
        assert tree.value_of("dfs.permissions.enabled") == "true"

    def test_hadoop_final_flag(self):
        tree = HadoopLens().parse(
            "<configuration><property><name>k</name><value>v</value>"
            "<final>true</final></property></configuration>"
        )
        assert tree.value_of("k/final") == "true"

    def test_hadoop_property_without_name_rejected(self):
        with pytest.raises(LensError):
            HadoopLens().parse(
                "<configuration><property><value>v</value></property>"
                "</configuration>"
            )

    def test_hadoop_falls_back_on_non_configuration_root(self):
        tree = HadoopLens().parse("<other><x>1</x></other>")
        assert tree.value_of("other/x") == "1"


class TestJsonYaml:
    def test_json_scalars(self):
        tree = JsonLens().parse('{"icc": false, "log-driver": "syslog"}')
        assert tree.value_of("icc") == "false"
        assert tree.value_of("log-driver") == "syslog"

    def test_json_nested_and_lists(self):
        tree = JsonLens().parse('{"hosts": ["fd://", "tcp://0.0.0.0:2375"]}')
        assert [n.value for n in tree.match("hosts")] == [
            "fd://",
            "tcp://0.0.0.0:2375",
        ]

    def test_json_empty_document(self):
        assert JsonLens().parse("").size() == 0

    def test_json_invalid_rejected(self):
        with pytest.raises(LensError):
            JsonLens().parse("{nope}")

    def test_json_non_object_document(self):
        tree = JsonLens().parse("[1, 2]")
        assert [n.value for n in tree.match("(document)")] == ["1", "2"]

    def test_yaml_mapping(self):
        tree = YamlLens().parse("a:\n  b: 1\n  c: true\n")
        assert tree.value_of("a/b") == "1"
        assert tree.value_of("a/c") == "true"

    def test_yaml_invalid_rejected(self):
        with pytest.raises(LensError):
            YamlLens().parse("a: [unclosed")

    def test_yaml_empty(self):
        assert YamlLens().parse("").size() == 0


class TestRegistry:
    def test_pattern_dispatch(self):
        cases = {
            "/etc/ssh/sshd_config": "sshd",
            "/etc/sysctl.conf": "sysctl",
            "/etc/modprobe.d/cis.conf": "modprobe",
            "/etc/nginx/nginx.conf": "nginx",
            "/etc/nginx/sites-enabled/default": "nginx",
            "/etc/apache2/apache2.conf": "apache",
            "/etc/mysql/my.cnf": "ini",
            "/etc/hadoop/hdfs-site.xml": "hadoop",
            "/opt/app/pom.xml": "xml",
            "/etc/docker/daemon.json": "json",
            "/opt/app/config.yaml": "yaml",
            "/opt/app/log4j.properties": "properties",
        }
        for path, expected in cases.items():
            lens = lens_for_file(path)
            assert lens is not None and lens.name == expected, path

    def test_unknown_file_falls_back_or_none(self):
        assert lens_for_file("/etc/unknown.conf").name == "keyvalue"
        assert lens_for_file("/etc/unknownfile") is None

    def test_get_by_name(self):
        registry = default_registry()
        assert registry.get("nginx").name == "nginx"

    def test_unknown_name_raises(self):
        with pytest.raises(LensError):
            default_registry().get("klingon")

    def test_duplicate_registration_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError):
            registry.register(NginxLens())
