# Convenience targets for the ConfigValidator reproduction.

.PHONY: install test bench bench-check fuzz lint examples results all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Regression gate: re-run the fleet/pipeline/incremental benchmarks and
# fail on a >25% throughput drop vs benchmarks/results/bench_baseline.json.
# bench_incremental.py additionally asserts the incremental-revalidation
# gates: >= 5x unchanged-fleet speedup, bounded cold-cycle overhead.
# bench_rule_plan.py asserts the compiled-plan gates: >= 2x planned
# throughput on the 16x ruleset, no 1x regression, byte-identical reports.
# bench_provenance.py asserts the provenance gates: <= 5% overhead for
# --provenance cycles, byte-identical provenance-off output.
# bench_executor.py asserts the executor gates: warm-store cold-process
# cycle >= 3x a storeless one, process >= 2x thread at 8 workers (only
# on >= 4 cores), byte-identical reports across backends.
# bench_trace.py asserts the trace-fabric gate: telemetry-on process
# cycles <= 5% wall-clock over telemetry-off, byte-identical reports.
bench-check:
	python benchmarks/compare_results.py

fuzz:
	pytest tests/test_fuzz_robustness.py

lint:
	python -m repro lint

examples:
	for f in examples/*.py; do echo "== $$f =="; python $$f > /dev/null || exit 1; done

results: bench
	cat benchmarks/results/*.txt

all: install test bench
