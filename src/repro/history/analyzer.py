"""Cycle-over-cycle health analysis: drift classification, verdict
streaks, and flapping-rule detection.

A rule that fails once is a finding; a rule that *oscillates* is noise
that trains operators to ignore the dashboard.  :class:`FlapDetector`
tracks each (target, entity, rule)'s verdicts over a sliding window of
cycles and flags keys whose verdict changed at least
``min_transitions`` times within it; :class:`HealthAnalyzer` layers the
event stream on top -- regressions and fixes straight from
:func:`repro.engine.drift.diff_reports`, fleet membership changes, and
flap start/end transitions -- and can rehydrate all of its state from
the :class:`~repro.history.store.HistoryStore`, so a restarted monitor
resumes mid-streak instead of re-announcing the world.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterable

from repro.engine.drift import diff_reports
from repro.engine.results import ValidationReport, Verdict
from repro.history.events import HealthEvent
from repro.history.store import HistoryStore, VerdictKey, report_verdict_map

#: Defaults: a key must change verdict 3+ times within its last 6
#: observations to count as flapping.
DEFAULT_FLAP_WINDOW = 6
DEFAULT_FLAP_MIN_TRANSITIONS = 3


def count_transitions(series: Iterable[str]) -> int:
    """Number of adjacent unequal pairs in a verdict series."""
    changes = 0
    previous = None
    for value in series:
        if previous is not None and value != previous:
            changes += 1
        previous = value
    return changes


class FlapDetector:
    """Sliding-window verdict-oscillation detector.

    Feed it one verdict map per cycle (:meth:`observe_cycle`); it
    returns which keys started and stopped flapping.  A key flaps while
    its last ``window`` verdicts contain at least ``min_transitions``
    changes; a key that leaves the fleet stops flapping implicitly.
    """

    def __init__(self, window: int = DEFAULT_FLAP_WINDOW,
                 min_transitions: int = DEFAULT_FLAP_MIN_TRANSITIONS):
        if window < 2:
            raise ValueError("flap window must be >= 2")
        if not 1 <= min_transitions <= window - 1:
            raise ValueError(
                "min_transitions must be in [1, window-1] "
                f"(got {min_transitions} for window {window})"
            )
        self.window = window
        self.min_transitions = min_transitions
        self._series: dict[VerdictKey, deque[str]] = {}
        self._flapping: set[VerdictKey] = set()

    def seed(self, series: dict[VerdictKey, list[str]]) -> None:
        """Rehydrate from stored history without emitting transitions."""
        for key, verdicts in series.items():
            window = deque(verdicts[-self.window:], maxlen=self.window)
            if not window:
                continue
            self._series[key] = window
            if count_transitions(window) >= self.min_transitions:
                self._flapping.add(key)

    def observe_cycle(
        self, verdicts: dict[VerdictKey, str]
    ) -> tuple[list[VerdictKey], list[VerdictKey]]:
        """Fold in one cycle; returns (flap starts, flap ends), sorted."""
        starts: list[VerdictKey] = []
        ends: list[VerdictKey] = []
        for key in set(self._series) - set(verdicts):
            del self._series[key]
            if key in self._flapping:
                self._flapping.discard(key)
                ends.append(key)
        for key, verdict in verdicts.items():
            window = self._series.get(key)
            if window is None:
                window = self._series[key] = deque(maxlen=self.window)
            window.append(verdict)
            flapping = count_transitions(window) >= self.min_transitions
            if flapping and key not in self._flapping:
                self._flapping.add(key)
                starts.append(key)
            elif not flapping and key in self._flapping:
                self._flapping.discard(key)
                ends.append(key)
        return sorted(starts), sorted(ends)

    def flapping(self) -> list[VerdictKey]:
        return sorted(self._flapping)

    def series(self, key: VerdictKey) -> tuple[str, ...]:
        return tuple(self._series.get(key, ()))

    def transitions(self, key: VerdictKey) -> int:
        return count_transitions(self._series.get(key, ()))


class HealthAnalyzer:
    """Turns consecutive cycles into typed health events.

    In-process, consecutive reports are classified with
    :func:`diff_reports` -- the monitor's regression/fix events are
    *definitionally* identical to what ``repro drift`` would print for
    the same pair of reports.  Across a daemon restart the previous
    cycle only exists as stored verdict rows, so the first diff runs on
    the stored verdict map with the same classification rules.
    """

    def __init__(self, store: HistoryStore, *,
                 flap_window: int = DEFAULT_FLAP_WINDOW,
                 flap_min_transitions: int = DEFAULT_FLAP_MIN_TRANSITIONS):
        self.store = store
        self.detector = FlapDetector(flap_window, flap_min_transitions)
        self._prev_report: ValidationReport | None = None
        self._prev_map: dict[VerdictKey, str] | None = None
        windows = store.verdict_windows(flap_window)
        if windows:
            self.detector.seed(
                {key: [verdict for _cycle, verdict in series]
                 for key, series in windows.items()}
            )
        latest = store.latest_cycle_id()
        if latest is not None:
            row = store.cycle(latest)
            if row is not None and not row.failed_cycle:
                self._prev_map = store.verdict_map(latest)

    # ---- the per-cycle entry points ---------------------------------------

    def observe_report(self, cycle_id: int,
                       report: ValidationReport) -> list[HealthEvent]:
        """Classify one completed cycle; returns its events in order
        (regressions, fixes, flaps, membership changes)."""
        now = time.time()
        current_map = report_verdict_map(report)
        severities = {
            (r.target, r.entity, r.rule.name): r.rule.severity
            for r in report
        }
        events: list[HealthEvent] = []
        if self._prev_report is not None:
            drift = diff_reports(self._prev_report, report)
            for kind, entries in (("regression", drift.regressions()),
                                  ("fix", drift.fixes())):
                for entry in entries:
                    events.append(HealthEvent(
                        kind=kind, cycle_id=cycle_id, ts=now,
                        target=entry.target, entity=entry.entity,
                        rule=entry.rule_name,
                        before=entry.before.value if entry.before else "",
                        after=entry.after.value if entry.after else "",
                        severity=entry.severity, message=entry.message,
                    ))
        elif self._prev_map is not None:
            events.extend(self._diff_stored(cycle_id, now, current_map,
                                            severities))
        baseline_map = (
            report_verdict_map(self._prev_report)
            if self._prev_report is not None else self._prev_map
        )
        flap_starts, flap_ends = self.detector.observe_cycle(current_map)
        for kind, keys in (("flap_start", flap_starts),
                           ("flap_end", flap_ends)):
            for key in keys:
                series = self.detector.series(key)
                events.append(HealthEvent(
                    kind=kind, cycle_id=cycle_id, ts=now,
                    target=key[0], entity=key[1], rule=key[2],
                    severity=severities.get(key, ""),
                    message=(
                        f"{count_transitions(series)} transitions in last "
                        f"{len(series)} cycles: {' -> '.join(series)}"
                        if series else "left the fleet"
                    ),
                ))
        if baseline_map is not None:
            before_targets = {key[0] for key in baseline_map}
            after_targets = {key[0] for key in current_map}
            for kind, targets in (
                ("entity_appeared", sorted(after_targets - before_targets)),
                ("entity_disappeared",
                 sorted(before_targets - after_targets)),
            ):
                for target in targets:
                    events.append(HealthEvent(
                        kind=kind, cycle_id=cycle_id, ts=now, target=target,
                    ))
        self._prev_report = report
        self._prev_map = current_map
        return events

    def observe_error(self, cycle_id: int, message: str) -> list[HealthEvent]:
        """A cycle that crashed before producing a report.

        The previous baseline is kept: the next good cycle diffs against
        the last good one, not against the crash.
        """
        return [HealthEvent(kind="scan_error", cycle_id=cycle_id,
                            message=message or "scan failed")]

    def _diff_stored(self, cycle_id: int, now: float,
                     current: dict[VerdictKey, str],
                     severities: dict[VerdictKey, str]) -> list[HealthEvent]:
        """Restart path: classify against the stored previous cycle with
        the same rules :func:`diff_reports` applies to live reports."""
        previous = self._prev_map or {}
        noncompliant = Verdict.NONCOMPLIANT.value
        compliant = Verdict.COMPLIANT.value
        events: list[HealthEvent] = []
        regressions: list[HealthEvent] = []
        fixes: list[HealthEvent] = []
        for key in sorted(set(previous) | set(current)):
            before = previous.get(key, "")
            after = current.get(key, "")
            event = HealthEvent(
                kind="regression", cycle_id=cycle_id, ts=now,
                target=key[0], entity=key[1], rule=key[2],
                before=before, after=after,
                severity=severities.get(key, ""),
            )
            if after == noncompliant and before != noncompliant:
                regressions.append(event)
            elif before == noncompliant and after == compliant:
                event.kind = "fix"
                fixes.append(event)
        events.extend(regressions)
        events.extend(fixes)
        return events

    # ---- offline / endpoint queries ---------------------------------------

    def flapping(self) -> list[VerdictKey]:
        return self.detector.flapping()

    def flapping_details(self) -> list[dict]:
        """Current flapping set with transition counts and series."""
        out = []
        for key in self.detector.flapping():
            series = self.detector.series(key)
            out.append({
                "target": key[0],
                "entity": key[1],
                "rule": key[2],
                "transitions": count_transitions(series),
                "window": len(series),
                "series": list(series),
            })
        return out

    def regression_counts(
        self, window: int = 20
    ) -> list[tuple[VerdictKey, int]]:
        """Keys ranked by how often they regressed in the last
        ``window`` cycles (from the store, so it works offline)."""
        noncompliant = Verdict.NONCOMPLIANT.value
        ranked: list[tuple[VerdictKey, int]] = []
        for key, series in self.store.verdict_windows(window).items():
            count = 0
            previous = None
            for _cycle, verdict in series:
                if verdict == noncompliant and previous is not None \
                        and previous != noncompliant:
                    count += 1
                previous = verdict
            if count:
                ranked.append((key, count))
        ranked.sort(key=lambda item: (-item[1], item[0]))
        return ranked

    def streaks(self, window: int = 50,
                verdict: str | None = None) -> list[tuple[VerdictKey, str, int]]:
        """Tail run length per key over the last ``window`` cycles:
        ``(key, verdict, length)``, longest first.  ``verdict`` filters
        (e.g. ``"noncompliant"`` for the wall-of-shame view)."""
        out: list[tuple[VerdictKey, str, int]] = []
        for key, series in self.store.verdict_windows(window).items():
            if not series:
                continue
            tail = series[-1][1]
            length = 0
            for _cycle, value in reversed(series):
                if value != tail:
                    break
                length += 1
            if verdict is None or tail == verdict:
                out.append((key, tail, length))
        out.sort(key=lambda item: (-item[2], item[0]))
        return out
