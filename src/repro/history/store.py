"""Durable fleet-health history: one SQLite row per (cycle, target,
entity, rule) verdict plus per-cycle rollups.

The paper's production story (§5) is *continuous* scanning -- operators
watch a fleet across many cycles, and the operator-facing artifact is
the verdict history, not any single report.  :class:`HistoryStore` is
the append-only time axis under that: every scan cycle lands as

* a ``cycles`` row -- counts, compliance score, stage timings, and the
  incremental/parse-cache effectiveness numbers imported from
  :class:`~repro.engine.batch.FleetSummary`;
* one ``verdicts`` row per (target, entity, rule) -- the raw material
  for flap detection, streaks, and offline drilldowns;
* one ``entity_rollups`` row per scanned frame.

Storage is stdlib :mod:`sqlite3` in WAL mode.  A single connection
(``check_same_thread=False``) is shared behind one lock, so scanner
threads, the HTTP endpoint, and offline readers coexist.

The write path is engineered against the <5% cycle-overhead budget that
``benchmarks/bench_history.py`` enforces (a steady-state warm-cache
scan cycle is tens of milliseconds, so the append must stay in the low
single digits):

* verdict keys are normalized into a ``series`` dimension table, so the
  per-cycle hot loop inserts ``(cycle_id, series_id, verdict_code)``
  integer rows instead of four-column text keys -- in steady state the
  dimension is fully cached in memory and never touched;
* verdicts are stored as 1-byte integer codes, decoded on read;
* messages are persisted only for noncompliant/error verdicts (a
  passing check's message restates the rule);
* each cycle is a single transaction (``executemany`` batches), and
  retention pruning deletes child rows explicitly so per-row foreign-key
  enforcement stays off.

Retention is bounded: ``retain_cycles`` prunes the oldest cycles after
every write, and incremental vacuum hands the freed pages back so a
long-running monitor's database stops growing once the window is full.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass

from repro.chaos.fabric import _CHAOS, absorbed as _chaos_absorbed
from repro.chaos.quarantine import is_corruption, quarantine_database
from repro.engine.batch import FleetSummary
from repro.engine.results import ValidationReport, Verdict
from repro.engine.stages import STAGES
from repro.telemetry import get_logger

log = get_logger("history")

#: Alignment key of one verdict across cycles (matches
#: :mod:`repro.engine.drift`).
VerdictKey = tuple[str, str, str]   # (target, entity, rule name)

#: Stable on-disk encoding of verdict values.  Append-only: codes are
#: part of the database format and must never be renumbered.
VERDICT_CODES: dict[str, int] = {
    Verdict.COMPLIANT.value: 0,
    Verdict.NONCOMPLIANT.value: 1,
    Verdict.ERROR.value: 2,
    Verdict.NOT_APPLICABLE.value: 3,
}
_VERDICT_NAMES: dict[int, str] = {
    code: value for value, code in VERDICT_CODES.items()
}
_MESSAGE_CODES = frozenset(
    (VERDICT_CODES[Verdict.NONCOMPLIANT.value],
     VERDICT_CODES[Verdict.ERROR.value])
)
#: Hot-loop twin of :data:`VERDICT_CODES`, keyed by enum member to skip
#: the ``.value`` descriptor per result.
_CODES_BY_MEMBER = {member: VERDICT_CODES[member.value]
                    for member in Verdict}
assert len(VERDICT_CODES) == len(Verdict), "unmapped verdict value"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cycles (
    cycle_id       INTEGER PRIMARY KEY AUTOINCREMENT,
    started_at     REAL    NOT NULL,
    elapsed_s      REAL    NOT NULL DEFAULT 0,
    entities       INTEGER NOT NULL DEFAULT 0,
    checks         INTEGER NOT NULL DEFAULT 0,
    compliant      INTEGER NOT NULL DEFAULT 0,
    noncompliant   INTEGER NOT NULL DEFAULT 0,
    errors         INTEGER NOT NULL DEFAULT 0,
    not_applicable INTEGER NOT NULL DEFAULT 0,
    compliance     REAL    NOT NULL DEFAULT 1.0,
    crawl_s        REAL    NOT NULL DEFAULT 0,
    discover_s     REAL    NOT NULL DEFAULT 0,
    parse_s        REAL    NOT NULL DEFAULT 0,
    evaluate_s     REAL    NOT NULL DEFAULT 0,
    composite_s    REAL    NOT NULL DEFAULT 0,
    parse_hits     INTEGER NOT NULL DEFAULT 0,
    parse_misses   INTEGER NOT NULL DEFAULT 0,
    parse_hit_rate REAL    NOT NULL DEFAULT 0,
    rules_skipped  INTEGER NOT NULL DEFAULT 0,
    rules_evaluated INTEGER NOT NULL DEFAULT 0,
    frames_clean   INTEGER NOT NULL DEFAULT 0,
    frames_dirty   INTEGER NOT NULL DEFAULT 0,
    scan_error     TEXT    NOT NULL DEFAULT '',
    -- Executor/artifact-store rollup for the cycle as a JSON document
    -- ({"exec": ExecStats.to_dict(), "artifact_store": ...}); empty for
    -- thread-backend cycles and rows written before the column existed.
    exec_json      TEXT    NOT NULL DEFAULT '',
    -- Where a failed cycle died: the pipeline stage ("crawl", "validate",
    -- "store", ...) and, when known, the frame being processed.  Empty
    -- for healthy cycles and rows written before the columns existed.
    scan_error_stage TEXT  NOT NULL DEFAULT '',
    scan_error_frame TEXT  NOT NULL DEFAULT ''
);

-- The verdict-key dimension: one row per (target, entity, rule) ever
-- observed.  Severity lives here because it is a property of the rule,
-- not of any one cycle's outcome.
CREATE TABLE IF NOT EXISTS series (
    series_id INTEGER PRIMARY KEY,
    target    TEXT NOT NULL,
    entity    TEXT NOT NULL,
    rule      TEXT NOT NULL,
    severity  TEXT NOT NULL DEFAULT '',
    UNIQUE (target, entity, rule)
);

-- Deliberately index-free beyond the PK: the write path is the hot
-- path, and every reader either scans a cycle range (PK prefix) or is
-- an offline drilldown bounded by retention.
CREATE TABLE IF NOT EXISTS verdicts (
    cycle_id  INTEGER NOT NULL,
    series_id INTEGER NOT NULL,
    verdict   INTEGER NOT NULL,
    message   TEXT    NOT NULL DEFAULT '',
    PRIMARY KEY (cycle_id, series_id)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS entity_rollups (
    cycle_id INTEGER NOT NULL,
    target   TEXT    NOT NULL,
    passed   INTEGER NOT NULL DEFAULT 0,
    failed   INTEGER NOT NULL DEFAULT 0,
    worst_severity TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (cycle_id, target)
) WITHOUT ROWID;

-- Verdict provenance (``--provenance`` cycles only): the serialized
-- ProvenanceRecord per verdict, so ``repro explain --since`` can anchor
-- and diff source lines across cycles.  Empty on default runs.
CREATE TABLE IF NOT EXISTS provenance (
    cycle_id  INTEGER NOT NULL,
    series_id INTEGER NOT NULL,
    record    TEXT    NOT NULL,
    PRIMARY KEY (cycle_id, series_id)
) WITHOUT ROWID;
"""

_CYCLE_COLUMNS = (
    "cycle_id", "started_at", "elapsed_s", "entities", "checks",
    "compliant", "noncompliant", "errors", "not_applicable", "compliance",
    "crawl_s", "discover_s", "parse_s", "evaluate_s", "composite_s",
    "parse_hits", "parse_misses", "parse_hit_rate",
    "rules_skipped", "rules_evaluated", "frames_clean", "frames_dirty",
    "scan_error", "exec_json", "scan_error_stage", "scan_error_frame",
)

_VERDICT_SELECT = (
    "SELECT v.cycle_id, s.target, s.entity, s.rule, v.verdict,"
    " s.severity, v.message FROM verdicts v"
    " JOIN series s ON s.series_id = v.series_id"
)


@dataclass
class CycleRow:
    """One scan cycle as stored (the ``repro history`` table row)."""

    cycle_id: int
    started_at: float
    elapsed_s: float
    entities: int
    checks: int
    compliant: int
    noncompliant: int
    errors: int
    not_applicable: int
    compliance: float
    crawl_s: float
    discover_s: float
    parse_s: float
    evaluate_s: float
    composite_s: float
    parse_hits: int
    parse_misses: int
    parse_hit_rate: float
    rules_skipped: int
    rules_evaluated: int
    frames_clean: int
    frames_dirty: int
    scan_error: str
    exec_json: str = ""
    #: Stage / frame attribution of a failed cycle (empty otherwise):
    #: lets ``repro history`` distinguish a crawl failure from a store
    #: failure without parsing the error message.
    scan_error_stage: str = ""
    scan_error_frame: str = ""

    @property
    def failed_cycle(self) -> bool:
        return bool(self.scan_error)

    @property
    def exec_summary(self) -> dict | None:
        """The cycle's executor/artifact-store rollup, decoded (None for
        thread-backend cycles and pre-column rows)."""
        if not self.exec_json:
            return None
        try:
            payload = json.loads(self.exec_json)
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    def to_dict(self) -> dict:
        out = {name: getattr(self, name) for name in _CYCLE_COLUMNS
               if name != "exec_json"}
        out["exec"] = self.exec_summary
        return out


@dataclass
class VerdictRow:
    """One stored verdict (message is kept only for noncompliant and
    error verdicts)."""

    cycle_id: int
    target: str
    entity: str
    rule: str
    verdict: str
    severity: str
    message: str

    @property
    def key(self) -> VerdictKey:
        return (self.target, self.entity, self.rule)

    def to_dict(self) -> dict:
        return {
            "cycle_id": self.cycle_id,
            "target": self.target,
            "entity": self.entity,
            "rule": self.rule,
            "verdict": self.verdict,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class EntityTrendRow:
    """Per-cycle health of one scanned frame."""

    cycle_id: int
    started_at: float
    target: str
    passed: int
    failed: int
    worst_severity: str

    def to_dict(self) -> dict:
        return {
            "cycle_id": self.cycle_id,
            "started_at": self.started_at,
            "target": self.target,
            "passed": self.passed,
            "failed": self.failed,
            "worst_severity": self.worst_severity,
        }


@dataclass
class HistoryStoreStats:
    """Write-path counters of one :class:`HistoryStore` (this process)."""

    cycles_recorded: int = 0
    error_cycles_recorded: int = 0
    rows_written: int = 0
    write_seconds: float = 0.0
    cycles_pruned: int = 0
    db_cycles: int = 0
    db_bytes: int = 0

    def render(self) -> str:
        return (
            f"history store: {self.cycles_recorded} cycles recorded "
            f"({self.error_cycles_recorded} errored), "
            f"{self.rows_written:,} rows in {self.write_seconds:.3f}s, "
            f"{self.cycles_pruned} pruned; db holds {self.db_cycles} "
            f"cycles / {self.db_bytes:,} B"
        )

    def to_dict(self) -> dict:
        return {
            "cycles_recorded": self.cycles_recorded,
            "error_cycles_recorded": self.error_cycles_recorded,
            "rows_written": self.rows_written,
            "write_seconds": self.write_seconds,
            "cycles_pruned": self.cycles_pruned,
            "db_cycles": self.db_cycles,
            "db_bytes": self.db_bytes,
        }


def report_verdict_map(report: ValidationReport) -> dict[VerdictKey, str]:
    """Report -> {(target, entity, rule): verdict value}.

    Duplicate keys collapse last-wins, mirroring how
    :func:`repro.engine.drift.diff_reports` indexes reports, so history
    rows and drift entries always agree.
    """
    return {
        (result.target, result.entity, result.rule.name):
            result.verdict.value
        for result in report
    }


class HistoryStore:
    """Append-only, thread-safe fleet-health store (SQLite, WAL)."""

    def __init__(self, path: str = ":memory:", *,
                 retain_cycles: int | None = None):
        if retain_cycles is not None and retain_cycles < 1:
            raise ValueError("retain_cycles must be >= 1")
        self.path = path
        self.retain_cycles = retain_cycles
        self._lock = threading.RLock()
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        try:
            if _CHAOS.armed:
                _CHAOS.fire("store.sqlite", self.path)
            self._conn = self._open()
        except sqlite3.Error as error:
            if not is_corruption(error) or path == ":memory:":
                raise
            # A corrupt history file must not kill the monitor: move it
            # aside (kept for the postmortem) and start a fresh window.
            _chaos_absorbed(error)
            moved = quarantine_database(self.path, reason=f"open: {error}")
            log.warning(
                "history store %s corrupt at open (%s); quarantined to "
                "%s, starting a fresh database", self.path, error, moved)
            self._conn = self._open()
        self._stats = HistoryStoreStats()
        #: In-memory twin of the ``series`` table; in steady state every
        #: verdict key hits this cache and the dimension is never read.
        self._series_ids: dict[VerdictKey, int] = {
            (row["target"], row["entity"], row["rule"]): row["series_id"]
            for row in self._conn.execute(
                "SELECT series_id, target, entity, rule FROM series"
            )
        }

    def _open(self) -> sqlite3.Connection:
        """Connect, apply pragmas, and bring the schema up to date."""
        conn = sqlite3.connect(
            self.path, check_same_thread=False, timeout=30.0
        )
        conn.row_factory = sqlite3.Row
        # auto_vacuum must be configured before the first table exists
        # for incremental_vacuum to reclaim pruned pages.
        conn.execute("PRAGMA auto_vacuum=INCREMENTAL")
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(_SCHEMA)
        # Databases created before newer columns shipped lack them
        # (CREATE IF NOT EXISTS leaves them as-is); widen in place so
        # old monitor databases keep working.
        present = {
            row["name"]
            for row in conn.execute("PRAGMA table_info(cycles)")
        }
        for column in ("exec_json", "scan_error_stage", "scan_error_frame"):
            if column not in present:
                conn.execute(
                    f"ALTER TABLE cycles ADD COLUMN {column} TEXT NOT NULL"
                    " DEFAULT ''"
                )
        conn.commit()
        return conn

    # ---- write path --------------------------------------------------------

    def record_cycle(self, summary: FleetSummary) -> int:
        """Persist one completed scan cycle; returns its cycle id."""
        timings = summary.stage_timings
        stage = {name: 0.0 for name in STAGES}
        if timings is not None:
            for name in STAGES:
                stage[name] = timings.seconds(name)
        cache = summary.cache_stats
        inc = summary.incremental
        rules_skipped = rules_evaluated = frames_clean = frames_dirty = 0
        if inc is not None and getattr(inc, "active", False):
            rules_skipped = inc.rules_replayed + inc.composites_replayed
            rules_evaluated = inc.rules_evaluated + inc.composites_evaluated
            frames_clean = inc.frames_clean
            frames_dirty = inc.frames_dirty
        # Single pass over the report: verdict counts (same tallies as
        # ``report.counts()``) and the row set.  Duplicate keys collapse
        # last-wins exactly as report_verdict_map / diff_reports index
        # reports.
        codes = _CODES_BY_MEMBER
        keep_message = _MESSAGE_CODES
        tally = [0, 0, 0, 0]   # indexed by verdict code
        observed: dict[VerdictKey, tuple[int, str, str]] = {}
        records: dict[VerdictKey, str] = {}
        for result in summary.report:
            rule = result.rule
            code = codes[result.verdict]
            tally[code] += 1
            key = (result.target, result.entity, rule.name)
            observed[key] = (
                code,
                result.message if code in keep_message else "",
                rule.severity,
            )
            # Direct field read: the common no-record case must not pay
            # the property descriptor on every result (record_cycle is
            # inside the monitor's <5% write budget).  A deferred marker
            # is truthy, so provenance-on rows still materialize below.
            if result._provenance is not None:
                records[key] = json.dumps(result.provenance.to_dict(),
                                          separators=(",", ":"))
        compliant = tally[VERDICT_CODES[Verdict.COMPLIANT.value]]
        noncompliant = tally[VERDICT_CODES[Verdict.NONCOMPLIANT.value]]
        checked = compliant + noncompliant
        exec_doc: dict = {}
        exec_stats = getattr(summary, "exec_stats", None)
        if exec_stats is not None:
            exec_doc["exec"] = exec_stats.to_dict()
        artifact_stats = getattr(summary, "artifact_stats", None)
        if artifact_stats is not None:
            exec_doc["artifact_store"] = artifact_stats.to_dict()
        exec_json = (json.dumps(exec_doc, separators=(",", ":"))
                     if exec_doc else "")
        started = time.perf_counter()
        with self._lock:
            new_series = 0
            series_ids = self._series_ids
            missing = [key for key in observed if key not in series_ids]
            for key in missing:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO series (target, entity, rule,"
                    " severity) VALUES (?,?,?,?)",
                    (*key, observed[key][2]),
                )
                if cursor.lastrowid:
                    series_ids[key] = cursor.lastrowid
                    new_series += 1
            cursor = self._conn.execute(
                "INSERT INTO cycles (started_at, elapsed_s, entities,"
                " checks, compliant, noncompliant, errors, not_applicable,"
                " compliance, crawl_s, discover_s, parse_s, evaluate_s,"
                " composite_s, parse_hits, parse_misses, parse_hit_rate,"
                " rules_skipped, rules_evaluated, frames_clean,"
                " frames_dirty, scan_error, exec_json)"
                " VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                (
                    summary.started_at or time.time(),
                    summary.elapsed_s,
                    summary.entities_scanned,
                    sum(tally),
                    compliant,
                    noncompliant,
                    tally[VERDICT_CODES[Verdict.ERROR.value]],
                    tally[VERDICT_CODES[Verdict.NOT_APPLICABLE.value]],
                    compliant / checked if checked else 1.0,
                    stage["crawl"], stage["discover"], stage["parse"],
                    stage["evaluate"], stage["composite"],
                    cache.hits if cache else 0,
                    cache.misses if cache else 0,
                    cache.hit_rate if cache else 0.0,
                    rules_skipped, rules_evaluated,
                    frames_clean, frames_dirty,
                    "", exec_json,
                ),
            )
            cycle_id = cursor.lastrowid
            self._bulk_insert_locked(
                "INSERT INTO verdicts (cycle_id, series_id, verdict,"
                " message) VALUES ",
                4,
                [
                    (cycle_id, series_ids[key], code, message)
                    for key, (code, message, _severity)
                    in observed.items()
                ],
            )
            self._bulk_insert_locked(
                "INSERT INTO entity_rollups (cycle_id, target, passed,"
                " failed, worst_severity) VALUES ",
                5,
                [
                    (cycle_id, rollup.target, rollup.passed, rollup.failed,
                     rollup.worst_severity)
                    for rollup in summary.entities.values()
                ],
            )
            if records:
                self._bulk_insert_locked(
                    "INSERT INTO provenance (cycle_id, series_id, record)"
                    " VALUES ",
                    3,
                    [
                        (cycle_id, series_ids[key], record)
                        for key, record in records.items()
                    ],
                )
            self._conn.commit()
            pruned = self._prune_locked()
            self._stats.cycles_recorded += 1
            self._stats.rows_written += (
                1 + new_series + len(observed) + len(summary.entities)
                + len(records)
            )
            self._stats.cycles_pruned += pruned
            self._stats.write_seconds += time.perf_counter() - started
        return cycle_id

    #: Rows per multi-VALUES INSERT.  225 rows x <=5 columns stays under
    #: SQLite's historical 999 bound-parameter limit; a single chunked
    #: statement is ~2x faster than executemany for the hot verdict
    #: append (one bytecode dispatch per chunk instead of per row).
    _INSERT_CHUNK_ROWS = 225

    def _bulk_insert_locked(self, prefix: str, ncols: int,
                            rows: list[tuple]) -> None:
        """Append ``rows`` via chunked multi-VALUES INSERTs.

        Caller holds the lock.  ``prefix`` must end with ``VALUES `` and
        ``ncols`` matches the tuple arity.
        """
        placeholder = "(" + ",".join("?" * ncols) + ")"
        for start in range(0, len(rows), self._INSERT_CHUNK_ROWS):
            chunk = rows[start:start + self._INSERT_CHUNK_ROWS]
            params: list = []
            for row in chunk:
                params.extend(row)
            self._conn.execute(
                prefix + ",".join([placeholder] * len(chunk)), params
            )

    def record_scan_error(self, message: str, *,
                          stage: str = "", frame: str = "",
                          started_at: float | None = None,
                          elapsed_s: float = 0.0) -> int:
        """Persist a cycle that died before producing a report.

        ``stage`` names where the pipeline failed (``crawl``,
        ``validate``, ``store``...) and ``frame`` the target being
        processed when known, so operators can tell a crawl failure
        from a store failure straight from ``repro history``.
        """
        started = time.perf_counter()
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO cycles (started_at, elapsed_s, scan_error,"
                " scan_error_stage, scan_error_frame)"
                " VALUES (?,?,?,?,?)",
                (started_at if started_at is not None else time.time(),
                 elapsed_s, message or "scan failed", stage or "",
                 frame or ""),
            )
            self._conn.commit()
            cycle_id = cursor.lastrowid
            pruned = self._prune_locked()
            self._stats.cycles_recorded += 1
            self._stats.error_cycles_recorded += 1
            self._stats.rows_written += 1
            self._stats.cycles_pruned += pruned
            self._stats.write_seconds += time.perf_counter() - started
        return cycle_id

    def _prune_locked(self) -> int:
        if self.retain_cycles is None:
            return 0
        row = self._conn.execute(
            "SELECT MAX(cycle_id) AS newest FROM cycles"
        ).fetchone()
        if row["newest"] is None:
            return 0
        horizon = row["newest"] - self.retain_cycles
        cursor = self._conn.execute(
            "DELETE FROM cycles WHERE cycle_id <= ?", (horizon,)
        )
        if cursor.rowcount <= 0:
            return 0
        # Explicit cascade (per-row FK enforcement stays off for write
        # speed); the series dimension is intentionally retained.
        self._conn.execute(
            "DELETE FROM verdicts WHERE cycle_id <= ?", (horizon,)
        )
        self._conn.execute(
            "DELETE FROM entity_rollups WHERE cycle_id <= ?", (horizon,)
        )
        self._conn.execute(
            "DELETE FROM provenance WHERE cycle_id <= ?", (horizon,)
        )
        self._conn.commit()
        self._conn.execute("PRAGMA incremental_vacuum")
        return cursor.rowcount

    def prune(self, retain_cycles: int | None = None) -> int:
        """Keep only the newest ``retain_cycles`` cycles; returns the
        number pruned.  With no argument, applies the configured
        retention."""
        with self._lock:
            if retain_cycles is not None:
                previous, self.retain_cycles = (
                    self.retain_cycles, retain_cycles
                )
                try:
                    return self._prune_locked()
                finally:
                    self.retain_cycles = previous
            return self._prune_locked()

    # ---- read path ---------------------------------------------------------

    def cycle_count(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM cycles"
            ).fetchone()
        return int(row["n"])

    def latest_cycle_id(self) -> int | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT MAX(cycle_id) AS latest FROM cycles"
            ).fetchone()
        return row["latest"]

    def cycles(self, last: int | None = None) -> list[CycleRow]:
        """The newest ``last`` cycles (all when None), oldest first."""
        query = f"SELECT {', '.join(_CYCLE_COLUMNS)} FROM cycles"
        params: tuple = ()
        if last is not None:
            query += " ORDER BY cycle_id DESC LIMIT ?"
            params = (max(0, last),)
        else:
            query += " ORDER BY cycle_id"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        out = [CycleRow(**{name: row[name] for name in _CYCLE_COLUMNS})
               for row in rows]
        if last is not None:
            out.reverse()
        return out

    def cycle(self, cycle_id: int) -> CycleRow | None:
        with self._lock:
            row = self._conn.execute(
                f"SELECT {', '.join(_CYCLE_COLUMNS)} FROM cycles"
                " WHERE cycle_id = ?",
                (cycle_id,),
            ).fetchone()
        if row is None:
            return None
        return CycleRow(**{name: row[name] for name in _CYCLE_COLUMNS})

    def verdicts(self, cycle_id: int) -> list[VerdictRow]:
        with self._lock:
            rows = self._conn.execute(
                f"{_VERDICT_SELECT} WHERE v.cycle_id = ?"
                " ORDER BY s.target, s.entity, s.rule",
                (cycle_id,),
            ).fetchall()
        return [
            VerdictRow(
                cycle_id=row["cycle_id"], target=row["target"],
                entity=row["entity"], rule=row["rule"],
                verdict=_VERDICT_NAMES[row["verdict"]],
                severity=row["severity"], message=row["message"],
            )
            for row in rows
        ]

    def verdict_map(self, cycle_id: int) -> dict[VerdictKey, str]:
        """{(target, entity, rule): verdict} for one cycle -- the stored
        twin of :func:`report_verdict_map`."""
        return {row.key: row.verdict for row in self.verdicts(cycle_id)}

    def verdict_windows(
        self, window: int
    ) -> dict[VerdictKey, list[tuple[int, str]]]:
        """Per-key verdict series over the newest ``window`` cycles,
        oldest first -- the flap detector's working set."""
        with self._lock:
            row = self._conn.execute(
                "SELECT MIN(cycle_id) AS low FROM (SELECT cycle_id FROM"
                " cycles ORDER BY cycle_id DESC LIMIT ?)",
                (max(1, window),),
            ).fetchone()
            if row["low"] is None:
                return {}
            rows = self._conn.execute(
                "SELECT v.cycle_id, s.target, s.entity, s.rule, v.verdict"
                " FROM verdicts v JOIN series s ON s.series_id ="
                " v.series_id WHERE v.cycle_id >= ? ORDER BY v.cycle_id",
                (row["low"],),
            ).fetchall()
        series: dict[VerdictKey, list[tuple[int, str]]] = {}
        for item in rows:
            key = (item["target"], item["entity"], item["rule"])
            series.setdefault(key, []).append(
                (item["cycle_id"], _VERDICT_NAMES[item["verdict"]])
            )
        return series

    def rule_history(self, target: str, entity: str, rule: str,
                     last: int | None = None) -> list[tuple[int, str]]:
        """(cycle_id, verdict) series of one rule, oldest first."""
        with self._lock:
            series_id = self._series_ids.get((target, entity, rule))
            if series_id is None:
                return []
            query = (
                "SELECT cycle_id, verdict FROM verdicts WHERE"
                " series_id = ? ORDER BY cycle_id"
            )
            params: tuple = (series_id,)
            if last is not None:
                query = (
                    "SELECT cycle_id, verdict FROM verdicts WHERE"
                    " series_id = ? ORDER BY cycle_id DESC LIMIT ?"
                )
                params = (series_id, max(0, last))
            rows = self._conn.execute(query, params).fetchall()
        out = [(row["cycle_id"], _VERDICT_NAMES[row["verdict"]])
               for row in rows]
        if last is not None:
            out.reverse()
        return out

    def provenance_for(self, target: str, entity: str, rule: str,
                       cycle_id: int | None = None) -> dict | None:
        """The stored provenance payload of one verdict, parsed.

        With ``cycle_id=None`` returns the newest stored record for the
        series.  ``None`` when the cycle never recorded provenance (the
        default, non ``--provenance`` write path) or the payload does not
        parse.
        """
        with self._lock:
            series_id = self._series_ids.get((target, entity, rule))
            if series_id is None:
                return None
            if cycle_id is None:
                row = self._conn.execute(
                    "SELECT record FROM provenance WHERE series_id = ?"
                    " ORDER BY cycle_id DESC LIMIT 1",
                    (series_id,),
                ).fetchone()
            else:
                row = self._conn.execute(
                    "SELECT record FROM provenance WHERE cycle_id = ?"
                    " AND series_id = ?",
                    (cycle_id, series_id),
                ).fetchone()
        if row is None:
            return None
        try:
            payload = json.loads(row["record"])
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    def entity_trend(self, target: str,
                     last: int | None = None) -> list[EntityTrendRow]:
        """Per-cycle pass/fail trend of one scanned frame, oldest first."""
        query = (
            "SELECT r.cycle_id, c.started_at, r.target, r.passed,"
            " r.failed, r.worst_severity FROM entity_rollups r"
            " JOIN cycles c ON c.cycle_id = r.cycle_id"
            " WHERE r.target = ? ORDER BY r.cycle_id"
        )
        params: tuple = (target,)
        if last is not None:
            query = query.replace(
                "ORDER BY r.cycle_id", "ORDER BY r.cycle_id DESC LIMIT ?"
            )
            params = (target, max(0, last))
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        out = [EntityTrendRow(**dict(row)) for row in rows]
        if last is not None:
            out.reverse()
        return out

    def targets(self) -> list[str]:
        """Every frame ever rolled up, sorted."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT target FROM entity_rollups ORDER BY target"
            ).fetchall()
        return [row["target"] for row in rows]

    # ---- bookkeeping -------------------------------------------------------

    def stats(self) -> HistoryStoreStats:
        with self._lock:
            snapshot = HistoryStoreStats(
                cycles_recorded=self._stats.cycles_recorded,
                error_cycles_recorded=self._stats.error_cycles_recorded,
                rows_written=self._stats.rows_written,
                write_seconds=self._stats.write_seconds,
                cycles_pruned=self._stats.cycles_pruned,
            )
            try:
                snapshot.db_cycles = int(self._conn.execute(
                    "SELECT COUNT(*) AS n FROM cycles"
                ).fetchone()["n"])
            except sqlite3.Error:
                # A pull-style metrics scrape can outlive the store
                # (e.g. --metrics-out written at exit); report the
                # in-memory tallies with a zero gauge instead of dying.
                snapshot.db_cycles = 0
        if self.path != ":memory:":
            try:
                snapshot.db_bytes = os.path.getsize(self.path)
            except OSError:
                snapshot.db_bytes = 0
        return snapshot

    def attach_to(self, registry) -> None:
        """Register a pull collector exporting ``repro_history_*``."""
        cycles_total = registry.counter(
            "repro_history_cycles_recorded_total",
            "Scan cycles persisted to the history store by this process.",
        )
        error_total = registry.counter(
            "repro_history_error_cycles_total",
            "Cycles persisted as scan errors (no report produced).",
        )
        rows_total = registry.counter(
            "repro_history_rows_written_total",
            "Rows written to the history store (cycles + verdicts +"
            " entity rollups).",
        )
        write_seconds = registry.counter(
            "repro_history_write_seconds_total",
            "Wall time spent writing history rows.",
        )
        pruned_total = registry.counter(
            "repro_history_cycles_pruned_total",
            "Cycles removed by retention pruning.",
        )
        db_cycles = registry.gauge(
            "repro_history_db_cycles",
            "Cycles currently resident in the history database.",
        )
        db_bytes = registry.gauge(
            "repro_history_db_bytes",
            "History database size on disk (0 for in-memory stores).",
        )

        def collect() -> None:
            stats = self.stats()
            cycles_total.set(stats.cycles_recorded)
            error_total.set(stats.error_cycles_recorded)
            rows_total.set(stats.rows_written)
            write_seconds.set(stats.write_seconds)
            pruned_total.set(stats.cycles_pruned)
            db_cycles.set(stats.db_cycles)
            db_bytes.set(stats.db_bytes)

        registry.register_collector(f"history_store:{id(self)}", collect)

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:  # read-only media, torn WAL, ...
                pass
            self._conn.close()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
