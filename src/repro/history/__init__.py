"""Continuous fleet-health monitoring (the time axis of the scanner).

Layers, bottom to top:

* :mod:`repro.history.store`    -- :class:`HistoryStore`, the durable
  append-only SQLite record of every cycle's verdicts and rollups;
* :mod:`repro.history.events`   -- :class:`HealthEvent` and the NDJSON /
  webhook sinks;
* :mod:`repro.history.analyzer` -- :class:`HealthAnalyzer` and
  :class:`FlapDetector`: drift classification, streaks, flapping rules;
* :mod:`repro.history.monitor`  -- :class:`FleetMonitor`, the ``repro
  monitor`` daemon with the persistent ``/metrics`` / ``/status`` /
  ``/history`` endpoint.

Offline, the same store backs ``repro history`` and ``repro flaps``.
"""

from repro.history.analyzer import (
    DEFAULT_FLAP_MIN_TRANSITIONS,
    DEFAULT_FLAP_WINDOW,
    FlapDetector,
    HealthAnalyzer,
    count_transitions,
)
from repro.history.events import (
    EVENT_KINDS,
    EventLog,
    HealthEvent,
    WebhookSink,
)
from repro.history.monitor import FleetMonitor, MonitorConfig, MonitorStats
from repro.history.store import (
    CycleRow,
    EntityTrendRow,
    HistoryStore,
    HistoryStoreStats,
    VerdictRow,
    report_verdict_map,
)

__all__ = [
    "CycleRow",
    "DEFAULT_FLAP_MIN_TRANSITIONS",
    "DEFAULT_FLAP_WINDOW",
    "EVENT_KINDS",
    "EntityTrendRow",
    "EventLog",
    "FlapDetector",
    "FleetMonitor",
    "HealthAnalyzer",
    "HealthEvent",
    "HistoryStore",
    "HistoryStoreStats",
    "MonitorConfig",
    "MonitorStats",
    "VerdictRow",
    "WebhookSink",
    "count_transitions",
    "report_verdict_map",
]
