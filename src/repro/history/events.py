"""Typed fleet-health events and the sinks that deliver them.

The monitor distills each cycle's changes into a small vocabulary of
events (regressions, fixes, flap transitions, fleet membership changes,
scan errors).  Events flow to any number of *sinks*: the NDJSON
:class:`EventLog` (one JSON object per line, append-only, tail-able) and
the optional :class:`WebhookSink` (``urllib`` POST with timeout and
bounded retry).  Sink failures are logged and counted, never fatal -- a
dead webhook must not take the scan loop down with it.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from repro.chaos.fabric import _CHAOS, absorbed as _chaos_absorbed
from repro.telemetry import get_logger
from repro.util import RetryError, retry_with_backoff

log = get_logger("history.events")

#: The event vocabulary, in rough severity order.
EVENT_KINDS = (
    "scan_error",
    "regression",
    "flap_start",
    "flap_end",
    "fix",
    "entity_appeared",
    "entity_disappeared",
)


@dataclass
class HealthEvent:
    """One noteworthy cycle-over-cycle change."""

    kind: str
    cycle_id: int
    ts: float = field(default_factory=time.time)
    target: str = ""
    entity: str = ""
    rule: str = ""
    before: str = ""     # verdict value, or "" when not applicable
    after: str = ""
    severity: str = ""
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")

    def to_dict(self) -> dict:
        payload = {"kind": self.kind, "cycle": self.cycle_id,
                   "ts": round(self.ts, 3)}
        for name in ("target", "entity", "rule", "before", "after",
                     "severity", "message"):
            value = getattr(self, name)
            if value:
                payload[name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "HealthEvent":
        return cls(
            kind=payload["kind"],
            cycle_id=int(payload["cycle"]),
            ts=float(payload.get("ts", 0.0)),
            target=payload.get("target", ""),
            entity=payload.get("entity", ""),
            rule=payload.get("rule", ""),
            before=payload.get("before", ""),
            after=payload.get("after", ""),
            severity=payload.get("severity", ""),
            message=payload.get("message", ""),
        )

    def render(self) -> str:
        where = "/".join(p for p in (self.target, self.entity, self.rule)
                         if p)
        change = ""
        if self.before or self.after:
            change = f" ({self.before or 'absent'} -> {self.after or 'absent'})"
        detail = f" -- {self.message}" if self.message else ""
        return f"[{self.kind.upper()}] cycle {self.cycle_id} {where}{change}{detail}"


class EventLog:
    """Append-only NDJSON event sink (one JSON object per line).

    Writes are flushed per batch so ``tail -f`` and the CI artifact
    collector see events as they happen, and a killed daemon loses at
    most the in-flight batch.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")
        self.written = 0

    def emit(self, event: HealthEvent) -> None:
        self.emit_many([event])

    def emit_many(self, events: list[HealthEvent]) -> None:
        if not events:
            return
        lines = "".join(
            json.dumps(event.to_dict(), sort_keys=True) + "\n"
            for event in events
        )
        with self._lock:
            self._handle.write(lines)
            self._handle.flush()
            self.written += len(events)

    def close(self) -> None:
        with self._lock:
            self._handle.close()

    @staticmethod
    def read(path: str) -> list[HealthEvent]:
        """Parse an NDJSON event log back into events (offline tools)."""
        events: list[HealthEvent] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(HealthEvent.from_dict(json.loads(line)))
        return events

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class WebhookSink:
    """POST event batches to an HTTP endpoint (stdlib ``urllib``).

    The contract (docs/monitoring.md): one POST per cycle with a JSON
    body ``{"events": [...]}``; 2xx acknowledges the batch.  Delivery is
    best-effort -- ``timeout`` per attempt, ``retries`` extra attempts
    through the shared :func:`repro.util.retry_with_backoff` loop
    (exponential backoff with full jitter), then the batch is dropped
    and counted in :attr:`failed_batches`.  Nothing here raises into
    the scan loop.
    """

    def __init__(self, url: str, *, timeout: float = 3.0, retries: int = 2,
                 backoff_s: float = 0.2, sleep=time.sleep):
        self.url = url
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.delivered = 0
        self.failed_batches = 0
        self._sleep = sleep

    def emit(self, event: HealthEvent) -> None:
        self.emit_many([event])

    def _post(self, request) -> None:
        if _CHAOS.armed:
            # Injected delivery failure: same exception family a dead
            # endpoint produces, absorbed by the same retry/drop path.
            _CHAOS.fire("webhook.send", self.url)
        with urllib.request.urlopen(
            request, timeout=self.timeout
        ) as response:
            response.read()

    def emit_many(self, events: list[HealthEvent]) -> None:
        if not events:
            return
        body = json.dumps(
            {"events": [event.to_dict() for event in events]},
            sort_keys=True,
        ).encode("utf-8")
        request = urllib.request.Request(
            self.url, data=body, method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            retry_with_backoff(
                lambda: self._post(request),
                attempts=self.retries + 1,
                base_delay_s=self.backoff_s,
                retry_on=(urllib.error.URLError, OSError),
                label=f"webhook {self.url}",
                sleep=self._sleep,
                # A retried-away chaos fault was absorbed by the loop.
                on_retry=lambda _n, exc, _delay: _chaos_absorbed(exc),
            )
        except RetryError as exc:
            # Dropping the batch (logged + counted) absorbs the fault
            # too: the scan loop keeps going either way.
            _chaos_absorbed(exc.last)
            self.failed_batches += 1
            log.warning(
                "webhook delivery to %s failed after %d attempt(s),"
                " dropping %d event(s): %s",
                self.url, exc.attempts, len(events), exc.last,
            )
            return
        self.delivered += len(events)
