"""The ``repro monitor`` daemon: continuous scan cycles, durable
history, live endpoints, and the health event stream.

One :class:`FleetMonitor` owns a :class:`~repro.engine.batch.BatchScanner`
and drives it on an interval.  Every cycle:

1. acquire the fleet (a static entity list, or a provider callable so
   tests and embedders can mutate the fleet between cycles);
2. scan it -- incremental revalidation and all PR 1-3 machinery ride
   along unchanged, so the per-cycle report stays byte-identical to a
   standalone ``repro validate`` of the same fleet state;
3. append the cycle to the :class:`~repro.history.store.HistoryStore`;
4. classify it with the :class:`~repro.history.analyzer.HealthAnalyzer`
   and fan the resulting events out to the sinks (NDJSON log, webhook);
5. refresh the live gauges behind the persistent HTTP endpoint
   (``/metrics``, ``/healthz``, ``/readyz``, ``/status``, ``/history``).

A scan cycle that throws is recorded as a ``scan_error`` cycle and
event; the daemon keeps going.  ``max_cycles`` bounds the loop for
tests and smoke runs; ``request_stop`` (wired to SIGINT by the CLI)
ends it between cycles.
"""

from __future__ import annotations

import json
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro.engine.batch import BatchScanner, FleetSummary
from repro.history.analyzer import (
    DEFAULT_FLAP_MIN_TRANSITIONS,
    DEFAULT_FLAP_WINDOW,
    HealthAnalyzer,
)
from repro.history.events import HealthEvent
from repro.history.store import HistoryStore
from repro.telemetry import get_logger
from repro.telemetry.export import MetricsServer

log = get_logger("history.monitor")

JSON_CONTENT_TYPE = "application/json; charset=utf-8"


@dataclass
class MonitorConfig:
    """Knobs of one monitor run."""

    interval_s: float = 30.0
    max_cycles: int | None = None
    tags: list[str] | None = None
    workers: int = 1
    flap_window: int = DEFAULT_FLAP_WINDOW
    flap_min_transitions: int = DEFAULT_FLAP_MIN_TRANSITIONS
    #: Cycle rollups returned by ``/history`` and ``repro history``.
    status_cycles: int = 20


@dataclass
class MonitorStats:
    """What one :meth:`FleetMonitor.run` did."""

    cycles: int = 0
    scan_errors: int = 0
    events: int = 0
    events_by_kind: dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def render(self) -> str:
        kinds = ", ".join(
            f"{count} {kind}"
            for kind, count in sorted(self.events_by_kind.items())
        ) or "none"
        return (
            f"monitor: {self.cycles} cycle(s) "
            f"({self.scan_errors} scan error(s)) in {self.elapsed_s:.2f}s; "
            f"{self.events} event(s): {kinds}"
        )


class FleetMonitor:
    """Continuous fleet-health monitoring loop.

    Exactly one fleet source must be provided: ``entities`` (static
    list, re-crawled each cycle), ``entities_provider`` or
    ``frames_provider`` (called with the 1-based cycle number each
    cycle -- the hook that lets tests mutate the fleet mid-run).
    """

    def __init__(
        self,
        scanner: BatchScanner,
        store: HistoryStore,
        *,
        entities: list | None = None,
        entities_provider=None,
        frames_provider=None,
        config: MonitorConfig | None = None,
        sinks: tuple = (),
        analyzer: HealthAnalyzer | None = None,
        on_cycle=None,
    ):
        sources = [
            source for source in
            (entities, entities_provider, frames_provider)
            if source is not None
        ]
        if len(sources) != 1:
            raise ValueError(
                "provide exactly one of entities / entities_provider /"
                " frames_provider"
            )
        self.scanner = scanner
        self.store = store
        self.config = config or MonitorConfig()
        self.sinks = list(sinks)
        self.analyzer = analyzer or HealthAnalyzer(
            store,
            flap_window=self.config.flap_window,
            flap_min_transitions=self.config.flap_min_transitions,
        )
        self._entities = entities
        self._entities_provider = entities_provider
        self._frames_provider = frames_provider
        self._on_cycle = on_cycle
        self._stop = threading.Event()
        self._ready = threading.Event()
        self._started_monotonic = 0.0
        self.stats = MonitorStats()
        self.last_summary: FleetSummary | None = None
        self.last_cycle_id: int | None = None
        telemetry = scanner.telemetry
        self._metrics = telemetry.metrics
        if telemetry.enabled:
            store.attach_to(telemetry.metrics)

    # ---- the loop ----------------------------------------------------------

    def request_stop(self) -> None:
        """Finish the in-flight cycle, then exit the loop."""
        self._stop.set()

    @property
    def ready(self) -> bool:
        """At least one cycle has completed (the ``/readyz`` contract)."""
        return self._ready.is_set()

    def run(self) -> MonitorStats:
        """Drive scan cycles until ``max_cycles`` or :meth:`request_stop`."""
        started = time.perf_counter()
        self._started_monotonic = started
        cycle_no = 0
        max_cycles = self.config.max_cycles
        while not self._stop.is_set():
            cycle_no += 1
            self.run_cycle(cycle_no)
            self._ready.set()
            if max_cycles is not None and cycle_no >= max_cycles:
                break
            # Interruptible sleep: request_stop cuts the wait short.
            if self.config.interval_s > 0:
                self._stop.wait(self.config.interval_s)
        self.stats.elapsed_s = time.perf_counter() - started
        return self.stats

    def run_cycle(self, cycle_no: int) -> FleetSummary | None:
        """One scan cycle end to end; returns its summary (None on a
        scan error, which is recorded, not raised)."""
        config = self.config
        started_at = time.time()
        started = time.perf_counter()
        try:
            if self._frames_provider is not None:
                frames = self._frames_provider(cycle_no)
                summary = self.scanner.scan_frames(
                    frames, tags=config.tags, workers=config.workers
                )
            else:
                entities = (
                    self._entities_provider(cycle_no)
                    if self._entities_provider is not None
                    else self._entities
                )
                summary = self.scanner.scan_entities(
                    entities, tags=config.tags, workers=config.workers
                )
        except Exception as exc:
            elapsed = time.perf_counter() - started
            # BatchScanner wraps failures in ScanStageError, which
            # carries *where* the pipeline died; persist the attribution
            # so `repro history` can tell a crawl failure from a store
            # failure without parsing messages.
            stage = getattr(exc, "stage", "") or ""
            frame = getattr(exc, "frame", "") or ""
            message = f"{type(exc).__name__}: {exc}"
            log.error("scan cycle %d failed: %s\n%s", cycle_no, message,
                      traceback.format_exc())
            cycle_id = self.store.record_scan_error(
                message, stage=stage, frame=frame,
                started_at=started_at, elapsed_s=elapsed,
            )
            events = self.analyzer.observe_error(cycle_id, message)
            self._dispatch(events)
            self.stats.cycles += 1
            self.stats.scan_errors += 1
            self.last_cycle_id = cycle_id
            self._publish_metrics(None, events, elapsed)
            if self._on_cycle is not None:
                self._on_cycle(cycle_no, cycle_id, None, events)
            return None
        cycle_id = self.store.record_cycle(summary)
        events = self.analyzer.observe_report(cycle_id, summary.report)
        self._dispatch(events)
        self.stats.cycles += 1
        self.last_summary = summary
        self.last_cycle_id = cycle_id
        self._publish_metrics(summary, events,
                              time.perf_counter() - started)
        log.info(
            "cycle %d (id %d): %d entities, %d checks, %d event(s)",
            cycle_no, cycle_id, summary.entities_scanned,
            len(summary.report), len(events),
        )
        if self._on_cycle is not None:
            self._on_cycle(cycle_no, cycle_id, summary, events)
        return summary

    def _dispatch(self, events: list[HealthEvent]) -> None:
        self.stats.events += len(events)
        for event in events:
            self.stats.events_by_kind[event.kind] = (
                self.stats.events_by_kind.get(event.kind, 0) + 1
            )
        if not events:
            return
        for sink in self.sinks:
            try:
                sink.emit_many(events)
            except Exception as exc:  # sinks must never kill the loop
                log.warning("event sink %r failed: %s",
                            type(sink).__name__, exc)

    def _publish_metrics(self, summary: FleetSummary | None,
                         events: list[HealthEvent],
                         cycle_seconds: float) -> None:
        metrics = self._metrics
        metrics.counter(
            "repro_monitor_cycles_total", "Monitor scan cycles attempted."
        ).inc()
        if summary is None:
            metrics.counter(
                "repro_monitor_scan_errors_total",
                "Monitor cycles that failed before producing a report.",
            ).inc()
        events_total = metrics.counter(
            "repro_history_events_total",
            "Health events emitted, by kind.", labels=("kind",),
        )
        for event in events:
            events_total.inc(kind=event.kind)
        metrics.gauge(
            "repro_monitor_last_cycle_seconds",
            "Wall time of the most recent monitor cycle.",
        ).set(cycle_seconds)
        regressions = sum(1 for e in events if e.kind == "regression")
        fixes = sum(1 for e in events if e.kind == "fix")
        metrics.gauge(
            "repro_history_last_cycle_regressions",
            "Regression events in the most recent cycle.",
        ).set(regressions)
        metrics.gauge(
            "repro_history_last_cycle_fixes",
            "Fix events in the most recent cycle.",
        ).set(fixes)
        metrics.gauge(
            "repro_history_flapping_rules",
            "Rules currently classified as flapping.",
        ).set(len(self.analyzer.flapping()))
        flap_gauge = metrics.gauge(
            "repro_history_rule_flapping",
            "1 for each rule currently flapping.",
            labels=("target", "entity", "rule"),
        )
        for event in events:
            if event.kind == "flap_start":
                flap_gauge.set(1, target=event.target, entity=event.entity,
                               rule=event.rule)
            elif event.kind == "flap_end":
                flap_gauge.remove(target=event.target, entity=event.entity,
                                  rule=event.rule)
        if summary is not None:
            metrics.gauge(
                "repro_fleet_compliance_ratio",
                "Fleet-wide compliance of the most recent cycle.",
            ).set(summary.compliance_rate())
            degradation = getattr(summary, "degradation", None)
            metrics.gauge(
                "repro_degraded_last_cycle",
                "1 when the most recent cycle degraded (faults absorbed,"
                " frames quarantined, or deadline cancellations).",
            ).set(
                1.0 if degradation is not None
                and getattr(degradation, "degraded", False) else 0.0
            )

    # ---- the persistent HTTP endpoint --------------------------------------

    def serve(self, port: int = 0, *, host: str = "127.0.0.1") -> MetricsServer:
        """Start the live endpoint; returns the running server (its
        ``.port`` is the bound port; ``.close()`` shuts it down)."""
        return MetricsServer(
            self._metrics, port, host=host, routes=self.routes()
        )

    def routes(self) -> dict:
        """The monitor's route table (``/metrics`` is implicit)."""
        return {
            "/healthz": self._route_healthz,
            "/readyz": self._route_readyz,
            "/status": self._route_status,
            "/history": self._route_history,
        }

    @staticmethod
    def _json(status: int, payload: dict) -> tuple[int, str, bytes]:
        body = (json.dumps(payload, sort_keys=True, indent=2) + "\n")
        return status, JSON_CONTENT_TYPE, body.encode("utf-8")

    def _route_healthz(self) -> tuple[int, str, bytes]:
        return 200, "text/plain; charset=utf-8", b"ok\n"

    def _route_readyz(self) -> tuple[int, str, bytes]:
        if self.ready:
            return 200, "text/plain; charset=utf-8", b"ready\n"
        return 503, "text/plain; charset=utf-8", b"no completed cycle yet\n"

    def _route_status(self) -> tuple[int, str, bytes]:
        last = None
        if self.last_cycle_id is not None:
            row = self.store.cycle(self.last_cycle_id)
            last = row.to_dict() if row is not None else None
        top = [
            {"target": key[0], "entity": key[1], "rule": key[2],
             "regressions": count}
            for key, count in self.analyzer.regression_counts(
                self.config.status_cycles
            )[:10]
        ]
        return self._json(200, {
            "ready": self.ready,
            "cycles_completed": self.stats.cycles,
            "scan_errors": self.stats.scan_errors,
            "events_total": self.stats.events,
            "events_by_kind": dict(self.stats.events_by_kind),
            "interval_s": self.config.interval_s,
            "max_cycles": self.config.max_cycles,
            "uptime_s": round(
                time.perf_counter() - self._started_monotonic, 3
            ) if self._started_monotonic else 0.0,
            "last_cycle": last,
            "executor": self._exec_status(),
            "flapping": self.analyzer.flapping_details(),
            "top_regressing": top,
        })

    def _exec_status(self) -> dict | None:
        """Executor/artifact-store stats of the most recent cycle (None
        until a cycle completes under a sharded backend)."""
        summary = self.last_summary
        if summary is None:
            return None
        out: dict = {}
        exec_stats = getattr(summary, "exec_stats", None)
        if exec_stats is not None:
            out["exec"] = exec_stats.to_dict()
        artifact_stats = getattr(summary, "artifact_stats", None)
        if artifact_stats is not None:
            out["artifact_store"] = artifact_stats.to_dict()
        return out or None

    def _route_history(self) -> tuple[int, str, bytes]:
        rows = self.store.cycles(last=self.config.status_cycles)
        return self._json(200, {
            "cycles": [row.to_dict() for row in rows],
            "flapping": self.analyzer.flapping_details(),
            "targets": self.store.targets(),
        })
