"""ConfigValidator / CVL -- a reproduction of "Usable Declarative
Configuration Specification and Validation for Applications, Systems,
and Cloud" (Baset, Suneja, Bila, Tuncer, Isci -- Middleware Industry '17).

Quick start::

    from repro import load_builtin_validator, ubuntu_host_entity

    validator = load_builtin_validator()
    report = validator.validate_entity(ubuntu_host_entity("demo"))
    print(report.counts())

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.cvl`      -- the Configuration Validation Language
* :mod:`repro.engine`   -- rule engine + output processing
* :mod:`repro.augtree`  -- config-tree normalization (Augeas substitute)
* :mod:`repro.schema`   -- schema-pattern tables + query language
* :mod:`repro.crawler`  -- config extraction, entities, Docker/cloud sims
* :mod:`repro.fs`       -- filesystem substrate (virtual / overlay / real)
* :mod:`repro.rules`    -- shipped rule packs (paper Table 1 targets)
* :mod:`repro.baselines`-- XCCDF/OVAL, Inspec, and script baselines
* :mod:`repro.workloads`-- deterministic workload generators
"""

from repro.cvl import (
    CompositeRule,
    Manifest,
    MatchSpec,
    PathRule,
    Rule,
    RuleSet,
    SchemaRule,
    ScriptRule,
    TreeRule,
    load_manifests,
    load_rules,
)
from repro.engine import (
    ConfigValidator,
    Outcome,
    RuleResult,
    ValidationReport,
    Verdict,
    render_json,
    render_text,
)
from repro.crawler import (
    CloudEntity,
    ConfigFrame,
    ContainerEntity,
    Crawler,
    DockerImageEntity,
    Entity,
    HostEntity,
)
from repro.rules import load_builtin_validator
from repro.workloads import build_fleet, build_cloud_project, ubuntu_host_entity

__version__ = "1.0.0"

__all__ = [
    "CloudEntity",
    "CompositeRule",
    "ConfigFrame",
    "ConfigValidator",
    "ContainerEntity",
    "Crawler",
    "DockerImageEntity",
    "Entity",
    "HostEntity",
    "Manifest",
    "MatchSpec",
    "Outcome",
    "PathRule",
    "Rule",
    "RuleResult",
    "RuleSet",
    "SchemaRule",
    "ScriptRule",
    "TreeRule",
    "ValidationReport",
    "Verdict",
    "__version__",
    "build_cloud_project",
    "build_fleet",
    "load_builtin_validator",
    "load_manifests",
    "load_rules",
    "render_json",
    "render_text",
    "ubuntu_host_entity",
]
