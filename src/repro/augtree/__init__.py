"""Config-tree normalization substrate (the Augeas substitute).

The paper's Data Normalizer converts raw configuration files into a *tree*
structure using the Augeas lens library.  This package reproduces that
role in pure Python:

* :class:`ConfigNode` / :class:`ConfigTree` -- an ordered, labeled tree in
  which labels may repeat (exactly Augeas's data model: ``server`` may
  appear twice under ``http``).
* :mod:`repro.augtree.path` -- a path-expression language for addressing
  nodes (``http/server/listen``, wildcards, numeric indexes, value
  predicates), the counterpart of Augeas path expressions that CVL's
  ``config_path`` keyword resolves against.
* :mod:`repro.augtree.lenses` -- per-format parsers ("lenses") for the
  formats the paper's targets need: nginx, apache, mysql (ini), sshd,
  sysctl, modprobe, fstab-as-tree, hadoop XML, java properties, json,
  yaml, and a configurable generic key-value lens.
"""

from repro.augtree.tree import ConfigNode, ConfigTree
from repro.augtree.path import PathExpression, parse_path
from repro.augtree.lenses import (
    Lens,
    LensRegistry,
    default_registry,
    lens_for_file,
)

__all__ = [
    "ConfigNode",
    "ConfigTree",
    "Lens",
    "LensRegistry",
    "PathExpression",
    "default_registry",
    "lens_for_file",
    "parse_path",
]
