"""Path expressions over config trees (the Augeas path-expression analog).

Grammar (simplified Augeas)::

    path       := segment ('/' segment)*
    segment    := name predicate*
    name       := '*' | '**' | LABEL | '"' anything '"'
    predicate  := '[' INT ']'                -- 1-based index among the
                                                same-labeled children of one
                                                parent, e.g. server[2]
                | '[' '.' '=' string ']'     -- node value equals
                | '[' LABEL '=' string ']'   -- a child named LABEL has the
                                                given value
                | '[' 'last()' ']'           -- last same-labeled child

``*`` matches any single label; ``**`` matches any chain of zero or more
labels (descendant-or-self).  Labels may contain dots (sysctl keys such as
``net.ipv4.ip_forward`` stay a single label, as the Augeas sysctl lens
keeps them); labels containing ``/`` or ``[`` must be double-quoted.

Matching is evaluated against the *children* of the tree root: expression
``http/server/listen`` on a parsed nginx.conf selects every ``listen``
node inside every ``server`` inside ``http``.  The empty expression
matches the root node itself.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import PathExpressionError
from repro.augtree.tree import ConfigNode

_SEGMENT = re.compile(
    r"""
    (?P<name> \*\* | \* | "[^"\\]*(?:\\.[^"\\]*)*" | [^/\[\]"]+ )
    (?P<preds> (?:\[[^\]]*\])* )
    $""",
    re.VERBOSE,
)

_PRED = re.compile(r"\[([^\]]*)\]")

#: Predicate bodies: a bare 1-based index ...
_PRED_INDEX = re.compile(r"\d+")

#: ... or an ``lhs = rhs`` comparison whose rhs may be quoted.  Compiled
#: once at import: ``_parse_predicate`` runs for every predicate of every
#: path expression the fleet's rule packs mention.
_PRED_COMPARE = re.compile(
    r"""(?P<lhs>\.|[^=\s]+)\s*=\s*(?P<rhs>'[^']*'|"[^"]*"|\S+)"""
)


@dataclass(frozen=True)
class Predicate:
    """One ``[...]`` filter on a segment."""

    kind: str  # "index" | "last" | "value" | "child"
    label: str | None = None
    value: str | None = None
    index: int | None = None


@dataclass(frozen=True)
class Segment:
    name: str  # label, "*", or "**"
    predicates: tuple[Predicate, ...] = ()


def _unquote(text: str) -> str:
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        return re.sub(r"\\(.)", r"\1", text[1:-1])
    return text


def _parse_predicate(raw: str, expression: str) -> Predicate:
    raw = raw.strip()
    if not raw:
        raise PathExpressionError(f"{expression!r}: empty predicate []")
    if raw == "last()":
        return Predicate(kind="last")
    if _PRED_INDEX.fullmatch(raw):
        index = int(raw)
        if index < 1:
            raise PathExpressionError(f"{expression!r}: indexes are 1-based")
        return Predicate(kind="index", index=index)
    match = _PRED_COMPARE.fullmatch(raw)
    if not match:
        raise PathExpressionError(f"{expression!r}: bad predicate [{raw}]")
    rhs = match.group("rhs")
    if rhs[0] in "'\"" and rhs[-1] == rhs[0]:
        rhs = rhs[1:-1]
    lhs = match.group("lhs")
    if lhs == ".":
        return Predicate(kind="value", value=rhs)
    return Predicate(kind="child", label=lhs, value=rhs)


@lru_cache(maxsize=4096)
def parse_path(expression: str) -> "PathExpression":
    """Parse ``expression`` into a reusable :class:`PathExpression`.

    Parsed expressions are cached: the rule engine resolves the same
    ``config_path`` for every entity it scans.
    """
    expression = expression.strip()
    if not expression:
        return PathExpression(())
    segments: list[Segment] = []
    for part in _split_segments(expression):
        match = _SEGMENT.match(part)
        if not match:
            raise PathExpressionError(f"{expression!r}: bad segment {part!r}")
        name = _unquote(match.group("name"))
        predicates = tuple(
            _parse_predicate(pred, expression)
            for pred in _PRED.findall(match.group("preds"))
        )
        if name == "**" and predicates:
            raise PathExpressionError(
                f"{expression!r}: '**' does not take predicates"
            )
        segments.append(Segment(name=name, predicates=predicates))
    return PathExpression(tuple(segments))


def _split_segments(expression: str) -> list[str]:
    """Split on '/' outside quotes and brackets."""
    parts: list[str] = []
    current: list[str] = []
    in_quote = False
    depth = 0
    i = 0
    while i < len(expression):
        char = expression[i]
        if char == '"' and (i == 0 or expression[i - 1] != "\\"):
            in_quote = not in_quote
            current.append(char)
        elif char == "[" and not in_quote:
            depth += 1
            current.append(char)
        elif char == "]" and not in_quote:
            depth -= 1
            if depth < 0:
                raise PathExpressionError(f"{expression!r}: unbalanced ']'")
            current.append(char)
        elif char == "/" and not in_quote and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
        i += 1
    if in_quote:
        raise PathExpressionError(f"{expression!r}: unterminated quote")
    if depth:
        raise PathExpressionError(f"{expression!r}: unbalanced '['")
    parts.append("".join(current))
    if any(not part.strip() for part in parts):
        raise PathExpressionError(f"{expression!r}: empty path segment")
    return [part.strip() for part in parts]


def apply_predicates(
    candidates: list[ConfigNode], predicates: tuple[Predicate, ...]
) -> list[ConfigNode]:
    """Filter same-parent ``candidates`` through a segment's predicates."""
    for predicate in predicates:
        if predicate.kind == "index":
            index = predicate.index or 0
            candidates = (
                [candidates[index - 1]] if index <= len(candidates) else []
            )
        elif predicate.kind == "last":
            candidates = [candidates[-1]] if candidates else []
        elif predicate.kind == "value":
            candidates = [
                node for node in candidates if node.value == predicate.value
            ]
        elif predicate.kind == "child":
            candidates = [
                node
                for node in candidates
                if any(
                    child.label == predicate.label
                    and child.value == predicate.value
                    for child in node.children
                )
            ]
    return candidates


def step_segment(nodes: list[ConfigNode], segment: Segment) -> list[ConfigNode]:
    """Advance a frontier of nodes through one segment.

    Module-level (rather than a ``PathExpression`` method) so the rule
    planner's segment trie steps many expressions' shared segments with
    the exact matching semantics of stand-alone expressions.
    """
    if segment.name == "**":
        expanded: list[ConfigNode] = []
        for node in nodes:
            expanded.extend(node.walk())  # descendant-or-self
        return expanded
    matched: list[ConfigNode] = []
    for parent in nodes:
        if segment.name == "*":
            candidates = list(parent.children)
        else:
            candidates = parent.children_named(segment.name)
        matched.extend(apply_predicates(candidates, segment.predicates))
    return matched


class PathExpression:
    """A compiled path expression; ``match`` evaluates it against a tree."""

    def __init__(self, segments: tuple[Segment, ...]):
        self.segments = segments

    def match(self, root: ConfigNode) -> list[ConfigNode]:
        """All nodes under ``root`` selected by this expression.

        Results are in document order with duplicates removed (a ``**`` can
        reach the same node through several chains).
        """
        current: list[ConfigNode] = [root]
        for segment in self.segments:
            current = step_segment(current, segment)
            if not current:
                return []
        # Nodes hash by identity, so dict.fromkeys is an order-preserving
        # identity dedup with no per-node set bookkeeping.
        return list(dict.fromkeys(current))

    def __repr__(self) -> str:
        return f"PathExpression({'/'.join(seg.name for seg in self.segments)!r})"
