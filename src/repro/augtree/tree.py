"""Ordered labeled tree -- the normalized form of a configuration file.

The model follows Augeas: every node has a *label*, an optional string
*value*, and an ordered list of children whose labels may repeat.  A parsed
``nginx.conf`` with two ``server`` blocks yields two sibling nodes labeled
``server``; path expressions address them as ``server[1]`` and
``server[2]`` (1-based, as in Augeas).
"""

from __future__ import annotations

from typing import Callable, Iterator, NamedTuple


class SourceSpan(NamedTuple):
    """Where a node came from in the raw file text.

    Lines and columns are 1-based; ``end_line``/``end_column`` point one
    past the last character of the construct (so single-char constructs
    have ``end_column == column + 1``).  Offsets are character indices
    into the decoded text, suitable for slicing: ``text[start:end]``.
    """

    line: int
    column: int
    end_line: int
    end_column: int
    start: int
    end: int

    def to_list(self) -> list[int]:
        return list(self)

    @classmethod
    def from_list(cls, payload: object) -> "SourceSpan | None":
        if not isinstance(payload, (list, tuple)) or len(payload) != 6:
            return None
        try:
            return cls(*(int(part) for part in payload))
        except (TypeError, ValueError):
            return None


class ConfigNode:
    """One node of a config tree."""

    __slots__ = ("label", "value", "children", "parent", "span",
                 "_label_index", "_indexed_count")

    def __init__(self, label: str, value: str | None = None,
                 span: SourceSpan | None = None):
        self.label = label
        self.value = value
        #: Optional source location recorded by the lens at parse time.
        #: Deliberately excluded from ``__eq__``/``to_dict``/``render`` so
        #: span-aware and span-less trees stay interchangeable.
        self.span = span
        self.children: list[ConfigNode] = []
        self.parent: ConfigNode | None = None
        #: Lazy label -> children map; built on the first ``children_named``
        #: and kept current by ``add``/``attach``.  ``_indexed_count``
        #: guards against direct ``children`` mutation: a length mismatch
        #: forces a rebuild.
        self._label_index: dict[str, list[ConfigNode]] | None = None
        self._indexed_count = 0

    # ---- construction ----------------------------------------------------

    def add(self, label: str, value: str | None = None,
            span: SourceSpan | None = None) -> "ConfigNode":
        """Append a new child and return it."""
        child = ConfigNode(label, value, span)
        child.parent = self
        self.children.append(child)
        index = self._label_index
        if index is not None:
            index.setdefault(label, []).append(child)
            self._indexed_count += 1
        return child

    def attach(self, node: "ConfigNode") -> "ConfigNode":
        """Append an existing node as a child and return it."""
        node.parent = self
        self.children.append(node)
        index = self._label_index
        if index is not None:
            index.setdefault(node.label, []).append(node)
            self._indexed_count += 1
        return node

    # ---- navigation --------------------------------------------------------

    def _index(self) -> dict[str, list["ConfigNode"]]:
        index = self._label_index
        if index is None or self._indexed_count != len(self.children):
            index = {}
            for node in self.children:
                index.setdefault(node.label, []).append(node)
            self._label_index = index
            self._indexed_count = len(self.children)
        return index

    def child(self, label: str) -> "ConfigNode | None":
        """First child with ``label`` (or None)."""
        nodes = self._index().get(label)
        return nodes[0] if nodes else None

    def children_named(self, label: str) -> list["ConfigNode"]:
        """All children with ``label``, in document order.

        Returns the index's own list -- callers must treat it as
        read-only (path matching calls this once per candidate parent,
        and copying dominated ``**`` traversals on large trees).
        """
        return self._index().get(label) or []

    def get(self, label: str) -> str | None:
        """Value of the first child named ``label`` (or None)."""
        node = self.child(label)
        return node.value if node else None

    def walk(self) -> Iterator["ConfigNode"]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find_all(self, predicate: Callable[["ConfigNode"], bool]) -> list["ConfigNode"]:
        """All descendants (including self) satisfying ``predicate``."""
        return [node for node in self.walk() if predicate(node)]

    def path(self) -> str:
        """Slash-joined label path from the root (root label omitted)."""
        labels: list[str] = []
        node: ConfigNode | None = self
        while node is not None and node.parent is not None:
            labels.append(node.label)
            node = node.parent
        return "/".join(reversed(labels))

    def index_among_siblings(self) -> int:
        """1-based position among same-labeled siblings (Augeas semantics)."""
        if self.parent is None:
            return 1
        same = self.parent.children_named(self.label)
        return same.index(self) + 1

    # ---- conversion / display ----------------------------------------------

    def to_dict(self) -> dict:
        """Lossy dict form for debugging and JSON output.

        Repeated labels become lists; leaves map to their value.
        """
        if not self.children:
            return {self.label: self.value}
        grouped: dict[str, object] = {}
        for child in self.children:
            rendered = child.to_dict()[child.label]
            if child.label in grouped:
                existing = grouped[child.label]
                if isinstance(existing, list):
                    existing.append(rendered)
                else:
                    grouped[child.label] = [existing, rendered]
            else:
                grouped[child.label] = rendered
        return {self.label: grouped}

    def render(self, indent: int = 0) -> str:
        """Readable multi-line dump (used by the CLI's ``dump`` command)."""
        value = f" = {self.value!r}" if self.value is not None else ""
        lines = [f"{'  ' * indent}{self.label}{value}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ConfigNode({self.label!r}, value={self.value!r}, "
            f"children={len(self.children)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConfigNode):
            return NotImplemented
        return (
            self.label == other.label
            and self.value == other.value
            and self.children == other.children
        )

    def __hash__(self):  # nodes are mutable; identity hashing is correct here
        return id(self)


class ConfigTree:
    """A parsed configuration file: a root node plus provenance."""

    def __init__(self, root: ConfigNode | None = None, source: str = "<memory>",
                 lens: str = "unknown"):
        self.root = root if root is not None else ConfigNode("(root)")
        self.source = source
        self.lens = lens

    def match(self, expression: str) -> list[ConfigNode]:
        """All nodes matching an Augeas-style path expression."""
        from repro.augtree.path import parse_path

        return parse_path(expression).match(self.root)

    def first(self, expression: str) -> ConfigNode | None:
        """First match of ``expression`` (or None)."""
        matches = self.match(expression)
        return matches[0] if matches else None

    def value_of(self, expression: str) -> str | None:
        """Value of the first node matching ``expression`` (or None)."""
        node = self.first(expression)
        return node.value if node else None

    def size(self) -> int:
        """Number of nodes in the tree (excluding the synthetic root)."""
        return sum(1 for _ in self.root.walk()) - 1

    def render(self) -> str:
        header = f"# {self.source} ({self.lens})"
        return header + "\n" + self.root.render()

    def __repr__(self) -> str:
        return f"ConfigTree(source={self.source!r}, lens={self.lens!r}, nodes={self.size()})"
