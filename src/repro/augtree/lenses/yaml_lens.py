"""Lens for YAML configuration (cloud service configs, compose files)."""

from __future__ import annotations

import yaml

from repro.augtree.lenses.base import Lens
from repro.augtree.lenses.util import _render_scalar, scalar_to_tree
from repro.augtree.tree import ConfigNode, ConfigTree, SourceSpan


class YamlLens(Lens):
    name = "yaml"
    file_patterns = ("*.yaml", "*.yml")

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            line = getattr(getattr(exc, "problem_mark", None), "line", None)
            raise self.error(
                f"invalid YAML: {exc}", line + 1 if line is not None else None
            ) from exc
        root = ConfigNode("(root)")
        if isinstance(data, dict):
            for key, value in data.items():
                scalar_to_tree(str(key), value, root)
        elif data is not None:
            scalar_to_tree("(document)", data, root)
        # ``safe_load`` discards source marks, so spans come from a second
        # compose() pass.  The composed tree is only trusted when it is
        # value-identical to the loaded one (mark-less ``__eq__``); any
        # divergence (merge keys, exotic tags) keeps the span-less tree.
        spanned = self._spanned_root(text)
        if spanned is not None and spanned == root:
            root = spanned
        return ConfigTree(root, source=source, lens=self.name)

    # ---- span harvesting ---------------------------------------------------

    def _spanned_root(self, text: str) -> ConfigNode | None:
        try:
            node = yaml.compose(text, Loader=yaml.SafeLoader)
        except Exception:
            return None
        root = ConfigNode("(root)")
        if node is None:
            return root
        constructor = yaml.constructor.SafeConstructor()
        try:
            if isinstance(node, yaml.MappingNode):
                for key_node, value_node in node.value:
                    key = constructor.construct_object(key_node, deep=True)
                    self._node_to_tree(str(key), value_node, root,
                                       constructor, key_node)
            else:
                self._node_to_tree("(document)", node, root, constructor, None)
        except Exception:
            return None
        return root

    def _node_to_tree(self, label: str, node, parent: ConfigNode,
                      constructor, key_node) -> None:
        """Mirror of :func:`scalar_to_tree` over composed YAML nodes."""
        anchor = key_node if key_node is not None else node
        if isinstance(node, yaml.MappingNode):
            child = parent.add(str(label), None, self._span(anchor, node))
            for k_node, v_node in node.value:
                key = constructor.construct_object(k_node, deep=True)
                self._node_to_tree(str(key), v_node, child, constructor, k_node)
        elif isinstance(node, yaml.SequenceNode):
            for item in node.value:
                self._node_to_tree(str(label), item, parent, constructor, None)
        else:
            value = constructor.construct_object(node, deep=True)
            if isinstance(value, (dict, list, tuple)):
                raise ValueError("scalar node constructed a container")
            parent.add(str(label), _render_scalar(value),
                       self._span(anchor, node))

    @staticmethod
    def _span(start_node, end_node) -> SourceSpan:
        start, end = start_node.start_mark, end_node.end_mark
        return SourceSpan(start.line + 1, start.column + 1,
                          end.line + 1, end.column + 1,
                          start.index, end.index)
