"""Lens for YAML configuration (cloud service configs, compose files)."""

from __future__ import annotations

import yaml

from repro.augtree.lenses.base import Lens
from repro.augtree.lenses.util import scalar_to_tree
from repro.augtree.tree import ConfigNode, ConfigTree


class YamlLens(Lens):
    name = "yaml"
    file_patterns = ("*.yaml", "*.yml")

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            line = getattr(getattr(exc, "problem_mark", None), "line", None)
            raise self.error(
                f"invalid YAML: {exc}", line + 1 if line is not None else None
            ) from exc
        root = ConfigNode("(root)")
        if isinstance(data, dict):
            for key, value in data.items():
                scalar_to_tree(str(key), value, root)
        elif data is not None:
            scalar_to_tree("(document)", data, root)
        return ConfigTree(root, source=source, lens=self.name)
