"""Lens abstraction: a parser from raw file text to a ConfigTree.

A *lens* (Augeas terminology) knows one configuration file format.  The
data normalizer picks a lens for each crawled file -- either because the
entity manifest names one explicitly, or by filename pattern through the
:class:`LensRegistry`.
"""

from __future__ import annotations

import fnmatch
import posixpath
from abc import ABC, abstractmethod

from repro.errors import LensError
from repro.augtree.tree import ConfigTree


class Lens(ABC):
    """Parser for one config-file format.

    Subclasses set :attr:`name` (the identifier manifests refer to) and
    :attr:`file_patterns` (globs matched against the file's basename, or
    against the full path when the pattern contains a ``/``).
    """

    #: Identifier used in manifests (``lens: nginx``) and error messages.
    name: str = "abstract"

    #: Filename globs this lens auto-applies to.
    file_patterns: tuple[str, ...] = ()

    @abstractmethod
    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        """Parse ``text`` into a tree.  Raises :class:`LensError` on garbage
        the format cannot represent; unknown-but-well-formed content must
        still parse (rules decide what matters, not the lens)."""

    def matches(self, path: str) -> bool:
        """True if this lens auto-applies to the file at ``path``."""
        basename = posixpath.basename(path)
        for pattern in self.file_patterns:
            target = path if "/" in pattern else basename
            if fnmatch.fnmatch(target, pattern):
                return True
        return False

    def error(self, message: str, line: int | None = None) -> LensError:
        """Build a LensError tagged with this lens's name."""
        return LensError(self.name, message, line)

    def __repr__(self) -> str:
        return f"<Lens {self.name}>"


class LensRegistry:
    """Name- and pattern-based lookup of lenses.

    Registration order matters for pattern lookup: the first registered
    lens whose pattern matches wins, so register specific lenses before
    generic ones (the default registry registers the catch-all key-value
    lens last).
    """

    def __init__(self):
        self._by_name: dict[str, Lens] = {}
        self._ordered: list[Lens] = []

    def register(self, lens: Lens) -> None:
        if lens.name in self._by_name:
            raise ValueError(f"duplicate lens name {lens.name!r}")
        self._by_name[lens.name] = lens
        self._ordered.append(lens)

    def get(self, name: str) -> Lens:
        try:
            return self._by_name[name]
        except KeyError:
            raise LensError(name, "no such lens registered") from None

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def for_file(self, path: str) -> Lens | None:
        """The first registered lens whose pattern matches ``path``."""
        for lens in self._ordered:
            if lens.matches(path):
                return lens
        return None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._ordered)
