"""Lens for nginx configuration.

nginx.conf is a directive language::

    worker_processes auto;            # simple directive
    http {                            # block directive
        server {
            listen 443 ssl;
            ssl_protocols TLSv1.2 TLSv1.3;
        }
    }

Tree shape: each directive becomes a node labeled with the directive name;
simple directives carry their arguments (space-joined) as the node value;
block directives carry their block arguments (e.g. ``location /api``) as
value and their body as children.  Repeated blocks (two ``server``s) become
repeated sibling labels, addressable as ``server[1]`` / ``server[2]``.
"""

from __future__ import annotations

from repro.augtree.lenses.base import Lens
from repro.augtree.tree import ConfigNode, ConfigTree, SourceSpan

_PUNCT = "{};"


class NginxLens(Lens):
    name = "nginx"
    file_patterns = (
        "nginx.conf",
        "*/nginx/*.conf",
        "*/sites-enabled/*",
        "*/sites-available/*",
        "*/conf.d/*.conf",
    )

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        tokens = list(self._tokenize(text))
        root = ConfigNode("(root)")
        index = self._parse_block(tokens, 0, root, top_level=True)
        if index != len(tokens):
            line = tokens[index][1]
            raise self.error(f"unexpected {tokens[index][0]!r}", line)
        return ConfigTree(root, source=source, lens=self.name)

    # ---- tokenizer ---------------------------------------------------------

    def _tokenize(self, text: str):
        """Yield ``(token, line, column, start, end)`` tuples.

        Strings keep their content only, but line/column/offsets cover the
        raw region including the quotes.
        """
        line = 1
        line_start = 0
        i = 0
        word: list[str] = []
        word_pos = (1, 1, 0)  # (line, column, offset) of the word's start

        def flush():
            nonlocal word
            if word:
                w_line, w_col, w_start = word_pos
                yield "".join(word), w_line, w_col, w_start, w_start + len(word)
                word = []

        while i < len(text):
            char = text[i]
            if char == "\n":
                yield from flush()
                line += 1
                i += 1
                line_start = i
            elif char in " \t\r":
                yield from flush()
                i += 1
            elif char == "#":
                yield from flush()
                while i < len(text) and text[i] != "\n":
                    i += 1
            elif char in "'\"":
                yield from flush()
                quote = char
                start = i
                start_line = line
                start_col = i - line_start + 1
                i += 1
                buffer: list[str] = []
                while i < len(text) and text[i] != quote:
                    if text[i] == "\\" and i + 1 < len(text):
                        buffer.append(text[i + 1])
                        if text[i + 1] == "\n":
                            line += 1
                            line_start = i + 2
                        i += 2
                        continue
                    if text[i] == "\n":
                        line += 1
                        line_start = i + 1
                    buffer.append(text[i])
                    i += 1
                if i >= len(text):
                    raise self.error("unterminated string", start_line)
                i += 1
                yield "".join(buffer), start_line, start_col, start, i
            elif char in _PUNCT:
                yield from flush()
                yield char, line, i - line_start + 1, i, i + 1
                i += 1
            else:
                if not word:
                    word_pos = (line, i - line_start + 1, i)
                word.append(char)
                i += 1
        yield from flush()

    # ---- recursive-descent parser ------------------------------------------

    def _parse_block(
        self,
        tokens: list[tuple[str, int, int, int, int]],
        index: int,
        parent: ConfigNode,
        *,
        top_level: bool,
    ) -> int:
        """Parse directives until ``}`` (or EOF at top level); return the
        index just past the closing brace (or EOF)."""
        while index < len(tokens):
            token, line = tokens[index][0], tokens[index][1]
            if token == "}":
                if top_level:
                    raise self.error("unmatched '}'", line)
                return index + 1
            if token in "{;":
                raise self.error(f"unexpected {token!r}", line)
            # Collect the directive name and its arguments.
            name = token
            name_line, name_col, name_start = tokens[index][1:4]
            index += 1
            args: list[str] = []
            while index < len(tokens) and tokens[index][0] not in _PUNCT:
                args.append(tokens[index][0])
                index += 1
            if index >= len(tokens):
                raise self.error(f"directive {name!r} missing ';' or '{{'", line)
            terminator, term_line = tokens[index][0], tokens[index][1]
            value = " ".join(args) if args else None
            if terminator == ";":
                term = tokens[index]
                span = SourceSpan(name_line, name_col, term[1], term[2] + 1,
                                  name_start, term[4])
                parent.add(name, value, span)
                index += 1
            elif terminator == "{":
                node = parent.add(name, value)
                index = self._parse_block(tokens, index + 1, node, top_level=False)
                # Span the whole block through its closing brace so nested
                # constructs report their true extent.
                closing = tokens[index - 1]
                node.span = SourceSpan(name_line, name_col, closing[1],
                                       closing[2] + 1, name_start, closing[4])
            else:
                raise self.error(f"unexpected '}}' after {name!r}", term_line)
        if not top_level:
            raise self.error("unexpected end of file inside a block")
        return index
