"""Lens for Hadoop ``*-site.xml`` configuration.

Hadoop wraps every setting in ``<property><name>N</name><value>V</value>
</property>``.  Rather than forcing rules through child-value predicates,
this lens flattens each property into a direct ``N = V`` node (plus a
``final`` child when the property is marked final), so rules read exactly
like the flat formats::

    config_name: dfs.permissions.enabled
    config_path: [""]

Non-property XML content falls back to the generic XML mapping.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.augtree.lenses.xml_lens import XmlLens
from repro.augtree.tree import ConfigNode, ConfigTree


class HadoopLens(XmlLens):
    name = "hadoop"
    file_patterns = ("*-site.xml", "*/hadoop/*.xml")

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        try:
            element = ET.fromstring(text)
        except ET.ParseError as exc:
            raise self.error(f"invalid XML: {exc}") from exc
        if element.tag != "configuration":
            # Not a Hadoop site file after all; generic XML shape.
            return super().parse(text, source)
        root = ConfigNode("(root)")
        for child in element:
            if child.tag != "property":
                self._convert(child, root)
                continue
            name = (child.findtext("name") or "").strip()
            value = (child.findtext("value") or "").strip()
            if not name:
                raise self.error("<property> without a <name>")
            node = root.add(name, value)
            final = (child.findtext("final") or "").strip()
            if final:
                node.add("final", final)
        return ConfigTree(root, source=source, lens=self.name)
