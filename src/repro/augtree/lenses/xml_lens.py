"""Lens for XML configuration (Hadoop *-site.xml and friends).

Generic mapping: an element becomes a node labeled with its tag; element
text (stripped) becomes the node value; attributes become ``@name``
children; child elements become children.  For Hadoop's

    <configuration>
      <property><name>dfs.permissions.enabled</name><value>true</value></property>
    </configuration>

this yields ``configuration/property`` nodes with ``name`` and ``value``
children, which rules address via child-value predicates::

    property[name='dfs.permissions.enabled']/value
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.augtree.lenses.base import Lens
from repro.augtree.tree import ConfigNode, ConfigTree


class XmlLens(Lens):
    name = "xml"
    file_patterns = ("*.xml",)

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        try:
            element = ET.fromstring(text)
        except ET.ParseError as exc:
            raise self.error(f"invalid XML: {exc}") from exc
        root = ConfigNode("(root)")
        self._convert(element, root)
        return ConfigTree(root, source=source, lens=self.name)

    def _convert(self, element: ET.Element, parent: ConfigNode) -> None:
        tag = self._strip_namespace(element.tag)
        text = (element.text or "").strip()
        node = parent.add(tag, text or None)
        for name, value in sorted(element.attrib.items()):
            node.add(f"@{self._strip_namespace(name)}", value)
        for child in element:
            self._convert(child, node)

    @staticmethod
    def _strip_namespace(tag: str) -> str:
        return tag.rsplit("}", 1)[-1]
