"""Lens for OpenSSH server/client configuration (sshd_config, ssh_config).

Format: ``Keyword argument ...`` per line, optionally ``Keyword=argument``.
``Match`` blocks nest: every directive after a ``Match`` line until the
next ``Match`` (or EOF) becomes a child of that ``Match`` node, mirroring
how sshd scopes conditional settings.

Keyword case is preserved as written; sshd itself is case-insensitive, so
the rule engine compares directive *names* case-insensitively for this
lens's trees via the normal substring/exact matchers on values and the
engine's name lookup, which uses the written form.  Rules in the shipped
packs use the canonical CamelCase spelling (``PermitRootLogin``), the same
spelling the CIS benchmark uses.
"""

from __future__ import annotations

from repro.augtree.lenses.base import Lens
from repro.augtree.lenses.util import logical_spans
from repro.augtree.tree import ConfigNode, ConfigTree


class SshdLens(Lens):
    name = "sshd"
    file_patterns = ("sshd_config", "ssh_config", "*/ssh/sshd_config")

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        root = ConfigNode("(root)")
        scope = root
        for number, span, line in logical_spans(text, comment_chars="#"):
            line = line.strip()
            keyword, argument = self._split(line, number)
            if keyword.lower() == "match":
                scope = root.add("Match", argument, span)
                continue
            scope.add(keyword, argument, span)
        return ConfigTree(root, source=source, lens=self.name)

    def _split(self, line: str, number: int) -> tuple[str, str | None]:
        # sshd accepts both "Key value" and "Key=value".
        if "=" in line and (" " not in line or line.index("=") < line.index(" ")):
            keyword, _sep, argument = line.partition("=")
        else:
            keyword, _sep, argument = line.partition(" ")
        keyword = keyword.strip()
        if not keyword:
            raise self.error("blank keyword", number)
        argument = argument.strip()
        return keyword, argument if argument else None
