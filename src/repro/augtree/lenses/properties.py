"""Lens for Java .properties files (Hadoop log4j, Kafka, ...).

Supports ``key=value``, ``key:value``, ``key value``, backslash line
continuation, and ``\\u``-style escapes being left verbatim (rules match
on the raw text form administrators write).
"""

from __future__ import annotations

from repro.augtree.lenses.base import Lens
from repro.augtree.lenses.util import logical_spans
from repro.augtree.tree import ConfigNode, ConfigTree


class PropertiesLens(Lens):
    name = "properties"
    file_patterns = ("*.properties",)

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        root = ConfigNode("(root)")
        for _number, span, line in logical_spans(
            text, comment_chars="#!", join_backslash=True
        ):
            line = line.strip()
            key, value = self._split(line)
            root.add(key, value, span)
        return ConfigTree(root, source=source, lens=self.name)

    @staticmethod
    def _split(line: str) -> tuple[str, str | None]:
        key_chars: list[str] = []
        i = 0
        while i < len(line):
            char = line[i]
            if char == "\\" and i + 1 < len(line):
                key_chars.append(line[i + 1])
                i += 2
                continue
            if char in "=: \t":
                break
            key_chars.append(char)
            i += 1
        # Skip whitespace, then at most one '=' or ':', then whitespace.
        while i < len(line) and line[i] in " \t":
            i += 1
        if i < len(line) and line[i] in "=:":
            i += 1
        while i < len(line) and line[i] in " \t":
            i += 1
        value = line[i:]
        return "".join(key_chars), value if value else None
