"""Lens for JSON configuration (Docker daemon.json, app configs)."""

from __future__ import annotations

import json

from repro.augtree.lenses.base import Lens
from repro.augtree.lenses.util import scalar_to_tree
from repro.augtree.tree import ConfigNode, ConfigTree


class JsonLens(Lens):
    name = "json"
    file_patterns = ("*.json", "daemon.json")

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        if not text.strip():
            return ConfigTree(ConfigNode("(root)"), source=source, lens=self.name)
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise self.error(f"invalid JSON: {exc.msg}", exc.lineno) from exc
        root = ConfigNode("(root)")
        if isinstance(data, dict):
            for key, value in data.items():
                scalar_to_tree(str(key), value, root)
        else:
            scalar_to_tree("(document)", data, root)
        return ConfigTree(root, source=source, lens=self.name)
