"""Lens for JSON configuration (Docker daemon.json, app configs)."""

from __future__ import annotations

import json
import json.decoder
import json.scanner
from bisect import bisect_right

from repro.augtree.lenses.base import Lens
from repro.augtree.lenses.util import _render_scalar, scalar_to_tree
from repro.augtree.tree import ConfigNode, ConfigTree, SourceSpan

_WHITESPACE = " \t\n\r"


class _Spanned:
    """A decoded JSON value plus the raw-text region it came from.

    ``value`` is a scalar, a list of ``_Spanned`` items, or -- for objects
    -- a dict mapping each key to ``(key_offset, _Spanned)`` with JSON's
    duplicate-key semantics (last value wins, first position kept).
    """

    __slots__ = ("value", "start", "end")

    def __init__(self, value, start: int, end: int):
        self.value = value
        self.start = start
        self.end = end


class JsonLens(Lens):
    name = "json"
    file_patterns = ("*.json", "daemon.json")

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        if not text.strip():
            return ConfigTree(ConfigNode("(root)"), source=source, lens=self.name)
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise self.error(f"invalid JSON: {exc.msg}", exc.lineno) from exc
        root = ConfigNode("(root)")
        if isinstance(data, dict):
            for key, value in data.items():
                scalar_to_tree(str(key), value, root)
        else:
            scalar_to_tree("(document)", data, root)
        # ``json.loads`` stays the semantic source of truth; a second
        # span-tracking pass over the (already validated) text harvests
        # offsets, and is only trusted when it rebuilds the identical tree.
        spanned = self._spanned_root(text)
        if spanned is not None and spanned == root:
            root = spanned
        return ConfigTree(root, source=source, lens=self.name)

    # ---- span harvesting ---------------------------------------------------

    def _spanned_root(self, text: str) -> ConfigNode | None:
        try:
            spanned, end = self._parse_value(text, self._skip_ws(text, 0))
            if self._skip_ws(text, end) != len(text):
                return None
            line_starts = [0]
            for index, char in enumerate(text):
                if char == "\n":
                    line_starts.append(index + 1)

            def make_span(start: int, end: int) -> SourceSpan:
                start_line = bisect_right(line_starts, start)
                end_line = bisect_right(line_starts, end)
                return SourceSpan(
                    start_line, start - line_starts[start_line - 1] + 1,
                    end_line, end - line_starts[end_line - 1] + 1,
                    start, end,
                )

            root = ConfigNode("(root)")
            if isinstance(spanned.value, dict):
                for key, (key_start, child) in spanned.value.items():
                    self._spanned_to_tree(str(key), child, root,
                                          make_span(key_start, child.end),
                                          make_span)
            else:
                self._spanned_to_tree("(document)", spanned, root,
                                      make_span(spanned.start, spanned.end),
                                      make_span)
            return root
        except Exception:
            return None

    def _spanned_to_tree(self, label: str, spanned: _Spanned,
                         parent: ConfigNode, span: SourceSpan,
                         make_span) -> None:
        """Mirror of :func:`scalar_to_tree` over spanned JSON values."""
        value = spanned.value
        if isinstance(value, dict):
            node = parent.add(str(label), None, span)
            for key, (key_start, child) in value.items():
                self._spanned_to_tree(str(key), child, node,
                                      make_span(key_start, child.end),
                                      make_span)
        elif isinstance(value, list):
            for item in value:
                self._spanned_to_tree(str(label), item, parent,
                                      make_span(item.start, item.end),
                                      make_span)
        else:
            parent.add(str(label), _render_scalar(value), span)

    # ---- minimal offset-tracking JSON reader -------------------------------
    #
    # Only ever run on text json.loads already accepted, so error handling
    # is just "raise and fall back to the span-less tree".

    @staticmethod
    def _skip_ws(text: str, i: int) -> int:
        while i < len(text) and text[i] in _WHITESPACE:
            i += 1
        return i

    def _parse_value(self, text: str, i: int) -> tuple[_Spanned, int]:
        char = text[i]
        if char == "{":
            return self._parse_object(text, i)
        if char == "[":
            return self._parse_array(text, i)
        if char == '"':
            string, end = json.decoder.scanstring(text, i + 1)
            return _Spanned(string, i, end), end
        for literal, value in (("true", True), ("false", False),
                               ("null", None), ("NaN", float("nan")),
                               ("Infinity", float("inf")),
                               ("-Infinity", float("-inf"))):
            if text.startswith(literal, i):
                return _Spanned(value, i, i + len(literal)), i + len(literal)
        match = json.scanner.NUMBER_RE.match(text, i)
        if match is None:
            raise ValueError(f"unexpected character at offset {i}")
        integer, frac, exp = match.groups()
        number = float(integer + (frac or "") + (exp or "")) if frac or exp \
            else int(integer)
        return _Spanned(number, i, match.end()), match.end()

    def _parse_object(self, text: str, i: int) -> tuple[_Spanned, int]:
        start = i
        entries: dict[str, tuple[int, _Spanned]] = {}
        i = self._skip_ws(text, i + 1)
        if text[i] == "}":
            return _Spanned(entries, start, i + 1), i + 1
        while True:
            if text[i] != '"':
                raise ValueError("expected a string key")
            key_start = i
            key, i = json.decoder.scanstring(text, i + 1)
            i = self._skip_ws(text, i)
            if text[i] != ":":
                raise ValueError("expected ':'")
            i = self._skip_ws(text, i + 1)
            value, i = self._parse_value(text, i)
            entries[key] = (key_start, value)
            i = self._skip_ws(text, i)
            if text[i] == ",":
                i = self._skip_ws(text, i + 1)
                continue
            if text[i] != "}":
                raise ValueError("expected ',' or '}'")
            return _Spanned(entries, start, i + 1), i + 1

    def _parse_array(self, text: str, i: int) -> tuple[_Spanned, int]:
        start = i
        items: list[_Spanned] = []
        i = self._skip_ws(text, i + 1)
        if text[i] == "]":
            return _Spanned(items, start, i + 1), i + 1
        while True:
            item, i = self._parse_value(text, i)
            items.append(item)
            i = self._skip_ws(text, i)
            if text[i] == ",":
                i = self._skip_ws(text, i + 1)
                continue
            if text[i] != "]":
                raise ValueError("expected ',' or ']'")
            return _Spanned(items, start, i + 1), i + 1
