"""Generic key-value lens: the catch-all for flat ``key <sep> value`` files.

This is the configurable fallback used when no format-specific lens
matches; it also backs the simplest real formats (``/etc/default/*``,
``environment`` files).  Sections are not supported -- use the ini lens
for sectioned files.
"""

from __future__ import annotations

from repro.augtree.lenses.base import Lens
from repro.augtree.lenses.util import logical_spans, strip_inline_comment
from repro.augtree.tree import ConfigNode, ConfigTree


class KeyValueLens(Lens):
    """Parse flat ``key = value`` (or ``key value``, ``key: value``) files.

    ``separators`` are tried in order on each line; if none occurs, the
    whole line becomes a key with no value (a bare flag).
    """

    name = "keyvalue"
    file_patterns = ("*.conf", "*.cfg")

    def __init__(
        self,
        name: str | None = None,
        *,
        separators: tuple[str, ...] = ("=", ":", " "),
        comment_chars: str = "#;",
        strip_quotes: bool = True,
        file_patterns: tuple[str, ...] | None = None,
    ):
        if name is not None:
            self.name = name
        if file_patterns is not None:
            self.file_patterns = file_patterns
        self._separators = separators
        self._comment_chars = comment_chars
        self._strip_quotes = strip_quotes

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        root = ConfigNode("(root)")
        for _number, span, line in logical_spans(
            text, comment_chars=self._comment_chars, join_backslash=True
        ):
            line = strip_inline_comment(line, self._comment_chars).strip()
            if not line:
                continue
            key, value = self._split(line)
            root.add(key, value, span)
        return ConfigTree(root, source=source, lens=self.name)

    def _split(self, line: str) -> tuple[str, str | None]:
        # Prefer the earliest explicit separator ('=', ':'); bare whitespace
        # only separates when no explicit separator appears at all ("Key
        # value" style), so "A = valA" keys on '=' despite the space first.
        best: tuple[int, str] | None = None
        for separator in self._separators:
            if separator.isspace():
                continue
            index = line.find(separator)
            if index > 0 and (best is None or index < best[0]):
                best = (index, separator)
        if best is None:
            for separator in self._separators:
                if not separator.isspace():
                    continue
                index = line.find(separator)
                if index > 0:
                    best = (index, separator)
                    break
        if best is None:
            return line, None
        index, separator = best
        key = line[:index].strip()
        value = line[index + len(separator):].strip()
        if self._strip_quotes and len(value) >= 2 and value[0] in "'\"" and value[-1] == value[0]:
            value = value[1:-1]
        return key, value if value else None
