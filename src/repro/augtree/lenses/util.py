"""Shared helpers for lens implementations."""

from __future__ import annotations

from typing import Iterator

from repro.augtree.tree import ConfigNode


def logical_lines(
    text: str,
    *,
    comment_chars: str = "#",
    join_backslash: bool = False,
) -> Iterator[tuple[int, str]]:
    """Yield ``(line_number, content)`` for non-blank, non-comment lines.

    ``line_number`` is 1-based and refers to the *first* physical line of a
    joined logical line.  Inline comments are **not** stripped here --
    whether ``#`` starts a comment mid-line is format-specific.
    """
    pending: list[str] = []
    pending_start = 0
    number = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if join_backslash and line.endswith("\\"):
            if not pending:
                pending_start = number
            pending.append(line[:-1])
            continue
        if pending:
            line = "".join(pending) + line
            start = pending_start
            pending = []
        else:
            start = number
        stripped = line.strip()
        if not stripped or stripped[0] in comment_chars:
            continue
        yield start, line
    if pending:  # trailing continuation: emit what we have
        line = "".join(pending)
        if line.strip() and line.strip()[0] not in comment_chars:
            yield pending_start, line


def strip_inline_comment(line: str, comment_chars: str = "#") -> str:
    """Drop an unquoted trailing comment from ``line``."""
    result: list[str] = []
    quote: str | None = None
    for char in line:
        if quote:
            result.append(char)
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            result.append(char)
            continue
        if char in comment_chars:
            break
        result.append(char)
    return "".join(result).rstrip()


def scalar_to_tree(label: str, value: object, parent: ConfigNode) -> None:
    """Convert a decoded JSON/YAML value into tree children under ``parent``.

    Mappings become child nodes per key; sequences become repeated children
    with the same label; scalars become string values (booleans rendered
    lowercase like their on-disk form, None as empty value).
    """
    if isinstance(value, dict):
        node = parent.add(str(label))
        for key, item in value.items():
            scalar_to_tree(str(key), item, node)
    elif isinstance(value, (list, tuple)):
        for item in value:
            scalar_to_tree(str(label), item, parent)
    else:
        parent.add(str(label), _render_scalar(value))


def _render_scalar(value: object) -> str | None:
    if value is None:
        return None
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
