"""Shared helpers for lens implementations."""

from __future__ import annotations

from typing import Iterator

from repro.augtree.tree import ConfigNode, SourceSpan

#: Line terminators recognised by ``str.splitlines``; stripping these from
#: ``splitlines(keepends=True)`` output reproduces ``splitlines()`` exactly
#: while keeping the raw (terminator-inclusive) length for offset tracking.
_LINE_ENDS = "\n\r\v\f\x1c\x1d\x1e\x85\u2028\u2029"


def physical_lines(text: str) -> Iterator[tuple[int, int, str]]:
    """Yield ``(line_number, start_offset, content)`` per physical line.

    Content matches ``text.splitlines()`` element-for-element; the offset
    is the character index of the line's first character in ``text``.
    """
    offset = 0
    for number, raw in enumerate(text.splitlines(keepends=True), start=1):
        line = raw
        if line.endswith("\r\n"):
            line = line[:-2]
        elif line and line[-1] in _LINE_ENDS:
            line = line[:-1]
        yield number, offset, line
        offset += len(raw)


def _trimmed_span(start_line: int, start_offset: int, first: str,
                  end_line: int, end_offset: int, last: str) -> SourceSpan:
    """Span covering a logical construct, trimmed of flanking whitespace.

    ``first``/``last`` are the first and last physical lines of the
    construct; ``start_offset``/``end_offset`` are their line-start offsets.
    """
    lead = len(first) - len(first.lstrip())
    if lead == len(first):  # blank first line; anchor at column 1
        lead = 0
    tail = len(last.rstrip())
    if tail == 0 and last.strip() == "":
        tail = len(last)
    return SourceSpan(
        line=start_line,
        column=lead + 1,
        end_line=end_line,
        end_column=tail + 1,
        start=start_offset + lead,
        end=end_offset + tail,
    )


def logical_spans(
    text: str,
    *,
    comment_chars: str = "#",
    join_backslash: bool = False,
) -> Iterator[tuple[int, SourceSpan, str]]:
    """Yield ``(line_number, span, content)`` for non-blank, non-comment lines.

    Like :func:`logical_lines` but also reports a :class:`SourceSpan`
    covering the whole logical construct -- from the first physical line of
    a backslash-joined run through the end of its last physical line --
    trimmed of leading/trailing whitespace.
    """
    pending: list[str] = []
    pending_start = 0
    pending_offset = 0
    pending_first = ""
    for number, offset, raw in physical_lines(text):
        line = raw.rstrip("\n")
        if join_backslash and line.endswith("\\"):
            if not pending:
                pending_start = number
                pending_offset = offset
                pending_first = raw
            pending.append(line[:-1])
            continue
        if pending:
            line = "".join(pending) + line
            start, start_offset, first = pending_start, pending_offset, pending_first
            pending = []
        else:
            start, start_offset, first = number, offset, raw
        stripped = line.strip()
        if not stripped or stripped[0] in comment_chars:
            continue
        yield start, _trimmed_span(start, start_offset, first,
                                   number, offset, raw), line
    if pending:  # trailing continuation: emit what we have
        line = "".join(pending)
        if line.strip() and line.strip()[0] not in comment_chars:
            span = _trimmed_span(pending_start, pending_offset, pending_first,
                                 pending_start, pending_offset,
                                 pending_first.rstrip("\\"))
            yield pending_start, span, line


def logical_lines(
    text: str,
    *,
    comment_chars: str = "#",
    join_backslash: bool = False,
) -> Iterator[tuple[int, str]]:
    """Yield ``(line_number, content)`` for non-blank, non-comment lines.

    ``line_number`` is 1-based and refers to the *first* physical line of a
    joined logical line.  Inline comments are **not** stripped here --
    whether ``#`` starts a comment mid-line is format-specific.
    """
    for number, _span, line in logical_spans(
        text, comment_chars=comment_chars, join_backslash=join_backslash
    ):
        yield number, line


def strip_inline_comment(line: str, comment_chars: str = "#") -> str:
    """Drop an unquoted trailing comment from ``line``."""
    result: list[str] = []
    quote: str | None = None
    for char in line:
        if quote:
            result.append(char)
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            result.append(char)
            continue
        if char in comment_chars:
            break
        result.append(char)
    return "".join(result).rstrip()


def scalar_to_tree(label: str, value: object, parent: ConfigNode) -> None:
    """Convert a decoded JSON/YAML value into tree children under ``parent``.

    Mappings become child nodes per key; sequences become repeated children
    with the same label; scalars become string values (booleans rendered
    lowercase like their on-disk form, None as empty value).
    """
    if isinstance(value, dict):
        node = parent.add(str(label))
        for key, item in value.items():
            scalar_to_tree(str(key), item, node)
    elif isinstance(value, (list, tuple)):
        for item in value:
            scalar_to_tree(str(label), item, parent)
    else:
        parent.add(str(label), _render_scalar(value))


def _render_scalar(value: object) -> str | None:
    if value is None:
        return None
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
