"""Lens for sysctl.conf / sysctl.d files.

Kernel parameter keys keep their dotted form as a *single* label
(``net.ipv4.ip_forward``), matching the Augeas sysctl lens -- rules and
composite expressions address them that way (paper Listing 1:
``sysctl.net.ipv4.ip_forward``).
"""

from __future__ import annotations

from repro.augtree.lenses.base import Lens
from repro.augtree.lenses.util import logical_spans, strip_inline_comment
from repro.augtree.tree import ConfigNode, ConfigTree


class SysctlLens(Lens):
    name = "sysctl"
    file_patterns = ("sysctl.conf", "*/sysctl.d/*.conf", "99-sysctl.conf")

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        root = ConfigNode("(root)")
        for number, span, line in logical_spans(text, comment_chars="#;"):
            line = strip_inline_comment(line, "#;").strip()
            if not line:
                continue
            if "=" not in line:
                raise self.error(f"expected 'key = value', got {line!r}", number)
            key, _sep, value = line.partition("=")
            key = key.strip()
            if not key:
                raise self.error("empty sysctl key", number)
            root.add(key, value.strip(), span)
        return ConfigTree(root, source=source, lens=self.name)
