"""Lens for INI-style configuration (MySQL my.cnf, .ini files).

Tree shape::

    [mysqld]                 ->  mysqld
    ssl-ca = /etc/ca.pem     ->    ssl-ca = "/etc/ca.pem"
    skip-networking          ->    skip-networking  (value None; bare flag)

Keys that appear before any section header become children of an implicit
``(global)`` section, preserving the distinction between scoped and
unscoped settings.  ``!include``/``!includedir`` directives are preserved
as ``!include`` nodes so rules can assert on them.
"""

from __future__ import annotations

from repro.augtree.lenses.base import Lens
from repro.augtree.lenses.util import logical_spans, strip_inline_comment
from repro.augtree.tree import ConfigNode, ConfigTree


class IniLens(Lens):
    name = "ini"
    file_patterns = ("*.ini", "*.cnf", "my.cnf", "*/mysql/*.cnf")

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        root = ConfigNode("(root)")
        section = None
        for number, span, line in logical_spans(text, comment_chars="#;",
                                                join_backslash=True):
            line = strip_inline_comment(line, "#").strip()
            if not line:
                continue
            if line.startswith("[") :
                if not line.endswith("]") or len(line) < 3:
                    raise self.error(f"malformed section header {line!r}", number)
                section = root.add(line[1:-1].strip(), None, span)
                continue
            if line.startswith("!"):
                directive, _sep, argument = line.partition(" ")
                root.add(directive, argument.strip() or None, span)
                continue
            if section is None:
                section = root.add("(global)")
            key, sep, value = line.partition("=")
            key = key.strip()
            if not key:
                raise self.error(f"missing key in {line!r}", number)
            if sep:
                value = value.strip()
                if len(value) >= 2 and value[0] in "'\"" and value[-1] == value[0]:
                    value = value[1:-1]
                section.add(key, value if value else None, span)
            else:
                section.add(key, None, span)  # bare flag like skip-networking
        return ConfigTree(root, source=source, lens=self.name)
