"""Format lenses and the default registry.

Lens selection mirrors Augeas: each lens declares filename patterns it
auto-applies to, and manifests can force a lens by name.  Specific lenses
are registered before generic ones so ``sshd_config`` hits the sshd lens
rather than the catch-all key-value lens.
"""

from repro.augtree.lenses.base import Lens, LensRegistry
from repro.augtree.lenses.hadoop import HadoopLens
from repro.augtree.lenses.apache import ApacheLens
from repro.augtree.lenses.ini import IniLens
from repro.augtree.lenses.json_lens import JsonLens
from repro.augtree.lenses.keyvalue import KeyValueLens
from repro.augtree.lenses.modprobe import ModprobeLens
from repro.augtree.lenses.nginx import NginxLens
from repro.augtree.lenses.properties import PropertiesLens
from repro.augtree.lenses.sshd import SshdLens
from repro.augtree.lenses.sysctl import SysctlLens
from repro.augtree.lenses.xml_lens import XmlLens
from repro.augtree.lenses.yaml_lens import YamlLens


def default_registry() -> LensRegistry:
    """Build the registry with every built-in lens, most specific first."""
    registry = LensRegistry()
    for lens in (
        SshdLens(),
        SysctlLens(),
        ModprobeLens(),
        HadoopLens(),
        NginxLens(),
        ApacheLens(),
        IniLens(),
        PropertiesLens(),
        XmlLens(),
        JsonLens(),
        YamlLens(),
        KeyValueLens(),
    ):
        registry.register(lens)
    return registry


_DEFAULT = default_registry()


def lens_for_file(path: str, registry: LensRegistry | None = None) -> Lens | None:
    """The lens that auto-applies to ``path`` (module-level default registry
    unless one is supplied)."""
    return (registry or _DEFAULT).for_file(path)


__all__ = [
    "ApacheLens",
    "HadoopLens",
    "IniLens",
    "JsonLens",
    "KeyValueLens",
    "Lens",
    "LensRegistry",
    "ModprobeLens",
    "NginxLens",
    "PropertiesLens",
    "SshdLens",
    "SysctlLens",
    "XmlLens",
    "YamlLens",
    "default_registry",
    "lens_for_file",
]
