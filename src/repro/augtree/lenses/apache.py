"""Lens for Apache httpd configuration.

Apache mixes flat directives with XML-ish section containers::

    ServerTokens Prod
    <Directory /var/www/>
        Options -Indexes
        AllowOverride None
    </Directory>

Tree shape: a directive node carries its arguments (space-joined) as the
value; a section node is labeled with the section name, carries the
section arguments as its value, and holds the enclosed directives as
children.  The paper's §6 notes apache's "modular" style is harder to
relate programmatically than sysctl's flat style -- the tree preserves
that structure instead of flattening it.
"""

from __future__ import annotations

import re

from repro.augtree.lenses.base import Lens
from repro.augtree.lenses.util import logical_spans
from repro.augtree.tree import ConfigNode, ConfigTree

_OPEN = re.compile(r"<\s*(?P<name>[A-Za-z][\w]*)\s*(?P<args>[^>]*)>\s*$")
_CLOSE = re.compile(r"</\s*(?P<name>[A-Za-z][\w]*)\s*>\s*$")


class ApacheLens(Lens):
    name = "apache"
    file_patterns = (
        "apache2.conf",
        "httpd.conf",
        "*/apache2/*.conf",
        "*/httpd/conf.d/*.conf",
        "*/conf-enabled/*.conf",
        "*/mods-enabled/*.conf",
    )

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        root = ConfigNode("(root)")
        stack: list[tuple[str, ConfigNode]] = [("(root)", root)]
        for number, span, line in logical_spans(text, comment_chars="#",
                                                join_backslash=True):
            line = line.strip()
            close = _CLOSE.match(line)
            if close:
                name = close.group("name")
                if len(stack) == 1 or stack[-1][0].lower() != name.lower():
                    raise self.error(f"unmatched </{name}>", number)
                section = stack.pop()[1]
                # The section's span grows to cover its whole body, so
                # nested blocks report their true closing line.
                if section.span is not None:
                    section.span = section.span._replace(
                        end_line=span.end_line, end_column=span.end_column,
                        end=span.end)
                continue
            opened = _OPEN.match(line)
            if opened:
                args = opened.group("args").strip()
                node = stack[-1][1].add(opened.group("name"), args or None, span)
                stack.append((opened.group("name"), node))
                continue
            directive, _sep, args = line.partition(" ")
            args = args.strip()
            if len(directive) >= 2 and directive[0] in "'\"":
                raise self.error(f"directive cannot be quoted: {line!r}", number)
            stack[-1][1].add(directive, self._unquote(args) if args else None, span)
        if len(stack) > 1:
            raise self.error(f"section <{stack[-1][0]}> never closed")
        return ConfigTree(root, source=source, lens=self.name)

    @staticmethod
    def _unquote(args: str) -> str:
        if len(args) >= 2 and args[0] in "'\"" and args[-1] == args[0]:
            return args[1:-1]
        return args
