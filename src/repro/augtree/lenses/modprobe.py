"""Lens for modprobe.d configuration.

Directives::

    install <module> <command...>
    blacklist <module>
    options <module> <opt=val ...>
    alias <wildcard> <module>
    remove <module> <command...>

Tree shape: one node per directive, labeled by the directive keyword, with
the module name as the node value and the remainder (command / options)
as a ``command`` or ``options`` child.  CIS rules like "ensure cramfs is
disabled" check ``install[.='cramfs']/command == /bin/true``.
"""

from __future__ import annotations

from repro.augtree.lenses.base import Lens
from repro.augtree.lenses.util import logical_lines, strip_inline_comment
from repro.augtree.tree import ConfigNode, ConfigTree

_DIRECTIVES = {"install", "remove", "blacklist", "alias", "options", "softdep"}


class ModprobeLens(Lens):
    name = "modprobe"
    file_patterns = ("*/modprobe.d/*.conf", "modprobe.conf", "blacklist*.conf")

    def parse(self, text: str, source: str = "<memory>") -> ConfigTree:
        root = ConfigNode("(root)")
        for number, line in logical_lines(text, comment_chars="#", join_backslash=True):
            line = strip_inline_comment(line, "#").strip()
            if not line:
                continue
            parts = line.split(None, 2)
            directive = parts[0]
            if directive not in _DIRECTIVES:
                raise self.error(f"unknown directive {directive!r}", number)
            if len(parts) < 2:
                raise self.error(f"{directive!r} needs a module name", number)
            node = root.add(directive, parts[1])
            rest = parts[2].strip() if len(parts) == 3 else ""
            if rest:
                child_label = {
                    "install": "command",
                    "remove": "command",
                    "alias": "module",
                    "softdep": "dependencies",
                }.get(directive, "options")
                if directive == "options":
                    for option in rest.split():
                        key, _sep, value = option.partition("=")
                        node.add(key, value if _sep else None)
                else:
                    node.add(child_label, rest)
        return ConfigTree(root, source=source, lens=self.name)
