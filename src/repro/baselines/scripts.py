"""The ad-hoc shell-script baseline.

The traditional approach the paper describes (§2.2): rules "typically
defined using scripts ... in a nutshell, these approaches search for a
regular expression in a configuration file".  No specification layer at
all -- each check is a grep, rendered here as a direct regex evaluation
plus a shell rendering for the encoding-size accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crawler.frame import ConfigFrame
from repro.baselines.common_rules import LineCheck


@dataclass
class ScriptResult:
    rule_id: str
    title: str
    passed: bool


class AdHocScriptEngine:
    """Run the common rules as bare greps."""

    name = "scripts"

    def run(
        self, checks: list[LineCheck] | tuple[LineCheck, ...], frame: ConfigFrame
    ) -> list[ScriptResult]:
        return [
            ScriptResult(
                rule_id=check.rule_id,
                title=check.title,
                passed=check.evaluate(frame),
            )
            for check in checks
        ]


def render_script(check: LineCheck) -> str:
    """The shell one-liner a checklist script would contain."""
    file_args = " ".join(check.files)
    if check.expect == "present":
        return (
            f"grep -Eq -e '{check.pattern}' {file_args} "
            f"|| echo 'FAIL {check.rule_id}: {check.title}'"
        )
    return (
        f"! grep -Eq -e '{check.pattern}' {file_args} "
        f"|| echo 'FAIL {check.rule_id}: {check.title}'"
    )
