"""The engine-neutral rule IR shared by every Table 2 baseline.

A :class:`LineCheck` is the lowest-common-denominator encoding of a CIS
rule -- "a pattern must (or must not) match a line of a file" -- which is
exactly what OVAL ``textfilecontent54`` tests, Chef Compliance's observed
bash-grep controls, and ad-hoc scripts all reduce to.  Each entry links
back to the CVL rule in the shipped packs (``cvl_entity``/``cvl_name``)
so the benchmark runs the *same 40 CIS Ubuntu system-service rules* under
all engines, as the paper does.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

from repro.crawler.frame import ConfigFrame


@dataclass(frozen=True)
class LineCheck:
    """One rule in every engine's terms.

    ``expect`` semantics:

    * ``"present"`` -- compliant iff some line of some candidate file
      matches ``pattern``;
    * ``"absent"``  -- compliant iff no line matches.
    """

    rule_id: str
    title: str
    files: tuple[str, ...]
    pattern: str
    expect: str = "present"          # "present" | "absent"
    severity: str = "medium"
    cvl_entity: str = ""
    cvl_name: str = ""
    description: str = ""
    key: str = ""            # the config key / mount point / module name
    value_pattern: str = ""  # the compliant-value pattern (engine-neutral)

    def evaluate(self, frame: ConfigFrame) -> bool:
        """Direct evaluation (the ad-hoc-script baseline uses this)."""
        matched = self._any_line_matches(frame)
        return matched if self.expect == "present" else not matched

    def _any_line_matches(self, frame: ConfigFrame) -> bool:
        regex = _compile(self.pattern)
        for path in self.files:
            if not frame.files.is_file(path):
                continue
            for line in frame.read_config(path).splitlines():
                if regex.search(line):
                    return True
        return False


@lru_cache(maxsize=512)
def _compile(pattern: str) -> re.Pattern:
    return re.compile(pattern)


def _sshd(rule_id: str, key: str, value_pattern: str, title: str,
          cvl_name: str, severity: str = "medium") -> LineCheck:
    return LineCheck(
        rule_id=rule_id,
        title=title,
        files=("/etc/ssh/sshd_config",),
        pattern=rf"(?i)^\s*{key}\s+(?:{value_pattern})\s*(?:#.*)?$",
        expect="present",
        severity=severity,
        cvl_entity="sshd",
        cvl_name=cvl_name,
        description=title,
        key=key,
        value_pattern=value_pattern,
    )


def _sysctl(rule_id: str, key: str, value: str, title: str) -> LineCheck:
    return LineCheck(
        rule_id=rule_id,
        title=title,
        files=("/etc/sysctl.conf",),
        pattern=rf"^\s*{re.escape(key)}\s*=\s*{re.escape(value)}\s*$",
        expect="present",
        cvl_entity="sysctl",
        cvl_name=key,
        description=title,
        key=key,
        value_pattern=value,
    )


def _audit(rule_id: str, pattern: str, title: str, cvl_name: str) -> LineCheck:
    return LineCheck(
        rule_id=rule_id,
        title=title,
        files=("/etc/audit/audit.rules",),
        pattern=pattern,
        expect="present",
        cvl_entity="audit",
        cvl_name=cvl_name,
        description=title,
    )


def _fstab(rule_id: str, pattern: str, title: str, cvl_name: str,
           mount_point: str, option: str = "") -> LineCheck:
    return LineCheck(
        rule_id=rule_id,
        title=title,
        files=("/etc/fstab",),
        pattern=pattern,
        expect="present",
        cvl_entity="fstab",
        cvl_name=cvl_name,
        description=title,
        key=mount_point,
        value_pattern=option,
    )


def _modprobe(rule_id: str, module: str, title: str, cvl_name: str) -> LineCheck:
    return LineCheck(
        rule_id=rule_id,
        title=title,
        files=("/etc/modprobe.d/hardening.conf", "/etc/modprobe.d/CIS.conf"),
        pattern=rf"^\s*install\s+{re.escape(module)}\s+/bin/(?:true|false)\b",
        expect="present",
        cvl_entity="modprobe",
        cvl_name=f"install[.='{module}']/command",
        description=title,
        key=module,
    )


#: The 40 CIS Ubuntu system-service rules common to every Table 2 engine
#: (15 sshd + 10 sysctl + 8 audit + 4 fstab + 3 modprobe).
TABLE2_RULES: tuple[LineCheck, ...] = (
    # --- sshd (CIS 5.2.x) ------------------------------------------------
    _sshd("cis-5.2.2", "Protocol", "2", "Use SSH protocol 2", "Protocol"),
    _sshd("cis-5.2.3", "LogLevel", "INFO|VERBOSE", "Set sshd LogLevel", "LogLevel"),
    _sshd("cis-5.2.4", "X11Forwarding", "no", "Disable X11 forwarding", "X11Forwarding"),
    _sshd("cis-5.2.5", "MaxAuthTries", "[1-4]", "Limit MaxAuthTries", "MaxAuthTries"),
    _sshd("cis-5.2.6", "IgnoreRhosts", "yes", "Ignore rhosts files", "IgnoreRhosts"),
    _sshd("cis-5.2.7", "HostbasedAuthentication", "no",
          "Disable host-based auth", "HostbasedAuthentication"),
    _sshd("cis-5.2.8", "PermitRootLogin", "no", "Disable SSH Root Login",
          "PermitRootLogin", severity="high"),
    _sshd("cis-5.2.9", "PermitEmptyPasswords", "no",
          "Disable empty passwords", "PermitEmptyPasswords", severity="high"),
    _sshd("cis-5.2.10", "PermitUserEnvironment", "no",
          "Disable user environment options", "PermitUserEnvironment"),
    _sshd("cis-5.2.13", "ClientAliveInterval",
          r"[1-9]|[1-9][0-9]|[1-2][0-9][0-9]|300",
          "Bound the idle timeout", "ClientAliveInterval"),
    _sshd("cis-5.2.13b", "ClientAliveCountMax", "[0-3]",
          "Bound client alive count", "ClientAliveCountMax"),
    _sshd("cis-5.2.14", "LoginGraceTime", r"[1-9]|[1-5][0-9]|60",
          "Bound the login grace time", "LoginGraceTime"),
    _sshd("cis-5.2.16", "Banner", r"/etc/issue(?:\.net)?",
          "Configure a warning banner", "Banner"),
    _sshd("cis-5.2.17", "UsePAM", "yes", "Enable PAM", "UsePAM"),
    _sshd("cis-5.2.18", "AllowTcpForwarding", "no",
          "Disable TCP forwarding", "AllowTcpForwarding"),
    # --- sysctl (CIS network hardening) -------------------------------------
    _sysctl("cis-7.1.1", "net.ipv4.ip_forward", "0", "Disable IP forwarding"),
    _sysctl("cis-7.1.2", "net.ipv4.conf.all.send_redirects", "0",
            "Disable sending ICMP redirects"),
    _sysctl("cis-7.2.1", "net.ipv4.conf.all.accept_source_route", "0",
            "Reject source-routed packets"),
    _sysctl("cis-7.2.2", "net.ipv4.conf.all.accept_redirects", "0",
            "Reject ICMP redirects"),
    _sysctl("cis-7.2.4", "net.ipv4.conf.all.log_martians", "1",
            "Log martian packets"),
    _sysctl("cis-7.2.5", "net.ipv4.icmp_echo_ignore_broadcasts", "1",
            "Ignore broadcast echo requests"),
    _sysctl("cis-7.2.7", "net.ipv4.conf.all.rp_filter", "1",
            "Enable reverse path filtering"),
    _sysctl("cis-7.2.8", "net.ipv4.tcp_syncookies", "1", "Enable SYN cookies"),
    _sysctl("cis-4.3", "kernel.randomize_va_space", "2", "Enforce full ASLR"),
    _sysctl("cis-4.1", "fs.suid_dumpable", "0", "Disable setuid core dumps"),
    # --- audit (CIS 8.1.x) ----------------------------------------------------
    _audit("cis-8.1.4", r"-S\s+adjtimex", "Audit time changes",
           "audit_time_change_adjtimex"),
    _audit("cis-8.1.5", r"-w\s+/etc/passwd\s", "Audit /etc/passwd",
           "audit_identity_passwd"),
    _audit("cis-8.1.5c", r"-w\s+/etc/shadow\s", "Audit /etc/shadow",
           "audit_identity_shadow"),
    _audit("cis-8.1.8", r"-w\s+/var/log/faillog\s", "Audit failed logins",
           "audit_login_faillog"),
    _audit("cis-8.1.10", r"-S\s+\S*chmod", "Audit permission changes",
           "audit_perm_mod_chmod"),
    _audit("cis-8.1.13", r"-S\s+mount", "Audit mounts", "audit_mounts"),
    _audit("cis-8.1.15", r"-w\s+/etc/sudoers\s", "Audit sudoers changes",
           "audit_sudoers"),
    _audit("cis-8.1.18", r"^\s*-e\s+2\s*$", "Make audit config immutable",
           "audit_immutable_config"),
    # --- fstab (CIS 2.x) ---------------------------------------------------------
    _fstab("cis-2.1", r"^\S+\s+/tmp\s+\S+", "/tmp on its own partition",
           "check_tmp_separate_partition", "/tmp"),
    _fstab("cis-2.2", r"^\S+\s+/tmp\s+\S+\s+\S*nodev", "/tmp mounted nodev",
           "tmp_nodev", "/tmp", "nodev"),
    _fstab("cis-2.3", r"^\S+\s+/tmp\s+\S+\s+\S*nosuid", "/tmp mounted nosuid",
           "tmp_nosuid", "/tmp", "nosuid"),
    _fstab("cis-2.5", r"^\S+\s+/var\s+\S+", "/var on its own partition",
           "var_separate_partition", "/var"),
    # --- modprobe (CIS 2.18+) ------------------------------------------------
    _modprobe("cis-2.18", "cramfs", "Disable cramfs", "cramfs"),
    _modprobe("cis-2.19", "freevxfs", "Disable freevxfs", "freevxfs"),
    _modprobe("cis-2.25", "usb-storage", "Disable usb-storage", "usb-storage"),
)

assert len(TABLE2_RULES) == 40, len(TABLE2_RULES)


def openscap_guide_rules() -> tuple[LineCheck, ...]:
    """A *different* 40 rules, standing in for OpenSCAP's Ubuntu security
    guide (the paper ran OpenSCAP "against random 40 rules from its Ubuntu
    security guide" because it lacked CIS content).  Same shape, different
    patterns: value-agnostic presence checks plus extra audit watches.
    """
    sshd_keys = [
        "Protocol", "LogLevel", "X11Forwarding", "MaxAuthTries", "IgnoreRhosts",
        "HostbasedAuthentication", "PermitRootLogin", "PermitEmptyPasswords",
        "PermitUserEnvironment", "ClientAliveInterval", "ClientAliveCountMax",
        "LoginGraceTime", "Banner", "UsePAM", "AllowTcpForwarding",
    ]
    sysctl_keys = [
        "net.ipv4.ip_forward", "net.ipv4.tcp_syncookies",
        "kernel.randomize_va_space", "fs.suid_dumpable",
        "net.ipv4.conf.all.rp_filter",
    ]
    rules: list[LineCheck] = []
    for index, key in enumerate(sshd_keys):
        rules.append(
            LineCheck(
                rule_id=f"ssg-sshd-{index}",
                title=f"(SSG) {key} is configured explicitly",
                files=("/etc/ssh/sshd_config",),
                pattern=rf"(?i)^\s*{key}\s+\S+",
                expect="present",
                description=f"{key} is configured explicitly",
            )
        )
    for index, key in enumerate(sysctl_keys):
        rules.append(
            LineCheck(
                rule_id=f"ssg-sysctl-{index}",
                title=f"(SSG) {key} is pinned",
                files=("/etc/sysctl.conf",),
                pattern=rf"^\s*{re.escape(key)}\s*=",
                expect="present",
                description=f"{key} is pinned",
            )
        )
    extra_watches = [
        "/etc/group", "/etc/gshadow", "/etc/hosts", "/etc/issue",
        "/var/log/lastlog", "/var/run/utmp", "/var/log/wtmp",
        "/etc/localtime", "/etc/apparmor", "/var/log/sudo.log",
    ]
    for index, path in enumerate(extra_watches):
        rules.append(
            LineCheck(
                rule_id=f"ssg-audit-{index}",
                title=f"(SSG) Audit watch on {path}",
                files=("/etc/audit/audit.rules",),
                pattern=rf"-w\s+{re.escape(path)}",
                expect="present",
                description=f"Audit watch on {path}",
            )
        )
    for index, module in enumerate(
        ["jffs2", "hfs", "hfsplus", "squashfs", "udf", "dccp", "sctp",
         "rds", "tipc", "freevxfs"]
    ):
        rules.append(
            LineCheck(
                rule_id=f"ssg-mod-{index}",
                title=f"(SSG) Disable {module}",
                files=("/etc/modprobe.d/hardening.conf",),
                pattern=rf"^\s*(?:install|blacklist)\s+{re.escape(module)}\b",
                expect="present",
                description=f"Disable {module}",
            )
        )
    assert len(rules) == 40, len(rules)
    return tuple(rules)
