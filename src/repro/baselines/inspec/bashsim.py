"""Mini shell emulation for the observed Chef-Compliance encoding.

Chef Compliance's CIS profiles shell out: ``bash("grep '^\\s*PermitRootLogin
\\s' /etc/ssh/sshd_config | head -1")``.  There is no shell in our frames,
so this module interprets the small command language those profiles use:
``grep`` (with ``-E``, ``-i``, ``-c``, ``-v``), ``head -N``, ``tail -N``,
``wc -l``, ``cut -dX -fN``, and ``echo``, connected by pipes, reading
files from the frame instead of the filesystem.
"""

from __future__ import annotations

import re
import shlex

from repro.errors import BaselineError
from repro.crawler.frame import ConfigFrame


def run_shell(command: str, frame: ConfigFrame) -> str:
    """Run a pipeline against ``frame``; returns stdout (no trailing \\n).

    Unknown commands raise :class:`BaselineError` -- silently returning
    nothing would make a compliance check pass vacuously.
    """
    stdout = ""
    for stage in _split_pipeline(command):
        argv = shlex.split(stage)
        if not argv:
            continue
        program, args = argv[0], argv[1:]
        if program == "grep":
            stdout = _grep(args, stdout, frame)
        elif program == "head":
            stdout = _head(args, stdout)
        elif program == "tail":
            stdout = _tail(args, stdout)
        elif program == "wc":
            stdout = _wc(args, stdout)
        elif program == "cut":
            stdout = _cut(args, stdout)
        elif program == "echo":
            stdout = " ".join(args)
        elif program == "cat":
            stdout = _cat(args, frame)
        else:
            raise BaselineError(f"bashsim: unsupported command {program!r}")
    return stdout


def _split_pipeline(command: str) -> list[str]:
    """Split on unquoted ``|``."""
    stages: list[str] = []
    current: list[str] = []
    quote: str | None = None
    for char in command:
        if quote:
            current.append(char)
            if char == quote:
                quote = None
        elif char in "'\"":
            quote = char
            current.append(char)
        elif char == "|":
            stages.append("".join(current))
            current = []
        else:
            current.append(char)
    stages.append("".join(current))
    return [stage.strip() for stage in stages if stage.strip()]


def _read_lines(path: str, frame: ConfigFrame) -> list[str]:
    if not frame.files.is_file(path):
        return []
    return frame.read_config(path).splitlines()


def _grep(args: list[str], stdin: str, frame: ConfigFrame) -> str:
    flags = 0
    invert = False
    count = False
    pattern: str | None = None
    files: list[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "-E" or arg == "-e":
            if arg == "-e":
                i += 1
                pattern = args[i]
        elif arg == "-i":
            flags |= re.IGNORECASE
        elif arg == "-v":
            invert = True
        elif arg == "-c":
            count = True
        elif arg.startswith("-"):
            raise BaselineError(f"bashsim: unsupported grep flag {arg!r}")
        elif pattern is None:
            pattern = arg
        else:
            files.append(arg)
        i += 1
    if pattern is None:
        raise BaselineError("bashsim: grep without a pattern")
    regex = re.compile(pattern, flags)
    lines: list[str] = []
    if files:
        for path in files:
            lines.extend(_read_lines(path, frame))
    else:
        lines = stdin.splitlines()
    matched = [line for line in lines if bool(regex.search(line)) != invert]
    if count:
        return str(len(matched))
    return "\n".join(matched)


def _head(args: list[str], stdin: str) -> str:
    n = 10
    for arg in args:
        if arg.startswith("-n"):
            n = int(arg[2:] or 10)
        elif arg.startswith("-"):
            n = int(arg[1:])
    return "\n".join(stdin.splitlines()[:n])


def _tail(args: list[str], stdin: str) -> str:
    n = 10
    for arg in args:
        if arg.startswith("-n"):
            n = int(arg[2:] or 10)
        elif arg.startswith("-"):
            n = int(arg[1:])
    lines = stdin.splitlines()
    return "\n".join(lines[-n:] if n else [])


def _wc(args: list[str], stdin: str) -> str:
    if args != ["-l"]:
        raise BaselineError(f"bashsim: unsupported wc args {args!r}")
    return str(len(stdin.splitlines()))


def _cut(args: list[str], stdin: str) -> str:
    delimiter = "\t"
    field = 1
    for arg in args:
        if arg.startswith("-d"):
            delimiter = arg[2:] or "\t"
        elif arg.startswith("-f"):
            field = int(arg[2:])
        else:
            raise BaselineError(f"bashsim: unsupported cut arg {arg!r}")
    out = []
    for line in stdin.splitlines():
        parts = line.split(delimiter)
        if len(parts) >= field:
            out.append(parts[field - 1])
    return "\n".join(out)


def _cat(args: list[str], frame: ConfigFrame) -> str:
    lines: list[str] = []
    for path in args:
        lines.extend(_read_lines(path, frame))
    return "\n".join(lines)
