"""Chef-Inspec-style baseline engine.

Two encodings of the same rules, matching paper Listing 6:

* the *expected* encoding -- resource DSL (``describe sshd_config ...
  its('PermitRootLogin') { should match /no/ }``), built on per-resource
  custom parsers (the paper notes Inspec "requires writing
  application-specific custom parsers from scratch"; ours live in
  :mod:`repro.baselines.inspec.resources` and deliberately do not reuse
  the lens substrate);
* the *observed* encoding -- Chef Compliance's CIS profiles, which are
  bash one-liners under the DSL surface (``describe bash("grep ...")``),
  executed here by the mini shell emulation in
  :mod:`repro.baselines.inspec.bashsim`.
"""

from repro.baselines.inspec.dsl import Control, Describe, Profile
from repro.baselines.inspec.engine import InspecEngine, controls_from_checks, render_control
from repro.baselines.inspec.resources import RESOURCES, resolve_resource
from repro.baselines.inspec.bashsim import run_shell

__all__ = [
    "Control",
    "Describe",
    "InspecEngine",
    "Profile",
    "RESOURCES",
    "controls_from_checks",
    "render_control",
    "resolve_resource",
    "run_shell",
]
