"""The control/describe/its/should DSL (Python rendering of Inspec Ruby).

A :class:`Profile` holds :class:`Control` objects; each control holds
:class:`Describe` blocks; each describe names a subject (a resource, or a
bash command) and matchers over it.  Evaluation resolves the subject
against a frame and applies the matchers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import BaselineError
from repro.crawler.frame import ConfigFrame
from repro.baselines.inspec.bashsim import run_shell
from repro.baselines.inspec.resources import resolve_resource

#: A matcher takes the resolved subject value and judges it.
Matcher = Callable[[object], bool]


def should_eq(expected: object) -> Matcher:
    return lambda value: value == expected


def should_match(pattern: str) -> Matcher:
    regex = re.compile(pattern)
    return lambda value: value is not None and bool(regex.search(str(value)))


def should_exist() -> Matcher:
    return lambda value: bool(value)


def should_include(member: str) -> Matcher:
    def check(value: object) -> bool:
        if value is None:
            return False
        if isinstance(value, (list, tuple, set)):
            return member in value
        return member in str(value)

    return check


def should_cmp_lte(limit: float) -> Matcher:
    def check(value: object) -> bool:
        try:
            return value is not None and float(str(value)) <= limit
        except ValueError:
            return False

    return check


@dataclass
class Describe:
    """One describe block: a subject plus matchers.

    ``subject_kind`` is ``"resource"`` (resolve ``subject`` as a resource
    name with ``subject_args``) or ``"bash"`` (run ``subject`` through the
    shell emulation).  ``its`` optionally projects a property;
    ``extract`` optionally post-processes a bash stdout with a regex
    capture (the observed Chef Compliance ``.to_s[](/.../, 1)`` idiom).
    """

    subject_kind: str
    subject: str
    subject_args: tuple = ()
    its: str | None = None
    extract: tuple[str, int] | None = None
    matchers: list[tuple[str, Matcher]] = field(default_factory=list)

    def should(self, description: str, matcher: Matcher) -> "Describe":
        self.matchers.append((description, matcher))
        return self

    def resolve(self, frame: ConfigFrame) -> object:
        if self.subject_kind == "bash":
            value: object = run_shell(self.subject, frame)
            if self.extract is not None:
                pattern, group = self.extract
                match = re.search(pattern, str(value))
                value = match.group(group) if match else None
            return value
        if self.subject_kind == "resource":
            resource = resolve_resource(self.subject, frame, *self.subject_args)
            if self.its is not None:
                return resource.its(self.its)
            return resource
        raise BaselineError(f"unknown describe subject kind {self.subject_kind!r}")

    def evaluate(self, frame: ConfigFrame) -> bool:
        value = self.resolve(frame)
        return all(matcher(value) for _description, matcher in self.matchers)


@dataclass
class Control:
    """One compliance control."""

    control_id: str
    title: str = ""
    desc: str = ""
    impact: float = 1.0
    describes: list[Describe] = field(default_factory=list)

    def describe(self, block: Describe) -> "Control":
        self.describes.append(block)
        return self

    def evaluate(self, frame: ConfigFrame) -> bool:
        if not self.describes:
            raise BaselineError(f"control {self.control_id!r} has no describes")
        return all(block.evaluate(frame) for block in self.describes)


@dataclass
class Profile:
    """A set of controls (an Inspec profile)."""

    name: str
    controls: list[Control] = field(default_factory=list)

    def add(self, control: Control) -> "Profile":
        self.controls.append(control)
        return self
