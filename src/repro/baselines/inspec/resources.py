"""Inspec-style resources with their own custom parsers.

The paper's differentiation: "While Inspec requires writing
application-specific custom parsers from scratch, leveraging opensource
Augeas parser makes ConfigValidator easier to extend".  These resources
reproduce that architecture faithfully -- each carries its *own* ad-hoc
parser, independent of the lens substrate the CVL engine uses.
"""

from __future__ import annotations

import re

from repro.errors import BaselineError
from repro.crawler.frame import ConfigFrame


class SshdConfigResource:
    """``describe sshd_config`` -- first-match key lookup."""

    name = "sshd_config"

    def __init__(self, frame: ConfigFrame, path: str = "/etc/ssh/sshd_config"):
        self._settings: dict[str, str] = {}
        if frame.files.is_file(path):
            for line in frame.read_config(path).splitlines():
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                key, _sep, value = stripped.partition(" ")
                key = key.lower()
                if key and key not in self._settings:  # first match wins
                    self._settings[key] = value.strip()

    def its(self, prop: str) -> str | None:
        return self._settings.get(prop.lower())


class SysctlResource:
    """``describe kernel_parameter('key')``."""

    name = "kernel_parameter"

    def __init__(self, frame: ConfigFrame, path: str = "/etc/sysctl.conf"):
        self._params: dict[str, str] = {}
        if frame.files.is_file(path):
            for line in frame.read_config(path).splitlines():
                stripped = line.split("#", 1)[0].strip()
                if "=" not in stripped:
                    continue
                key, _sep, value = stripped.partition("=")
                self._params[key.strip()] = value.strip()

    def its(self, prop: str) -> str | None:
        return self._params.get(prop)


class AuditRulesResource:
    """``describe auditd_rules`` -- raw rule lines."""

    name = "auditd_rules"

    def __init__(self, frame: ConfigFrame, path: str = "/etc/audit/audit.rules"):
        self.lines: list[str] = []
        if frame.files.is_file(path):
            self.lines = [
                line.strip()
                for line in frame.read_config(path).splitlines()
                if line.strip() and not line.strip().startswith("#")
            ]

    def its(self, prop: str) -> list[str]:
        if prop != "lines":
            raise BaselineError(f"auditd_rules has no property {prop!r}")
        return self.lines

    def contains(self, pattern: str) -> bool:
        regex = re.compile(pattern)
        return any(regex.search(line) for line in self.lines)


class EtcFstabResource:
    """``describe etc_fstab`` -- positional rows."""

    name = "etc_fstab"

    def __init__(self, frame: ConfigFrame, path: str = "/etc/fstab"):
        self.rows: list[dict[str, str]] = []
        if frame.files.is_file(path):
            for line in frame.read_config(path).splitlines():
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                fields = stripped.split()
                if len(fields) < 4:
                    continue
                self.rows.append(
                    {
                        "device": fields[0],
                        "mount_point": fields[1],
                        "type": fields[2],
                        "options": fields[3],
                    }
                )

    def mount_options(self, mount_point: str) -> str | None:
        for row in self.rows:
            if row["mount_point"] == mount_point:
                return row["options"]
        return None

    def its(self, prop: str) -> list[str]:
        return [row.get(prop, "") for row in self.rows]


class KernelModuleResource:
    """``describe kernel_module('cramfs')`` -- modprobe.d state."""

    name = "kernel_module"

    _PATHS = ("/etc/modprobe.d/hardening.conf", "/etc/modprobe.d/CIS.conf")

    def __init__(self, frame: ConfigFrame):
        self._installs: dict[str, str] = {}
        self._blacklist: set[str] = set()
        for path in self._PATHS:
            if not frame.files.is_file(path):
                continue
            for line in frame.read_config(path).splitlines():
                stripped = line.split("#", 1)[0].strip()
                parts = stripped.split()
                if len(parts) >= 3 and parts[0] == "install":
                    self._installs[parts[1]] = " ".join(parts[2:])
                elif len(parts) == 2 and parts[0] == "blacklist":
                    self._blacklist.add(parts[1])

    def disabled(self, module: str) -> bool:
        return self._installs.get(module) in ("/bin/true", "/bin/false")

    def blacklisted(self, module: str) -> bool:
        return module in self._blacklist


class FileResource:
    """``describe file('/etc/...')``."""

    name = "file"

    def __init__(self, frame: ConfigFrame, path: str):
        self._frame = frame
        self._path = path

    @property
    def exists(self) -> bool:
        return self._frame.exists(self._path)

    @property
    def mode(self) -> str | None:
        if not self.exists:
            return None
        return self._frame.stat(self._path).octal_mode

    @property
    def owner(self) -> str | None:
        if not self.exists:
            return None
        return self._frame.stat(self._path).owner

    def its(self, prop: str):
        return getattr(self, prop)


RESOURCES = {
    "sshd_config": SshdConfigResource,
    "kernel_parameter": SysctlResource,
    "auditd_rules": AuditRulesResource,
    "etc_fstab": EtcFstabResource,
    "kernel_module": KernelModuleResource,
    "file": FileResource,
}


def resolve_resource(name: str, frame: ConfigFrame, *args):
    """Instantiate a resource by name against a frame."""
    try:
        factory = RESOURCES[name]
    except KeyError:
        raise BaselineError(f"no inspec resource named {name!r}") from None
    return factory(frame, *args)
