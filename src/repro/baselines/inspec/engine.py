"""Build and run Inspec profiles from the common rule IR.

``style="dsl"`` produces the *expected* resource-DSL encoding;
``style="bash"`` produces the *observed* Chef Compliance encoding
(grep pipelines).  Profile construction happens inside ``run`` so a
timed run includes spec interpretation, as a CLI ``inspec exec`` would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BaselineError
from repro.crawler.frame import ConfigFrame
from repro.baselines.common_rules import LineCheck
from repro.baselines.inspec.dsl import (
    Control,
    Describe,
    Profile,
    should_match,
)


@dataclass
class InspecResult:
    control_id: str
    title: str
    passed: bool


def _dsl_describe(check: LineCheck) -> Describe:
    """The expected, resource-backed encoding of one check."""
    entity = check.cvl_entity
    if entity == "sshd":
        return Describe(
            subject_kind="resource",
            subject="sshd_config",
            its=check.key,
            matchers=[(f"should match {check.value_pattern}",
                       should_match(rf"^(?:{check.value_pattern})$"))],
        )
    if entity == "sysctl":
        return Describe(
            subject_kind="resource",
            subject="kernel_parameter",
            its=check.key,
            matchers=[(f"should match {check.value_pattern}",
                       should_match(rf"^(?:{check.value_pattern})$"))],
        )
    if entity == "audit":
        return Describe(
            subject_kind="resource",
            subject="auditd_rules",
            its="lines",
            matchers=[
                (
                    f"should include a line matching {check.pattern}",
                    _lines_match(check.pattern),
                )
            ],
        )
    if entity == "fstab":
        return Describe(
            subject_kind="resource",
            subject="etc_fstab",
            its="mount_point" if not check.value_pattern else None,
            matchers=[(f"covers {check.key}", _fstab_matcher(check))],
        )
    if entity == "modprobe":
        return Describe(
            subject_kind="resource",
            subject="kernel_module",
            matchers=[
                (f"{check.key} disabled", lambda module: module.disabled(check.key))
            ],
        )
    raise BaselineError(f"no DSL encoding for entity {entity!r}")


def _lines_match(pattern: str):
    from repro.baselines.common_rules import _compile

    regex = _compile(pattern)

    def check(lines) -> bool:
        return any(regex.search(line) for line in lines or [])

    return check


def _fstab_matcher(check: LineCheck):
    def matcher(value) -> bool:
        if check.value_pattern:  # resource itself (its=None): option check
            options = value.mount_options(check.key)
            return options is not None and check.value_pattern in options
        return check.key in (value or [])  # mount-point list

    return matcher


def _bash_describe(check: LineCheck) -> Describe:
    """The observed encoding: a grep pipeline, judged on its stdout."""
    file_args = " ".join(check.files)
    command = f"grep -E -e '{check.pattern}' {file_args} | head -1"
    if check.expect == "present":
        matcher = ("stdout should be non-empty", should_match(r"\S"))
    else:
        matcher = ("stdout should be empty", lambda value: not str(value).strip())
    return Describe(
        subject_kind="bash", subject=command, matchers=[matcher]
    )


def controls_from_checks(
    checks: list[LineCheck] | tuple[LineCheck, ...], style: str = "dsl"
) -> Profile:
    """Encode the common rules as an Inspec profile."""
    if style not in ("dsl", "bash"):
        raise BaselineError(f"unknown inspec style {style!r}")
    profile = Profile(name=f"cis-ubuntu-{style}")
    for check in checks:
        control = Control(
            control_id=check.rule_id,
            title=check.title,
            desc=check.description,
            impact=1.0 if check.severity in ("high", "critical") else 0.5,
        )
        if style == "dsl":
            control.describe(_dsl_describe(check))
        else:
            control.describe(_bash_describe(check))
        profile.add(control)
    return profile


class InspecEngine:
    """Run the common rules under the Inspec model."""

    def __init__(self, style: str = "dsl"):
        self.style = style
        self.name = f"inspec-{style}"

    def run(
        self, checks: list[LineCheck] | tuple[LineCheck, ...], frame: ConfigFrame
    ) -> list[InspecResult]:
        profile = controls_from_checks(checks, self.style)
        return [
            InspecResult(
                control_id=control.control_id,
                title=control.title,
                passed=control.evaluate(frame),
            )
            for control in profile.controls
        ]


def render_control(check: LineCheck, style: str = "dsl") -> str:
    """Ruby source for one control (the Listing 6 encoding accounting)."""
    if style == "bash":
        file_args = " ".join(check.files)
        return (
            f'control "{check.rule_id}_{check.title.replace(" ", "_")}" do\n'
            f'  title "{check.title}"\n'
            f'  desc "{check.description or check.title}."\n'
            f"  impact 1.0\n"
            f"  describe bash(\"grep -E -e '{check.pattern}' {file_args}"
            f' | head -1").stdout.to_s do\n'
            f'    it {{ should match /\\S/ }}\n'
            f"  end\n"
            f"end"
        )
    body = _dsl_body(check)
    return (
        f"control '{check.rule_id}' do\n"
        f"  impact 1.0\n"
        f"  title '{check.title}'\n"
        f"{body}\n"
        f"end"
    )


def _dsl_body(check: LineCheck) -> str:
    entity = check.cvl_entity
    if entity in ("sshd", "sysctl"):
        resource = "sshd_config" if entity == "sshd" else "kernel_parameter"
        return (
            f"  describe {resource} do\n"
            f"    its('{check.key}') {{ should match /{check.value_pattern}/ }}\n"
            f"  end"
        )
    if entity == "audit":
        return (
            f"  describe auditd_rules.lines do\n"
            f"    it {{ should include(/{check.pattern}/) }}\n"
            f"  end"
        )
    if entity == "fstab":
        return (
            f"  describe etc_fstab.mount_options('{check.key}') do\n"
            f"    it {{ should include '{check.value_pattern or check.key}' }}\n"
            f"  end"
        )
    return (
        f"  describe kernel_module('{check.key}') do\n"
        f"    it {{ should be_disabled }}\n"
        f"  end"
    )
