"""Baseline validation engines for the paper's comparison (Table 2).

The paper times the *same 40 CIS Ubuntu system-service rules* under four
engines.  We re-implement each engine's specification format and
evaluation machinery in-process:

* :mod:`repro.baselines.xccdf` -- an XCCDF/OVAL engine (XML benchmark
  documents + OVAL ``textfilecontent54`` tests), standing in for
  OpenSCAP; :class:`~repro.baselines.xccdf.engine.CisCatEngine` adds the
  commercial-tool startup costs (JVM boot + license verification work)
  the paper blames for CIS-CAT's outlier time.
* :mod:`repro.baselines.inspec` -- a Chef-Inspec-style engine with both
  the *expected* resource DSL encoding and the *observed* bash-grep
  encoding (paper Listing 6 shows Chef Compliance's CIS rules are bash
  one-liners under the DSL surface).
* :mod:`repro.baselines.scripts` -- the ad-hoc shell-script approach:
  bare greps with no spec layer at all.

:mod:`repro.baselines.common_rules` holds the engine-neutral IR for the
40 shared rules, each linked to its CVL counterpart in the shipped packs;
:mod:`repro.baselines.loc` does the Listing 6 encoding-size accounting.
"""

from repro.baselines.common_rules import (
    LineCheck,
    TABLE2_RULES,
    openscap_guide_rules,
)
from repro.baselines.loc import encoding_report

__all__ = [
    "LineCheck",
    "TABLE2_RULES",
    "encoding_report",
    "openscap_guide_rules",
]
