"""Encoding-effort accounting (paper Listing 6).

For a common rule, count the non-blank lines of each engine's *native*
encoding: XCCDF/OVAL XML, CVL YAML, Inspec Ruby (expected DSL and
observed bash styles), and the raw shell script.  The paper reports 45
lines for XCCDF/OVAL, 10 for CVL, and 6-7 for Inspec on the
"Disable SSH Root Login" rule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import BaselineError
from repro.baselines.common_rules import LineCheck
from repro.baselines.inspec.engine import render_control
from repro.baselines.scripts import render_script
from repro.baselines.xccdf.generator import xccdf_rule_line_count
from repro.rules import load_builtin_validator


def _render_scalar(value: object) -> str:
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_render_scalar(item) for item in value) + "]"
    return str(value)


def render_cvl(raw: dict) -> str:
    """One keyword per line, flow-style lists -- the paper's listing shape."""
    return "\n".join(f"{key}: {_render_scalar(value)}" for key, value in raw.items())


@dataclass
class EncodingSizes:
    """Non-blank encoding lines for one rule under each format."""

    rule_id: str
    title: str
    xccdf_oval: int
    cvl: int
    inspec_dsl: int
    inspec_bash: int
    script: int


def _cvl_raw_for(check: LineCheck, validator) -> dict:
    for manifest in validator.manifests():
        if manifest.entity != check.cvl_entity:
            continue
        rule = validator.ruleset_for(manifest).by_name(check.cvl_name)
        if rule is not None:
            return rule.raw
    raise BaselineError(
        f"no shipped CVL rule {check.cvl_entity}/{check.cvl_name} "
        f"for {check.rule_id}"
    )


def encoding_report(
    checks: list[LineCheck] | tuple[LineCheck, ...],
) -> list[EncodingSizes]:
    """Per-rule encoding sizes across all formats."""
    validator = load_builtin_validator()
    report: list[EncodingSizes] = []
    for check in checks:
        raw = _cvl_raw_for(check, validator)
        report.append(
            EncodingSizes(
                rule_id=check.rule_id,
                title=check.title,
                xccdf_oval=xccdf_rule_line_count(check),
                cvl=len(
                    [line for line in render_cvl(raw).splitlines() if line.strip()]
                ),
                inspec_dsl=len(
                    [
                        line
                        for line in render_control(check, "dsl").splitlines()
                        if line.strip()
                    ]
                ),
                inspec_bash=len(
                    [
                        line
                        for line in render_control(check, "bash").splitlines()
                        if line.strip()
                    ]
                ),
                script=len(render_script(check).splitlines()),
            )
        )
    return report


def mean_sizes(report: list[EncodingSizes]) -> dict[str, float]:
    """Average lines per rule per format."""
    count = len(report) or 1
    return {
        "xccdf_oval": sum(entry.xccdf_oval for entry in report) / count,
        "cvl": sum(entry.cvl for entry in report) / count,
        "inspec_dsl": sum(entry.inspec_dsl for entry in report) / count,
        "inspec_bash": sum(entry.inspec_bash for entry in report) / count,
        "script": sum(entry.script for entry in report) / count,
    }
