"""ConfigValidator as a Table 2 contestant.

Builds a validator scoped to the same 40 CIS rules the baselines run:
the shipped Ubuntu system-service packs with every other rule disabled.
A fresh validator is constructed per ``run`` so that, like the baseline
engines (and like CLI invocations of the real tools), a timed run
includes specification interpretation -- YAML loading -- not just
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crawler.frame import ConfigFrame
from repro.baselines.common_rules import LineCheck
from repro.engine.engine import ConfigValidator
from repro.engine.results import RuleResult
from repro.rules import SYSTEM_SERVICE_TARGETS, load_builtin_validator


def table2_validator(
    checks: list[LineCheck] | tuple[LineCheck, ...],
) -> ConfigValidator:
    """A validator whose enabled rules are exactly the common set."""
    validator = load_builtin_validator(only=SYSTEM_SERVICE_TARGETS)
    wanted = {(check.cvl_entity, check.cvl_name) for check in checks}
    for manifest in validator.manifests():
        if not manifest.enabled:
            continue
        for rule in validator.ruleset_for(manifest).rules:
            rule.enabled = (manifest.entity, rule.name) in wanted
    return validator


@dataclass
class CvlRunResult:
    rule_id: str
    title: str
    passed: bool


class ConfigValidatorEngine:
    """Adapter giving the CVL engine the same run() shape as baselines."""

    name = "configvalidator"

    def run(
        self, checks: list[LineCheck] | tuple[LineCheck, ...], frame: ConfigFrame
    ) -> list[CvlRunResult]:
        validator = table2_validator(checks)
        report = validator.validate_frame(frame)
        by_key: dict[tuple[str, str], RuleResult] = {
            (result.entity, result.rule.name): result for result in report
        }
        results: list[CvlRunResult] = []
        for check in checks:
            result = by_key.get((check.cvl_entity, check.cvl_name))
            results.append(
                CvlRunResult(
                    rule_id=check.rule_id,
                    title=check.title,
                    passed=result.passed if result is not None else False,
                )
            )
        return results
