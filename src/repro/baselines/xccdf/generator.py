"""Render LineCheck rules as XCCDF + OVAL XML.

The output mirrors the verbose structure of paper Listing 6: a
``<select>`` entry, a ``<Rule>`` with title/description/reference/
rationale/ident/check, an OVAL ``<definition>`` with metadata and
criteria, a ``textfilecontent54_test`` and its ``_object``.  That is the
encoding whose size (~45 lines per rule) the paper contrasts with CVL's
10 and Inspec's 6-7.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.baselines.common_rules import LineCheck

_NIST_REF = (
    "http://nvlpubs.nist.gov/nistpubs/SpecialPublications/NIST.SP.800-53r4.pdf"
)


def _ids(check: LineCheck) -> dict[str, str]:
    slug = check.rule_id.replace(".", "_").replace("-", "_")
    return {
        "rule": f"xccdf_org.ssgproject.content_rule_{slug}",
        "definition": f"oval:ssg-{slug}:def:1",
        "test": f"oval:ssg-test_{slug}:tst:1",
        "object": f"oval:ssg-obj_{slug}:obj:1",
    }


def generate_xccdf(checks: list[LineCheck], benchmark_id: str = "ssg-ubuntu1604-xccdf") -> str:
    """The XCCDF half: profile selections plus one <Rule> per check."""
    lines: list[str] = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<Benchmark id="{benchmark_id}" xml:lang="en-US">',
        '  <status date="2017-06-01">accepted</status>',
        f'  <title xml:lang="en-US">{escape(benchmark_id)}</title>',
        '  <version>1.0</version>',
        '  <Profile id="xccdf_profile_cis">',
        '    <title xml:lang="en-US">CIS Ubuntu profile</title>',
    ]
    for check in checks:
        ids = _ids(check)
        lines.append(
            f'    <select idref="{ids["rule"]}" selected="true"/>'
        )
    lines.append("  </Profile>")
    for check in checks:
        ids = _ids(check)
        lines.extend(
            [
                f'  <Rule id="{ids["rule"]}" selected="false" severity="{check.severity}">',
                f'    <title xml:lang="en-US">{escape(check.title)}</title>',
                f'    <description xml:lang="en-US">{escape(check.description or check.title)}.'
                "  This rule was derived from the corresponding CIS benchmark"
                " recommendation and is evaluated mechanically by the OVAL"
                " check referenced below.</description>",
                f'    <reference href="{_NIST_REF}">AC-3</reference>',
                f'    <reference href="https://benchmarks.cisecurity.org/">{escape(check.rule_id)}</reference>',
                '    <rationale xml:lang="en-US">Failure to constrain this'
                " configuration item weakens the security posture of the"
                " system as described in the referenced benchmark.</rationale>",
                '    <ident system="https://nvd.nist.gov/cce/index.cfm">CCE-</ident>',
                '    <check system="http://oval.mitre.org/XMLSchema/oval-definitions-5">',
                f'      <check-content-ref name="{ids["definition"]}" href="ssg-ubuntu1604-oval.xml"/>',
                "    </check>",
                "  </Rule>",
            ]
        )
    lines.append("</Benchmark>")
    return "\n".join(lines) + "\n"


def generate_oval(checks: list[LineCheck]) -> str:
    """The OVAL half: definitions, textfilecontent54 tests, and objects."""
    lines: list[str] = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<oval_definitions xmlns:ind='
        '"http://oval.mitre.org/XMLSchema/oval-definitions-5#independent">',
        "  <generator>",
        "    <product_name>repro-configvalidator</product_name>",
        "    <schema_version>5.11</schema_version>",
        "  </generator>",
        "  <definitions>",
    ]
    for check in checks:
        ids = _ids(check)
        negate = "true" if check.expect == "absent" else "false"
        lines.extend(
            [
                f'    <definition class="compliance" id="{ids["definition"]}" version="1">',
                "      <metadata>",
                f"        <title>{escape(check.title)}</title>",
                '        <affected family="unix"><platform>Ubuntu</platform></affected>',
                f"        <description>{escape(check.description or check.title)}</description>",
                f'        <reference source="CIS" ref_id="{escape(check.rule_id)}"/>',
                "      </metadata>",
                f'      <criteria comment="{escape(check.title)}" negate="{negate}">',
                f'        <criterion test_ref="{ids["test"]}"/>',
                "      </criteria>",
                "    </definition>",
            ]
        )
    lines.append("  </definitions>")
    lines.append("  <tests>")
    for check in checks:
        ids = _ids(check)
        lines.extend(
            [
                f'    <ind:textfilecontent54_test check="all" '
                f'check_existence="at_least_one_exists" '
                f'comment="{escape(check.title)}" id="{ids["test"]}" version="1">',
                f'      <ind:object object_ref="{ids["object"]}"/>',
                "    </ind:textfilecontent54_test>",
            ]
        )
    lines.append("  </tests>")
    lines.append("  <objects>")
    for check in checks:
        ids = _ids(check)
        # OVAL objects carry one filepath; extra candidates become siblings.
        for index, filepath in enumerate(check.files):
            suffix = "" if index == 0 else f"-alt{index}"
            lines.extend(
                [
                    f'    <ind:textfilecontent54_object id="{ids["object"]}{suffix}" version="2">',
                    f"      <ind:filepath>{escape(filepath)}</ind:filepath>",
                    f'      <ind:pattern operation="pattern match">{escape(check.pattern)}</ind:pattern>',
                    '      <ind:instance datatype="int">1</ind:instance>',
                    "    </ind:textfilecontent54_object>",
                ]
            )
    lines.append("  </objects>")
    lines.append("</oval_definitions>")
    return "\n".join(lines) + "\n"


def xccdf_rule_line_count(check: LineCheck) -> int:
    """Non-blank encoding lines attributable to one rule across both
    documents (the Listing 6 accounting)."""
    xccdf_total = len(generate_xccdf([check]).splitlines())
    xccdf_fixed = len(generate_xccdf([]).splitlines())
    oval_total = len(generate_oval([check]).splitlines())
    oval_fixed = len(generate_oval([]).splitlines())
    return (xccdf_total - xccdf_fixed) + (oval_total - oval_fixed)
