"""Parse XCCDF + OVAL XML documents into the benchmark model."""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import XCCDFError
from repro.baselines.xccdf.model import (
    OvalDefinition,
    OvalObject,
    OvalTest,
    XccdfBenchmark,
    XccdfRule,
)


def _iter_local(root: ET.Element, localname: str):
    """Iterate elements by local (namespace-stripped) tag name --
    ``Element.iter`` has no wildcard-namespace support."""
    suffix = "}" + localname
    for element in root.iter():
        if element.tag == localname or element.tag.endswith(suffix):
            yield element


def _parse_xml(text: str, what: str) -> ET.Element:
    try:
        return ET.fromstring(text)
    except ET.ParseError as exc:
        raise XCCDFError(f"invalid {what} XML: {exc}") from exc


def _findtext_local(element: ET.Element, localname: str) -> str:
    for child in _iter_local(element, localname):
        return (child.text or "").strip()
    return ""


def parse_benchmark(xccdf_text: str, oval_text: str) -> XccdfBenchmark:
    """Build an evaluatable benchmark from the two documents.

    Profile ``<select>`` entries switch the referenced rules on; rules
    keep their own ``selected`` default otherwise (XCCDF semantics).
    """
    root = _parse_xml(xccdf_text, "XCCDF")
    benchmark = XccdfBenchmark(
        benchmark_id=root.get("id", "benchmark"),
        title=(root.findtext("title") or "").strip(),
    )
    selected_ids = {
        select.get("idref")
        for profile in root.iter("Profile")
        for select in profile.iter("select")
        if select.get("selected", "false").lower() == "true"
    }
    for rule_element in root.iter("Rule"):
        check_ref = ""
        for check in rule_element.iter("check-content-ref"):
            check_ref = check.get("name", "")
        rule = XccdfRule(
            rule_id=rule_element.get("id", ""),
            title=(rule_element.findtext("title") or "").strip(),
            description=(rule_element.findtext("description") or "").strip(),
            rationale=(rule_element.findtext("rationale") or "").strip(),
            severity=rule_element.get("severity", "medium"),
            references=[
                (ref.text or "").strip() for ref in rule_element.iter("reference")
            ],
            ident=(rule_element.findtext("ident") or "").strip(),
            check_ref=check_ref,
            selected=(
                rule_element.get("id") in selected_ids
                or rule_element.get("selected", "false").lower() == "true"
            ),
        )
        if not rule.rule_id:
            raise XCCDFError("a <Rule> is missing its id attribute")
        benchmark.rules.append(rule)

    oval_root = _parse_xml(oval_text, "OVAL")
    for definition in _iter_local(oval_root, "definition"):
        criteria = definition.find("criteria")
        if criteria is None:
            raise XCCDFError(
                f"definition {definition.get('id')!r} has no <criteria>"
            )
        model = OvalDefinition(
            definition_id=definition.get("id", ""),
            title=(definition.findtext("metadata/title") or "").strip(),
            negate=criteria.get("negate", "false").lower() == "true",
            test_refs=[
                criterion.get("test_ref", "")
                for criterion in criteria.iter("criterion")
            ],
        )
        benchmark.definitions[model.definition_id] = model
    for test in _iter_local(oval_root, "textfilecontent54_test"):
        object_ref = ""
        for obj in _iter_local(test, "object"):
            object_ref = obj.get("object_ref", "")
        model = OvalTest(
            test_id=test.get("id", ""),
            object_ref=object_ref,
            check=test.get("check", "all"),
            check_existence=test.get("check_existence", "at_least_one_exists"),
            comment=test.get("comment", ""),
        )
        benchmark.tests[model.test_id] = model
    for obj in _iter_local(oval_root, "textfilecontent54_object"):
        model = OvalObject(
            object_id=obj.get("id", ""),
            filepath=_findtext_local(obj, "filepath"),
            pattern=_findtext_local(obj, "pattern"),
            instance=int(_findtext_local(obj, "instance") or "1"),
        )
        benchmark.objects[model.object_id] = model
    return benchmark
