"""XCCDF/OVAL baseline: the specification format OpenSCAP and CIS-CAT use.

``generator`` renders :class:`~repro.baselines.common_rules.LineCheck`
rules into full XCCDF + OVAL XML documents (the verbose shape of paper
Listing 6 -- ~45 lines per rule); ``parser`` reads them back into a
benchmark model; ``engine`` evaluates the benchmark's OVAL
``textfilecontent54`` tests against a frame.  :class:`CisCatEngine`
additionally models the commercial tool's startup costs.
"""

from repro.baselines.xccdf.generator import generate_xccdf, generate_oval
from repro.baselines.xccdf.parser import parse_benchmark
from repro.baselines.xccdf.model import (
    OvalObject,
    OvalTest,
    XccdfBenchmark,
    XccdfRule,
)
from repro.baselines.xccdf.engine import CisCatEngine, OpenScapEngine, XccdfEngine

__all__ = [
    "CisCatEngine",
    "OpenScapEngine",
    "OvalObject",
    "OvalTest",
    "XccdfBenchmark",
    "XccdfEngine",
    "XccdfRule",
    "generate_oval",
    "generate_xccdf",
    "parse_benchmark",
]
