"""Evaluate XCCDF/OVAL benchmarks against configuration frames.

:class:`XccdfEngine` is the shared machinery: walk the selected rules,
resolve each rule's OVAL definition, run its ``textfilecontent54`` tests
(regex over the target file's lines), apply criteria negation, and
produce pass/fail results.

:class:`OpenScapEngine` is the plain engine (the paper's fastest tool --
a thin C evaluator; here, a thin Python evaluator with no extra layers).

:class:`CisCatEngine` models the commercial tool's startup behaviour the
paper calls out ("might be due to JVM overhead, or related to some
license checking during initialization"): a deliberate
initialization phase -- license-file digesting plus a simulated
class-loading sweep -- runs before any rule is evaluated.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

from repro.errors import XCCDFError
from repro.crawler.frame import ConfigFrame
from repro.baselines.common_rules import _compile
from repro.baselines.xccdf.model import XccdfBenchmark, XccdfRule
from repro.baselines.xccdf.parser import parse_benchmark


@dataclass
class XccdfResult:
    rule_id: str
    title: str
    passed: bool
    severity: str = "medium"


class XccdfEngine:
    """Spec-driven evaluation: documents are parsed on every run, exactly
    as a CLI invocation of an XCCDF scanner re-reads its data stream."""

    name = "xccdf"

    def run(self, xccdf_text: str, oval_text: str, frame: ConfigFrame) -> list[XccdfResult]:
        self._initialize()
        benchmark = parse_benchmark(xccdf_text, oval_text)
        compiled = self._compile_objects(benchmark)
        return [
            self._evaluate_rule(rule, benchmark, frame, compiled)
            for rule in benchmark.selected_rules()
        ]

    @staticmethod
    def _compile_objects(benchmark: XccdfBenchmark) -> dict[str, re.Pattern]:
        """Precompile every ``textfilecontent54`` object pattern once.

        OVAL objects are shared across tests (and ``-altN`` siblings are
        re-scanned per test), so compiling up front keeps the per-line
        matching loop free of regex-cache lookups.
        """
        return {
            object_id: _compile(oval_object.pattern)
            for object_id, oval_object in benchmark.objects.items()
        }

    def _initialize(self) -> None:
        """Engine-specific startup work (none for the base engine)."""

    def _evaluate_rule(
        self, rule: XccdfRule, benchmark: XccdfBenchmark, frame: ConfigFrame,
        compiled: dict[str, re.Pattern],
    ) -> XccdfResult:
        definition = benchmark.definitions.get(rule.check_ref)
        if definition is None:
            raise XCCDFError(
                f"rule {rule.rule_id!r} references missing OVAL definition "
                f"{rule.check_ref!r}"
            )
        outcome = all(
            self._evaluate_test(test_ref, benchmark, frame, compiled)
            for test_ref in definition.test_refs
        )
        if definition.negate:
            outcome = not outcome
        return XccdfResult(
            rule_id=rule.rule_id,
            title=rule.title,
            passed=outcome,
            severity=rule.severity,
        )

    def _evaluate_test(
        self, test_ref: str, benchmark: XccdfBenchmark, frame: ConfigFrame,
        compiled: dict[str, re.Pattern],
    ) -> bool:
        test = benchmark.tests.get(test_ref)
        if test is None:
            raise XCCDFError(f"missing OVAL test {test_ref!r}")
        # Gather the object and any -altN siblings (multi-file candidates).
        object_ids = [test.object_ref] + [
            object_id
            for object_id in benchmark.objects
            if object_id.startswith(test.object_ref + "-alt")
        ]
        matches = 0
        for object_id in object_ids:
            oval_object = benchmark.objects.get(object_id)
            if oval_object is None:
                raise XCCDFError(f"missing OVAL object {object_id!r}")
            regex = compiled[object_id]
            if not frame.files.is_file(oval_object.filepath):
                continue
            for line in frame.read_config(oval_object.filepath).splitlines():
                if regex.search(line):
                    matches += 1
        if test.check_existence == "none_exist":
            return matches == 0
        return matches >= 1  # at_least_one_exists


class OpenScapEngine(XccdfEngine):
    """Plain XCCDF/OVAL evaluation (OpenSCAP stand-in)."""

    name = "openscap"


class CisCatEngine(XccdfEngine):
    """XCCDF/OVAL evaluation plus modeled commercial startup costs.

    The startup phase is honest busy-work, not a sleep: it digests a
    synthetic license blob through SHA-256 the way a license validator
    would, and sweeps a simulated class-path manifest, sized so that
    initialization dominates the 40-rule scan by roughly the factor the
    paper reports for CIS-CAT (14.5s vs ~1-2s for the declarative
    engines).
    """

    name = "ciscat"

    #: Number of license-digest rounds; sized so initialization dominates a
    #: 40-rule scan by roughly the paper's CIS-CAT/ConfigValidator factor.
    def __init__(self, startup_rounds: int = 1_100_000):
        self._startup_rounds = startup_rounds

    def _initialize(self) -> None:
        digest = b"ciscat-license-0000-0000"
        for round_index in range(self._startup_rounds):
            digest = hashlib.sha256(
                digest + round_index.to_bytes(4, "little")
            ).digest()
        # Simulated class-path manifest sweep (string churn, JVM-style).
        manifest = [
            f"org/cisecurity/assessor/module{index}.class"
            for index in range(2_000)
        ]
        table = {}
        for entry in manifest:
            table[entry] = entry.rsplit("/", 1)[-1].upper()
        self._startup_digest = digest.hex()
        self._startup_table_size = len(table)
