"""Object model for the XCCDF benchmark + OVAL definition pair."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OvalObject:
    """An ``ind:textfilecontent54_object``: where to look."""

    object_id: str
    filepath: str
    pattern: str
    instance: int = 1


@dataclass
class OvalTest:
    """An ``ind:textfilecontent54_test``: how to judge the object.

    ``check_existence`` follows OVAL: ``at_least_one_exists`` means the
    pattern must match; ``none_exist`` means it must not.
    """

    test_id: str
    object_ref: str
    check: str = "all"
    check_existence: str = "at_least_one_exists"
    comment: str = ""


@dataclass
class OvalDefinition:
    """A compliance definition: criteria over tests."""

    definition_id: str
    title: str
    test_refs: list[str] = field(default_factory=list)
    negate: bool = False
    definition_class: str = "compliance"


@dataclass
class XccdfRule:
    """One ``<Rule>`` of the benchmark."""

    rule_id: str
    title: str
    description: str = ""
    rationale: str = ""
    severity: str = "medium"
    references: list[str] = field(default_factory=list)
    ident: str = ""
    check_ref: str = ""          # OVAL definition id
    selected: bool = True


@dataclass
class XccdfBenchmark:
    """A parsed benchmark: rules plus the OVAL machinery they reference."""

    benchmark_id: str
    title: str
    rules: list[XccdfRule] = field(default_factory=list)
    definitions: dict[str, OvalDefinition] = field(default_factory=dict)
    tests: dict[str, OvalTest] = field(default_factory=dict)
    objects: dict[str, OvalObject] = field(default_factory=dict)

    def selected_rules(self) -> list[XccdfRule]:
        return [rule for rule in self.rules if rule.selected]
