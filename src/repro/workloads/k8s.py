"""Kubernetes node workloads: static pod manifests at controllable
hardening, for the kubernetes extension pack."""

from __future__ import annotations

from repro.fs.vfs import VirtualFilesystem
from repro.crawler.entities import HostEntity

_HARDENED_POD = """\
apiVersion: v1
kind: Pod
metadata:
  name: web
  namespace: prod
spec:
  securityContext:
    runAsNonRoot: true
  containers:
    - name: web
      image: registry.local/web:1.4.2
      securityContext:
        privileged: false
        allowPrivilegeEscalation: false
        readOnlyRootFilesystem: true
        runAsNonRoot: true
        capabilities:
          drop: ["ALL"]
      resources:
        limits:
          memory: 512Mi
          cpu: 500m
"""

_STOCK_POD = """\
apiVersion: v1
kind: Pod
metadata:
  name: legacy
  namespace: default
spec:
  hostNetwork: true
  hostPID: true
  containers:
    - name: legacy
      image: registry.local/legacy:latest
      securityContext:
        privileged: true
"""


def kubernetes_manifest(*, hardened: bool = True) -> str:
    """One static pod manifest at the requested hardening level."""
    return _HARDENED_POD if hardened else _STOCK_POD


def k8s_node_entity(
    name: str = "k8s-node", *, hardened: bool = True, pods: int = 1
) -> HostEntity:
    """A node carrying ``pods`` static pod manifests."""
    fs = VirtualFilesystem()
    fs.mkdir("/etc/kubernetes/manifests", mode=0o755)
    for index in range(pods):
        fs.write_file(
            f"/etc/kubernetes/manifests/pod-{index:02d}.yaml",
            kubernetes_manifest(hardened=hardened),
            mode=0o644,
        )
    return HostEntity(name, fs)
