"""Synthetic Ubuntu-flavoured hosts at controllable hardening levels.

``hardening`` runs 0.0 (stock, many findings) to 1.0 (fully hardened,
clean CIS run); intermediate values flip individual settings using a
seeded RNG, so fleets show a realistic spread of findings.
"""

from __future__ import annotations

import random

from repro.fs.packages import Package, PackageDatabase
from repro.fs.vfs import VirtualFilesystem
from repro.crawler.entities import HostEntity

_SYSCTL_SETTINGS = [
    ("net.ipv4.ip_forward", "0", "1"),
    ("net.ipv4.conf.all.send_redirects", "0", "1"),
    ("net.ipv4.conf.default.send_redirects", "0", "1"),
    ("net.ipv4.conf.all.accept_source_route", "0", "1"),
    ("net.ipv4.conf.all.accept_redirects", "0", "1"),
    ("net.ipv4.conf.all.secure_redirects", "0", "1"),
    ("net.ipv4.conf.all.log_martians", "1", "0"),
    ("net.ipv4.icmp_echo_ignore_broadcasts", "1", "0"),
    ("net.ipv4.icmp_ignore_bogus_error_responses", "1", "0"),
    ("net.ipv4.conf.all.rp_filter", "1", "0"),
    ("net.ipv4.tcp_syncookies", "1", "0"),
    ("net.ipv6.conf.all.accept_ra", "0", "1"),
    ("net.ipv6.conf.all.accept_redirects", "0", "1"),
    ("kernel.randomize_va_space", "2", "0"),
    ("fs.suid_dumpable", "0", "1"),
]

_SSHD_SETTINGS = [
    ("Protocol", "2", "2,1"),
    ("LogLevel", "INFO", "QUIET"),
    ("X11Forwarding", "no", "yes"),
    ("MaxAuthTries", "4", "6"),
    ("IgnoreRhosts", "yes", "no"),
    ("HostbasedAuthentication", "no", "yes"),
    ("PermitRootLogin", "no", "yes"),
    ("PermitEmptyPasswords", "no", "yes"),
    ("PermitUserEnvironment", "no", "yes"),
    ("Ciphers", "chacha20-poly1305@openssh.com,aes256-gcm@openssh.com", "aes256-cbc,3des-cbc"),
    ("MACs", "hmac-sha2-512,hmac-sha2-256", "hmac-md5,hmac-sha1-96"),
    ("ClientAliveInterval", "300", "900"),
    ("ClientAliveCountMax", "3", "10"),
    ("LoginGraceTime", "60", "120"),
    ("Banner", "/etc/issue.net", "none"),
    ("UsePAM", "yes", "no"),
    ("AllowTcpForwarding", "no", "yes"),
    ("MaxStartups", "10:30:60", "100"),
    ("MaxSessions", "10", "20"),
]

_AUDIT_RULES = [
    "-a always,exit -F arch=b64 -S adjtimex -S settimeofday -k time-change",
    "-a always,exit -F arch=b64 -S clock_settime -k time-change",
    "-w /etc/localtime -p wa -k time-change",
    "-w /etc/passwd -p wa -k identity",
    "-w /etc/group -p wa -k identity",
    "-w /etc/shadow -p wa -k identity",
    "-w /etc/gshadow -p wa -k identity",
    "-w /etc/security/opasswd -p wa -k identity",
    "-w /etc/issue -p wa -k system-locale",
    "-w /etc/hosts -p wa -k system-locale",
    "-a always,exit -F arch=b64 -S sethostname -S setdomainname -k system-locale",
    "-w /etc/apparmor/ -p wa -k MAC-policy",
    "-w /var/log/faillog -p wa -k logins",
    "-w /var/log/lastlog -p wa -k logins",
    "-w /var/run/utmp -p wa -k session",
    "-w /var/log/wtmp -p wa -k session",
    "-a always,exit -F arch=b64 -S chmod -S fchmod -S fchmodat -k perm_mod",
    "-a always,exit -F arch=b64 -S chown -S fchown -S lchown -k perm_mod",
    "-a always,exit -F arch=b64 -S open -F exit=-EACCES -k access",
    "-a always,exit -F arch=b64 -S mount -k mounts",
    "-a always,exit -F arch=b64 -S unlink -S unlinkat -S rename -k delete",
    "-w /etc/sudoers -p wa -k scope",
    "-w /var/log/sudo.log -p wa -k actions",
    "-a always,exit -F arch=b64 -S init_module -S delete_module -k modules",
    "-e 2",
]

_FSTAB_HARDENED = """\
/dev/sda1 / ext4 errors=remount-ro 0 1
/dev/sda2 /tmp ext4 nodev,nosuid,noexec 0 2
/dev/sda3 /var ext4 defaults 0 2
/dev/sda4 /var/log ext4 defaults 0 2
/dev/sda5 /var/log/audit ext4 defaults 0 2
/dev/sda6 /home ext4 nodev 0 2
tmpfs /run/shm tmpfs nodev,nosuid,noexec 0 0
"""

_FSTAB_STOCK = """\
/dev/sda1 / ext4 errors=remount-ro 0 1
tmpfs /run/shm tmpfs defaults 0 0
"""

_MODPROBE_MODULES = [
    "cramfs", "freevxfs", "jffs2", "hfs", "hfsplus", "squashfs", "udf",
    "usb-storage",
]

_PASSWD = """\
root:x:0:0:root:/root:/bin/bash
daemon:x:1:1:daemon:/usr/sbin:/usr/sbin/nologin
www-data:x:33:33:www-data:/var/www:/usr/sbin/nologin
mysql:x:107:112:MySQL Server:/nonexistent:/bin/false
ubuntu:x:1000:1000:Ubuntu:/home/ubuntu:/bin/bash
"""

_GROUP = """\
root:x:0:
daemon:x:1:
docker:x:999:ubuntu
sudo:x:27:ubuntu
"""


def build_ubuntu_host(
    *,
    hardening: float = 1.0,
    seed: int = 0,
    with_nginx: bool = False,
    with_mysql: bool = False,
    with_apache: bool = False,
    with_hadoop: bool = False,
) -> VirtualFilesystem:
    """Build the filesystem of a synthetic Ubuntu host.

    ``hardening=1.0`` passes the shipped CIS packs; ``0.0`` is a stock
    install with the misconfigurations the benchmarks hunt for.
    """
    rng = random.Random(seed)
    fs = VirtualFilesystem()

    def pick(good: str, bad: str) -> str:
        return good if rng.random() < hardening else bad

    hardened = hardening >= 1.0

    sysctl_lines = [
        f"{key} = {pick(good, bad)}" for key, good, bad in _SYSCTL_SETTINGS
    ]
    fs.write_file("/etc/sysctl.conf", "\n".join(sysctl_lines) + "\n",
                  mode=0o644)
    fs.mkdir("/etc/sysctl.d")

    sshd_lines = ["# sshd_config -- synthetic"]
    for key, good, bad in _SSHD_SETTINGS:
        value = pick(good, bad)
        if value != "none":
            sshd_lines.append(f"{key} {value}")
    fs.write_file(
        "/etc/ssh/sshd_config",
        "\n".join(sshd_lines) + "\n",
        mode=0o600 if hardened or rng.random() < hardening else 0o644,
    )

    audit_rules = list(_AUDIT_RULES)
    if not hardened:
        keep = max(0, int(len(audit_rules) * hardening))
        rng.shuffle(audit_rules)
        immutable = "-e 2" in audit_rules[:keep]
        audit_rules = audit_rules[:keep]
        if immutable and audit_rules and audit_rules[-1] != "-e 2":
            audit_rules = [r for r in audit_rules if r != "-e 2"] + ["-e 2"]
    fs.write_file(
        "/etc/audit/audit.rules", "\n".join(audit_rules) + "\n", mode=0o640
    )

    fstab_hardened = hardened or rng.random() < hardening
    fs.write_file(
        "/etc/fstab",
        _FSTAB_HARDENED if fstab_hardened else _FSTAB_STOCK,
        mode=0o644,
    )
    # The live mount table mirrors fstab plus the kernel's own mounts.
    mounts = (_FSTAB_HARDENED if fstab_hardened else _FSTAB_STOCK)
    mounts += "proc /proc proc rw,nosuid,nodev,noexec 0 0\n"
    fs.write_file("/proc/mounts", mounts, mode=0o444)

    modprobe_lines = []
    for module in _MODPROBE_MODULES:
        if hardened or rng.random() < hardening:
            modprobe_lines.append(f"install {module} /bin/true")
    modprobe_lines.append("blacklist dccp")
    modprobe_lines.append("blacklist sctp")
    fs.write_file(
        "/etc/modprobe.d/hardening.conf",
        "\n".join(modprobe_lines) + "\n",
        mode=0o644,
    )

    fs.write_file("/etc/passwd", _PASSWD, mode=0o644)
    fs.write_file("/etc/group", _GROUP, mode=0o644)
    fs.write_file("/etc/shadow", "root:*:17000:0:99999:7:::\n", mode=0o640,
                  gid=42, group="shadow")
    if hardened or rng.random() < hardening:
        fs.write_file(
            "/etc/login.defs",
            "PASS_MAX_DAYS 90\nPASS_MIN_DAYS 7\nPASS_WARN_AGE 7\n",
            mode=0o644,
        )
        fs.write_file(
            "/etc/security/limits.conf", "* hard core 0\n", mode=0o644
        )
        fs.write_file(
            "/etc/pam.d/common-password",
            "password requisite pam_pwquality.so retry=3 minlen=14\n"
            "password [success=1 default=ignore] pam_unix.so obscure "
            "use_authtok try_first_pass sha512\n",
            mode=0o644,
        )
    else:
        fs.write_file(
            "/etc/login.defs",
            "PASS_MAX_DAYS 99999\nPASS_MIN_DAYS 0\nPASS_WARN_AGE 7\n",
            mode=0o644,
        )
        fs.write_file("/etc/security/limits.conf", "# empty\n", mode=0o644)
        fs.write_file(
            "/etc/pam.d/common-password",
            "password [success=1 default=ignore] pam_unix.so obscure md5\n",
            mode=0o644,
        )

    if with_nginx:
        fs.write_file("/etc/nginx/nginx.conf", nginx_conf(hardened=hardened),
                      mode=0o644)
    if with_mysql:
        fs.write_file("/etc/mysql/my.cnf", mysql_cnf(hardened=hardened),
                      mode=0o644)
    if with_apache:
        fs.write_file("/etc/apache2/apache2.conf",
                      apache_conf(hardened=hardened), mode=0o644)
    if with_hadoop:
        fs.write_file("/etc/hadoop/core-site.xml",
                      hadoop_core_site(hardened=hardened), mode=0o644)
        fs.write_file("/etc/hadoop/hdfs-site.xml",
                      hadoop_hdfs_site(hardened=hardened), mode=0o644)
        yarn_acl = "true" if hardened else "false"
        mapred_policy = "HTTPS_ONLY" if hardened else "HTTP_ONLY"
        fs.write_file(
            "/etc/hadoop/yarn-site.xml",
            "<configuration>\n  <property><name>yarn.acl.enable</name>"
            f"<value>{yarn_acl}</value></property>\n</configuration>\n",
            mode=0o644,
        )
        fs.write_file(
            "/etc/hadoop/mapred-site.xml",
            "<configuration>\n  <property><name>mapreduce.jobhistory.http.policy"
            f"</name><value>{mapred_policy}</value></property>\n</configuration>\n",
            mode=0o644,
        )
    return fs


def nginx_conf(*, hardened: bool = True) -> str:
    if hardened:
        return """\
user www-data;
worker_processes auto;
http {
    server_tokens off;
    keepalive_timeout 65;
    client_max_body_size 8m;
    server {
        listen 443 ssl;
        ssl_certificate /etc/nginx/cert.pem;
        ssl_certificate_key /etc/nginx/key.pem;
        ssl_protocols TLSv1.2 TLSv1.3;
        ssl_ciphers HIGH:!aNULL:!MD5;
        ssl_prefer_server_ciphers on;
        ssl_session_tickets off;
        autoindex off;
        add_header X-Frame-Options SAMEORIGIN;
        add_header X-Content-Type-Options nosniff;
    }
}
"""
    return """\
user root;
worker_processes auto;
http {
    server {
        listen 443 ssl;
        ssl_certificate /etc/nginx/cert.pem;
        ssl_certificate_key /etc/nginx/key.pem;
        ssl_protocols SSLv3 TLSv1.2;
        ssl_ciphers RC4:HIGH;
        autoindex on;
        client_max_body_size 0;
    }
}
"""


def mysql_cnf(*, hardened: bool = True) -> str:
    if hardened:
        return """\
[mysqld]
bind-address = 127.0.0.1
local-infile = 0
skip-show-database
skip-symbolic-links
secure_file_priv = /var/lib/mysql-files
ssl-ca = /etc/mysql/cacert.pem
ssl-cert = /etc/mysql/server-cert.pem
ssl-key = /etc/mysql/server-key.pem
old_passwords = 0
"""
    return """\
[mysqld]
bind-address = 0.0.0.0
local-infile = 1
old_passwords = 1
"""


def apache_conf(*, hardened: bool = True) -> str:
    if hardened:
        return """\
ServerTokens Prod
ServerSignature Off
TraceEnable Off
Timeout 300
KeepAliveTimeout 5
FileETag None
User www-data
SSLProtocol all -SSLv2 -SSLv3
SSLHonorCipherOrder on
<Directory /var/www/>
    Options -Indexes -Includes FollowSymLinks
    AllowOverride None
</Directory>
"""
    return """\
ServerTokens Full
ServerSignature On
TraceEnable On
Timeout 600
User root
SSLProtocol all
<Directory /var/www/>
    Options Indexes Includes FollowSymLinks
    AllowOverride All
</Directory>
"""


def hadoop_core_site(*, hardened: bool = True) -> str:
    auth = "kerberos" if hardened else "simple"
    authz = "true" if hardened else "false"
    rpc = "privacy" if hardened else "authentication"
    return f"""\
<configuration>
  <property><name>hadoop.security.authentication</name><value>{auth}</value></property>
  <property><name>hadoop.security.authorization</name><value>{authz}</value></property>
  <property><name>hadoop.rpc.protection</name><value>{rpc}</value></property>
</configuration>
"""


def hadoop_hdfs_site(*, hardened: bool = True) -> str:
    flag = "true" if hardened else "false"
    policy = "HTTPS_ONLY" if hardened else "HTTP_ONLY"
    return f"""\
<configuration>
  <property><name>dfs.permissions.enabled</name><value>{flag}</value></property>
  <property><name>dfs.encrypt.data.transfer</name><value>{flag}</value></property>
  <property><name>dfs.namenode.acls.enabled</name><value>{flag}</value></property>
  <property><name>dfs.datanode.data.dir.perm</name><value>700</value></property>
  <property><name>dfs.http.policy</name><value>{policy}</value></property>
</configuration>
"""


def ubuntu_packages() -> PackageDatabase:
    """A plausible package set for a synthetic Ubuntu host."""
    return PackageDatabase(
        [
            Package("openssh-server", "1:7.2p2-4ubuntu2.10"),
            Package("auditd", "1:2.4.5-1ubuntu2.1"),
            Package("nginx", "1.10.3-0ubuntu0.16.04.5"),
            Package("mysql-server", "5.7.33-0ubuntu0.16.04.1"),
            Package("apache2", "2.4.18-2ubuntu3.17"),
        ]
    )


def ubuntu_host_entity(
    name: str = "ubuntu-host",
    *,
    hardening: float = 1.0,
    seed: int = 0,
    **build_kwargs,
) -> HostEntity:
    """A ready-to-validate host entity (filesystem + packages + live sysctl)."""
    fs = build_ubuntu_host(hardening=hardening, seed=seed, **build_kwargs)
    return HostEntity(name, fs, packages=ubuntu_packages())
