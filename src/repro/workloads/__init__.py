"""Workload generation for examples, tests, and benchmarks.

Everything is seeded/deterministic.  Builders produce:

* synthetic Ubuntu-flavoured host entities at controllable hardening
  levels (:mod:`repro.workloads.hosts`);
* Docker image/container fleets with seeded misconfiguration rates
  (:mod:`repro.workloads.fleet`), standing in for the paper's production
  scans of "tens of thousands of containers and images daily";
* cloud projects with a controllable number of policy violations
  (:mod:`repro.workloads.cloud`);
* synthetic rule sets and config corpora for scaling ablations
  (:mod:`repro.workloads.rulegen`).
"""

from repro.workloads.hosts import build_ubuntu_host, ubuntu_host_entity
from repro.workloads.fleet import FleetSpec, build_fleet
from repro.workloads.cloud import build_cloud_project
from repro.workloads.k8s import k8s_node_entity, kubernetes_manifest
from repro.workloads.rulegen import (
    generate_keyvalue_config,
    generate_tree_rules,
)

__all__ = [
    "FleetSpec",
    "build_cloud_project",
    "build_fleet",
    "build_ubuntu_host",
    "generate_keyvalue_config",
    "generate_tree_rules",
    "k8s_node_entity",
    "kubernetes_manifest",
    "ubuntu_host_entity",
]
