"""Docker fleet generation with seeded misconfiguration rates.

The paper's production deployment validates "tens of thousands of
containers and images daily".  :func:`build_fleet` reproduces that shape:
a registry of base images, derived application images, and running
containers whose runtime options are good or bad according to a seeded
misconfiguration rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crawler.docker_sim import (
    Container,
    DockerDaemon,
    DockerImage,
    HostConfig,
    ImageBuilder,
    Mount,
)
from repro.workloads.hosts import mysql_cnf, nginx_conf


@dataclass
class FleetSpec:
    """Shape of the generated fleet."""

    images: int = 10
    containers_per_image: int = 5
    misconfig_rate: float = 0.3   # probability each knob is misconfigured
    seed: int = 0


def _base_image(kind: str, *, hardened: bool, rng: random.Random) -> ImageBuilder:
    builder = ImageBuilder()
    builder.add_file("/etc/os-release", 'NAME="Ubuntu"\nVERSION_ID="16.04"\n')
    builder.install_package("libc6", "2.23-0ubuntu11")
    builder.new_layer()
    if kind == "nginx":
        builder.add_file("/etc/nginx/nginx.conf", nginx_conf(hardened=hardened))
        builder.install_package("nginx", "1.10.3-0ubuntu0.16.04.5")
        builder.expose("443/tcp" if hardened else "80/tcp")
        builder.entrypoint("nginx", "-g", "daemon off;")
    elif kind == "mysql":
        builder.add_file("/etc/mysql/my.cnf", mysql_cnf(hardened=hardened))
        builder.install_package("mysql-server", "5.7.33-0ubuntu0.16.04.1")
        builder.expose("3306/tcp")
        builder.entrypoint("mysqld")
    else:  # generic app image
        builder.add_file("/app/config.json", '{"debug": %s}\n'
                         % ("false" if hardened else "true"))
        builder.entrypoint("/app/run")
    if hardened:
        builder.user(f"app{rng.randrange(100, 999)}")
        builder.healthcheck("CMD", "curl", "-f", "http://localhost/healthz")
    # Misconfigured images keep the root default and no healthcheck.
    return builder


def _host_config(*, hardened: bool, rng: random.Random) -> HostConfig:
    if hardened:
        return HostConfig(
            privileged=False,
            network_mode="bridge",
            readonly_rootfs=True,
            cap_drop=["ALL"],
            security_opt=["no-new-privileges"],
            memory=512 * 1024 * 1024,
            cpu_shares=512,
            pids_limit=256,
            restart_policy="on-failure",
            restart_max_retries=5,
            port_bindings={"443/tcp": f"0.0.0.0:{rng.randrange(30000, 39999)}"},
        )
    # A grab-bag of the CIS-Docker violations the rule pack detects.
    bad = HostConfig(memory=0, cpu_shares=0, pids_limit=0, restart_policy="always")
    fault = rng.randrange(6)
    if fault == 0:
        bad.privileged = True
    elif fault == 1:
        bad.network_mode = "host"
    elif fault == 2:
        bad.pid_mode = "host"
    elif fault == 3:
        bad.cap_add = ["SYS_ADMIN"]
    elif fault == 4:
        bad.mounts = [Mount(source="/var/run/docker.sock",
                            destination="/var/run/docker.sock")]
    else:
        bad.port_bindings = {"22/tcp": "0.0.0.0:22"}
    return bad


def build_fleet(spec: FleetSpec) -> tuple[DockerDaemon, list[DockerImage], list[Container]]:
    """Build a daemon populated with images and running containers.

    Returns ``(daemon, images, containers)``.  Whether each image and each
    container is hardened is an independent seeded draw at
    ``1 - misconfig_rate`` probability, so validators see a fleet-shaped
    mixture of passes and findings.
    """
    rng = random.Random(spec.seed)
    daemon = DockerDaemon()
    kinds = ["nginx", "mysql", "app"]
    images: list[DockerImage] = []
    containers: list[Container] = []
    for index in range(spec.images):
        kind = kinds[index % len(kinds)]
        image_hardened = rng.random() >= spec.misconfig_rate
        builder = _base_image(kind, hardened=image_hardened, rng=rng)
        image = builder.build(f"registry.local/{kind}-{index:03d}",
                              tag="1.0" if image_hardened else "latest")
        daemon.add_image(image)
        images.append(image)
        for replica in range(spec.containers_per_image):
            container_hardened = rng.random() >= spec.misconfig_rate
            container = daemon.run(
                image.reference,
                f"{kind}-{index:03d}-r{replica}",
                host_config=_host_config(hardened=container_hardened, rng=rng),
            )
            containers.append(container)
    return daemon, images, containers
