"""Synthetic rule and config generation for scaling ablations.

The Table 2 benchmark times fixed rule sets; the scaling ablation (A1 in
DESIGN.md) instead sweeps the *number of rules* against one frame, and
the parsing ablation (A2) sweeps config size per lens.  These generators
keep both sweeps deterministic.
"""

from __future__ import annotations

import random

from repro.cvl.loader import build_rule
from repro.cvl.model import RuleSet, TreeRule


def generate_keyvalue_config(
    keys: int, *, seed: int = 0, misconfig_rate: float = 0.0
) -> str:
    """A flat ``key = value`` config with ``keys`` settings.

    Keys are ``setting_0000 .. setting_NNNN``; compliant values are
    ``enabled``; a seeded fraction flips to ``disabled``.
    """
    rng = random.Random(seed)
    lines = ["# synthetic configuration"]
    for index in range(keys):
        value = "disabled" if rng.random() < misconfig_rate else "enabled"
        lines.append(f"setting_{index:04d} = {value}")
    return "\n".join(lines) + "\n"


def generate_tree_rules(
    count: int, *, file_context: str = "synthetic.conf", seed: int = 0
) -> RuleSet:
    """``count`` tree rules, one per synthetic setting."""
    rules = []
    for index in range(count):
        mapping = {
            "config_name": f"setting_{index:04d}",
            "config_path": [""],
            "config_description": f"Synthetic setting #{index}.",
            "file_context": [file_context],
            "preferred_value": ["enabled"],
            "preferred_value_match": "exact,all",
            "not_present_description": f"setting_{index:04d} missing.",
            "not_matched_preferred_value_description": f"setting_{index:04d} disabled.",
            "matched_description": f"setting_{index:04d} enabled.",
            "tags": ["#synthetic"],
        }
        rule = build_rule(mapping, source="<rulegen>")
        assert isinstance(rule, TreeRule)
        rules.append(rule)
    return RuleSet(entity="synthetic", rules=rules, source="<rulegen>")


def generate_nginx_config(servers: int, *, seed: int = 0) -> str:
    """An nginx.conf with ``servers`` server blocks (parsing ablation)."""
    rng = random.Random(seed)
    blocks = []
    for index in range(servers):
        port = 8000 + index
        blocks.append(
            f"""    server {{
        listen {port} ssl;
        server_name host{index}.example.com;
        ssl_protocols TLSv1.2 TLSv1.3;
        location / {{
            proxy_pass http://backend{rng.randrange(4)};
        }}
    }}"""
        )
    body = "\n".join(blocks)
    return f"user www-data;\nhttp {{\n    server_tokens off;\n{body}\n}}\n"


def generate_sysctl_config(keys: int, *, seed: int = 0) -> str:
    """A sysctl.conf with ``keys`` parameters (parsing ablation)."""
    rng = random.Random(seed)
    lines = [
        f"net.synthetic.bucket{index % 16}.param_{index:05d} = {rng.randrange(2)}"
        for index in range(keys)
    ]
    return "\n".join(lines) + "\n"
