"""Cloud-project generation with controllable policy violations."""

from __future__ import annotations

import random

from repro.fs.vfs import VirtualFilesystem
from repro.crawler.cloud_sim import (
    CloudControlPlane,
    CloudUser,
    Instance,
    SecurityGroup,
    SecurityGroupRule,
)
from repro.crawler.entities import CloudEntity


def controller_fs(*, hardened: bool = True) -> VirtualFilesystem:
    """Control-plane service configs (keystone.conf / nova.conf)."""
    fs = VirtualFilesystem()
    if hardened:
        keystone = (
            "[DEFAULT]\ndebug = false\n"
            "[token]\nprovider = fernet\n"
            "[ssl]\nenable = true\n"
            "[oslo_middleware]\nmax_request_body_size = 114688\n"
        )
        nova = (
            "[DEFAULT]\nauth_strategy = keystone\ndebug = false\n"
            "[glance]\nglance_api_insecure = false\n"
        )
        fs.write_file("/etc/keystone/keystone.conf", keystone, mode=0o640,
                      uid=116, gid=121, owner="keystone", group="keystone")
        fs.write_file("/etc/nova/nova.conf", nova, mode=0o640,
                      uid=117, gid=122, owner="nova", group="nova")
    else:
        keystone = (
            "[DEFAULT]\ndebug = true\n"
            "[token]\nprovider = uuid\n"
            "[ssl]\nenable = false\n"
        )
        nova = "[DEFAULT]\nauth_strategy = noauth2\n[glance]\nglance_api_insecure = true\n"
        fs.write_file("/etc/keystone/keystone.conf", keystone, mode=0o644)
        fs.write_file("/etc/nova/nova.conf", nova, mode=0o644)
    return fs


def build_cloud_project(
    name: str = "web",
    *,
    instances: int = 5,
    violations: bool = False,
    seed: int = 0,
    cloud: CloudControlPlane | None = None,
) -> CloudEntity:
    """Build a project and wrap it in a validatable entity.

    With ``violations`` the project carries the OSSG findings the shipped
    openstack pack detects: a world-open SSH group, an admin without MFA,
    and an instance launched without a keypair.
    """
    rng = random.Random(seed)
    cloud = cloud or CloudControlPlane()
    project = cloud.create_project(name)

    web = SecurityGroup("web", description="public web tier")
    web.add_rule(SecurityGroupRule(protocol="tcp", port_min=443, port_max=443))
    project.add_security_group(web)

    mgmt = SecurityGroup("mgmt", description="bastion access")
    mgmt.add_rule(
        SecurityGroupRule(
            protocol="tcp",
            port_min=22,
            port_max=22,
            remote_cidr="0.0.0.0/0" if violations else "10.0.0.0/8",
        )
    )
    project.add_security_group(mgmt)

    project.add_user(CloudUser("alice", roles=["admin"], mfa_enabled=True))
    project.add_user(
        CloudUser("bob", roles=["admin"], mfa_enabled=not violations)
    )
    project.add_user(CloudUser("carol", roles=["member"]))

    for index in range(instances):
        keyless = violations and index == 0
        project.add_instance(
            Instance(
                f"vm-{index:03d}",
                flavor=rng.choice(["m1.small", "m1.medium", "m1.large"]),
                security_groups=["web" if index % 2 == 0 else "mgmt"],
                key_name="" if keyless else "ops-key",
            )
        )
    return CloudEntity(
        f"openstack/{name}",
        cloud,
        name,
        controller_fs(hardened=not violations),
    )
