"""Exception hierarchy for the ConfigValidator reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Subsystems raise the most
specific subclass that applies; error messages always name the offending
artifact (file, rule, path expression, ...) because validation runs are
typically batch jobs whose logs are read long after the fact.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FilesystemError(ReproError):
    """Base class for virtual-filesystem errors."""


class FileNotFoundInFrame(FilesystemError):
    """A path was requested that does not exist in the (virtual) filesystem."""


class NotADirectoryInFrame(FilesystemError):
    """A directory operation was attempted on a non-directory node."""

class IsADirectoryInFrame(FilesystemError):
    """A file operation was attempted on a directory node."""


class LensError(ReproError):
    """A lens failed to parse a configuration file."""

    def __init__(self, lens: str, message: str, line: int | None = None):
        self.lens = lens
        self.line = line
        where = f" (line {line})" if line is not None else ""
        super().__init__(f"lens {lens!r}: {message}{where}")


class PathExpressionError(ReproError):
    """A config-tree path expression could not be parsed."""


class SchemaError(ReproError):
    """A schema-pattern file could not be parsed into a table."""


class QueryError(ReproError):
    """A schema query (``query_constraints``) is malformed."""


class CVLError(ReproError):
    """Base class for CVL specification errors."""


class CVLSyntaxError(CVLError):
    """A CVL document is not valid YAML or violates CVL structure."""

    def __init__(self, message: str, source: str | None = None):
        self.source = source
        where = f" in {source}" if source else ""
        super().__init__(f"CVL syntax error{where}: {message}")


class CVLKeywordError(CVLError):
    """A CVL rule uses an unknown keyword or an invalid keyword value."""


class ManifestError(CVLError):
    """An entity manifest is malformed."""


class InheritanceError(CVLError):
    """A CVL rule file's parent chain cannot be resolved."""


class CompositeExpressionError(CVLError):
    """A composite rule expression failed to lex, parse, or resolve."""


class CrawlerError(ReproError):
    """Base class for config-extraction errors."""


class EntityNotFound(CrawlerError):
    """A named entity is not known to the registry/engine."""


class PluginError(CrawlerError):
    """A runtime-state extraction plugin failed."""


class CloudAPIError(CrawlerError):
    """The simulated cloud control plane rejected a request."""


class DockerSimError(CrawlerError):
    """The simulated Docker substrate rejected a request."""


class EngineError(ReproError):
    """The rule engine hit an unrecoverable condition."""


class BaselineError(ReproError):
    """A baseline (XCCDF/OVAL, Inspec, script) engine failed."""


class XCCDFError(BaselineError):
    """An XCCDF/OVAL document is malformed."""
