"""CVL rule object model.

The loader turns YAML mappings into these dataclasses; the rule engine
consumes them.  Each class mirrors one of the paper's five rule types.
``raw`` keeps the original mapping for inheritance merging and for the
encoding-effort accounting in the Listing 6 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CVLError
from repro.cvl.match import MatchSpec

SEVERITIES = ("informational", "low", "medium", "high", "critical")


@dataclass
class Rule:
    """Fields shared by all rule types (the common-keyword group)."""

    name: str
    description: str = ""
    tags: list[str] = field(default_factory=list)
    severity: str = "medium"
    enabled: bool = True
    suggested_action: str = ""
    preferred_value: list[str] = field(default_factory=list)
    non_preferred_value: list[str] = field(default_factory=list)
    preferred_match: MatchSpec = field(default_factory=MatchSpec)
    non_preferred_match: MatchSpec = field(default_factory=MatchSpec)
    matched_description: str = ""
    not_matched_description: str = ""
    not_present_description: str = ""
    not_present_pass: bool = False
    source: str = "<memory>"
    #: 1-based line of the rule mapping in its source file (0 when the
    #: loader could not attribute one, e.g. programmatically built rules).
    source_line: int = 0
    raw: dict = field(default_factory=dict)

    rule_type = "abstract"

    def has_tag(self, tag: str) -> bool:
        """Case-insensitive tag membership (``#`` prefix optional)."""
        wanted = tag.lower().lstrip("#")
        return any(t.lower().lstrip("#") == wanted for t in self.tags)


@dataclass
class TreeRule(Rule):
    """Config-tree rule (paper Listing 2)."""

    config_path: list[str] = field(default_factory=lambda: [""])
    file_context: list[str] = field(default_factory=list)
    require_other_configs: list[str] = field(default_factory=list)
    lens: str | None = None
    first_match_only: bool = False
    value_separator: str | None = None
    case_insensitive: bool = False

    rule_type = "tree"


@dataclass
class SchemaRule(Rule):
    """Schema rule (paper Listing 3)."""

    query_constraints: str = ""
    query_constraints_value: list[str] = field(default_factory=list)
    query_columns: str = "*"
    schema_parser: str | None = None
    file_context: list[str] = field(default_factory=list)

    rule_type = "schema"


@dataclass
class PathRule(Rule):
    """Path/metadata rule (paper Listing 4).  ``name`` is the path."""

    ownership: str | None = None
    permission: int | None = None        # exact bits, e.g. 0o644
    permission_mask: int | None = None   # maximum allowed bits
    must_exist: bool | None = None       # None: exist iff any check is set

    rule_type = "path"

    def expects_existence(self) -> bool:
        """Whether the path is required to exist."""
        if self.must_exist is not None:
            return self.must_exist
        return True


@dataclass
class ScriptRule(Rule):
    """Script rule: validates plugin-extracted runtime state.

    ``script`` is ``"<plugin> <key>"`` -- the plugin namespace and the
    flattened key within it, e.g. ``"docker HostConfig.Privileged"`` or
    ``"mysql have_ssl"``.
    """

    script: str = ""

    rule_type = "script"

    def plugin_and_key(self) -> tuple[str, str]:
        parts = self.script.split(None, 1)
        if len(parts) != 2:
            raise CVLError(
                f"script rule {self.name!r}: script must be '<plugin> <key>', "
                f"got {self.script!r}"
            )
        return parts[0], parts[1].strip()


@dataclass
class CompositeRule(Rule):
    """Composite rule: a boolean expression over per-entity evaluations
    (paper Listing 1)."""

    expression: str = ""

    rule_type = "composite"


@dataclass
class RuleSet:
    """An ordered collection of rules for one entity (one CVL file)."""

    entity: str
    rules: list[Rule] = field(default_factory=list)
    source: str = "<memory>"
    parent_source: str | None = None

    def by_name(self, name: str) -> Rule | None:
        for rule in self.rules:
            if rule.name == name:
                return rule
        return None

    def enabled_rules(self) -> list[Rule]:
        return [rule for rule in self.rules if rule.enabled]

    def with_tag(self, tag: str) -> list[Rule]:
        return [rule for rule in self.rules if rule.has_tag(tag)]

    def of_type(self, rule_type: str) -> list[Rule]:
        return [rule for rule in self.rules if rule.rule_type == rule_type]

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)
