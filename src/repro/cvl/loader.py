"""Loading CVL documents: YAML text -> validated rule objects.

Accepted file shapes (all YAML):

* a multi-document stream, one rule mapping per document (the paper's
  listings);
* a single document that is a list of rule mappings;
* a single mapping with a ``rules:`` list, optionally carrying file-level
  keys (``entity_name``, ``parent_cvl_file``, ``disabled_rules``).

Rule types are inferred from the name keyword present (``config_name`` ->
tree, ``config_schema_name`` -> schema, ``path_name`` -> path,
``script_name`` -> script, ``composite_rule_name`` -> composite) or given
explicitly with ``rule_type``.  Unknown keywords are hard errors -- a
typoed keyword must not silently disable a security check.

Inheritance (paper §3.2 "Inheritance"): a file naming a
``parent_cvl_file`` starts from the parent's rules; a child rule with the
same name *merges over* the parent rule key-by-key (so a deployment can
override just ``preferred_value``); names listed in ``disabled_rules``
are disabled.
"""

from __future__ import annotations

from typing import Callable

import yaml

from repro.errors import CVLKeywordError, CVLSyntaxError, InheritanceError
from repro.cvl.keywords import (
    NAME_KEYWORD_BY_TYPE,
    allowed_keywords,
    infer_rule_type,
)
from repro.cvl.match import MatchSpec, parse_match_spec
from repro.cvl.model import (
    SEVERITIES,
    CompositeRule,
    PathRule,
    Rule,
    RuleSet,
    SchemaRule,
    ScriptRule,
    TreeRule,
)

#: Loads the text of a referenced CVL file (used for parent_cvl_file).
Resolver = Callable[[str], str]

#: Keys that configure the file, not an individual rule.
_FILE_LEVEL_KEYS = {"entity_name", "parent_cvl_file", "disabled_rules", "rules"}

_MAX_PARENT_DEPTH = 16


def load_rules(
    text: str,
    source: str = "<memory>",
    *,
    entity: str = "",
    resolver: Resolver | None = None,
    _depth: int = 0,
) -> RuleSet:
    """Parse CVL YAML ``text`` into a :class:`RuleSet` (resolving parents)."""
    if _depth > _MAX_PARENT_DEPTH:
        raise InheritanceError(f"{source}: parent_cvl_file chain too deep")
    documents = _documents(text, source)
    file_settings, rule_mappings = _split(documents, source)
    entity = str(file_settings.get("entity_name", entity) or entity)

    parent_set: RuleSet | None = None
    parent_file = file_settings.get("parent_cvl_file")
    if parent_file:
        if resolver is None:
            raise InheritanceError(
                f"{source}: parent_cvl_file {parent_file!r} given but no "
                f"resolver to load it"
            )
        parent_text = resolver(str(parent_file))
        parent_set = load_rules(
            parent_text,
            source=str(parent_file),
            entity=entity,
            resolver=resolver,
            _depth=_depth + 1,
        )

    rules = [build_rule(mapping, source) for mapping in rule_mappings]
    ruleset = RuleSet(entity=entity, rules=rules, source=source,
                      parent_source=str(parent_file) if parent_file else None)
    if parent_set is not None:
        ruleset = merge_inherited(parent_set, ruleset)
    for disabled in _string_list(file_settings.get("disabled_rules"), source):
        rule = ruleset.by_name(disabled)
        if rule is None:
            raise InheritanceError(
                f"{source}: disabled_rules names unknown rule {disabled!r}"
            )
        rule.enabled = False
    return ruleset


def merge_inherited(parent: RuleSet, child: RuleSet) -> RuleSet:
    """Parent rules first; same-named child rules merge over them."""
    merged: list[Rule] = []
    child_by_name = {rule.name: rule for rule in child.rules}
    for rule in parent.rules:
        override = child_by_name.pop(rule.name, None)
        if override is None:
            merged.append(rule)
            continue
        combined_raw = _LineDict(rule.raw)
        combined_raw.update(override.raw)
        # The merged rule reads as the child's override: point at it.
        combined_raw.source_line = override.source_line or rule.source_line
        merged.append(build_rule(combined_raw, child.source))
    for rule in child.rules:
        if rule.name in child_by_name:  # genuinely new rule
            merged.append(rule)
    return RuleSet(
        entity=child.entity or parent.entity,
        rules=merged,
        source=child.source,
        parent_source=parent.source,
    )


# ---- document handling ---------------------------------------------------


class _LineDict(dict):
    """A YAML mapping that remembers the line it started on."""

    source_line = 0


class _LineLoader(yaml.SafeLoader):
    """SafeLoader whose mappings are :class:`_LineDict` instances.

    The constructor mirrors ``SafeConstructor.construct_yaml_map``'s
    two-step generator shape (yield the container first so anchored
    self-references resolve), then stamps the node's start line.
    """


def _construct_line_mapping(loader: _LineLoader, node):
    mapping = _LineDict()
    yield mapping
    mapping.update(loader.construct_mapping(node))
    mapping.source_line = node.start_mark.line + 1


_LineLoader.add_constructor(
    yaml.resolver.BaseResolver.DEFAULT_MAPPING_TAG, _construct_line_mapping
)


def _documents(text: str, source: str) -> list:
    try:
        return [doc for doc in yaml.load_all(text, Loader=_LineLoader)
                if doc is not None]
    except yaml.YAMLError as exc:
        raise CVLSyntaxError(str(exc), source) from exc


def _split(documents: list, source: str) -> tuple[dict, list[dict]]:
    """Separate file-level settings from the individual rule mappings."""
    settings: dict = {}
    mappings: list[dict] = []
    for document in documents:
        if isinstance(document, list):
            for item in document:
                _require_mapping(item, source)
                mappings.append(item)
        elif isinstance(document, dict):
            if "rules" in document or _is_file_header(document):
                for key in document:
                    if key not in _FILE_LEVEL_KEYS:
                        raise CVLSyntaxError(
                            f"unexpected file-level key {key!r}", source
                        )
                settings.update(
                    {k: v for k, v in document.items() if k != "rules"}
                )
                for item in document.get("rules", []):
                    _require_mapping(item, source)
                    mappings.append(item)
            else:
                mappings.append(document)
        else:
            raise CVLSyntaxError(
                f"expected a mapping or list, got {type(document).__name__}",
                source,
            )
    return settings, mappings


def _is_file_header(document: dict) -> bool:
    return bool(document) and set(document) <= _FILE_LEVEL_KEYS


def _require_mapping(item: object, source: str) -> None:
    if not isinstance(item, dict):
        raise CVLSyntaxError(
            f"rule entries must be mappings, got {type(item).__name__}", source
        )


# ---- rule construction ------------------------------------------------------


def build_rule(mapping: dict, source: str = "<memory>") -> Rule:
    """Validate a rule mapping and construct the typed rule object."""
    rule_type = mapping.get("rule_type") or infer_rule_type(mapping.keys())
    if rule_type is None:
        raise CVLKeywordError(
            f"{source}: cannot infer rule type; exactly one of "
            f"{sorted(NAME_KEYWORD_BY_TYPE.values())} is required "
            f"(keys: {sorted(mapping.keys())})"
        )
    if rule_type not in NAME_KEYWORD_BY_TYPE:
        raise CVLKeywordError(f"{source}: unknown rule_type {rule_type!r}")
    allowed = allowed_keywords(rule_type)
    unknown = set(mapping) - allowed
    if unknown:
        raise CVLKeywordError(
            f"{source}: unknown keyword(s) {sorted(unknown)} for "
            f"{rule_type} rule (did you mean one of {_closest(unknown, allowed)}?)"
        )
    name_key = NAME_KEYWORD_BY_TYPE[rule_type]
    name = mapping.get(name_key)
    if not name or not str(name).strip():
        raise CVLKeywordError(f"{source}: rule is missing {name_key!r}")

    common = _common_fields(mapping, rule_type, source)
    builder = {
        "tree": _build_tree,
        "schema": _build_schema,
        "path": _build_path,
        "script": _build_script,
        "composite": _build_composite,
    }[rule_type]
    return builder(str(name).strip(), mapping, common, source)


def _closest(unknown: set, allowed: frozenset) -> list[str]:
    import difflib

    suggestions: list[str] = []
    for keyword in sorted(unknown):
        suggestions.extend(difflib.get_close_matches(keyword, allowed, n=1))
    return suggestions or sorted(allowed)[:3]


def _common_fields(mapping: dict, rule_type: str, source: str) -> dict:
    severity = str(mapping.get("severity", "medium")).lower()
    if severity not in SEVERITIES:
        raise CVLKeywordError(
            f"{source}: severity {severity!r} not in {list(SEVERITIES)}"
        )
    description_key = {
        "tree": "config_description",
        "schema": "config_schema_description",
        "path": "path_description",
        "script": "script_description",
        "composite": "composite_rule_description",
    }[rule_type]
    description = str(mapping.get(description_key) or "")
    return {
        "description": description,
        "tags": _string_list(mapping.get("tags"), source),
        "severity": severity,
        "enabled": _boolean(mapping.get("enabled", True), "enabled", source),
        "suggested_action": str(mapping.get("suggested_action", "")),
        "preferred_value": _value_list(mapping.get("preferred_value")),
        "non_preferred_value": _value_list(mapping.get("non_preferred_value")),
        "preferred_match": parse_match_spec(
            mapping.get("preferred_value_match"),
            default=MatchSpec("exact", "any"),
        ),
        "non_preferred_match": parse_match_spec(
            mapping.get("non_preferred_value_match"),
            default=MatchSpec("exact", "any"),
        ),
        "matched_description": str(mapping.get("matched_description", "")),
        "not_matched_description": str(
            mapping.get("not_matched_preferred_value_description", "")
        ),
        "not_present_description": str(mapping.get("not_present_description", "")),
        "not_present_pass": _boolean(
            mapping.get("not_present_pass", False), "not_present_pass", source
        ),
        "source": source,
        "source_line": int(getattr(mapping, "source_line", 0)),
        "raw": dict(mapping),
    }


def _build_tree(name: str, mapping: dict, common: dict, source: str) -> TreeRule:
    config_path = _string_list(mapping.get("config_path", [""]), source) or [""]
    return TreeRule(
        name=name,
        config_path=config_path,
        file_context=_string_list(mapping.get("file_context"), source),
        require_other_configs=_string_list(
            mapping.get("require_other_configs"), source
        ),
        lens=str(mapping["lens"]) if mapping.get("lens") else None,
        first_match_only=_boolean(
            mapping.get("first_match_only", False), "first_match_only", source
        ),
        value_separator=(
            str(mapping["value_separator"])
            if mapping.get("value_separator") is not None
            else None
        ),
        case_insensitive=_boolean(
            mapping.get("case_insensitive", False), "case_insensitive", source
        ),
        **common,
    )


def _build_schema(name: str, mapping: dict, common: dict, source: str) -> SchemaRule:
    return SchemaRule(
        name=name,
        query_constraints=str(mapping.get("query_constraints", "")),
        query_constraints_value=_value_list(mapping.get("query_constraints_value")),
        query_columns=_columns(mapping.get("query_columns", "*")),
        schema_parser=(
            str(mapping["schema_parser"]) if mapping.get("schema_parser") else None
        ),
        file_context=_string_list(mapping.get("file_context"), source),
        **common,
    )


def _build_path(name: str, mapping: dict, common: dict, source: str) -> PathRule:
    return PathRule(
        name=name,
        ownership=_ownership(mapping.get("ownership")),
        permission=_permission(mapping.get("permission"), "permission", source),
        permission_mask=_permission(
            mapping.get("permission_mask"), "permission_mask", source
        ),
        must_exist=(
            _boolean(mapping["exists"], "exists", source)
            if "exists" in mapping
            else None
        ),
        **common,
    )


def _build_script(name: str, mapping: dict, common: dict, source: str) -> ScriptRule:
    script = str(mapping.get("script", "")).strip()
    if len(script.split(None, 1)) != 2:
        raise CVLKeywordError(
            f"{source}: script rule {name!r} needs script: '<plugin> <key>'"
        )
    return ScriptRule(name=name, script=script, **common)


def _build_composite(
    name: str, mapping: dict, common: dict, source: str
) -> CompositeRule:
    expression = str(mapping.get("composite_rule", "")).strip()
    if not expression:
        raise CVLKeywordError(
            f"{source}: composite rule {name!r} needs a composite_rule expression"
        )
    # Validate eagerly so syntax errors surface at load time, not scan time.
    from repro.cvl.composite_expr import parse_composite

    parse_composite(expression)
    return CompositeRule(name=name, expression=expression, **common)


# ---- scalar coercion helpers -----------------------------------------------


def _string_list(value: object, source: str) -> list[str]:
    if value is None:
        return []
    if isinstance(value, str):
        return [value] if value.strip() or value == "" else []
    if isinstance(value, (list, tuple)):
        return [_scalar(item) for item in value]
    raise CVLSyntaxError(f"expected a string or list, got {value!r}", source)


def _value_list(value: object) -> list[str]:
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        return [_scalar(item) for item in value]
    return [_scalar(value)]


def _scalar(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return ""
    return str(value)


def _boolean(value: object, keyword: str, source: str) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str) and value.strip().lower() in ("true", "false"):
        return value.strip().lower() == "true"
    raise CVLKeywordError(f"{source}: {keyword} must be a boolean, got {value!r}")


def _columns(value: object) -> str:
    if isinstance(value, (list, tuple)):
        return ",".join(str(item) for item in value)
    return str(value)


def _permission(value: object, keyword: str, source: str) -> int | None:
    """Permissions are written as octal digits (``644``), whether YAML hands
    us an int or a string."""
    if value is None:
        return None
    try:
        bits = int(str(value), 8)
    except ValueError:
        raise CVLKeywordError(
            f"{source}: {keyword} must be octal digits, got {value!r}"
        ) from None
    if not 0 <= bits <= 0o7777:
        raise CVLKeywordError(f"{source}: {keyword} {value!r} out of range")
    return bits


def _ownership(value: object) -> str | None:
    if value is None:
        return None
    # YAML 1.1 may parse unquoted 0:0 as sexagesimal 0; re-render as uid:gid.
    if isinstance(value, int):
        return f"{value}:{value}" if value == 0 else str(value)
    return str(value)
