"""The CVL keyword inventory.

The paper states CVL has **46 keywords across all rule types and entity
description**: 19 common keywords plus type-specific keywords -- config
tree (9), schema (6), path (6), script (3), composite (3).  This module is
the single source of truth for that inventory; the loader validates every
rule document against it and rejects unknown keys (typos in rule files
must fail loudly, not silently skip checks).
"""

from __future__ import annotations

#: Keywords shared across rule types and the entity manifest (19).
COMMON_KEYWORDS = frozenset(
    {
        # entity description (manifest)
        "entity_name",            # entity the manifest block describes
        "cvl_file",               # path of the CVL rule file for the entity
        "parent_cvl_file",        # rule file to inherit from
        "config_search_paths",    # where to look for the entity's config files
        "entity_kinds",           # entity kinds the rules apply to (host, ...)
        "enabled",                # manifest/rule on-off switch
        # rule identity and prose
        "rule_type",              # explicit rule type (usually inferred)
        "severity",               # informational | low | medium | high | critical
        "suggested_action",       # remediation hint for the output processor
        "tags",                   # filtering labels (#cis, #hipaa, checklist ids)
        # value matching
        "preferred_value",        # value(s) to match
        "non_preferred_value",    # value(s) that must not match
        "preferred_value_match",      # "<mode>,<quant>": exact|substr|regex , any|all
        "non_preferred_value_match",  # same format
        # output strings
        "matched_description",                        # success output
        "not_matched_preferred_value_description",    # failure output
        "not_present_description",                    # config absent output
        "not_present_pass",       # absence is compliant (default: violation)
        # inheritance controls
        "disabled_rules",         # parent rules to disable, by name
    }
)

#: Keywords specific to *config tree* rules (9).
TREE_KEYWORDS = frozenset(
    {
        "config_name",            # the key to look up
        "config_path",            # tree path alternatives to find the key under
        "config_description",
        "file_context",           # filename patterns the rule applies to
        "require_other_configs",  # keys that must co-exist for the rule to apply
        "lens",                   # force a specific lens for parsing
        "first_match_only",       # only the first occurrence counts (sshd style)
        "value_separator",        # split a found value into items before matching
        "case_insensitive",       # compare values case-insensitively
    }
)

#: Keywords specific to *schema* rules (6).
SCHEMA_KEYWORDS = frozenset(
    {
        "config_schema_name",
        "config_schema_description",
        "query_constraints",        # e.g. "dir = ?"
        "query_constraints_value",  # placeholder bindings
        "query_columns",            # "*" or comma-separated projection
        "schema_parser",            # which parser normalizes the file
    }
)

#: Keywords specific to *path* rules (6).
PATH_KEYWORDS = frozenset(
    {
        "path_name",          # the file or directory to check
        "path_description",
        "ownership",          # "uid:gid" or "owner:group"
        "permission",         # exact permission bits (e.g. 644)
        "permission_mask",    # maximum allowed bits ("no more permissive than")
        "exists",             # True: must exist; False: must not exist
    }
)

#: Keywords specific to *script* rules (3).
SCRIPT_KEYWORDS = frozenset(
    {
        "script_name",
        "script_description",
        "script",             # "<plugin> <key>", e.g. "docker HostConfig.Privileged"
    }
)

#: Keywords specific to *composite* rules (3).
COMPOSITE_KEYWORDS = frozenset(
    {
        "composite_rule_name",
        "composite_rule_description",
        "composite_rule",     # boolean expression over per-entity evaluations
    }
)

#: Keyword sets per rule type.
KEYWORDS_BY_TYPE = {
    "tree": TREE_KEYWORDS,
    "schema": SCHEMA_KEYWORDS,
    "path": PATH_KEYWORDS,
    "script": SCRIPT_KEYWORDS,
    "composite": COMPOSITE_KEYWORDS,
}

#: The keyword that identifies (and names) each rule type.
NAME_KEYWORD_BY_TYPE = {
    "tree": "config_name",
    "schema": "config_schema_name",
    "path": "path_name",
    "script": "script_name",
    "composite": "composite_rule_name",
}

#: Every keyword in the language.
ALL_KEYWORDS = (
    COMMON_KEYWORDS
    | TREE_KEYWORDS
    | SCHEMA_KEYWORDS
    | PATH_KEYWORDS
    | SCRIPT_KEYWORDS
    | COMPOSITE_KEYWORDS
)

# The paper's count: 19 common + 9 tree + 6 schema + 6 path + 3 script
# + 3 composite = 46.
assert len(COMMON_KEYWORDS) == 19, len(COMMON_KEYWORDS)
assert len(ALL_KEYWORDS) == 46, len(ALL_KEYWORDS)


def allowed_keywords(rule_type: str) -> frozenset[str]:
    """Keywords a rule of ``rule_type`` may use (common + type-specific)."""
    return COMMON_KEYWORDS | KEYWORDS_BY_TYPE[rule_type]


def infer_rule_type(keys) -> str | None:
    """Infer the rule type from which name keyword a mapping carries."""
    present = [
        rule_type
        for rule_type, name_key in NAME_KEYWORD_BY_TYPE.items()
        if name_key in keys
    ]
    if len(present) == 1:
        return present[0]
    return None
