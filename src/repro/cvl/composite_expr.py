"""The composite-rule expression language (paper Listing 1).

A composite rule aggregates evaluations across entities::

    mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem"
      && sysctl.net.ipv4.ip_forward && nginx.listen

Grammar::

    expr   := or
    or     := and ('||' and)*
    and    := unary ('&&' unary)*
    unary  := '!' unary | '(' expr ')' | term
    term   := reference (('==' | '!=') literal)?
    reference := ENTITY '.' CONFIG
                 ('.CONFIGPATH=[' path ']')?  ('.VALUE')?

Term semantics (paper §3.1: "the rule engine performs a logical
conjunction/disjunction over the per-entity rule evaluations"):

* a **bare reference** (``sysctl.net.ipv4.ip_forward``) is true when the
  named entity's per-entity rule for that config evaluated COMPLIANT; if
  the entity has no such rule, it falls back to *presence* of the config
  key (``nginx.listen`` -- nginx has a listen directive).
* ``.CONFIGPATH=[p]`` scopes the config lookup to tree path ``p``
  (brackets preserved verbatim from the paper's syntax; ``[mysqld]``
  means the ``mysqld`` section).
* ``.VALUE`` with a comparison compares the config's value to a literal.
  An absent config makes *any* comparison false (both ``==`` and ``!=``)
  -- a missing certificate path must not satisfy "!= wrong-path".
* ``.VALUE`` without a comparison is true for a present, non-empty,
  non-"0"/"false"/"no"/"off" value.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Protocol

from repro.errors import CompositeExpressionError

_FALSY_VALUES = {"", "0", "false", "no", "off", "disabled"}


# ---- context ----------------------------------------------------------------


class CompositeContext(Protocol):
    """What the evaluator needs from the engine."""

    def rule_verdict(self, entity: str, config: str) -> bool | None:
        """COMPLIANT-ness of the per-entity rule for ``config`` (None if the
        entity has no rule by that config name)."""

    def lookup_value(
        self, entity: str, config: str, config_path: str | None
    ) -> str | None:
        """The configured value of ``config`` for ``entity`` (None if absent)."""


@dataclass
class DictContext:
    """Simple context backed by dicts (used by tests and the evaluator API).

    ``values`` maps ``(entity, config_path or "", config)`` to the value;
    ``verdicts`` maps ``(entity, config)`` to the per-entity rule outcome.
    """

    verdicts: dict[tuple[str, str], bool] = field(default_factory=dict)
    values: dict[tuple[str, str, str], str] = field(default_factory=dict)

    def rule_verdict(self, entity: str, config: str) -> bool | None:
        return self.verdicts.get((entity, config))

    def lookup_value(
        self, entity: str, config: str, config_path: str | None
    ) -> str | None:
        return self.values.get((entity, config_path or "", config))


# ---- AST ---------------------------------------------------------------------


@dataclass(frozen=True)
class Reference:
    entity: str
    config: str
    config_path: str | None = None
    want_value: bool = False

    def render(self) -> str:
        text = f"{self.entity}.{self.config}"
        if self.config_path is not None:
            text += f".CONFIGPATH=[{self.config_path}]"
        if self.want_value:
            text += ".VALUE"
        return text

    def truth(self, context: CompositeContext) -> bool:
        if self.want_value:
            value = context.lookup_value(self.entity, self.config, self.config_path)
            return value is not None and value.strip().lower() not in _FALSY_VALUES
        verdict = context.rule_verdict(self.entity, self.config)
        if verdict is not None:
            return verdict
        return (
            context.lookup_value(self.entity, self.config, self.config_path)
            is not None
        )


@dataclass(frozen=True)
class Comparison:
    reference: Reference
    op: str  # "==" | "!="
    literal: str

    def render(self) -> str:
        return f"{self.reference.render()} {self.op} \"{self.literal}\""

    def truth(self, context: CompositeContext) -> bool:
        value = context.lookup_value(
            self.reference.entity, self.reference.config, self.reference.config_path
        )
        if value is None:
            return False
        if self.op == "==":
            return value == self.literal
        return value != self.literal


@dataclass(frozen=True)
class Not:
    child: object

    def render(self) -> str:
        return f"!({self.child.render()})"

    def truth(self, context: CompositeContext) -> bool:
        return not self.child.truth(context)


@dataclass(frozen=True)
class BoolOp:
    op: str  # "&&" | "||"
    children: tuple

    def render(self) -> str:
        joined = f" {self.op} ".join(child.render() for child in self.children)
        return f"({joined})"

    def truth(self, context: CompositeContext) -> bool:
        if self.op == "&&":
            return all(child.truth(context) for child in self.children)
        return any(child.truth(context) for child in self.children)


@dataclass
class CompositeResult:
    """Evaluation outcome plus per-term detail for the output processor."""

    passed: bool
    term_results: list[tuple[str, bool]]

    def failed_terms(self) -> list[str]:
        return [term for term, ok in self.term_results if not ok]


# ---- tokenizer ---------------------------------------------------------------

_OPERATORS = ("&&", "||", "==", "!=", "!", "(", ")")


def _tokenize(expression: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    length = len(expression)
    while i < length:
        char = expression[i]
        if char.isspace():
            i += 1
            continue
        two = expression[i:i + 2]
        if two in ("&&", "||", "==", "!="):
            tokens.append(two)
            i += 2
            continue
        if char in "()!":
            tokens.append(char)
            i += 1
            continue
        if char in "'\"":
            end = expression.find(char, i + 1)
            if end == -1:
                raise CompositeExpressionError(
                    f"{expression!r}: unterminated string"
                )
            tokens.append(f'"{expression[i + 1:end]}"')
            i = end + 1
            continue
        # Reference or bare literal: consume until whitespace or an operator.
        # '=' is allowed inside a reference only as 'CONFIGPATH=[...]'.
        start = i
        while i < length:
            char = expression[i]
            if char.isspace() or char in "()!":
                break
            if expression[i:i + 2] in ("&&", "||", "==", "!="):
                break
            if char == "=":
                if expression[i + 1:i + 2] == "[":
                    closing = expression.find("]", i + 1)
                    if closing == -1:
                        raise CompositeExpressionError(
                            f"{expression!r}: unclosed '[' in CONFIGPATH"
                        )
                    i = closing + 1
                    continue
                break
            i += 1
        if i == start:
            # A bare '=' (or other terminator) with no reference before it
            # would otherwise loop forever producing empty tokens.
            raise CompositeExpressionError(
                f"{expression!r}: unexpected {expression[i]!r} at position {i}"
            )
        tokens.append(expression[start:i])
    return tokens


# ---- parser -------------------------------------------------------------------

_REFERENCE = re.compile(
    r"""^(?P<entity>[A-Za-z_][\w-]*)
        \.
        (?P<rest>.+)$""",
    re.VERBOSE,
)


class _Parser:
    def __init__(self, tokens: list[str], expression: str):
        self._tokens = tokens
        self._expression = expression
        self._position = 0

    def parse(self):
        node = self._or()
        if self._position != len(self._tokens):
            raise CompositeExpressionError(
                f"{self._expression!r}: trailing tokens near "
                f"{self._tokens[self._position]!r}"
            )
        return node

    def _peek(self) -> str | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _accept(self, token: str) -> bool:
        if self._peek() == token:
            self._position += 1
            return True
        return False

    def _or(self):
        children = [self._and()]
        while self._accept("||"):
            children.append(self._and())
        return children[0] if len(children) == 1 else BoolOp("||", tuple(children))

    def _and(self):
        children = [self._unary()]
        while self._accept("&&"):
            children.append(self._unary())
        return children[0] if len(children) == 1 else BoolOp("&&", tuple(children))

    def _unary(self):
        if self._accept("!"):
            return Not(self._unary())
        if self._accept("("):
            node = self._or()
            if not self._accept(")"):
                raise CompositeExpressionError(
                    f"{self._expression!r}: missing ')'"
                )
            return node
        return self._term()

    def _term(self):
        token = self._peek()
        if token is None or token in _OPERATORS:
            raise CompositeExpressionError(
                f"{self._expression!r}: expected a term, got {token!r}"
            )
        self._position += 1
        reference = _parse_reference(token, self._expression)
        operator = self._peek()
        if operator in ("==", "!="):
            self._position += 1
            literal = self._peek()
            if literal is None or literal in _OPERATORS:
                raise CompositeExpressionError(
                    f"{self._expression!r}: {operator} needs a right-hand side"
                )
            self._position += 1
            return Comparison(reference, operator, _unquote(literal))
        return reference


def _unquote(token: str) -> str:
    if len(token) >= 2 and token[0] == '"' and token[-1] == '"':
        return token[1:-1]
    return token


def _parse_reference(token: str, expression: str) -> Reference:
    match = _REFERENCE.match(token)
    if not match:
        raise CompositeExpressionError(
            f"{expression!r}: bad reference {token!r} "
            f"(expected '<entity>.<config>')"
        )
    entity = match.group("entity")
    rest = match.group("rest")
    config_path: str | None = None
    want_value = False
    if rest.endswith(".VALUE"):
        want_value = True
        rest = rest[: -len(".VALUE")]
    marker = ".CONFIGPATH=["
    if marker in rest:
        rest, _sep, bracketed = rest.partition(marker)
        if not bracketed.endswith("]"):
            raise CompositeExpressionError(
                f"{expression!r}: CONFIGPATH missing closing ']' in {token!r}"
            )
        config_path = bracketed[:-1]
    if not rest:
        raise CompositeExpressionError(
            f"{expression!r}: reference {token!r} has no config name"
        )
    return Reference(
        entity=entity, config=rest, config_path=config_path, want_value=want_value
    )


@lru_cache(maxsize=1024)
def parse_composite(expression: str):
    """Parse a composite expression into its AST (cached)."""
    expression = expression.strip()
    if not expression:
        raise CompositeExpressionError("empty composite expression")
    tokens = _tokenize(expression)
    return _Parser(tokens, expression).parse()


def _collect_terms(node, out: list) -> None:
    if isinstance(node, (Reference, Comparison)):
        out.append(node)
    elif isinstance(node, Not):
        _collect_terms(node.child, out)
    elif isinstance(node, BoolOp):
        for child in node.children:
            _collect_terms(child, out)


def referenced_entities(expression: str) -> set[str]:
    """All entity names an expression touches (used for cross-entity
    scheduling)."""
    terms: list = []
    _collect_terms(parse_composite(expression), terms)
    entities = set()
    for term in terms:
        reference = term.reference if isinstance(term, Comparison) else term
        entities.add(reference.entity)
    return entities


def referenced_pairs(expression: str) -> set[tuple[str, str]]:
    """All ``(entity, config)`` pairs an expression touches (the keys
    incremental revalidation watches for recomputed per-entity verdicts)."""
    terms: list = []
    _collect_terms(parse_composite(expression), terms)
    pairs: set[tuple[str, str]] = set()
    for term in terms:
        reference = term.reference if isinstance(term, Comparison) else term
        pairs.add((reference.entity, reference.config))
    return pairs


def evaluate_composite(expression: str, context: CompositeContext) -> CompositeResult:
    """Evaluate ``expression`` and report per-term outcomes."""
    ast = parse_composite(expression)
    terms: list = []
    _collect_terms(ast, terms)
    term_results = [(term.render(), term.truth(context)) for term in terms]
    return CompositeResult(passed=ast.truth(context), term_results=term_results)
