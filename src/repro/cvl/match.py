"""Value matching semantics (``preferred_value_match`` and friends).

A match spec is written ``"<mode>,<quant>"`` (whitespace-tolerant, e.g.
the paper's ``substr ,all``):

* mode -- how one rule value compares against one found value:
  ``exact`` (string equality), ``substr`` (rule value contained in the
  found value), ``regex`` (rule value is a pattern searched in the found
  value).
* quant -- how the rule's value *list* aggregates: ``any`` (at least one
  rule value matches) or ``all`` (every rule value matches).

The paper's Listing 2 reads naturally under these semantics::

    preferred_value: ["TLSv1.2", "TLSv1.3"]
    preferred_value_match: substr,all      # both must appear in the value

    non_preferred_value: ["SSLv2", "SSLv3", ...]
    non_preferred_value_match: substr,any  # any one appearing is a finding
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import CVLKeywordError

MODES = ("exact", "substr", "regex")
QUANTIFIERS = ("any", "all")


@dataclass(frozen=True)
class MatchSpec:
    """Parsed ``"<mode>,<quant>"`` pair."""

    mode: str = "exact"
    quantifier: str = "any"

    def matches(
        self,
        found_value: str,
        rule_values: list[str],
        *,
        case_insensitive: bool = False,
    ) -> bool:
        """Evaluate this spec for one found value against the rule's list."""
        if not rule_values:
            return False
        check = all if self.quantifier == "all" else any
        return check(
            self._one(found_value, rule_value, case_insensitive)
            for rule_value in rule_values
        )

    def _one(self, found: str, expected: str, case_insensitive: bool) -> bool:
        if self.mode == "regex":
            flags = re.IGNORECASE if case_insensitive else 0
            return _compile(expected, flags).search(found) is not None
        if case_insensitive:
            found = found.lower()
            expected = expected.lower()
        if self.mode == "exact":
            return found == expected
        return expected in found  # substr

    def __str__(self) -> str:
        return f"{self.mode},{self.quantifier}"


@lru_cache(maxsize=2048)
def _compile(pattern: str, flags: int) -> re.Pattern:
    try:
        return re.compile(pattern, flags)
    except re.error as exc:
        raise CVLKeywordError(f"bad regex {pattern!r} in match spec: {exc}") from exc


def parse_match_spec(raw: str | None, default: MatchSpec | None = None) -> MatchSpec:
    """Parse ``"substr ,all"``-style text into a :class:`MatchSpec`.

    ``None``/empty returns ``default`` (or exact,any).
    """
    if raw is None or not str(raw).strip():
        return default or MatchSpec()
    parts = [part.strip().lower() for part in str(raw).split(",")]
    if len(parts) == 1:
        parts.append("any")
    if len(parts) != 2:
        raise CVLKeywordError(
            f"match spec {raw!r} must be '<mode>,<quantifier>'"
        )
    mode, quantifier = parts
    if mode not in MODES:
        raise CVLKeywordError(
            f"match mode {mode!r} not in {list(MODES)} (from {raw!r})"
        )
    if quantifier not in QUANTIFIERS:
        raise CVLKeywordError(
            f"match quantifier {quantifier!r} not in {list(QUANTIFIERS)} "
            f"(from {raw!r})"
        )
    return MatchSpec(mode=mode, quantifier=quantifier)
