"""Entity manifests (paper Listing 5).

A manifest gives the rule engine "the complete context to validate
configurations": per entity, where to search for its config files, which
CVL file holds its rules, and whether the entity is enabled::

    nginx:
      enabled: True
      config_search_paths:
        - /etc/nginx
      cvl_file: "component_configs/nginx.yaml"

One manifest document may describe several entities (one top-level key
each).  Optional keys: ``parent_cvl_file`` (deployment-specific override
file layered *on top of* ``cvl_file`` -- see loader inheritance), ``lens``
and ``schema_parser`` defaults for rules that do not name their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import yaml

from repro.errors import ManifestError

_ALLOWED_KEYS = {
    "enabled",
    "config_search_paths",
    "cvl_file",
    "parent_cvl_file",
    "entity_name",
    "entity_kinds",
    "lens",
    "schema_parser",
}

#: Entity kinds manifests may scope to.
VALID_KINDS = ("host", "image", "container", "cloud")


@dataclass
class Manifest:
    """Validation context for one entity/component."""

    entity: str
    cvl_file: str
    config_search_paths: list[str] = field(default_factory=list)
    enabled: bool = True
    parent_cvl_file: str | None = None
    lens: str | None = None
    schema_parser: str | None = None
    entity_kinds: list[str] = field(default_factory=list)

    def applies_to_kind(self, kind: str) -> bool:
        """True when the manifest has no kind restriction or includes ``kind``."""
        return not self.entity_kinds or kind in self.entity_kinds

    def __post_init__(self):
        if not self.entity:
            raise ManifestError("manifest entity name cannot be empty")
        if not self.cvl_file:
            raise ManifestError(
                f"manifest for {self.entity!r} is missing cvl_file"
            )


def load_manifests(text: str, source: str = "<memory>") -> list[Manifest]:
    """Parse manifest YAML into :class:`Manifest` objects (document order)."""
    try:
        documents = [doc for doc in yaml.safe_load_all(text) if doc is not None]
    except yaml.YAMLError as exc:
        raise ManifestError(f"{source}: invalid YAML: {exc}") from exc
    manifests: list[Manifest] = []
    for document in documents:
        if not isinstance(document, dict):
            raise ManifestError(
                f"{source}: manifest documents must be mappings, got "
                f"{type(document).__name__}"
            )
        for entity, block in document.items():
            manifests.append(_build(str(entity), block, source))
    return manifests


def _build(entity: str, block: object, source: str) -> Manifest:
    if not isinstance(block, dict):
        raise ManifestError(
            f"{source}: manifest entry {entity!r} must be a mapping"
        )
    unknown = set(block) - _ALLOWED_KEYS
    if unknown:
        raise ManifestError(
            f"{source}: manifest {entity!r} has unknown key(s) {sorted(unknown)}"
        )
    enabled = block.get("enabled", True)
    if not isinstance(enabled, bool):
        raise ManifestError(
            f"{source}: manifest {entity!r}: enabled must be a boolean"
        )
    search_paths = block.get("config_search_paths", [])
    if isinstance(search_paths, str):
        search_paths = [search_paths]
    if not isinstance(search_paths, list) or not all(
        isinstance(path, str) for path in search_paths
    ):
        raise ManifestError(
            f"{source}: manifest {entity!r}: config_search_paths must be a "
            f"list of strings"
        )
    kinds = block.get("entity_kinds", [])
    if isinstance(kinds, str):
        kinds = [kinds]
    if not isinstance(kinds, list) or not all(
        isinstance(kind, str) and kind in VALID_KINDS for kind in kinds
    ):
        raise ManifestError(
            f"{source}: manifest {entity!r}: entity_kinds must be a list "
            f"drawn from {list(VALID_KINDS)}"
        )
    return Manifest(
        entity=str(block.get("entity_name", entity)),
        cvl_file=str(block.get("cvl_file", "")),
        config_search_paths=list(search_paths),
        enabled=enabled,
        parent_cvl_file=(
            str(block["parent_cvl_file"]) if block.get("parent_cvl_file") else None
        ),
        lens=str(block["lens"]) if block.get("lens") else None,
        schema_parser=(
            str(block["schema_parser"]) if block.get("schema_parser") else None
        ),
        entity_kinds=list(kinds),
    )
