"""Configuration Validation Language (CVL).

CVL is the paper's declarative, YAML-based rule language: 46 keywords
across five rule types (config tree, schema, path, script, composite)
plus the entity manifest.  This package owns the language itself --
keywords, value-match semantics, rule objects, the YAML loader with
inheritance, manifests, and the composite-expression parser.  Rule
*evaluation* lives in :mod:`repro.engine`.
"""

from repro.cvl.keywords import (
    ALL_KEYWORDS,
    COMMON_KEYWORDS,
    COMPOSITE_KEYWORDS,
    KEYWORDS_BY_TYPE,
    PATH_KEYWORDS,
    SCHEMA_KEYWORDS,
    SCRIPT_KEYWORDS,
    TREE_KEYWORDS,
    allowed_keywords,
    infer_rule_type,
)
from repro.cvl.match import MatchSpec, parse_match_spec
from repro.cvl.model import (
    CompositeRule,
    PathRule,
    Rule,
    RuleSet,
    SchemaRule,
    ScriptRule,
    TreeRule,
)
from repro.cvl.loader import build_rule, load_rules, merge_inherited
from repro.cvl.manifest import Manifest, load_manifests
from repro.cvl.composite_expr import (
    CompositeResult,
    DictContext,
    evaluate_composite,
    parse_composite,
    referenced_entities,
)

__all__ = [
    "ALL_KEYWORDS",
    "COMMON_KEYWORDS",
    "COMPOSITE_KEYWORDS",
    "CompositeResult",
    "CompositeRule",
    "DictContext",
    "KEYWORDS_BY_TYPE",
    "Manifest",
    "MatchSpec",
    "PATH_KEYWORDS",
    "PathRule",
    "Rule",
    "RuleSet",
    "SCHEMA_KEYWORDS",
    "SCRIPT_KEYWORDS",
    "SchemaRule",
    "ScriptRule",
    "TREE_KEYWORDS",
    "TreeRule",
    "allowed_keywords",
    "build_rule",
    "evaluate_composite",
    "infer_rule_type",
    "load_manifests",
    "load_rules",
    "merge_inherited",
    "parse_composite",
    "parse_match_spec",
    "referenced_entities",
]
