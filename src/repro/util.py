"""Small shared utilities.

Currently home to :func:`retry_with_backoff`, the one retry loop every
subsystem should share instead of hand-rolling its own (the webhook
sink's linear backoff was the first port).  Keeping it here rather
than in a subsystem package avoids import cycles: everything may
depend on ``repro.util``, and it depends only on the standard library
plus the chaos fabric's marker check.
"""

from __future__ import annotations

import random
import time
from typing import Callable, TypeVar

T = TypeVar("T")


class RetryError(Exception):
    """All attempts failed; ``__cause__`` is the last underlying error."""

    def __init__(self, label: str, attempts: int, last: BaseException):
        self.label = label
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"{label}: failed after {attempts} attempt(s): {last}"
        )


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    base_delay_s: float = 0.2,
    max_delay_s: float = 30.0,
    deadline_s: float | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    label: str = "operation",
    sleep: Callable[[float], None] = time.sleep,
    rng: random.Random | None = None,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
) -> T:
    """Call ``fn`` until it succeeds, with exponential backoff + full jitter.

    - ``attempts`` bounds total calls (not retries): ``attempts=3`` means
      at most three invocations of ``fn``.
    - Backoff before attempt ``n`` (1-based retries) is drawn uniformly
      from ``[0, min(max_delay_s, base_delay_s * 2**(n-1))]`` -- the
      "full jitter" scheme, which decorrelates clients hammering a
      shared dependency.
    - ``deadline_s`` is an optional wall-clock budget: no retry is
      attempted once it is exhausted (the in-flight attempt is never
      interrupted), and the sleep before a retry is clipped to the
      budget's remainder.
    - Only exceptions in ``retry_on`` are retried; anything else
      propagates immediately.
    - ``on_retry(attempt_number, error, delay_s)`` fires before each
      backoff sleep, for logging/metrics.

    Raises :class:`RetryError` (with the last error as ``__cause__``)
    when every attempt fails.  ``sleep`` and ``rng`` exist so tests and
    the chaos fabric can make timing deterministic.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    draw = rng.uniform if rng is not None else random.uniform
    started = time.monotonic()
    last: BaseException | None = None
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            out_of_time = deadline_s is not None and (
                time.monotonic() - started >= deadline_s)
            if attempt >= attempts or out_of_time:
                raise RetryError(label, attempt, exc) from exc
            delay = draw(0.0, min(max_delay_s, base_delay_s * 2 ** (attempt - 1)))
            if deadline_s is not None:
                delay = min(delay, max(
                    0.0, deadline_s - (time.monotonic() - started)))
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0.0:
                sleep(delay)
    raise RetryError(label, attempts, last)  # pragma: no cover - unreachable
