"""SchemaTable: the normalized form of a schema-pattern configuration file."""

from __future__ import annotations

from typing import Iterator

from repro.errors import SchemaError


class Row:
    """One record; column access by name or position."""

    __slots__ = ("_columns", "_values", "line")

    def __init__(self, columns: tuple[str, ...], values: tuple[str, ...], line: int = 0):
        if len(columns) != len(values):
            raise SchemaError(
                f"row has {len(values)} values for {len(columns)} columns"
            )
        self._columns = columns
        self._values = values
        self.line = line

    def __getitem__(self, key: str | int) -> str:
        if isinstance(key, int):
            return self._values[key]
        try:
            return self._values[self._columns.index(key)]
        except ValueError:
            raise KeyError(key) from None

    def get(self, key: str, default: str | None = None) -> str | None:
        try:
            return self[key]
        except KeyError:
            return default

    def as_dict(self) -> dict[str, str]:
        return dict(zip(self._columns, self._values))

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    @property
    def values(self) -> tuple[str, ...]:
        return self._values

    def project(self, columns: list[str]) -> tuple[str, ...]:
        """Values for the requested columns (in request order)."""
        return tuple(self[column] for column in columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self._columns == other._columns and self._values == other._values

    def __hash__(self):
        return hash((self._columns, self._values))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{c}={v!r}" for c, v in zip(self._columns, self._values))
        return f"Row({pairs})"


class SchemaTable:
    """A parsed schema-pattern file: named columns plus ordered rows."""

    def __init__(self, name: str, columns: list[str] | tuple[str, ...],
                 source: str = "<memory>"):
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        if len(set(columns)) != len(columns):
            raise SchemaError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns: tuple[str, ...] = tuple(columns)
        self.source = source
        self._rows: list[Row] = []

    def append(self, values: list[str] | tuple[str, ...], line: int = 0) -> Row:
        """Append a record; pads missing trailing fields with ''."""
        values = tuple(values)
        if len(values) < len(self.columns):
            values = values + ("",) * (len(self.columns) - len(values))
        elif len(values) > len(self.columns):
            raise SchemaError(
                f"table {self.name!r}: row with {len(values)} fields exceeds "
                f"{len(self.columns)} columns (line {line})"
            )
        row = Row(self.columns, values, line)
        self._rows.append(row)
        return row

    @property
    def rows(self) -> list[Row]:
        return list(self._rows)

    def column(self, name: str) -> list[str]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return [row[name] for row in self._rows]

    def where(self, predicate) -> list[Row]:
        return [row for row in self._rows if predicate(row)]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return (
            f"SchemaTable({self.name!r}, columns={list(self.columns)}, "
            f"rows={len(self._rows)})"
        )
