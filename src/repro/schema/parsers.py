"""Parsers from schema-pattern files to :class:`SchemaTable`.

Each parser fixes the column names (the "implicit keys" the paper
describes) for one well-known file.  A configurable
:class:`DelimitedParser` covers ad-hoc separator-based files.
"""

from __future__ import annotations

import re
import shlex
from abc import ABC, abstractmethod

from repro.errors import SchemaError
from repro.schema.table import SchemaTable


class SchemaParser(ABC):
    """Parser for one schema-pattern format."""

    #: Identifier used by manifests (``schema: fstab``).
    name: str = "abstract"

    #: Default file paths this parser applies to.
    file_patterns: tuple[str, ...] = ()

    @abstractmethod
    def parse(self, text: str, source: str = "<memory>") -> SchemaTable:
        """Parse ``text`` into a table."""

    def _lines(self, text: str, comment: str = "#"):
        for number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith(comment):
                continue
            yield number, line


class DelimitedParser(SchemaParser):
    """Generic separator-based parser with caller-supplied column names.

    ``delimiter=None`` splits on arbitrary whitespace (fstab style);
    a string delimiter splits exactly (passwd's ``:``).
    """

    def __init__(self, name: str, columns: list[str], *,
                 delimiter: str | None = None, comment: str = "#",
                 file_patterns: tuple[str, ...] = ()):
        self.name = name
        self.columns = list(columns)
        self.file_patterns = file_patterns
        self._delimiter = delimiter
        self._comment = comment

    def parse(self, text: str, source: str = "<memory>") -> SchemaTable:
        table = SchemaTable(self.name, self.columns, source=source)
        for number, line in self._lines(text, self._comment):
            if self._delimiter is None:
                fields = line.split(None, len(self.columns) - 1)
            else:
                fields = line.split(self._delimiter, len(self.columns) - 1)
            table.append([field.strip() for field in fields], line=number)
        return table


class PasswdParser(DelimitedParser):
    """``/etc/passwd``: user:password:uid:gid:gecos:home:shell."""

    def __init__(self):
        super().__init__(
            "passwd",
            ["user", "password", "uid", "gid", "gecos", "home", "shell"],
            delimiter=":",
            file_patterns=("*/etc/passwd", "passwd"),
        )


class GroupParser(DelimitedParser):
    """``/etc/group``: group:password:gid:members."""

    def __init__(self):
        super().__init__(
            "group",
            ["group", "password", "gid", "members"],
            delimiter=":",
            file_patterns=("*/etc/group", "group"),
        )


class ShadowParser(DelimitedParser):
    """``/etc/shadow``: user:password:lastchange:min:max:warn:inactive:expire:flag."""

    def __init__(self):
        super().__init__(
            "shadow",
            ["user", "password", "lastchange", "min", "max", "warn",
             "inactive", "expire", "flag"],
            delimiter=":",
            file_patterns=("*/etc/shadow", "shadow"),
        )


class FstabParser(DelimitedParser):
    """``/etc/fstab``: device dir type options dump pass.

    The paper's Listing 3 rule queries this table: ``dir = ?`` with
    value ``/tmp`` to check whether /tmp is a separate partition.
    """

    def __init__(self):
        super().__init__(
            "fstab",
            ["device", "dir", "type", "options", "dump", "pass"],
            delimiter=None,
            file_patterns=("*/etc/fstab", "fstab"),
        )


class MountsParser(DelimitedParser):
    """``/proc/mounts``: device dir type options dump pass."""

    def __init__(self):
        super().__init__(
            "mounts",
            ["device", "dir", "type", "options", "dump", "pass"],
            delimiter=None,
            file_patterns=("*/proc/mounts", "mounts", "mtab"),
        )


class AuditRulesParser(SchemaParser):
    """``/etc/audit/audit.rules`` (and audit.d fragments).

    Three rule shapes are normalized into one table:

    * watch rules   ``-w /etc/passwd -p wa -k identity``
    * syscall rules ``-a always,exit -F arch=b64 -S adjtimex -k time-change``
    * control rules ``-e 2``, ``-b 8192``, ``-D``

    Columns: ``kind`` (watch|syscall|control), ``path``, ``perms``,
    ``action`` (the -a list), ``fields`` (space-joined -F terms),
    ``syscalls`` (comma-joined -S names), ``key`` (-k), ``raw``.
    """

    name = "audit"
    file_patterns = ("*/audit/audit.rules", "audit.rules", "*/audit/rules.d/*.rules")

    _COLUMNS = ["kind", "path", "perms", "action", "fields", "syscalls", "key", "raw"]

    def parse(self, text: str, source: str = "<memory>") -> SchemaTable:
        table = SchemaTable(self.name, self._COLUMNS, source=source)
        for number, line in self._lines(text):
            try:
                tokens = shlex.split(line)
            except ValueError as exc:
                raise SchemaError(f"audit.rules line {number}: {exc}") from exc
            record = self._record(tokens, line, number)
            table.append(record, line=number)
        return table

    def _record(self, tokens: list[str], raw: str, number: int) -> list[str]:
        kind = "control"
        path = perms = action = key = ""
        fields: list[str] = []
        syscalls: list[str] = []
        i = 0
        while i < len(tokens):
            flag = tokens[i]
            if flag == "-w":
                kind = "watch"
                path = self._arg(tokens, i, number)
                i += 2
            elif flag == "-p":
                perms = self._arg(tokens, i, number)
                i += 2
            elif flag == "-a":
                kind = "syscall"
                action = self._arg(tokens, i, number)
                i += 2
            elif flag == "-F":
                fields.append(self._arg(tokens, i, number))
                i += 2
            elif flag == "-S":
                syscalls.extend(self._arg(tokens, i, number).split(","))
                i += 2
            elif flag == "-k":
                key = self._arg(tokens, i, number)
                i += 2
            elif flag in ("-e", "-b", "-f", "-r", "--backlog_wait_time"):
                fields.append(f"{flag.lstrip('-')}={self._arg(tokens, i, number)}")
                i += 2
            elif flag == "-D":
                fields.append("delete_all=true")
                i += 1
            else:
                raise SchemaError(
                    f"audit.rules line {number}: unknown flag {flag!r}"
                )
        return [kind, path, perms, action, " ".join(fields),
                ",".join(syscalls), key, raw]

    @staticmethod
    def _arg(tokens: list[str], i: int, number: int) -> str:
        if i + 1 >= len(tokens):
            raise SchemaError(
                f"audit.rules line {number}: flag {tokens[i]!r} needs a value"
            )
        return tokens[i + 1]


class LimitsParser(DelimitedParser):
    """``/etc/security/limits.conf``: domain type item value.

    CIS uses it for "restrict core dumps" (``* hard core 0``).
    """

    def __init__(self):
        super().__init__(
            "limits",
            ["domain", "type", "item", "value"],
            delimiter=None,
            file_patterns=("*/security/limits.conf", "limits.conf",
                           "*/security/limits.d/*.conf"),
        )


class PamParser(SchemaParser):
    """``/etc/pam.d/*`` service files: type control module args.

    Bracketed controls (``[success=1 default=ignore]``) are kept as a
    single field; ``@include`` lines become ``include`` records so rules
    can assert on the include chain.
    """

    name = "pam"
    file_patterns = ("*/pam.d/*", "common-password", "common-auth")

    _COLUMNS = ["type", "control", "module", "args"]

    def parse(self, text: str, source: str = "<memory>") -> SchemaTable:
        table = SchemaTable(self.name, self._COLUMNS, source=source)
        for number, line in self._lines(text):
            if line.startswith("@include"):
                _at, _sep, included = line.partition(" ")
                table.append(["include", "", included.strip(), ""], line=number)
                continue
            pam_type, rest = self._split_first(line, number)
            control, rest = self._split_control(rest, number)
            module, _sep, args = rest.partition(" ")
            table.append(
                [pam_type, control, module.strip(), args.strip()], line=number
            )
        return table

    @staticmethod
    def _split_first(line: str, number: int) -> tuple[str, str]:
        head, _sep, rest = line.partition(" ")
        if not rest.strip():
            raise SchemaError(f"pam line {number}: expected 'type control module'")
        return head.strip(), rest.strip()

    @staticmethod
    def _split_control(rest: str, number: int) -> tuple[str, str]:
        if rest.startswith("["):
            closing = rest.find("]")
            if closing == -1:
                raise SchemaError(f"pam line {number}: unclosed '[' control")
            return rest[: closing + 1], rest[closing + 1 :].strip()
        head, _sep, tail = rest.partition(" ")
        return head.strip(), tail.strip()


class CrontabParser(SchemaParser):
    """System crontab: minute hour dom month dow user command."""

    name = "crontab"
    file_patterns = ("*/etc/crontab", "crontab")

    _COLUMNS = ["minute", "hour", "dom", "month", "dow", "user", "command"]
    _ENV = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")

    def parse(self, text: str, source: str = "<memory>") -> SchemaTable:
        table = SchemaTable(self.name, self._COLUMNS, source=source)
        for number, line in self._lines(text):
            if self._ENV.match(line):
                continue  # environment assignments are not schedule records
            fields = line.split(None, 6)
            table.append(fields, line=number)
        return table


class SchemaParserRegistry:
    """Name- and pattern-based lookup of schema parsers."""

    def __init__(self):
        self._by_name: dict[str, SchemaParser] = {}
        self._ordered: list[SchemaParser] = []

    def register(self, parser: SchemaParser) -> None:
        if parser.name in self._by_name:
            raise ValueError(f"duplicate schema parser {parser.name!r}")
        self._by_name[parser.name] = parser
        self._ordered.append(parser)

    def get(self, name: str) -> SchemaParser:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no schema parser named {name!r}") from None

    def for_file(self, path: str) -> SchemaParser | None:
        import fnmatch
        import posixpath

        for parser in self._ordered:
            for pattern in parser.file_patterns:
                target = path if "/" in pattern else posixpath.basename(path)
                if fnmatch.fnmatch(target, pattern):
                    return parser
        return None

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name


def default_schema_registry() -> SchemaParserRegistry:
    """Registry with every built-in schema parser."""
    registry = SchemaParserRegistry()
    for parser in (
        PasswdParser(),
        GroupParser(),
        ShadowParser(),
        FstabParser(),
        MountsParser(),
        AuditRulesParser(),
        LimitsParser(),
        PamParser(),
        CrontabParser(),
    ):
        registry.register(parser)
    return registry
