"""The CVL schema-query mini-language (``query_constraints``).

A schema rule (paper Listing 3) selects rows from a schema table with a
parameterized constraint and projects columns::

    query_constraints: "dir = ?"
    query_constraints_value: ["/tmp"]
    query_columns: "*"

Grammar::

    query   := or
    or      := and ('OR' and)*
    and     := clause ('AND' clause)*
    clause  := '(' or ')' | 'NOT' clause | column op operand
    op      := '=' | '!=' | '<' | '<=' | '>' | '>=' | 'LIKE' | 'IN'
    operand := '?' | quoted | number | bareword | '(' operand (',' operand)* ')'

``?`` placeholders bind positionally to ``query_constraints_value``
entries (left to right).  ``LIKE`` uses SQL wildcards (``%``/``_``).
``<``/``>`` compare numerically when both sides parse as numbers,
lexicographically otherwise.  Keywords are case-insensitive.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.errors import QueryError
from repro.schema.table import Row, SchemaTable

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),])
      | (?P<placeholder>\?)
      | (?P<string>'[^'\\]*(?:\\.[^'\\]*)*'|"[^"\\]*(?:\\.[^"\\]*)*")
      | (?P<word>[^\s(),=<>!']+)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "like", "in"}


@dataclass
class _Token:
    kind: str  # op | punct | placeholder | string | word | keyword
    text: str


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN.match(source, position)
        if not match or match.end() == position:
            if source[position:].strip():
                raise QueryError(f"cannot tokenize {source[position:]!r}")
            break
        position = match.end()
        for kind in ("op", "punct", "placeholder", "string", "word"):
            text = match.group(kind)
            if text is not None:
                if kind == "word" and text[0] in "'\"":
                    raise QueryError(
                        f"unterminated string literal at {text[:20]!r}"
                    )
                if kind == "word" and text.lower() in _KEYWORDS:
                    tokens.append(_Token("keyword", text.lower()))
                elif kind == "string":
                    tokens.append(_Token("string", re.sub(r"\\(.)", r"\1", text[1:-1])))
                elif kind == "op" and text == "<>":
                    tokens.append(_Token("op", "!="))
                else:
                    tokens.append(_Token(kind, text))
                break
    return tokens


# ---- AST --------------------------------------------------------------------


@dataclass
class _Clause:
    column: str
    op: str
    operand: object  # _Placeholder, str, or list for IN

    def evaluate(self, row: Row, bindings: "_Bindings") -> bool:
        try:
            actual = row[self.column]
        except KeyError:
            raise QueryError(
                f"no column {self.column!r}; table has {list(row.columns)}"
            ) from None
        if self.op == "in":
            operands = self.operand if isinstance(self.operand, list) else [self.operand]
            return any(actual == bindings.resolve(op) for op in operands)
        expected = bindings.resolve(self.operand)
        if self.op == "=":
            return actual == expected
        if self.op == "!=":
            return actual != expected
        if self.op == "like":
            return _like(actual, expected)
        return _ordered(actual, expected, self.op)


@dataclass
class _Not:
    child: object

    def evaluate(self, row: Row, bindings: "_Bindings") -> bool:
        return not self.child.evaluate(row, bindings)


@dataclass
class _Bool:
    op: str  # "and" | "or"
    children: list

    def evaluate(self, row: Row, bindings: "_Bindings") -> bool:
        if self.op == "and":
            return all(child.evaluate(row, bindings) for child in self.children)
        return any(child.evaluate(row, bindings) for child in self.children)


class _Placeholder:
    """Marker for ``?``; carries its position in the constraint string."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index


class _Bindings:
    def __init__(self, values: list[str]):
        self.values = values

    def resolve(self, operand: object) -> str:
        if isinstance(operand, _Placeholder):
            if operand.index >= len(self.values):
                raise QueryError(
                    f"placeholder #{operand.index + 1} has no bound value "
                    f"({len(self.values)} given)"
                )
            return str(self.values[operand.index])
        return str(operand)


def _like(actual: str, pattern: str) -> bool:
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, actual) is not None


def _ordered(actual: str, expected: str, op: str) -> bool:
    try:
        left: object = float(actual)
        right: object = float(expected)
    except ValueError:
        left, right = actual, expected
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise QueryError(f"unknown operator {op!r}")


# ---- parser ------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[_Token], source: str):
        self._tokens = tokens
        self._source = source
        self._position = 0
        self._placeholders = 0

    def parse(self):
        node = self._or()
        if self._position != len(self._tokens):
            raise QueryError(
                f"{self._source!r}: trailing tokens at {self._peek().text!r}"
            )
        return node

    def _peek(self) -> _Token | None:
        return self._tokens[self._position] if self._position < len(self._tokens) else None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryError(f"{self._source!r}: unexpected end of query")
        self._position += 1
        return token

    def _accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self._peek()
        if token and token.kind == kind and (text is None or token.text == text):
            self._position += 1
            return token
        return None

    def _or(self):
        children = [self._and()]
        while self._accept("keyword", "or"):
            children.append(self._and())
        return children[0] if len(children) == 1 else _Bool("or", children)

    def _and(self):
        children = [self._clause()]
        while self._accept("keyword", "and"):
            children.append(self._clause())
        return children[0] if len(children) == 1 else _Bool("and", children)

    def _clause(self):
        if self._accept("keyword", "not"):
            return _Not(self._clause())
        if self._accept("punct", "("):
            node = self._or()
            if not self._accept("punct", ")"):
                raise QueryError(f"{self._source!r}: missing ')'")
            return node
        column_token = self._advance()
        if column_token.kind not in ("word", "string"):
            raise QueryError(
                f"{self._source!r}: expected a column name, got {column_token.text!r}"
            )
        op_token = self._peek()
        if op_token and op_token.kind == "op":
            self._advance()
            op = op_token.text
        elif self._accept("keyword", "like"):
            op = "like"
        elif self._accept("keyword", "in"):
            op = "in"
        else:
            raise QueryError(
                f"{self._source!r}: expected an operator after "
                f"{column_token.text!r}"
            )
        if op == "in":
            operand: object = self._operand_list()
        else:
            operand = self._operand()
        return _Clause(column_token.text, op, operand)

    def _operand(self) -> object:
        token = self._advance()
        if token.kind == "placeholder":
            placeholder = _Placeholder(self._placeholders)
            self._placeholders += 1
            return placeholder
        if token.kind in ("string", "word"):
            return token.text
        raise QueryError(f"{self._source!r}: bad operand {token.text!r}")

    def _operand_list(self) -> list:
        if not self._accept("punct", "("):
            raise QueryError(f"{self._source!r}: IN needs a parenthesized list")
        operands = [self._operand()]
        while self._accept("punct", ","):
            operands.append(self._operand())
        if not self._accept("punct", ")"):
            raise QueryError(f"{self._source!r}: missing ')' after IN list")
        return operands


def parse_query(constraints: str):
    """Parse a constraint string into an AST; empty string matches all rows."""
    constraints = (constraints or "").strip()
    if not constraints:
        return None
    parser = _Parser(_tokenize(constraints), constraints)
    return parser.parse()


class Query:
    """A compiled ``query_constraints`` + ``query_columns`` pair."""

    def __init__(self, constraints: str = "", columns: str | list[str] = "*"):
        self.constraints = constraints
        self._ast = parse_query(constraints)
        if isinstance(columns, str):
            columns = [part.strip() for part in columns.split(",")] if columns != "*" else ["*"]
        self.columns = columns

    def execute(self, table: SchemaTable, values: list[str] | None = None) -> list[tuple[str, ...]]:
        """Rows of ``table`` matching the constraints, projected to the
        requested columns.  ``values`` bind ``?`` placeholders in order."""
        bindings = _Bindings([str(v) for v in (values or [])])
        selected: list[Row] = []
        for row in table:
            if self._ast is None or self._ast.evaluate(row, bindings):
                selected.append(row)
        if self.columns == ["*"]:
            return [row.values for row in selected]
        return [row.project(self.columns) for row in selected]

    def matching_rows(self, table: SchemaTable, values: list[str] | None = None) -> list[Row]:
        """Matching rows without projection."""
        bindings = _Bindings([str(v) for v in (values or [])])
        return [
            row
            for row in table
            if self._ast is None or self._ast.evaluate(row, bindings)
        ]

    def __repr__(self) -> str:
        return f"Query({self.constraints!r}, columns={self.columns})"
