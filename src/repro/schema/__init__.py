"""Schema-pattern configuration: tables, parsers, and the query language.

The paper's second configuration style (§2.1.1) is the *schema pattern*:
files like ``/etc/passwd``, ``/etc/fstab`` and ``audit.rules`` whose lines
are positional records with implicit column meanings.  This package
normalizes such files into :class:`SchemaTable` objects and evaluates the
CVL ``query_constraints`` / ``query_columns`` mini-language against them
(paper Listing 3: ``dir = ?`` with value ``/tmp`` over the fstab table).
"""

from repro.schema.table import Row, SchemaTable
from repro.schema.parsers import (
    SchemaParser,
    SchemaParserRegistry,
    default_schema_registry,
)
from repro.schema.query import Query, parse_query

__all__ = [
    "Query",
    "Row",
    "SchemaParser",
    "SchemaParserRegistry",
    "SchemaTable",
    "default_schema_registry",
    "parse_query",
]
