"""File metadata types shared by every filesystem implementation."""

from __future__ import annotations

import stat as statmod
from dataclasses import dataclass
from enum import Enum


class FileKind(Enum):
    """The node types the crawler distinguishes."""

    FILE = "file"
    DIRECTORY = "directory"
    SYMLINK = "symlink"


@dataclass(frozen=True)
class FileStat:
    """Metadata for one filesystem node.

    ``mode`` holds only the permission bits (e.g. ``0o644``); the node type
    lives in ``kind``.  ``uid``/``gid`` are numeric, ``owner``/``group`` the
    symbolic names -- path rules may check either form (``ownership: "0:0"``
    or ``ownership: "root:root"``).
    """

    kind: FileKind
    mode: int = 0o644
    uid: int = 0
    gid: int = 0
    owner: str = "root"
    group: str = "root"
    size: int = 0
    mtime: float = 0.0

    @property
    def ownership(self) -> str:
        """Numeric ``uid:gid`` string, the form CVL path rules use."""
        return f"{self.uid}:{self.gid}"

    @property
    def ownership_names(self) -> str:
        """Symbolic ``owner:group`` string."""
        return f"{self.owner}:{self.group}"

    @property
    def is_dir(self) -> bool:
        return self.kind is FileKind.DIRECTORY

    @property
    def octal_mode(self) -> str:
        """Permission bits as a 3- or 4-digit octal string (``"644"``)."""
        return format(self.mode, "o")


def format_mode(stat: FileStat) -> str:
    """Render a stat like ``ls -l`` does, e.g. ``-rw-r--r--``."""
    type_char = {
        FileKind.FILE: "-",
        FileKind.DIRECTORY: "d",
        FileKind.SYMLINK: "l",
    }[stat.kind]
    return type_char + statmod.filemode(stat.mode)[1:]
