"""Union (overlay) filesystem used to model Docker image layers.

A Docker image is an ordered stack of layers; each layer may add files,
replace files from lower layers, or delete them with *whiteout* markers
(``.wh.<name>`` entries, as in overlayfs/aufs).  The overlay presents the
merged view the container would see, through the standard
:class:`~repro.fs.view.FilesystemView` interface, so the crawler does not
care whether it is scanning a host or an image.
"""

from __future__ import annotations

import posixpath
from typing import Sequence

from repro.errors import FileNotFoundInFrame, NotADirectoryInFrame
from repro.fs.meta import FileStat
from repro.fs.view import FilesystemView, normalize_path
from repro.fs.vfs import VirtualFilesystem

#: Basename prefix marking a deletion in an upper layer (aufs convention).
WHITEOUT_PREFIX = ".wh."

#: An opaque-directory whiteout hides *everything* below it in lower layers.
OPAQUE_MARKER = ".wh..wh..opq"


def whiteout_for(path: str) -> str:
    """Return the whiteout marker path that deletes ``path``."""
    return posixpath.join(posixpath.dirname(path), WHITEOUT_PREFIX + posixpath.basename(path))


class OverlayFilesystem(FilesystemView):
    """Merged read-only view over an ordered stack of layers.

    ``layers`` are ordered bottom-to-top; the *last* layer wins.  Layers are
    typically :class:`VirtualFilesystem` instances but any view works.
    Whiteout entries themselves are hidden from the merged view.
    """

    def __init__(self, layers: Sequence[FilesystemView]):
        if not layers:
            raise ValueError("an overlay needs at least one layer")
        self._layers = list(layers)

    @property
    def layers(self) -> list[FilesystemView]:
        """The layer stack, bottom-to-top (read-only use)."""
        return list(self._layers)

    # ---- FilesystemView --------------------------------------------------

    def exists(self, path: str) -> bool:
        return self._locate(normalize_path(path)) is not None

    def is_dir(self, path: str) -> bool:
        layer = self._locate(normalize_path(path))
        return layer is not None and layer.is_dir(path)

    def read_text(self, path: str) -> str:
        path = normalize_path(path)
        layer = self._locate(path)
        if layer is None:
            raise FileNotFoundInFrame(path)
        return layer.read_text(path)

    def stat(self, path: str) -> FileStat:
        path = normalize_path(path)
        layer = self._locate(path)
        if layer is None:
            raise FileNotFoundInFrame(path)
        return layer.stat(path)

    def listdir(self, path: str) -> list[str]:
        path = normalize_path(path)
        if not self.is_dir(path):
            if not self.exists(path):
                raise FileNotFoundInFrame(path)
            raise NotADirectoryInFrame(path)
        names: set[str] = set()
        # Walk top-down; once a layer deletes or opaques a name, lower
        # layers cannot resurrect it.  A whiteout only deletes *lower*
        # layers: an entry re-created in the same layer as its whiteout
        # stays visible (matching _locate's semantics).
        deleted: set[str] = set()
        for layer in reversed(self._layers):
            if not layer.is_dir(path):
                if layer.exists(path):
                    break  # a non-directory shadows lower directories
                continue
            children = layer.listdir(path)
            layer_whiteouts: set[str] = set()
            for name in children:
                if name == OPAQUE_MARKER:
                    continue
                if name.startswith(WHITEOUT_PREFIX):
                    layer_whiteouts.add(name[len(WHITEOUT_PREFIX):])
                    continue
                if name not in deleted:
                    names.add(name)
            deleted.update(layer_whiteouts)
            if OPAQUE_MARKER in children:
                break  # nothing below this layer is visible
        return sorted(names)

    # ---- helpers -----------------------------------------------------------

    def _locate(self, path: str) -> FilesystemView | None:
        """Return the topmost layer providing ``path``, honoring whiteouts
        along every ancestor directory."""
        if path == "/":
            return self._layers[0]
        for layer in reversed(self._layers):
            if self._whiteout_blocks(layer, path):
                return None
            if layer.exists(path):
                return layer
        return None

    def _whiteout_blocks(self, layer: FilesystemView, path: str) -> bool:
        """True if ``layer`` contains a whiteout for ``path`` or any of its
        ancestors (or an opaque marker over an ancestor directory that would
        hide the lower-layer entry)."""
        # Most layers delete nothing; VirtualFilesystem counts its whiteout
        # entries so those layers skip the ancestor probing entirely.
        whiteouts = getattr(layer, "whiteout_count", None)
        if whiteouts == 0:
            return False
        current = path
        while current != "/":
            if layer.exists(whiteout_for(current)):
                # The whiteout only blocks *lower* layers; if this same layer
                # also re-creates the path, the recreate wins.
                if not layer.exists(current):
                    return True
            parent = posixpath.dirname(current)
            opaque = posixpath.join(parent, OPAQUE_MARKER)
            if layer.exists(opaque) and not layer.exists(current):
                return True
            current = parent
        return False


def flatten(overlay: OverlayFilesystem) -> VirtualFilesystem:
    """Materialize the merged view into a fresh :class:`VirtualFilesystem`.

    Used when a container is started from an image: the container gets a
    private writable copy of the merged image content.
    """
    merged = VirtualFilesystem()
    for dirpath, _dirs, files in overlay.walk("/"):
        stat = overlay.stat(dirpath)
        merged.mkdir(
            dirpath,
            mode=stat.mode,
            uid=stat.uid,
            gid=stat.gid,
            owner=stat.owner,
            group=stat.group,
        )
        for name in files:
            path = posixpath.join(dirpath, name)
            file_stat = overlay.stat(path)
            merged.write_file(
                path,
                overlay.read_text(path),
                mode=file_stat.mode,
                uid=file_stat.uid,
                gid=file_stat.gid,
                owner=file_stat.owner,
                group=file_stat.group,
                mtime=file_stat.mtime,
            )
    return merged
