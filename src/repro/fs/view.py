"""The read-only filesystem interface every entity exposes to the crawler."""

from __future__ import annotations

import fnmatch
import posixpath
from abc import ABC, abstractmethod
from typing import Iterator

from repro.fs.meta import FileStat


def normalize_path(path: str) -> str:
    """Return ``path`` as an absolute, ``.``/``..``-free POSIX path.

    All views key their nodes by normalized paths so that lookups like
    ``/etc//ssh/./sshd_config`` behave the way a kernel would resolve them.
    """
    if not path.startswith("/"):
        path = "/" + path
    return posixpath.normpath(path)


class FilesystemView(ABC):
    """Read-only filesystem: just enough surface for configuration crawling.

    Paths are always POSIX-style and absolute.  Implementations must be
    cheap to query repeatedly; the rule engine may stat the same file from
    several rules.
    """

    @abstractmethod
    def exists(self, path: str) -> bool:
        """Return True if ``path`` names a file or directory."""

    @abstractmethod
    def is_dir(self, path: str) -> bool:
        """Return True if ``path`` names a directory."""

    @abstractmethod
    def read_text(self, path: str) -> str:
        """Return the text content of the file at ``path``.

        Raises :class:`repro.errors.FileNotFoundInFrame` if absent and
        :class:`repro.errors.IsADirectoryInFrame` if ``path`` is a directory.
        """

    @abstractmethod
    def stat(self, path: str) -> FileStat:
        """Return metadata for ``path`` (raises if absent)."""

    @abstractmethod
    def listdir(self, path: str) -> list[str]:
        """Return the sorted child names of directory ``path``."""

    # ---- derived helpers -------------------------------------------------

    def is_file(self, path: str) -> bool:
        """Return True if ``path`` exists and is not a directory."""
        return self.exists(path) and not self.is_dir(path)

    def walk(self, top: str = "/") -> Iterator[tuple[str, list[str], list[str]]]:
        """Yield ``(dirpath, dirnames, filenames)`` like :func:`os.walk`."""
        top = normalize_path(top)
        if not self.is_dir(top):
            return
        dirnames: list[str] = []
        filenames: list[str] = []
        for name in self.listdir(top):
            child = posixpath.join(top, name)
            if self.is_dir(child):
                dirnames.append(name)
            else:
                filenames.append(name)
        yield top, dirnames, filenames
        for name in dirnames:
            yield from self.walk(posixpath.join(top, name))

    def find(self, top: str = "/", pattern: str = "*") -> list[str]:
        """Return paths of all files under ``top`` whose *basename* matches
        the glob ``pattern`` (depth-first, sorted within each directory)."""
        matches: list[str] = []
        for dirpath, _dirnames, filenames in self.walk(top):
            for name in filenames:
                if fnmatch.fnmatch(name, pattern):
                    matches.append(posixpath.join(dirpath, name))
        return matches

    def files_under(self, top: str) -> list[str]:
        """Return every file path under ``top`` (or ``[top]`` if it is a file)."""
        top = normalize_path(top)
        if self.is_file(top):
            return [top]
        return self.find(top, "*")
