"""Installed-software state: a dpkg-style package database.

The paper's definition of "system state" configuration (§2.1.2) includes
"software packages and their versions".  Entities carry a
:class:`PackageDatabase`; rules can assert a package's presence, absence,
or minimum version.  Version comparison implements the Debian ordering
rules (epoch, upstream, revision; digit runs compare numerically,
non-digit runs compare with ``~`` sorting before everything).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Package:
    """One installed package."""

    name: str
    version: str
    architecture: str = "amd64"
    description: str = ""

    def __str__(self) -> str:
        return f"{self.name}={self.version}"


class PackageDatabase:
    """Mapping of package name to :class:`Package` with version queries."""

    def __init__(self, packages: list[Package] | None = None):
        self._packages: dict[str, Package] = {}
        for package in packages or []:
            self.install(package)

    def install(self, package: Package) -> None:
        """Add or upgrade a package."""
        self._packages[package.name] = package

    def remove(self, name: str) -> None:
        """Remove a package if installed (no error if absent)."""
        self._packages.pop(name, None)

    def installed(self, name: str) -> bool:
        return name in self._packages

    def get(self, name: str) -> Package | None:
        return self._packages.get(name)

    def version_of(self, name: str) -> str | None:
        package = self._packages.get(name)
        return package.version if package else None

    def at_least(self, name: str, version: str) -> bool:
        """True if ``name`` is installed at ``version`` or newer."""
        installed = self.version_of(name)
        return installed is not None and compare_versions(installed, version) >= 0

    def names(self) -> list[str]:
        return sorted(self._packages)

    def __len__(self) -> int:
        return len(self._packages)

    def __iter__(self):
        return iter(sorted(self._packages.values(), key=lambda p: p.name))


@dataclass
class _VersionParts:
    epoch: int
    upstream: str
    revision: str = field(default="")


def _split_version(version: str) -> _VersionParts:
    epoch = 0
    rest = version
    if ":" in rest:
        head, rest = rest.split(":", 1)
        if head.isdigit():
            epoch = int(head)
    revision = ""
    if "-" in rest:
        rest, revision = rest.rsplit("-", 1)
    return _VersionParts(epoch=epoch, upstream=rest, revision=revision)


_CHUNK = re.compile(r"(\d+|\D+)")


def _order(char: str) -> int:
    """Debian character ordering: ``~`` < end-of-string < letters < others."""
    if char == "~":
        return -1
    if char.isalpha():
        return ord(char)
    return ord(char) + 256


def _compare_nondigit(left: str, right: str) -> int:
    for l_char, r_char in zip(left, right):
        diff = _order(l_char) - _order(r_char)
        if diff:
            return -1 if diff < 0 else 1
    if len(left) == len(right):
        return 0
    # The longer string is greater, unless it continues with '~' (which
    # sorts before end-of-string).
    longer, sign = (right, -1) if len(left) < len(right) else (left, 1)
    tail = longer[min(len(left), len(right))]
    if tail == "~":
        return -sign
    return sign

def _compare_component(left: str, right: str) -> int:
    left_chunks = _CHUNK.findall(left)
    right_chunks = _CHUNK.findall(right)
    for l_chunk, r_chunk in zip(left_chunks, right_chunks):
        l_digit = l_chunk.isdigit()
        r_digit = r_chunk.isdigit()
        if l_digit and r_digit:
            diff = int(l_chunk) - int(r_chunk)
            if diff:
                return -1 if diff < 0 else 1
        elif l_digit != r_digit:
            # A digit run sorts after an empty/non-digit run except vs '~'.
            if (r_chunk if l_digit else l_chunk).startswith("~"):
                return 1 if l_digit else -1
            return -1 if l_digit else 1
        else:
            diff = _compare_nondigit(l_chunk, r_chunk)
            if diff:
                return diff
    if len(left_chunks) == len(right_chunks):
        return 0
    longer, sign = (
        (right_chunks, -1)
        if len(left_chunks) < len(right_chunks)
        else (left_chunks, 1)
    )
    tail = longer[min(len(left_chunks), len(right_chunks))]
    if tail.startswith("~"):
        return -sign
    return sign


def compare_versions(left: str, right: str) -> int:
    """Compare two Debian-style version strings.

    Returns a negative number if ``left`` is older, zero if equal, positive
    if newer.  Handles epochs (``1:2.0``), revisions (``2.0-3ubuntu1``) and
    tilde pre-releases (``2.0~rc1`` < ``2.0``).
    """
    l_parts = _split_version(left)
    r_parts = _split_version(right)
    if l_parts.epoch != r_parts.epoch:
        return -1 if l_parts.epoch < r_parts.epoch else 1
    upstream = _compare_component(l_parts.upstream, r_parts.upstream)
    if upstream:
        return upstream
    return _compare_component(l_parts.revision, r_parts.revision)
