"""In-memory filesystem with stat metadata.

This is the storage layer for synthetic entities (hosts, image layers,
containers).  It stores text files, directories, and symlinks keyed by
normalized absolute path, and carries the metadata that "system state"
configuration rules check: permission bits, numeric and symbolic ownership,
size, and mtime.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field, replace

from repro.chaos.fabric import _CHAOS
from repro.errors import (
    FileNotFoundInFrame,
    FilesystemError,
    IsADirectoryInFrame,
    NotADirectoryInFrame,
)
from repro.fs.meta import FileKind, FileStat, format_mode  # noqa: F401 (re-export)
from repro.fs.view import FilesystemView


@dataclass
class _Node:
    stat: FileStat
    content: str = ""
    link_target: str | None = None
    children: set[str] = field(default_factory=set)


class VirtualFilesystem(FilesystemView):
    """A mutable in-memory filesystem.

    The write API mirrors what entity builders need (``write_file``,
    ``mkdir``, ``symlink``, ``chmod``, ``chown``, ``remove``); the read API
    implements :class:`repro.fs.view.FilesystemView`.  Symlinks are resolved
    on read with a bounded hop count.
    """

    _MAX_SYMLINK_HOPS = 16

    def __init__(self):
        self._nodes: dict[str, _Node] = {
            "/": _Node(stat=FileStat(kind=FileKind.DIRECTORY, mode=0o755))
        }
        #: Count of whiteout-marker entries (``.wh.*`` basenames).  Overlay
        #: views consult this to skip per-path whiteout probing entirely on
        #: the common layer that deletes nothing.
        self._whiteout_count = 0
        #: Count of symlink nodes.  :meth:`flat_nodes` only offers the raw
        #: bulk-read path when this is zero, because symlink resolution can
        #: make a walk observe paths that no stored node carries.
        self._symlink_count = 0

    @property
    def whiteout_count(self) -> int:
        """Number of stored paths whose basename is a whiteout marker."""
        return self._whiteout_count

    @staticmethod
    def _is_whiteout_name(path: str) -> bool:
        return posixpath.basename(path).startswith(".wh.")

    # ---- write API -------------------------------------------------------

    def write_file(
        self,
        path: str,
        content: str = "",
        *,
        mode: int = 0o644,
        uid: int = 0,
        gid: int = 0,
        owner: str = "root",
        group: str = "root",
        mtime: float = 0.0,
    ) -> None:
        """Create or replace a regular file, creating parent directories."""
        path = self._norm(path)
        self._ensure_parents(path)
        existing = self._nodes.get(path)
        if existing is not None and existing.stat.kind is FileKind.DIRECTORY:
            raise IsADirectoryInFrame(path)
        if existing is None and self._is_whiteout_name(path):
            self._whiteout_count += 1
        if existing is not None and existing.link_target is not None:
            self._symlink_count -= 1
        self._nodes[path] = _Node(
            stat=FileStat(
                kind=FileKind.FILE,
                mode=mode,
                uid=uid,
                gid=gid,
                owner=owner,
                group=group,
                size=len(content.encode()),
                mtime=mtime,
            ),
            content=content,
        )
        self._link_to_parent(path)

    def mkdir(
        self,
        path: str,
        *,
        mode: int = 0o755,
        uid: int = 0,
        gid: int = 0,
        owner: str = "root",
        group: str = "root",
    ) -> None:
        """Create directory ``path`` (and parents); no-op if it exists."""
        path = self._norm(path)
        if path in self._nodes:
            if self._nodes[path].stat.kind is not FileKind.DIRECTORY:
                raise NotADirectoryInFrame(path)
            return
        self._ensure_parents(path)
        if self._is_whiteout_name(path):
            self._whiteout_count += 1
        self._nodes[path] = _Node(
            stat=FileStat(
                kind=FileKind.DIRECTORY,
                mode=mode,
                uid=uid,
                gid=gid,
                owner=owner,
                group=group,
            )
        )
        self._link_to_parent(path)

    def symlink(self, path: str, target: str) -> None:
        """Create a symlink at ``path`` pointing at ``target``."""
        path = self._norm(path)
        self._ensure_parents(path)
        existing = self._nodes.get(path)
        if existing is None and self._is_whiteout_name(path):
            self._whiteout_count += 1
        if existing is None or existing.link_target is None:
            self._symlink_count += 1
        self._nodes[path] = _Node(
            stat=FileStat(kind=FileKind.SYMLINK, mode=0o777),
            link_target=target,
        )
        self._link_to_parent(path)

    def chmod(self, path: str, mode: int) -> None:
        """Change the permission bits of an existing node."""
        node = self._require(self._norm(path))
        node.stat = replace(node.stat, mode=mode)

    def chown(
        self,
        path: str,
        uid: int,
        gid: int,
        owner: str | None = None,
        group: str | None = None,
    ) -> None:
        """Change numeric (and optionally symbolic) ownership of a node."""
        node = self._require(self._norm(path))
        node.stat = replace(
            node.stat,
            uid=uid,
            gid=gid,
            owner=owner if owner is not None else node.stat.owner,
            group=group if group is not None else node.stat.group,
        )

    def remove(self, path: str) -> None:
        """Remove a node (recursively if a directory)."""
        path = self._norm(path)
        if path == "/":
            raise FilesystemError("cannot remove the filesystem root")
        node = self._require(path)
        for child in sorted(node.children):
            self.remove(posixpath.join(path, child))
        if self._is_whiteout_name(path):
            self._whiteout_count -= 1
        if node.link_target is not None:
            self._symlink_count -= 1
        del self._nodes[path]
        parent = posixpath.dirname(path)
        self._nodes[parent].children.discard(posixpath.basename(path))

    # ---- read API (FilesystemView) ----------------------------------------

    def exists(self, path: str) -> bool:
        try:
            self._resolve(self._norm(path))
            return True
        except FileNotFoundInFrame:
            return False

    def is_dir(self, path: str) -> bool:
        try:
            node = self._nodes[self._resolve(self._norm(path))]
        except FileNotFoundInFrame:
            return False
        return node.stat.kind is FileKind.DIRECTORY

    def read_text(self, path: str) -> str:
        if _CHAOS.armed:
            _CHAOS.fire("fs.read", path)
        node = self._nodes[self._resolve(self._norm(path))]
        if node.stat.kind is FileKind.DIRECTORY:
            raise IsADirectoryInFrame(path)
        return node.content

    def stat(self, path: str) -> FileStat:
        """Stat with symlink resolution (like :func:`os.stat`)."""
        return self._nodes[self._resolve(self._norm(path))].stat

    def lstat(self, path: str) -> FileStat:
        """Stat without following a final symlink (like :func:`os.lstat`)."""
        return self._require(self._norm(path)).stat

    def readlink(self, path: str) -> str:
        """Return the target of the symlink at ``path``."""
        node = self._require(self._norm(path))
        if node.link_target is None:
            raise FileNotFoundInFrame(f"{path} is not a symlink")
        return node.link_target

    def listdir(self, path: str) -> list[str]:
        resolved = self._resolve(self._norm(path))
        node = self._nodes[resolved]
        if node.stat.kind is not FileKind.DIRECTORY:
            raise NotADirectoryInFrame(path)
        return sorted(node.children)

    def paths(self) -> list[str]:
        """Every path in the filesystem, sorted (used by overlay + tests)."""
        return sorted(self._nodes)

    def flat_nodes(self) -> list[tuple[str, FileStat, str]] | None:
        """``(path, stat, content)`` for every node, sorted by path.

        Returns ``None`` when the tree contains symlinks: resolution can
        make a walk observe paths no stored node carries, so callers must
        fall back to a real traversal.  With no symlinks the stored nodes
        *are* the observable filesystem, which lets whole-frame
        fingerprinting skip per-path symlink resolution entirely.
        """
        if self._symlink_count:
            return None
        return [
            (path, node.stat, node.content)
            for path, node in sorted(self._nodes.items())
        ]

    # ---- internals --------------------------------------------------------

    @staticmethod
    def _norm(path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        return posixpath.normpath(path)

    def _require(self, path: str) -> _Node:
        node = self._nodes.get(path)
        if node is None:
            raise FileNotFoundInFrame(path)
        return node

    def _resolve(self, path: str, hops: int = 0) -> str:
        """Resolve symlinks in every component of ``path``; return the final
        real path.  Raises :class:`FileNotFoundInFrame` on dangling links or
        loops (after a bounded number of hops)."""
        # Fast path: stored keys are canonical (``_ensure_parents`` refuses
        # to create children under symlinks), so a direct dict hit on a
        # non-symlink node needs no component-by-component resolution.
        # This is the hot call of fleet-scale file discovery.
        node = self._nodes.get(path)
        if node is not None and node.link_target is None:
            return path
        if hops > self._MAX_SYMLINK_HOPS:
            raise FileNotFoundInFrame(f"{path}: too many levels of symbolic links")
        resolved = "/"
        parts = [part for part in path.split("/") if part]
        for index, part in enumerate(parts):
            candidate = posixpath.join(resolved, part)
            node = self._nodes.get(candidate)
            if node is None:
                raise FileNotFoundInFrame(path)
            if node.link_target is not None:
                target = node.link_target
                if not target.startswith("/"):
                    target = posixpath.join(resolved, target)
                remainder = "/".join(parts[index + 1:])
                full = posixpath.join(target, remainder) if remainder else target
                return self._resolve(posixpath.normpath(full), hops + 1)
            resolved = candidate
        return resolved

    def _ensure_parents(self, path: str) -> None:
        parent = posixpath.dirname(path)
        if parent == path:
            return
        existing = self._nodes.get(parent)
        if existing is None:
            self.mkdir(parent)
        elif existing.stat.kind is not FileKind.DIRECTORY:
            raise NotADirectoryInFrame(parent)

    def _link_to_parent(self, path: str) -> None:
        parent = posixpath.dirname(path)
        if parent != path:
            self._nodes[parent].children.add(posixpath.basename(path))
