"""Filesystem substrate.

ConfigValidator's extractor ("crawler") reads configuration files and their
metadata from many kinds of entities: live hosts, Docker image layers,
running containers.  All of those are presented to the rest of the library
through one small read-only interface, :class:`FilesystemView`, with three
implementations:

* :class:`VirtualFilesystem` -- an in-memory tree with full stat metadata
  (permissions, ownership, mtime).  Workload generators build entities on
  top of this.
* :class:`OverlayFilesystem` -- a union mount of several layers, used to
  model Docker images (each layer is itself a view; upper layers shadow
  lower ones, whiteouts delete).
* :class:`RealFilesystem` -- a read-only adapter over the host filesystem
  rooted at a directory, so the validator can also scan real machines.

:class:`PackageDatabase` models the installed-software state (dpkg-like)
that "system state" rules check versions against.
"""

from repro.fs.meta import FileKind, FileStat, format_mode
from repro.fs.view import FilesystemView, normalize_path
from repro.fs.vfs import VirtualFilesystem
from repro.fs.overlay import OverlayFilesystem, WHITEOUT_PREFIX, flatten, whiteout_for
from repro.fs.realfs import RealFilesystem
from repro.fs.packages import Package, PackageDatabase, compare_versions

__all__ = [
    "FileKind",
    "FileStat",
    "FilesystemView",
    "OverlayFilesystem",
    "Package",
    "PackageDatabase",
    "RealFilesystem",
    "VirtualFilesystem",
    "WHITEOUT_PREFIX",
    "compare_versions",
    "flatten",
    "format_mode",
    "normalize_path",
    "whiteout_for",
]
