"""Read-only adapter presenting a real directory tree as a FilesystemView.

This is what lets the validator run against an actual machine (or an
unpacked image rootfs on disk) with the exact same rule engine used for
synthetic entities.  The adapter is rooted: path ``/etc/ssh/sshd_config``
resolves to ``<root>/etc/ssh/sshd_config`` on disk, so scanning an unpacked
chroot needs no path rewriting in the rules.
"""

from __future__ import annotations

import os
import stat as statmod

from repro.chaos.fabric import _CHAOS
from repro.errors import FileNotFoundInFrame, IsADirectoryInFrame
from repro.fs.meta import FileKind, FileStat
from repro.fs.view import FilesystemView, normalize_path


class RealFilesystem(FilesystemView):
    """Expose the host filesystem under ``root`` (default ``/``) read-only."""

    def __init__(self, root: str = "/"):
        self._root = os.path.abspath(root)

    @property
    def root(self) -> str:
        return self._root

    def _host_path(self, path: str) -> str:
        relative = normalize_path(path).lstrip("/")
        return os.path.join(self._root, relative) if relative else self._root

    # ---- FilesystemView --------------------------------------------------

    def exists(self, path: str) -> bool:
        return os.path.exists(self._host_path(path))

    def is_dir(self, path: str) -> bool:
        return os.path.isdir(self._host_path(path))

    def read_text(self, path: str) -> str:
        if _CHAOS.armed:
            _CHAOS.fire("fs.read", path)
        host = self._host_path(path)
        if os.path.isdir(host):
            raise IsADirectoryInFrame(path)
        try:
            with open(host, "r", encoding="utf-8", errors="replace") as handle:
                return handle.read()
        except FileNotFoundError:
            raise FileNotFoundInFrame(path) from None

    def stat(self, path: str) -> FileStat:
        host = self._host_path(path)
        try:
            result = os.stat(host)
        except FileNotFoundError:
            raise FileNotFoundInFrame(path) from None
        if statmod.S_ISDIR(result.st_mode):
            kind = FileKind.DIRECTORY
        elif statmod.S_ISLNK(result.st_mode):
            kind = FileKind.SYMLINK
        else:
            kind = FileKind.FILE
        owner, group = _names_for(result.st_uid, result.st_gid)
        return FileStat(
            kind=kind,
            mode=statmod.S_IMODE(result.st_mode),
            uid=result.st_uid,
            gid=result.st_gid,
            owner=owner,
            group=group,
            size=result.st_size,
            mtime=result.st_mtime,
        )

    def listdir(self, path: str) -> list[str]:
        host = self._host_path(path)
        try:
            return sorted(os.listdir(host))
        except FileNotFoundError:
            raise FileNotFoundInFrame(path) from None


def _names_for(uid: int, gid: int) -> tuple[str, str]:
    """Best-effort uid/gid to name resolution (falls back to the numbers)."""
    owner = str(uid)
    group = str(gid)
    try:
        import pwd

        owner = pwd.getpwuid(uid).pw_name
    except (ImportError, KeyError):
        pass
    try:
        import grp

        group = grp.getgrgid(gid).gr_name
    except (ImportError, KeyError):
        pass
    return owner, group
