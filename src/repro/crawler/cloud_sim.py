"""Simulated cloud control plane (OpenStack-flavoured).

The paper validates cloud configuration in two forms:

* **service config files** on controller nodes (keystone.conf, nova.conf,
  per OSSG guidance) -- those live on an ordinary host entity; and
* **runtime cloud resources** queried over APIs (§2.1.3: "cloud platforms
  typically store state about cloud resources in a central/master
  management node, typically accessible over APIs").

This module models the second: projects, instances, security groups, and
users with roles behind a small HTTP-shaped ``get(path)`` API.  The cloud
runtime plugin flattens the answers into key-value runtime state for
script rules (e.g. "no security group may allow 0.0.0.0/0 on port 22").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import CloudAPIError

_resource_counter = itertools.count(1)


def _resource_id(prefix: str) -> str:
    return f"{prefix}-{next(_resource_counter):06d}"


@dataclass
class SecurityGroupRule:
    """One ingress/egress rule."""

    direction: str = "ingress"          # ingress | egress
    protocol: str = "tcp"               # tcp | udp | icmp | any
    port_min: int = 0
    port_max: int = 65535
    remote_cidr: str = "0.0.0.0/0"

    def covers_port(self, port: int) -> bool:
        return self.port_min <= port <= self.port_max

    @property
    def world_open(self) -> bool:
        return self.remote_cidr in ("0.0.0.0/0", "::/0")

    def as_dict(self) -> dict:
        return {
            "direction": self.direction,
            "protocol": self.protocol,
            "port_range_min": self.port_min,
            "port_range_max": self.port_max,
            "remote_ip_prefix": self.remote_cidr,
        }


@dataclass
class SecurityGroup:
    name: str
    description: str = ""
    rules: list[SecurityGroupRule] = field(default_factory=list)
    group_id: str = field(default_factory=lambda: _resource_id("sg"))

    def add_rule(self, rule: SecurityGroupRule) -> None:
        self.rules.append(rule)

    def as_dict(self) -> dict:
        return {
            "id": self.group_id,
            "name": self.name,
            "description": self.description,
            "security_group_rules": [rule.as_dict() for rule in self.rules],
        }


@dataclass
class Instance:
    name: str
    image: str = "ubuntu-16.04"
    flavor: str = "m1.small"
    security_groups: list[str] = field(default_factory=list)
    key_name: str = ""
    status: str = "ACTIVE"
    instance_id: str = field(default_factory=lambda: _resource_id("vm"))

    def as_dict(self) -> dict:
        return {
            "id": self.instance_id,
            "name": self.name,
            "image": self.image,
            "flavor": self.flavor,
            "security_groups": [{"name": name} for name in self.security_groups],
            "key_name": self.key_name,
            "status": self.status,
        }


@dataclass
class CloudUser:
    name: str
    roles: list[str] = field(default_factory=list)
    enabled: bool = True
    mfa_enabled: bool = False

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "roles": list(self.roles),
            "enabled": self.enabled,
            "mfa_enabled": self.mfa_enabled,
        }


@dataclass
class Project:
    name: str
    instances: dict[str, Instance] = field(default_factory=dict)
    security_groups: dict[str, SecurityGroup] = field(default_factory=dict)
    users: dict[str, CloudUser] = field(default_factory=dict)

    def add_instance(self, instance: Instance) -> Instance:
        self.instances[instance.name] = instance
        return instance

    def add_security_group(self, group: SecurityGroup) -> SecurityGroup:
        self.security_groups[group.name] = group
        return group

    def add_user(self, user: CloudUser) -> CloudUser:
        self.users[user.name] = user
        return user


class CloudControlPlane:
    """The master management node: owns projects and answers API queries.

    ``get`` accepts REST-ish paths and returns plain dicts/lists, e.g.::

        cloud.get("/projects/web/security-groups")
        cloud.get("/projects/web/instances/frontend")
    """

    def __init__(self, region: str = "us-south"):
        self.region = region
        self._projects: dict[str, Project] = {}

    def create_project(self, name: str) -> Project:
        if name in self._projects:
            raise CloudAPIError(f"project {name!r} already exists")
        project = Project(name=name)
        self._projects[name] = project
        return project

    def project(self, name: str) -> Project:
        try:
            return self._projects[name]
        except KeyError:
            raise CloudAPIError(f"no such project: {name}") from None

    def projects(self) -> list[Project]:
        return [self._projects[name] for name in sorted(self._projects)]

    def get(self, path: str):
        """Resolve a REST-ish path against the resource model."""
        parts = [part for part in path.strip("/").split("/") if part]
        if not parts:
            return {"region": self.region, "projects": sorted(self._projects)}
        if parts[0] != "projects":
            raise CloudAPIError(f"unknown API root {parts[0]!r}")
        if len(parts) == 1:
            return [{"name": name} for name in sorted(self._projects)]
        project = self.project(parts[1])
        if len(parts) == 2:
            return {
                "name": project.name,
                "instances": sorted(project.instances),
                "security_groups": sorted(project.security_groups),
                "users": sorted(project.users),
            }
        collection = parts[2]
        if collection == "instances":
            return self._collection(project.instances, parts[3:], path)
        if collection == "security-groups":
            return self._collection(project.security_groups, parts[3:], path)
        if collection == "users":
            return self._collection(project.users, parts[3:], path)
        raise CloudAPIError(f"unknown collection {collection!r} in {path!r}")

    @staticmethod
    def _collection(resources: dict, rest: list[str], path: str):
        if not rest:
            return [resource.as_dict() for _name, resource in sorted(resources.items())]
        name = rest[0]
        if name not in resources:
            raise CloudAPIError(f"no such resource: {path}")
        return resources[name].as_dict()
