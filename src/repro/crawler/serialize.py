"""Frame serialization: decouple scanning from validation.

The paper's production deployment works "against system configuration
frames ... without requiring any local installation or remote access"
(§2.2, §5): an agentless collector snapshots an entity, and validation
happens elsewhere, later.  This module provides that decoupling --
:func:`frame_to_dict` / :func:`frame_from_dict` (and the JSON string
forms) produce a self-contained document holding the file tree with
metadata, the package database, plugin runtime state, and provenance.

Deserialized frames rebuild onto a :class:`VirtualFilesystem`, so a frame
captured from a *real* host (via :class:`~repro.fs.RealFilesystem`) can be
validated on a machine that never saw that host.
"""

from __future__ import annotations

import json
import posixpath

from repro.errors import CrawlerError
from repro.fs.packages import Package, PackageDatabase
from repro.fs.vfs import VirtualFilesystem
from repro.fs.view import FilesystemView
from repro.crawler.frame import ConfigFrame

#: Format marker so old readers fail loudly on future layouts.
FORMAT_VERSION = 1


def _files_to_records(files: FilesystemView) -> list[dict]:
    records: list[dict] = []
    for dirpath, _dirs, filenames in files.walk("/"):
        stat = files.stat(dirpath)
        records.append(
            {
                "path": dirpath,
                "kind": "directory",
                "mode": stat.mode,
                "uid": stat.uid,
                "gid": stat.gid,
                "owner": stat.owner,
                "group": stat.group,
            }
        )
        for name in filenames:
            path = posixpath.join(dirpath, name)
            file_stat = files.stat(path)
            records.append(
                {
                    "path": path,
                    "kind": "file",
                    "mode": file_stat.mode,
                    "uid": file_stat.uid,
                    "gid": file_stat.gid,
                    "owner": file_stat.owner,
                    "group": file_stat.group,
                    "mtime": file_stat.mtime,
                    "content": files.read_text(path),
                }
            )
    return records


def frame_to_dict(frame: ConfigFrame) -> dict:
    """A JSON-shaped snapshot of ``frame`` (files inlined as text)."""
    return {
        "format": FORMAT_VERSION,
        "entity_name": frame.entity_name,
        "entity_kind": frame.entity_kind,
        "files": _files_to_records(frame.files),
        "packages": [
            {
                "name": package.name,
                "version": package.version,
                "architecture": package.architecture,
            }
            for package in frame.packages
        ],
        "runtime": {
            namespace: dict(values)
            for namespace, values in sorted(frame.runtime.items())
        },
        "metadata": dict(frame.metadata),
    }


def frame_from_dict(document: dict) -> ConfigFrame:
    """Rebuild a frame from :func:`frame_to_dict` output."""
    version = document.get("format")
    if version != FORMAT_VERSION:
        raise CrawlerError(
            f"unsupported frame format {version!r} (expected {FORMAT_VERSION})"
        )
    fs = VirtualFilesystem()
    for record in document.get("files", []):
        common = dict(
            mode=int(record.get("mode", 0o644)),
            uid=int(record.get("uid", 0)),
            gid=int(record.get("gid", 0)),
            owner=str(record.get("owner", "root")),
            group=str(record.get("group", "root")),
        )
        if record.get("kind") == "directory":
            if record["path"] != "/":
                fs.mkdir(record["path"], **common)
        else:
            fs.write_file(
                record["path"],
                record.get("content", ""),
                mtime=float(record.get("mtime", 0.0)),
                **common,
            )
    packages = PackageDatabase(
        [
            Package(
                name=entry["name"],
                version=entry["version"],
                architecture=entry.get("architecture", "amd64"),
            )
            for entry in document.get("packages", [])
        ]
    )
    return ConfigFrame(
        entity_name=str(document.get("entity_name", "unknown")),
        entity_kind=str(document.get("entity_kind", "host")),
        files=fs,
        packages=packages,
        runtime={
            str(namespace): {str(k): str(v) for k, v in values.items()}
            for namespace, values in document.get("runtime", {}).items()
        },
        metadata={
            str(k): str(v) for k, v in document.get("metadata", {}).items()
        },
    )


def dump_frame(frame: ConfigFrame, *, indent: int | None = None) -> str:
    """Serialize a frame to JSON text."""
    return json.dumps(frame_to_dict(frame), indent=indent, sort_keys=True)


def load_frame(text: str) -> ConfigFrame:
    """Deserialize a frame from JSON text."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CrawlerError(f"invalid frame JSON: {exc.msg}") from exc
    if not isinstance(document, dict):
        raise CrawlerError("frame JSON must be an object")
    return frame_from_dict(document)
