"""Frame fingerprints: content-addressed digests of what rules read.

Incremental revalidation (:mod:`repro.engine.incremental`) skips a rule
when everything it read last cycle is provably unchanged.  "What it
read" is expressed as *dependency keys* -- one per observable slice of a
:class:`~repro.crawler.frame.ConfigFrame` -- and "provably unchanged" is
a digest comparison per key.  :class:`FrameFingerprint` computes those
digests lazily and memoizes them, so a scan cycle hashes each file at
most once per frame no matter how many rules depend on it.

Dependency keys are ``(kind, arg)`` string pairs:

* ``("file", path)``      -- file *content* (sha256, reusing the parse
  cache's address), with ``absent``/``dir`` markers so existence changes
  invalidate too;
* ``("filemeta", path)``  -- permission bits and ownership (what path
  rules read), again with an ``absent`` marker.  Split from ``file`` so
  a ``chmod`` does not dirty every tree rule that parses the file;
* ``("listing", paths)``  -- the ordered file list under one or more
  search paths (``arg`` is the newline-joined path tuple).  Catches
  files appearing or disappearing where a rule discovers candidates;
* ``("runtime", ns)``     -- one plugin runtime namespace, keys+values;
* ``("runtime_keys", "")``-- the set of runtime namespaces;
* ``("packages", "")``    -- the installed-package database.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

from repro.errors import FilesystemError
from repro.fs.view import normalize_path

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> crawler)
    from repro.crawler.frame import ConfigFrame

#: Dependency-key kinds (the first element of a dep key).
FILE = "file"
FILEMETA = "filemeta"
LISTING = "listing"
RUNTIME = "runtime"
RUNTIME_KEYS = "runtime_keys"
PACKAGES = "packages"

#: Separator used to fold a search-path tuple into one ``listing`` arg.
LISTING_SEP = "\n"

#: Digest markers for non-content states.
ABSENT = "absent"
IS_DIR = "dir"


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8", "surrogateescape")).hexdigest()


def listing_arg(search_paths: list[str] | tuple[str, ...]) -> str:
    """Canonical ``listing`` dep arg for a search-path sequence."""
    return LISTING_SEP.join(search_paths)


class FrameFingerprint:
    """Lazy, memoized digests of one frame's observable state.

    Frames are immutable snapshots for the duration of a scan cycle, so
    each dep key's digest is computed once and cached.  Digest functions
    deliberately exclude anything rules cannot observe (mtimes, frame
    metadata), so operationally-irrelevant churn never dirties a rule.
    """

    def __init__(self, frame: "ConfigFrame"):
        self._frame = frame
        self._memo: dict[tuple[str, str], str] = {}
        #: All file paths in walk (DFS, sorted-children) order; built by
        #: the first :meth:`frame_digest` or ``listing`` request.
        self._files_index: list[str] | None = None

    def digest(self, dep: tuple[str, str]) -> str:
        """Digest of one dependency key (memoized)."""
        cached = self._memo.get(dep)
        if cached is None:
            cached = self._compute(dep)
            self._memo[dep] = cached
        return cached

    def frame_digest(self) -> str:
        """One digest over everything any dependency kind can observe.

        An unchanged frame digest proves *every* ``(kind, arg)`` digest
        is unchanged: it folds in each file's path, permissions,
        ownership, and content digest (covering ``file``, ``filemeta``,
        and ``listing``), every directory's metadata, the package
        database, and all runtime namespaces.  The verdict store
        compares it first so clean frames skip per-dependency
        verification entirely -- one filesystem pass instead of one per
        recorded dependency.

        The pass doubles as a digest warm-up: each file's ``file`` and
        ``filemeta`` digests land in the memo, so a cold cycle's
        dependency recording never hashes a file a second time.
        """
        cached = self._memo.get(("frame", ""))
        if cached is not None:
            return cached
        import posixpath

        from repro.engine.parse_cache import content_digest

        memo = self._memo
        hasher = hashlib.sha256()

        def fold(text: str) -> None:
            hasher.update(text.encode("utf-8", "surrogateescape"))
            hasher.update(b"\0")

        files = self._frame.files
        file_index: list[str] = []
        flat = getattr(files, "flat_nodes", None)
        entries = flat() if flat is not None else None
        if entries is not None:
            # Symlink-free VirtualFilesystem: the stored nodes are exactly
            # what a walk observes, so fold them directly without per-path
            # symlink resolution or listdir/is_dir churn.  Ordering is
            # lexicographic rather than walk order; digests are only ever
            # compared against digests built the same way, so either
            # canonical order works as long as one frame sticks to one.
            from repro.fs.meta import FileKind

            for path, stat, content in entries:
                if stat.kind is FileKind.DIRECTORY:
                    meta = f"{IS_DIR}:{stat.mode:o}:{stat.ownership}:" \
                           f"{stat.ownership_names}"
                    memo[(FILEMETA, path)] = meta
                    fold(f"d:{path}:{meta}")
                else:
                    file_index.append(path)
                    meta = (f"{stat.mode:o}:{stat.ownership}:"
                            f"{stat.ownership_names}")
                    content = content_digest(content)
                    memo[(FILEMETA, path)] = meta
                    memo[(FILE, path)] = content
                    fold(f"f:{path}:{meta}:{content}")
            if self._files_index is None:
                self._files_index = file_index
            for package in self._frame.packages:
                fold(
                    f"p:{package.name}={package.version}:"
                    f"{package.architecture}"
                )
            fold(json.dumps(self._frame.runtime, sort_keys=True))
            digest = hasher.hexdigest()
            memo[("frame", "")] = digest
            return digest
        for dirpath, _dirs, filenames in files.walk("/"):
            stat = files.stat(dirpath)
            meta = f"{IS_DIR}:{stat.mode:o}:{stat.ownership}:" \
                   f"{stat.ownership_names}"
            memo[(FILEMETA, dirpath)] = meta
            fold(f"d:{dirpath}:{meta}")
            for name in filenames:
                path = posixpath.join(dirpath, name)
                file_index.append(path)
                try:
                    file_stat = files.stat(path)
                    meta = (f"{file_stat.mode:o}:{file_stat.ownership}:"
                            f"{file_stat.ownership_names}")
                    content = content_digest(files.read_text(path))
                except (OSError, FilesystemError):
                    # Unreadable entry (e.g. dangling symlink): its
                    # brokenness is itself part of the digest.
                    fold(f"x:{path}")
                    continue
                memo[(FILEMETA, path)] = meta
                memo[(FILE, path)] = content
                fold(f"f:{path}:{meta}:{content}")
        if self._files_index is None:
            self._files_index = file_index
        for package in self._frame.packages:
            fold(f"p:{package.name}={package.version}:{package.architecture}")
        fold(json.dumps(self._frame.runtime, sort_keys=True))
        digest = hasher.hexdigest()
        memo[("frame", "")] = digest
        return digest

    # ---- per-kind digests -------------------------------------------------

    def _compute(self, dep: tuple[str, str]) -> str:
        kind, arg = dep
        if kind == FILE:
            return self._file_digest(arg)
        if kind == FILEMETA:
            return self._filemeta_digest(arg)
        if kind == LISTING:
            return self._listing_digest(arg)
        if kind == RUNTIME:
            return self._runtime_digest(arg)
        if kind == RUNTIME_KEYS:
            return _sha256(",".join(sorted(self._frame.runtime)))
        if kind == PACKAGES:
            return self._packages_digest()
        raise ValueError(f"unknown dependency kind {kind!r}")

    def _file_digest(self, path: str) -> str:
        files = self._frame.files
        if not files.exists(path):
            return ABSENT
        if files.is_dir(path):
            return IS_DIR
        # Reuses the parse cache's content address (sha256 of the text),
        # so incremental mode adds no hashing beyond what a full cycle
        # already pays for content-addressed parsing.
        from repro.engine.parse_cache import content_digest

        return content_digest(files.read_text(path))

    def _filemeta_digest(self, path: str) -> str:
        files = self._frame.files
        if not files.exists(path):
            return ABSENT
        stat = files.stat(path)
        prefix = IS_DIR + ":" if files.is_dir(path) else ""
        return (
            f"{prefix}{stat.mode:o}:{stat.ownership}:{stat.ownership_names}"
        )

    def _file_paths(self) -> list[str]:
        """Every file path in the frame, in walk order (cached)."""
        if self._files_index is None:
            import posixpath

            paths: list[str] = []
            for dirpath, _dirs, filenames in self._frame.files.walk("/"):
                for name in filenames:
                    paths.append(posixpath.join(dirpath, name))
            self._files_index = paths
        return self._files_index

    def _listing_digest(self, arg: str) -> str:
        # A prefix filter over the cached whole-frame index selects the
        # same path *set* as ``files_under(top)`` without re-walking the
        # tree for every search-path set.  The index's canonical order
        # (walk or lexicographic, depending on how :meth:`frame_digest`
        # built it) is stable per frame, which is all a digest
        # comparison needs.
        index = self._file_paths()
        paths: list[str] = []
        for top in arg.split(LISTING_SEP) if arg else []:
            top = normalize_path(top)
            prefix = top if top.endswith("/") else top + "/"
            paths.extend(
                p for p in index if p == top or p.startswith(prefix)
            )
        return _sha256(LISTING_SEP.join(paths))

    def _runtime_digest(self, namespace: str) -> str:
        values = self._frame.runtime.get(namespace)
        if values is None:
            return ABSENT
        return _sha256(json.dumps(values, sort_keys=True))

    def _packages_digest(self) -> str:
        return _sha256(
            LISTING_SEP.join(
                f"{p.name}={p.version}:{p.architecture}"
                for p in self._frame.packages
            )
        )


def normalize_file_arg(path: str) -> str:
    """Canonical path form for ``file``/``filemeta`` dep args."""
    return normalize_path(path)
