"""Simulated Docker substrate.

The paper's production deployment scans Docker images and running
containers.  Offline we model the pieces the validator interacts with:

* **images** as ordered layer stacks over :class:`VirtualFilesystem`
  (union semantics via :class:`OverlayFilesystem`), plus the image config
  (env, user, exposed ports, entrypoint, healthcheck, labels);
* **containers** as an image plus a writable top layer plus runtime
  options (``HostConfig``: privileged, capability sets, resource limits,
  mounts, port bindings, ...);
* a **daemon** owning both, with a ``docker inspect``-shaped dict API that
  the docker runtime plugin feeds to the rule engine (this is the custom
  "runtime state" configuration category).

Nothing here talks to a real Docker daemon; determinism is a feature
(image ids are content-derived hashes).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field

from repro.errors import DockerSimError
from repro.fs.overlay import OverlayFilesystem
from repro.fs.packages import Package, PackageDatabase
from repro.fs.vfs import VirtualFilesystem

_id_counter = itertools.count(1)


def _make_id(seed: str) -> str:
    return hashlib.sha256(f"{seed}:{next(_id_counter)}".encode()).hexdigest()


@dataclass
class HealthCheck:
    """Image HEALTHCHECK instruction."""

    test: list[str]
    interval_s: int = 30
    timeout_s: int = 30
    retries: int = 3


@dataclass
class ImageConfig:
    """The non-filesystem half of an image (Dockerfile metadata)."""

    env: dict[str, str] = field(default_factory=dict)
    user: str = ""
    exposed_ports: list[str] = field(default_factory=list)
    entrypoint: list[str] = field(default_factory=list)
    cmd: list[str] = field(default_factory=list)
    labels: dict[str, str] = field(default_factory=dict)
    workdir: str = "/"
    healthcheck: HealthCheck | None = None


class DockerImage:
    """An immutable image: layers + config + package DB."""

    def __init__(
        self,
        name: str,
        tag: str,
        layers: list[VirtualFilesystem],
        config: ImageConfig,
        packages: PackageDatabase | None = None,
        parent: "DockerImage | None" = None,
    ):
        self.name = name
        self.tag = tag
        self.layers = layers
        self.config = config
        self.packages = packages or PackageDatabase()
        self.parent = parent
        self.image_id = _make_id(f"{name}:{tag}")

    @property
    def reference(self) -> str:
        return f"{self.name}:{self.tag}"

    def filesystem(self) -> OverlayFilesystem:
        """The merged view a container built from this image starts with."""
        return OverlayFilesystem(self.layers)

    def inspect(self) -> dict:
        """``docker image inspect``-shaped metadata."""
        return {
            "Id": f"sha256:{self.image_id}",
            "RepoTags": [self.reference],
            "Config": {
                "Env": [f"{k}={v}" for k, v in sorted(self.config.env.items())],
                "User": self.config.user,
                "ExposedPorts": {port: {} for port in self.config.exposed_ports},
                "Entrypoint": list(self.config.entrypoint),
                "Cmd": list(self.config.cmd),
                "Labels": dict(self.config.labels),
                "WorkingDir": self.config.workdir,
                "Healthcheck": (
                    {"Test": list(self.config.healthcheck.test)}
                    if self.config.healthcheck
                    else None
                ),
            },
            "RootFS": {"Type": "layers", "Layers": [f"layer{i}" for i in range(len(self.layers))]},
        }


class ImageBuilder:
    """Dockerfile-like fluent builder.

    Each file-writing call group goes into the current layer; ``new_layer``
    (the analog of a new Dockerfile instruction) starts another one, so
    overlay semantics -- shadowing, whiteouts -- are exercised for real.
    """

    def __init__(self, base: DockerImage | None = None):
        self._base = base
        self._layers: list[VirtualFilesystem] = []
        self._current: VirtualFilesystem | None = None
        self._config = ImageConfig(
            env=dict(base.config.env) if base else {},
            user=base.config.user if base else "",
            exposed_ports=list(base.config.exposed_ports) if base else [],
            entrypoint=list(base.config.entrypoint) if base else [],
            cmd=list(base.config.cmd) if base else [],
            labels=dict(base.config.labels) if base else {},
            workdir=base.config.workdir if base else "/",
            healthcheck=base.config.healthcheck if base else None,
        )
        self._packages = PackageDatabase(list(base.packages) if base else [])

    # -- filesystem instructions ------------------------------------------

    def new_layer(self) -> "ImageBuilder":
        self._current = None
        return self

    def _layer(self) -> VirtualFilesystem:
        if self._current is None:
            self._current = VirtualFilesystem()
            self._layers.append(self._current)
        return self._current

    def add_file(self, path: str, content: str = "", *, mode: int = 0o644,
                 uid: int = 0, gid: int = 0, owner: str = "root",
                 group: str = "root") -> "ImageBuilder":
        self._layer().write_file(
            path, content, mode=mode, uid=uid, gid=gid, owner=owner, group=group
        )
        return self

    def mkdir(self, path: str, *, mode: int = 0o755) -> "ImageBuilder":
        self._layer().mkdir(path, mode=mode)
        return self

    def remove(self, path: str) -> "ImageBuilder":
        """Record a whiteout deleting ``path`` from lower layers."""
        from repro.fs.overlay import whiteout_for

        self._layer().write_file(whiteout_for(path), "")
        return self

    def install_package(self, name: str, version: str) -> "ImageBuilder":
        self._packages.install(Package(name=name, version=version))
        return self

    # -- config instructions -------------------------------------------------

    def env(self, key: str, value: str) -> "ImageBuilder":
        self._config.env[key] = value
        return self

    def user(self, user: str) -> "ImageBuilder":
        self._config.user = user
        return self

    def expose(self, port: str) -> "ImageBuilder":
        self._config.exposed_ports.append(port)
        return self

    def label(self, key: str, value: str) -> "ImageBuilder":
        self._config.labels[key] = value
        return self

    def entrypoint(self, *argv: str) -> "ImageBuilder":
        self._config.entrypoint = list(argv)
        return self

    def cmd(self, *argv: str) -> "ImageBuilder":
        self._config.cmd = list(argv)
        return self

    def healthcheck(self, *test: str, interval_s: int = 30) -> "ImageBuilder":
        self._config.healthcheck = HealthCheck(test=list(test), interval_s=interval_s)
        return self

    def build(self, name: str, tag: str = "latest") -> DockerImage:
        layers = (list(self._base.layers) if self._base else []) + self._layers
        if not layers:
            layers = [VirtualFilesystem()]
        return DockerImage(
            name=name,
            tag=tag,
            layers=layers,
            config=self._config,
            packages=self._packages,
            parent=self._base,
        )


@dataclass
class Mount:
    """A bind mount or volume."""

    source: str
    destination: str
    read_only: bool = False

    def as_dict(self) -> dict:
        return {
            "Source": self.source,
            "Destination": self.destination,
            "RW": not self.read_only,
        }


@dataclass
class HostConfig:
    """Container runtime options (the CIS-Docker-relevant subset)."""

    privileged: bool = False
    network_mode: str = "bridge"
    pid_mode: str = ""
    ipc_mode: str = ""
    userns_mode: str = ""
    readonly_rootfs: bool = False
    cap_add: list[str] = field(default_factory=list)
    cap_drop: list[str] = field(default_factory=list)
    security_opt: list[str] = field(default_factory=list)
    memory: int = 0                 # bytes; 0 = unlimited
    cpu_shares: int = 0
    pids_limit: int = 0
    restart_policy: str = "no"
    restart_max_retries: int = 0
    port_bindings: dict[str, str] = field(default_factory=dict)  # "80/tcp" -> "0.0.0.0:8080"
    mounts: list[Mount] = field(default_factory=list)
    devices: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "Privileged": self.privileged,
            "NetworkMode": self.network_mode,
            "PidMode": self.pid_mode,
            "IpcMode": self.ipc_mode,
            "UsernsMode": self.userns_mode,
            "ReadonlyRootfs": self.readonly_rootfs,
            "CapAdd": list(self.cap_add),
            "CapDrop": list(self.cap_drop),
            "SecurityOpt": list(self.security_opt),
            "Memory": self.memory,
            "CpuShares": self.cpu_shares,
            "PidsLimit": self.pids_limit,
            "RestartPolicy": {
                "Name": self.restart_policy,
                "MaximumRetryCount": self.restart_max_retries,
            },
            "PortBindings": {
                port: [{"HostIp": bind.split(":")[0], "HostPort": bind.split(":")[1]}]
                for port, bind in sorted(self.port_bindings.items())
            },
            "Devices": list(self.devices),
        }


class Container:
    """A running (or exited) container."""

    def __init__(
        self,
        name: str,
        image: DockerImage,
        host_config: HostConfig | None = None,
        env: dict[str, str] | None = None,
        user: str | None = None,
    ):
        self.name = name
        self.image = image
        self.host_config = host_config or HostConfig()
        self.env = dict(image.config.env)
        self.env.update(env or {})
        self.user = user if user is not None else image.config.user
        self.container_id = _make_id(name)
        self.state = "running"
        self.exit_code: int | None = None
        self.health = "healthy" if image.config.healthcheck else "none"
        self._local = VirtualFilesystem()  # copy-on-write top layer

    def filesystem(self) -> OverlayFilesystem:
        """Image layers plus this container's writable layer."""
        return OverlayFilesystem(list(self.image.layers) + [self._local])

    def write_file(self, path: str, content: str, **kwargs) -> None:
        """Write into the container's writable layer (runtime drift)."""
        self._local.write_file(path, content, **kwargs)

    def stop(self, exit_code: int = 0) -> None:
        self.state = "exited"
        self.exit_code = exit_code

    def inspect(self) -> dict:
        """``docker inspect``-shaped state, the shape the docker plugin
        normalizes for script rules."""
        return {
            "Id": self.container_id,
            "Name": f"/{self.name}",
            "Image": f"sha256:{self.image.image_id}",
            "State": {
                "Status": self.state,
                "Running": self.state == "running",
                "ExitCode": self.exit_code,
                "Health": {"Status": self.health},
            },
            "Config": {
                "User": self.user,
                "Env": [f"{k}={v}" for k, v in sorted(self.env.items())],
                "Image": self.image.reference,
                "Labels": dict(self.image.config.labels),
                "Healthcheck": (
                    {"Test": list(self.image.config.healthcheck.test)}
                    if self.image.config.healthcheck
                    else None
                ),
            },
            "HostConfig": self.host_config.as_dict(),
            "Mounts": [mount.as_dict() for mount in self.host_config.mounts],
        }


class DockerDaemon:
    """The simulated Docker engine: image store + container supervisor.

    ``host_fs`` is the filesystem of the machine running the daemon, where
    ``/etc/docker/daemon.json`` and the CIS-audited socket/paths live.
    """

    def __init__(self, host_fs: VirtualFilesystem | None = None):
        self.host_fs = host_fs or _default_docker_host_fs()
        self._images: dict[str, DockerImage] = {}
        self._containers: dict[str, Container] = {}

    # -- image API -----------------------------------------------------------

    def add_image(self, image: DockerImage) -> DockerImage:
        self._images[image.reference] = image
        return image

    def image(self, reference: str) -> DockerImage:
        if ":" not in reference:
            reference = f"{reference}:latest"
        try:
            return self._images[reference]
        except KeyError:
            raise DockerSimError(f"no such image: {reference}") from None

    def images(self) -> list[DockerImage]:
        return sorted(self._images.values(), key=lambda i: i.reference)

    # -- container API ---------------------------------------------------------

    def run(
        self,
        image_reference: str,
        name: str,
        *,
        host_config: HostConfig | None = None,
        env: dict[str, str] | None = None,
        user: str | None = None,
    ) -> Container:
        if name in self._containers:
            raise DockerSimError(f"container name {name!r} already in use")
        container = Container(
            name=name,
            image=self.image(image_reference),
            host_config=host_config,
            env=env,
            user=user,
        )
        self._containers[name] = container
        return container

    def container(self, name: str) -> Container:
        try:
            return self._containers[name]
        except KeyError:
            raise DockerSimError(f"no such container: {name}") from None

    def containers(self, *, all_states: bool = False) -> list[Container]:
        found = sorted(self._containers.values(), key=lambda c: c.name)
        if all_states:
            return found
        return [c for c in found if c.state == "running"]

    def remove_container(self, name: str) -> None:
        self._containers.pop(name, None)

    # -- daemon configuration ----------------------------------------------

    def daemon_config(self) -> dict:
        """Parsed /etc/docker/daemon.json from the host filesystem."""
        if not self.host_fs.exists("/etc/docker/daemon.json"):
            return {}
        return json.loads(self.host_fs.read_text("/etc/docker/daemon.json"))


def _default_docker_host_fs() -> VirtualFilesystem:
    fs = VirtualFilesystem()
    fs.mkdir("/etc/docker", mode=0o755)
    fs.write_file(
        "/etc/docker/daemon.json",
        '{\n  "icc": false,\n  "userns-remap": "default",\n'
        '  "live-restore": true,\n  "userland-proxy": false,\n'
        '  "log-driver": "json-file",\n  "no-new-privileges": true\n}\n',
        mode=0o644,
    )
    fs.write_file("/var/run/docker.sock", "", mode=0o660, gid=999, group="docker")
    fs.write_file(
        "/usr/lib/systemd/system/docker.service",
        "[Service]\nExecStart=/usr/bin/dockerd\n",
        mode=0o644,
    )
    fs.write_file("/etc/default/docker", "# defaults for dockerd\n", mode=0o644)
    return fs
