"""Config extraction (the Agentless System Crawler substitute).

The crawler turns an *entity* -- a host, a Docker image, a running
container, or a cloud runtime -- into a :class:`ConfigFrame`: a snapshot
of configuration files, file metadata, installed packages, and runtime
state.  The rule engine consumes frames only; it never touches an entity
directly.  This mirrors the paper's "system configuration frames"
(§2.2/§5): validation without local installation or remote access.

Entities:

* :class:`HostEntity` -- a machine: a filesystem view + package DB +
  optional live kernel state.
* :class:`DockerImageEntity` / :class:`ContainerEntity` -- backed by the
  simulated Docker substrate in :mod:`repro.crawler.docker_sim`.
* :class:`CloudEntity` -- backed by the simulated OpenStack-style control
  plane in :mod:`repro.crawler.cloud_sim`.

Runtime-state plugins (:mod:`repro.crawler.plugins`) extract the
configuration that does not live in text files (paper §2.1.3): MySQL
server variables, live sysctl state, ``docker inspect`` output, cloud
security groups.
"""

from repro.crawler.frame import ConfigFrame
from repro.crawler.entities import (
    CloudEntity,
    ContainerEntity,
    DockerImageEntity,
    Entity,
    HostEntity,
)
from repro.crawler.crawler import Crawler
from repro.crawler.docker_sim import Container, DockerDaemon, DockerImage, ImageBuilder
from repro.crawler.cloud_sim import CloudControlPlane, Instance, SecurityGroup, SecurityGroupRule
from repro.crawler.plugins import PluginRegistry, RuntimePlugin, default_plugin_registry
from repro.crawler.serialize import dump_frame, frame_from_dict, frame_to_dict, load_frame

__all__ = [
    "CloudControlPlane",
    "CloudEntity",
    "ConfigFrame",
    "Container",
    "ContainerEntity",
    "Crawler",
    "DockerDaemon",
    "DockerImage",
    "DockerImageEntity",
    "Entity",
    "HostEntity",
    "ImageBuilder",
    "Instance",
    "PluginRegistry",
    "RuntimePlugin",
    "SecurityGroup",
    "SecurityGroupRule",
    "default_plugin_registry",
    "dump_frame",
    "frame_from_dict",
    "frame_to_dict",
    "load_frame",
]
