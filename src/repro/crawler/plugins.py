"""Runtime-state extraction plugins.

Plugins cover the paper's "custom configuration" category (§2.1.3):
configuration that is not a text file and "must first be retrieved by
executing application-specific commands" or API calls.  Each plugin
flattens the state it knows how to extract into a flat ``key -> value``
string mapping, stored on the frame under the plugin's namespace; CVL
*script* rules then address single keys (``script: "docker
HostConfig.Privileged"``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import PluginError
from repro.crawler.entities import Entity


def flatten_json(value: object, prefix: str = "") -> dict[str, str]:
    """Flatten a JSON-shaped object into dotted keys with string values.

    Lists use numeric components (``Mounts.0.RW``); booleans render
    lowercase (matching their on-disk JSON form); None renders as ``""``.
    A list of scalars *additionally* stores the comma-joined value at the
    list's own key (``HostConfig.CapDrop -> "ALL,NET_RAW"``; empty list ->
    ``""``) so rules can assert over the whole list with one lookup.
    """
    flat: dict[str, str] = {}

    def render(node: object) -> str:
        if isinstance(node, bool):
            return "true" if node else "false"
        if node is None:
            return ""
        return str(node)

    def visit(node: object, path: str) -> None:
        if isinstance(node, dict):
            if not node and path:
                flat[path] = ""
            for key, item in node.items():
                visit(item, f"{path}.{key}" if path else str(key))
        elif isinstance(node, (list, tuple)):
            if path and all(
                not isinstance(item, (dict, list, tuple)) for item in node
            ):
                flat[path] = ",".join(render(item) for item in node)
            elif not node and path:
                flat[path] = ""
            for index, item in enumerate(node):
                visit(item, f"{path}.{index}" if path else str(index))
        elif isinstance(node, bool):
            flat[path] = "true" if node else "false"
        elif node is None:
            flat[path] = ""
        else:
            flat[path] = str(node)

    visit(value, prefix)
    return flat


class RuntimePlugin(ABC):
    """Extractor for one namespace of runtime state."""

    #: Namespace the extracted keys are stored under.
    name: str = "abstract"

    #: Entity kinds this plugin can run against.
    kinds: tuple[str, ...] = ()

    def applies_to(self, entity: Entity) -> bool:
        return not self.kinds or entity.kind in self.kinds

    @abstractmethod
    def extract(self, entity: Entity) -> dict[str, str]:
        """Flat key-value runtime state for ``entity``."""


class DockerInspectPlugin(RuntimePlugin):
    """Flattened ``docker inspect`` output for containers and images."""

    name = "docker"
    kinds = ("container", "image")

    def extract(self, entity: Entity) -> dict[str, str]:
        context = entity.runtime_context()
        target = context.get("container") or context.get("image")
        if target is None:
            raise PluginError(f"docker plugin: no docker object on {entity!r}")
        return flatten_json(target.inspect())


class MySQLVariablesPlugin(RuntimePlugin):
    """Simulated ``SHOW VARIABLES``: effective server variables derived from
    my.cnf plus compiled-in defaults (the paper's example of configuration
    that "needs certain commands to be executed for retrieving", e.g.
    whether SSL is enabled)."""

    name = "mysql"
    kinds = ("host", "container", "image")

    def applies_to(self, entity: Entity) -> bool:
        """Only entities that actually carry a MySQL config get a mysql
        runtime namespace -- otherwise every container would appear to run
        a (misconfigured) MySQL server."""
        if not super().applies_to(entity):
            return False
        fs = entity.filesystem()
        return any(fs.is_file(path) for path in self._CONFIG_PATHS)

    _DEFAULTS = {
        "have_ssl": "DISABLED",
        "ssl_ca": "",
        "ssl_cert": "",
        "ssl_key": "",
        "local_infile": "ON",
        "skip_networking": "OFF",
        "skip_show_database": "OFF",
        "secure_file_priv": "",
        "old_passwords": "OFF",
        "bind_address": "0.0.0.0",
    }

    _CONFIG_PATHS = ("/etc/mysql/my.cnf", "/etc/my.cnf")

    def extract(self, entity: Entity) -> dict[str, str]:
        from repro.augtree.lenses.ini import IniLens

        variables = dict(self._DEFAULTS)
        fs = entity.filesystem()
        for path in self._CONFIG_PATHS:
            if not fs.is_file(path):
                continue
            tree = IniLens().parse(fs.read_text(path), source=path)
            section = tree.first("mysqld")
            if section is None:
                continue
            for child in section.children:
                key = child.label.replace("-", "_")
                value = child.value if child.value is not None else "ON"
                variables[key] = value
        if variables.get("ssl_ca") and variables.get("ssl_cert"):
            variables["have_ssl"] = "YES"
        elif variables.get("ssl_ca"):
            variables["have_ssl"] = "YES"  # cert may come from the CA bundle
        return variables


class LiveSysctlPlugin(RuntimePlugin):
    """Kernel parameters as ``sysctl -a`` would report them: compiled-in
    defaults overridden by sysctl.conf, overridden by any live state the
    host entity carries."""

    name = "sysctl"
    kinds = ("host",)

    _DEFAULTS = {
        "net.ipv4.ip_forward": "0",
        "net.ipv4.conf.all.send_redirects": "1",
        "net.ipv4.conf.all.accept_redirects": "1",
        "net.ipv4.conf.all.accept_source_route": "0",
        "net.ipv4.conf.all.log_martians": "0",
        "net.ipv4.tcp_syncookies": "1",
        "kernel.randomize_va_space": "2",
        "fs.suid_dumpable": "0",
    }

    def extract(self, entity: Entity) -> dict[str, str]:
        from repro.augtree.lenses.sysctl import SysctlLens

        state = dict(self._DEFAULTS)
        fs = entity.filesystem()
        candidates = ["/etc/sysctl.conf"]
        if fs.is_dir("/etc/sysctl.d"):
            candidates.extend(fs.find("/etc/sysctl.d", "*.conf"))
        for path in candidates:
            if not fs.is_file(path):
                continue
            tree = SysctlLens().parse(fs.read_text(path), source=path)
            for node in tree.root.children:
                state[node.label] = node.value or ""
        live = entity.runtime_context().get("live_sysctl") or {}
        state.update({str(k): str(v) for k, v in live.items()})
        return state


class LiveMountsPlugin(RuntimePlugin):
    """Effective mount table (``/proc/mounts``) as runtime state.

    fstab declares intent; /proc/mounts is reality (a remount can drop
    ``noexec`` without touching fstab).  Keys: ``<dir>.device``,
    ``<dir>.type``, ``<dir>.options``."""

    name = "mounts"
    kinds = ("host",)

    def extract(self, entity: Entity) -> dict[str, str]:
        from repro.schema.parsers import MountsParser

        fs = entity.filesystem()
        state: dict[str, str] = {}
        for path in ("/proc/mounts", "/etc/mtab"):
            if not fs.is_file(path):
                continue
            table = MountsParser().parse(fs.read_text(path), source=path)
            for row in table:
                directory = row["dir"]
                state[f"{directory}.device"] = row["device"]
                state[f"{directory}.type"] = row["type"]
                state[f"{directory}.options"] = row["options"]
            break
        return state

    def applies_to(self, entity: Entity) -> bool:
        if not super().applies_to(entity):
            return False
        fs = entity.filesystem()
        return fs.is_file("/proc/mounts") or fs.is_file("/etc/mtab")


class CloudStatePlugin(RuntimePlugin):
    """Cloud resource state for the entity's project, flattened, plus
    derived convenience keys that policy rules commonly assert on:

    * ``derived.world_open_ssh`` -- any ingress rule open to the world on 22
    * ``derived.world_open_any`` -- any world-open ingress rule at all
    * ``derived.users_without_mfa`` -- comma-joined admin users lacking MFA
    * ``derived.instances_without_keypair`` -- instances with no SSH keypair
    """

    name = "cloud"
    kinds = ("cloud",)

    def extract(self, entity: Entity) -> dict[str, str]:
        context = entity.runtime_context()
        cloud = context.get("cloud")
        project_name = context.get("project")
        if cloud is None or project_name is None:
            raise PluginError(f"cloud plugin: no control plane on {entity!r}")
        project = cloud.project(project_name)
        state = flatten_json(
            {
                "security_groups": {
                    name: group.as_dict()
                    for name, group in sorted(project.security_groups.items())
                },
                "instances": {
                    name: instance.as_dict()
                    for name, instance in sorted(project.instances.items())
                },
                "users": {
                    name: user.as_dict()
                    for name, user in sorted(project.users.items())
                },
            }
        )
        state.update(self._derived(project))
        return state

    @staticmethod
    def _derived(project) -> dict[str, str]:
        world_ssh = False
        world_any = False
        for group in project.security_groups.values():
            for rule in group.rules:
                if rule.direction != "ingress" or not rule.world_open:
                    continue
                world_any = True
                if rule.protocol in ("tcp", "any") and rule.covers_port(22):
                    world_ssh = True
        no_mfa = sorted(
            user.name
            for user in project.users.values()
            if "admin" in user.roles and not user.mfa_enabled
        )
        no_key = sorted(
            instance.name
            for instance in project.instances.values()
            if not instance.key_name
        )
        return {
            "derived.world_open_ssh": "true" if world_ssh else "false",
            "derived.world_open_any": "true" if world_any else "false",
            "derived.users_without_mfa": ",".join(no_mfa),
            "derived.instances_without_keypair": ",".join(no_key),
        }


class PluginRegistry:
    """Named plugin lookup with applicability filtering."""

    def __init__(self):
        self._plugins: dict[str, RuntimePlugin] = {}

    def register(self, plugin: RuntimePlugin) -> None:
        if plugin.name in self._plugins:
            raise ValueError(f"duplicate plugin {plugin.name!r}")
        self._plugins[plugin.name] = plugin

    def get(self, name: str) -> RuntimePlugin:
        try:
            return self._plugins[name]
        except KeyError:
            raise PluginError(f"no runtime plugin named {name!r}") from None

    def applicable(self, entity: Entity) -> list[RuntimePlugin]:
        return [
            plugin
            for _name, plugin in sorted(self._plugins.items())
            if plugin.applies_to(entity)
        ]

    def names(self) -> list[str]:
        return sorted(self._plugins)

    def __contains__(self, name: str) -> bool:
        return name in self._plugins


def default_plugin_registry() -> PluginRegistry:
    """Registry with every built-in runtime plugin."""
    registry = PluginRegistry()
    for plugin in (
        DockerInspectPlugin(),
        MySQLVariablesPlugin(),
        LiveSysctlPlugin(),
        LiveMountsPlugin(),
        CloudStatePlugin(),
    ):
        registry.register(plugin)
    return registry
