"""The Crawler: entity -> ConfigFrame.

Feature selection mirrors the Agentless System Crawler's feature flags:
``files`` (the filesystem view), ``packages``, ``runtime`` (plugin
extraction), ``metadata`` (provenance).  Crawling is cheap -- filesystem
views are shared, not copied -- so frames can be produced at fleet scale
(the production system validates tens of thousands of frames daily).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import CrawlerError, PluginError
from repro.crawler.entities import Entity
from repro.crawler.frame import ConfigFrame
from repro.crawler.plugins import PluginRegistry, default_plugin_registry
from repro.telemetry import DISABLED, Telemetry, get_logger

ALL_FEATURES = ("files", "packages", "runtime", "metadata")

log = get_logger("crawler")


class Crawler:
    """Produces :class:`ConfigFrame` snapshots from entities."""

    def __init__(self, plugins: PluginRegistry | None = None,
                 telemetry: Telemetry | None = None):
        self._plugins = plugins or default_plugin_registry()
        self.telemetry = telemetry or DISABLED

    @property
    def plugins(self) -> PluginRegistry:
        return self._plugins

    def crawl(
        self,
        entity: Entity,
        features: tuple[str, ...] = ALL_FEATURES,
        *,
        strict_plugins: bool = False,
        parent_span=None,
    ) -> ConfigFrame:
        """Snapshot ``entity``.

        With ``strict_plugins`` a plugin failure aborts the crawl;
        otherwise the failure is recorded in frame metadata and other
        namespaces are still extracted (a broken MySQL extractor must not
        block sshd validation).  ``parent_span`` nests the crawl span
        under a span opened on another thread (pool fan-out).
        """
        unknown = set(features) - set(ALL_FEATURES)
        if unknown:
            raise CrawlerError(f"unknown crawl features: {sorted(unknown)}")
        telemetry = self.telemetry
        started = time.perf_counter()
        frame = ConfigFrame(
            entity_name=entity.name,
            entity_kind=entity.kind,
            files=entity.filesystem(),
        )
        if "packages" in features:
            frame.packages = entity.package_db()
        if "metadata" in features:
            frame.metadata["kind"] = entity.kind
            frame.metadata["name"] = entity.name
        if "runtime" in features:
            for plugin in self._plugins.applicable(entity):
                try:
                    frame.runtime[plugin.name] = plugin.extract(entity)
                except PluginError:
                    raise
                except Exception as exc:  # plugin bug: isolate, don't abort
                    if strict_plugins:
                        raise PluginError(
                            f"plugin {plugin.name!r} failed on "
                            f"{entity.kind}:{entity.name}: {exc}"
                        ) from exc
                    log.warning(
                        "plugin %s failed on %s:%s: %s",
                        plugin.name, entity.kind, entity.name, exc,
                    )
                    frame.metadata[f"plugin_error:{plugin.name}"] = str(exc)
        if telemetry.enabled:
            duration = time.perf_counter() - started
            telemetry.spans.record(
                f"{entity.kind}:{entity.name}", category="crawl",
                start_s=started, duration_s=duration,
                parent=parent_span, kind=entity.kind,
            )
            telemetry.metrics.counter(
                "repro_entities_crawled_total",
                "Entities snapshotted into frames, by kind.",
                labels=("kind",),
            ).inc(kind=entity.kind)
        return frame

    def crawl_many(
        self,
        entities: list[Entity],
        features: tuple[str, ...] = ALL_FEATURES,
        *,
        workers: int = 1,
        executor=None,
        init_source=None,
        strict_plugins: bool = False,
    ) -> list[ConfigFrame]:
        """Snapshot a fleet (document order preserved).

        ``workers > 1`` fans entities out on a thread pool; the returned
        frame list still matches ``entities`` position-for-position.
        ``executor`` may be a :class:`~repro.exec.ProcessBackend` to
        crawl in worker processes instead (frames come back through the
        ``repro.crawler.serialize`` round-trip); unpicklable entities or
        worker failures fall back to the thread path.  ``init_source``
        is the validator whose state seeds the worker pool when none is
        alive yet.
        """
        if executor is not None and len(entities) > 1:
            run_crawl = getattr(executor, "run_crawl", None)
            if run_crawl is not None:
                frames = run_crawl(
                    self, entities, features, workers,
                    validator=init_source, strict_plugins=strict_plugins,
                )
                if frames is not None:
                    return frames
        # Captured before the fan-out: pool threads have no span stack,
        # so each crawl span is parented to the caller's span explicitly.
        parent = self.telemetry.spans.current()
        if workers > 1 and len(entities) > 1:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(entities)),
                thread_name_prefix="crawl",
            ) as pool:
                return list(
                    pool.map(
                        lambda entity: self.crawl(
                            entity, features,
                            strict_plugins=strict_plugins,
                            parent_span=parent,
                        ),
                        entities,
                    )
                )
        return [self.crawl(entity, features, strict_plugins=strict_plugins,
                           parent_span=parent)
                for entity in entities]
