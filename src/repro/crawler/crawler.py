"""The Crawler: entity -> ConfigFrame.

Feature selection mirrors the Agentless System Crawler's feature flags:
``files`` (the filesystem view), ``packages``, ``runtime`` (plugin
extraction), ``metadata`` (provenance).  Crawling is cheap -- filesystem
views are shared, not copied -- so frames can be produced at fleet scale
(the production system validates tens of thousands of frames daily).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.errors import CrawlerError, PluginError
from repro.crawler.entities import Entity
from repro.crawler.frame import ConfigFrame
from repro.crawler.plugins import PluginRegistry, default_plugin_registry

ALL_FEATURES = ("files", "packages", "runtime", "metadata")


class Crawler:
    """Produces :class:`ConfigFrame` snapshots from entities."""

    def __init__(self, plugins: PluginRegistry | None = None):
        self._plugins = plugins or default_plugin_registry()

    @property
    def plugins(self) -> PluginRegistry:
        return self._plugins

    def crawl(
        self,
        entity: Entity,
        features: tuple[str, ...] = ALL_FEATURES,
        *,
        strict_plugins: bool = False,
    ) -> ConfigFrame:
        """Snapshot ``entity``.

        With ``strict_plugins`` a plugin failure aborts the crawl;
        otherwise the failure is recorded in frame metadata and other
        namespaces are still extracted (a broken MySQL extractor must not
        block sshd validation).
        """
        unknown = set(features) - set(ALL_FEATURES)
        if unknown:
            raise CrawlerError(f"unknown crawl features: {sorted(unknown)}")
        frame = ConfigFrame(
            entity_name=entity.name,
            entity_kind=entity.kind,
            files=entity.filesystem(),
        )
        if "packages" in features:
            frame.packages = entity.package_db()
        if "metadata" in features:
            frame.metadata["kind"] = entity.kind
            frame.metadata["name"] = entity.name
        if "runtime" in features:
            for plugin in self._plugins.applicable(entity):
                try:
                    frame.runtime[plugin.name] = plugin.extract(entity)
                except PluginError:
                    raise
                except Exception as exc:  # plugin bug: isolate, don't abort
                    if strict_plugins:
                        raise PluginError(
                            f"plugin {plugin.name!r} failed on "
                            f"{entity.kind}:{entity.name}: {exc}"
                        ) from exc
                    frame.metadata[f"plugin_error:{plugin.name}"] = str(exc)
        return frame

    def crawl_many(
        self,
        entities: list[Entity],
        features: tuple[str, ...] = ALL_FEATURES,
        *,
        workers: int = 1,
    ) -> list[ConfigFrame]:
        """Snapshot a fleet (document order preserved).

        ``workers > 1`` fans entities out on a thread pool; the returned
        frame list still matches ``entities`` position-for-position.
        """
        if workers > 1 and len(entities) > 1:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(entities)),
                thread_name_prefix="crawl",
            ) as pool:
                return list(
                    pool.map(lambda entity: self.crawl(entity, features),
                             entities)
                )
        return [self.crawl(entity, features) for entity in entities]
