"""Frame-level diffing: what changed on the entity itself.

Verdict drift (:mod:`repro.engine.drift`) answers "which checks changed";
this module answers the prior question -- "what changed on the machine" --
the snapshot-diffing idea the paper situates itself against (§2.2 cites
configuration debugging by snapshot diff).  Comparing two frames yields
file adds/removes, content changes, metadata (permission/ownership)
changes, package changes, and runtime-state changes, each of which may
explain a verdict regression.
"""

from __future__ import annotations

import difflib
import posixpath
from dataclasses import dataclass, field

from repro.crawler.frame import ConfigFrame

#: Above this many lines on either side, skip the line-level diff --
#: ``difflib.SequenceMatcher`` is quadratic, and a dirty-set oracle must
#: never cost more than the revalidation work it saves.  Large files get
#: a size + first-divergence summary instead.
LARGE_DIFF_THRESHOLD_LINES = 2000


@dataclass(frozen=True)
class FileChange:
    """One changed path between two frames."""

    path: str
    change: str               # added | removed | content | metadata
    detail: str = ""

    def render(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{self.change:<8}] {self.path}{suffix}"


@dataclass
class FrameDiff:
    """All differences between a baseline frame and a current frame."""

    baseline: str
    current: str
    files: list[FileChange] = field(default_factory=list)
    packages_added: list[str] = field(default_factory=list)
    packages_removed: list[str] = field(default_factory=list)
    packages_changed: list[str] = field(default_factory=list)
    runtime_changed: dict[str, list[str]] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not (
            self.files
            or self.packages_added
            or self.packages_removed
            or self.packages_changed
            or self.runtime_changed
        )

    def changed_paths(self) -> list[str]:
        return [change.path for change in self.files]


def _file_index(frame: ConfigFrame) -> dict[str, tuple]:
    index: dict[str, tuple] = {}
    for dirpath, _dirs, filenames in frame.files.walk("/"):
        for name in filenames:
            path = posixpath.join(dirpath, name)
            stat = frame.stat(path)
            index[path] = (
                frame.read_config(path),
                stat.mode,
                stat.ownership,
            )
    return index


def diff_frames(baseline: ConfigFrame, current: ConfigFrame) -> FrameDiff:
    """Compare two frames (typically same entity, different times)."""
    before = _file_index(baseline)
    after = _file_index(current)
    diff = FrameDiff(baseline=baseline.describe(), current=current.describe())

    for path in sorted(set(before) | set(after)):
        if path not in before:
            diff.files.append(FileChange(path=path, change="added"))
        elif path not in after:
            diff.files.append(FileChange(path=path, change="removed"))
        else:
            old_content, old_mode, old_owner = before[path]
            new_content, new_mode, new_owner = after[path]
            if old_content != new_content:
                diff.files.append(
                    FileChange(
                        path=path,
                        change="content",
                        detail=_content_change_detail(old_content,
                                                      new_content),
                    )
                )
            if (old_mode, old_owner) != (new_mode, new_owner):
                diff.files.append(
                    FileChange(
                        path=path,
                        change="metadata",
                        detail=(
                            f"mode {format(old_mode, 'o')} -> "
                            f"{format(new_mode, 'o')}, ownership "
                            f"{old_owner} -> {new_owner}"
                        ),
                    )
                )

    before_packages = {p.name: p.version for p in baseline.packages}
    after_packages = {p.name: p.version for p in current.packages}
    diff.packages_added = sorted(set(after_packages) - set(before_packages))
    diff.packages_removed = sorted(set(before_packages) - set(after_packages))
    diff.packages_changed = sorted(
        name
        for name in set(before_packages) & set(after_packages)
        if before_packages[name] != after_packages[name]
    )

    namespaces = set(baseline.runtime) | set(current.runtime)
    for namespace in sorted(namespaces):
        old_values = baseline.runtime.get(namespace, {})
        new_values = current.runtime.get(namespace, {})
        changed = sorted(
            key
            for key in set(old_values) | set(new_values)
            if old_values.get(key) != new_values.get(key)
        )
        if changed:
            diff.runtime_changed[namespace] = changed
    return diff


def _content_change_detail(old: str, new: str) -> str:
    """Human detail for a content change, capped for large files."""
    old_lines = old.splitlines()
    new_lines = new.splitlines()
    if max(len(old_lines), len(new_lines)) > LARGE_DIFF_THRESHOLD_LINES:
        divergence = _first_divergence(old_lines, new_lines)
        return (
            f"large file: {len(old):,} -> {len(new):,} bytes, "
            f"first divergence at line {divergence}"
        )
    changed = _count_changed_lines(old_lines, new_lines)
    return f"{changed} line(s) differ"


def _first_divergence(old_lines: list[str], new_lines: list[str]) -> int:
    """1-based index of the first differing line (linear scan)."""
    for i, (old_line, new_line) in enumerate(zip(old_lines, new_lines)):
        if old_line != new_line:
            return i + 1
    return min(len(old_lines), len(new_lines)) + 1


def _count_changed_lines(old_lines: list[str], new_lines: list[str]) -> int:
    matcher = difflib.SequenceMatcher(
        a=old_lines, b=new_lines, autojunk=False
    )
    changed = 0
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag != "equal":
            changed += max(i2 - i1, j2 - j1)
    return changed


def diff_dependencies(diff: FrameDiff) -> set[tuple[str, str]]:
    """The dependency keys a :class:`FrameDiff` dirties.

    This is the frame-level dirty-set oracle for incremental
    revalidation: a stored verdict whose recorded dependency slice (see
    :mod:`repro.crawler.fingerprint`) intersects this set cannot replay.
    Useful for explaining *why* a rule re-ran on an "unchanged" entity.
    """
    from repro.crawler import fingerprint as fp

    dirty: set[tuple[str, str]] = set()
    for change in diff.files:
        if change.change in ("added", "removed"):
            dirty.add((fp.FILE, change.path))
            dirty.add((fp.FILEMETA, change.path))
        elif change.change == "content":
            dirty.add((fp.FILE, change.path))
        elif change.change == "metadata":
            dirty.add((fp.FILEMETA, change.path))
    if diff.packages_added or diff.packages_removed or diff.packages_changed:
        dirty.add((fp.PACKAGES, ""))
    for namespace in diff.runtime_changed:
        dirty.add((fp.RUNTIME, namespace))
    return dirty


def render_frame_diff(diff: FrameDiff, *, unified_for: list[str] | None = None,
                      baseline: ConfigFrame | None = None,
                      current: ConfigFrame | None = None) -> str:
    """Readable diff summary; optionally inline unified diffs for chosen
    paths (requires the frames)."""
    lines = [f"# frame diff: {diff.baseline} -> {diff.current}"]
    if diff.empty:
        lines.append("# no differences")
        return "\n".join(lines)
    for change in diff.files:
        lines.append(change.render())
    for name in diff.packages_added:
        lines.append(f"[pkg +    ] {name}")
    for name in diff.packages_removed:
        lines.append(f"[pkg -    ] {name}")
    for name in diff.packages_changed:
        lines.append(f"[pkg ~    ] {name}")
    for namespace, keys in diff.runtime_changed.items():
        lines.append(f"[runtime  ] {namespace}: {', '.join(keys)}")
    if unified_for and baseline is not None and current is not None:
        for path in unified_for:
            old = (
                baseline.read_config(path).splitlines()
                if baseline.exists(path)
                else []
            )
            new = (
                current.read_config(path).splitlines()
                if current.exists(path)
                else []
            )
            lines.append("")
            lines.extend(
                difflib.unified_diff(
                    old, new, fromfile=f"a{path}", tofile=f"b{path}", lineterm=""
                )
            )
    return "\n".join(lines)
