"""ConfigFrame: the snapshot the rule engine validates against."""

from __future__ import annotations

import itertools

from dataclasses import dataclass, field

from repro.fs.meta import FileStat
from repro.fs.packages import PackageDatabase
from repro.fs.view import FilesystemView

#: Process-wide monotonic frame ids.  ``itertools.count`` increments
#: atomically under the GIL, so tokens are unique even when frames are
#: built from crawler worker threads.  Unlike ``id(frame)``, a token is
#: never reused after a frame is garbage-collected, so caches keyed by it
#: can never alias two different frames' artifacts.
_frame_tokens = itertools.count(1)


@dataclass
class ConfigFrame:
    """Everything the validator knows about one entity at one point in time.

    * ``files`` -- read-only view of the entity's filesystem (the source of
      config-file and path/metadata rules).
    * ``packages`` -- installed-software state.
    * ``runtime`` -- namespaced key-value state extracted by plugins
      (``runtime["mysql"]["have_ssl"]``), covering the paper's "custom
      configuration" category.
    * ``metadata`` -- frame provenance (entity kind, image id, labels, ...).
    """

    entity_name: str
    entity_kind: str
    files: FilesystemView
    packages: PackageDatabase = field(default_factory=PackageDatabase)
    runtime: dict[str, dict[str, str]] = field(default_factory=dict)
    metadata: dict[str, str] = field(default_factory=dict)
    #: Unique per-frame cache key (see :data:`_frame_tokens`).
    cache_token: int = field(
        default_factory=lambda: next(_frame_tokens),
        init=False, repr=False, compare=False,
    )
    #: Lazily-built dependency-digest memo (see :meth:`fingerprint`).
    _fingerprint: object = field(
        default=None, init=False, repr=False, compare=False,
    )
    #: Memoized :meth:`describe` -- built per dependency-tape record.
    _describe: str = field(
        default="", init=False, repr=False, compare=False,
    )

    def fingerprint(self):
        """This frame's dependency-digest memo (built on first use).

        Frames are immutable snapshots, so one
        :class:`~repro.crawler.fingerprint.FrameFingerprint` per frame is
        shared by every incremental lookup that touches it.
        """
        if self._fingerprint is None:
            from repro.crawler.fingerprint import FrameFingerprint

            self._fingerprint = FrameFingerprint(self)
        return self._fingerprint

    def read_config(self, path: str) -> str:
        """Text of the config file at ``path`` (raises if absent)."""
        return self.files.read_text(path)

    def stat(self, path: str) -> FileStat:
        return self.files.stat(path)

    def exists(self, path: str) -> bool:
        return self.files.exists(path)

    def runtime_value(self, namespace: str, key: str) -> str | None:
        """One plugin-extracted runtime value (or None)."""
        return self.runtime.get(namespace, {}).get(key)

    def describe(self) -> str:
        """One-line provenance string used in reports."""
        if not self._describe:
            self._describe = f"{self.entity_kind}:{self.entity_name}"
        return self._describe
