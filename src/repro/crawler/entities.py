"""Entity abstraction: the things ConfigValidator validates.

An entity is anything with configuration: a host, a Docker image, a
running container, or a cloud runtime (paper §2: "we use the word entity
when referring to an application, host, or a cloud").  Entities expose a
filesystem view, a package database, and a *runtime context* -- the raw
objects runtime plugins query for non-file configuration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.fs.packages import PackageDatabase
from repro.fs.view import FilesystemView
from repro.fs.vfs import VirtualFilesystem
from repro.crawler.cloud_sim import CloudControlPlane
from repro.crawler.docker_sim import Container, DockerImage


class Entity(ABC):
    """One validation target."""

    #: "host" | "image" | "container" | "cloud"
    kind: str = "abstract"

    def __init__(self, name: str):
        self.name = name

    @abstractmethod
    def filesystem(self) -> FilesystemView:
        """The entity's file tree (may be empty for pure-API entities)."""

    def package_db(self) -> PackageDatabase:
        """Installed software; empty by default."""
        return PackageDatabase()

    def runtime_context(self) -> dict:
        """Raw objects for runtime plugins (container handle, cloud API...)."""
        return {}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.kind}:{self.name}>"


class HostEntity(Entity):
    """A machine (VM or physical): filesystem + packages + live kernel state.

    ``live_sysctl`` models ``sysctl -a`` output -- the superset of what
    sysctl.conf pins (paper §2.1.3 notes the OS "does not always explicitly
    expose all of its configuration").
    """

    kind = "host"

    def __init__(
        self,
        name: str,
        fs: FilesystemView | None = None,
        packages: PackageDatabase | None = None,
        live_sysctl: dict[str, str] | None = None,
    ):
        super().__init__(name)
        self._fs = fs or VirtualFilesystem()
        self._packages = packages or PackageDatabase()
        self.live_sysctl = dict(live_sysctl or {})

    def filesystem(self) -> FilesystemView:
        return self._fs

    def package_db(self) -> PackageDatabase:
        return self._packages

    def runtime_context(self) -> dict:
        return {"host": self, "live_sysctl": self.live_sysctl}


class DockerImageEntity(Entity):
    """A Docker image, validated without ever running it."""

    kind = "image"

    def __init__(self, image: DockerImage):
        super().__init__(image.reference)
        self.image = image

    def filesystem(self) -> FilesystemView:
        return self.image.filesystem()

    def package_db(self) -> PackageDatabase:
        return self.image.packages

    def runtime_context(self) -> dict:
        return {"image": self.image}


class ContainerEntity(Entity):
    """A running container: merged image + writable-layer filesystem plus
    the runtime options ``docker inspect`` reports."""

    kind = "container"

    def __init__(self, container: Container):
        super().__init__(container.name)
        self.container = container

    def filesystem(self) -> FilesystemView:
        return self.container.filesystem()

    def package_db(self) -> PackageDatabase:
        return self.container.image.packages

    def runtime_context(self) -> dict:
        return {"container": self.container, "image": self.container.image}


class CloudEntity(Entity):
    """A cloud project/runtime whose configuration lives behind an API.

    ``controller_fs`` optionally carries the control-plane service config
    files (keystone.conf etc.), so both OSSG file rules and API-state rules
    run against the same entity.
    """

    kind = "cloud"

    def __init__(
        self,
        name: str,
        cloud: CloudControlPlane,
        project: str,
        controller_fs: FilesystemView | None = None,
    ):
        super().__init__(name)
        self.cloud = cloud
        self.project = project
        self._fs = controller_fs or VirtualFilesystem()

    def filesystem(self) -> FilesystemView:
        return self._fs

    def runtime_context(self) -> dict:
        return {"cloud": self.cloud, "project": self.project}
