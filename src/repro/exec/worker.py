"""Worker-process entry points for the process executor.

A worker process is initialized once per pool spawn with an
:class:`~repro.exec.envelope.InitConfig` (rule packs, registries, cache
and artifact-store configuration) and then evaluates shard envelopes.
Evaluation reuses the engine's own per-frame path --
``ConfigValidator._prepare_run`` + ``_evaluate_frame_rules`` -- so a
worker produces literally the same results the thread backend would.

The module-level validator persists across shards and cycles: its
in-memory parse cache stays warm for the life of the pool, and its
artifact-store connection serves every shard.
"""

from __future__ import annotations

import os
import time

from repro.chaos.fabric import _CHAOS, arm_from_env, delta_is_empty
from repro.crawler.serialize import frame_from_dict
from repro.engine.artifact_store import ArtifactStore
from repro.engine.engine import ConfigValidator
from repro.engine.incremental import VerdictStore
from repro.engine.parse_cache import DEFAULT_CACHE_SIZE, ParseCache
from repro.engine.stages import StageTimings
from repro.exec.envelope import (
    FrameReport,
    InitConfig,
    ShardEnvelope,
    ShardResult,
    decode,
    encode,
)
from repro.telemetry import Telemetry
from repro.telemetry.capture import capture_telemetry, reset_capture

#: Per-process state built by :func:`init_worker`.
_STATE: dict = {}


def init_worker(init_blob: bytes) -> None:
    """Pool initializer: build this process's resident validator."""
    # The parent exports its armed fault plan through REPRO_CHAOS_PLAN,
    # so chaos reaches forked and spawned workers alike.
    arm_from_env()
    config: InitConfig = decode(init_blob)
    store = None
    if config.artifact_path:
        kwargs = {}
        if config.artifact_max_bytes is not None:
            kwargs["max_bytes"] = config.artifact_max_bytes
        store = ArtifactStore(config.artifact_path, **kwargs)
    cache_size = (DEFAULT_CACHE_SIZE if config.cache_size is None
                  else config.cache_size)
    # A live per-process bundle when the parent scans with telemetry:
    # the resident validator's normalizer and rule instrumentation then
    # record into it, and each shard drains it into a capture.
    telemetry = (Telemetry() if getattr(config, "telemetry", False)
                 else None)
    validator = ConfigValidator(
        lenses=config.lenses,
        schemas=config.schemas,
        parse_cache=ParseCache(cache_size, store=store),
        telemetry=telemetry,
        frame_deadline_s=getattr(config, "frame_deadline_s", None),
    )
    for manifest, ruleset in config.packs:
        validator.add_ruleset(manifest, ruleset)
    _STATE["validator"] = validator
    _STATE["artifact"] = store


def _cache_delta(before, after) -> dict[str, int]:
    return {
        "hits": after.hits - before.hits,
        "misses": after.misses - before.misses,
        "evictions": after.evictions - before.evictions,
        "bytes_parsed": after.bytes_parsed - before.bytes_parsed,
        "bytes_deduped": after.bytes_deduped - before.bytes_deduped,
    }


def evaluate_shard(payload: bytes) -> bytes:
    """Evaluate one shard envelope; returns a pickled ShardResult."""
    started = time.perf_counter()
    started_wall = time.time()
    envelope: ShardEnvelope = decode(payload)
    # Snapshot unconditionally: deadline cancellations count into the
    # account even with no plan armed, and must reach the parent.
    chaos_before = _CHAOS.account.snapshot()
    if _CHAOS.armed:
        # Injected clock skew: the shard's wall stamp drifts the way a
        # host with a broken NTP daemon would.  Duration math is all
        # perf_counter-based, so this must be (and is) fully absorbed.
        started_wall += _CHAOS.skew(f"shard-{envelope.shard_index}")
    if envelope.fault == "exit":
        # Fault-injection hook for the graceful-degradation tests: die
        # the way an OOM-killed worker would, with no Python unwinding.
        os._exit(17)
    if envelope.fault == "error":
        raise RuntimeError("injected worker fault")
    validator: ConfigValidator = _STATE["validator"]
    artifact: ArtifactStore | None = _STATE.get("artifact")
    telemetry = validator.telemetry
    capture_on = bool(envelope.capture) and telemetry.enabled
    if capture_on:
        # Drop leftovers from a shard whose result never shipped; every
        # capture must be an exact per-shard delta.
        reset_capture(telemetry)
        spans = telemetry.spans
    frames = [frame_from_dict(doc) for doc in envelope.frame_docs]
    store = (VerdictStore.import_slice(envelope.store_doc)
             if envelope.store_doc is not None else None)
    timings = StageTimings() if envelope.timings else None
    cache_before = validator.parse_cache.stats()
    artifact_before = artifact.stats() if artifact is not None else None

    prep = validator._prepare_run(
        frames,
        tags=envelope.tags,
        use_plans=envelope.use_plans,
        provenance=envelope.provenance,
        timings=timings,
        store=store,
    )
    reports: list[FrameReport] = []
    for frame in frames:
        frame_started = time.perf_counter()
        if capture_on:
            # Only what is position-dependent records here: the frame /
            # evaluate spans and the deferred rule-span batch, which land
            # on this worker's pid lane of the merged trace.  Rule metric
            # tallies, profiler rows, and the frame/busy counters are
            # position-independent, so the parent folds them through the
            # same path the thread backend uses
            # (``integrate_worker_frame``) -- the capture stays cheap and
            # the parent-side telemetry stays byte-for-byte the thread
            # path's.
            with spans.span(frame.describe(), category="frame"):
                with spans.span("evaluate", category="stage"):
                    placements, fresh, replayed, recomputed, frame_plan = (
                        validator._evaluate_frame_rules(frame, prep)
                    )
                    if fresh:
                        spans.record_rules(fresh)
        else:
            placements, fresh, replayed, recomputed, frame_plan = (
                validator._evaluate_frame_rules(frame, prep)
            )
        busy = time.perf_counter() - frame_started
        if envelope.provenance:
            # Materialize deferred provenance markers before pickling:
            # the marker tuples hold this process's frame and excerpt
            # reader, which must not cross back to the parent.
            for _manifest, results in placements:
                for result in results:
                    result.provenance
        reports.append(FrameReport(
            frame_key=frame.describe(),
            placements=[
                (manifest.entity, results)
                for manifest, results in placements
            ],
            fresh=fresh,
            replayed=replayed,
            recomputed=sorted(recomputed),
            plan=frame_plan,
            busy_s=busy,
        ))

    store_doc = None
    if prep.store is not None:
        store_doc = prep.store.export_slice(
            [frame.describe() for frame in frames], include_counters=True,
        )
    timings_delta = None
    if timings is not None:
        timings_delta = {
            stage: (values["seconds"], int(values["count"]))
            for stage, values in timings.as_dict().items()
            if values["count"]
        }
    artifact_delta = None
    if artifact_before is not None:
        artifact_delta = artifact.stats().delta_since(artifact_before)
    capture = capture_telemetry(telemetry) if capture_on else None
    chaos_delta = None
    delta = _CHAOS.account.delta_since(chaos_before)
    if not delta_is_empty(delta):
        chaos_delta = delta
    result = ShardResult(
        shard_index=envelope.shard_index,
        reports=reports,
        store_doc=store_doc,
        timings=timings_delta,
        cache=_cache_delta(cache_before, validator.parse_cache.stats()),
        artifact=artifact_delta,
        duration_s=time.perf_counter() - started,
        started_wall=started_wall,
        telemetry=capture,
        chaos=chaos_delta,
    )
    return encode(result)


def crawl_shard(payload: bytes) -> bytes:
    """Crawl a shard of entities; returns pickled frame documents.

    Used by :meth:`Crawler.crawl_many` under ``--executor process``:
    entities cross as pickled objects, frames come back as
    ``frame_to_dict`` documents (content-equal to an in-parent crawl --
    digests and validation results are content-addressed, so a frame
    rebuilt onto a VirtualFilesystem validates identically).
    """
    from repro.crawler.crawler import Crawler
    from repro.crawler.serialize import frame_to_dict

    job = decode(payload)
    crawler = Crawler(plugins=job.get("plugins"))
    docs = []
    for entity in job["entities"]:
        docs.append(frame_to_dict(crawler.crawl(
            entity,
            features=job.get("features"),
            strict_plugins=job.get("strict_plugins", False),
        )))
    return encode(docs)
