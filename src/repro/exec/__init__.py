"""Executor backends for scan cycles.

``thread`` (the default) is the engine's classic in-process fan-out;
``process`` shards frames across a persistent worker-process pool with
deterministic reassembly, graceful thread fallback, and bounded
respawn of dead workers.  See :mod:`repro.exec.backend`.
"""

from repro.exec.backend import (
    DEFAULT_MAX_RESPAWNS,
    DEFAULT_SHARD_TIMEOUT_S,
    ExecutorBackend,
    ProcessBackend,
    ThreadBackend,
    build_init_config,
)
from repro.exec.stats import ExecStats

__all__ = [
    "DEFAULT_MAX_RESPAWNS",
    "DEFAULT_SHARD_TIMEOUT_S",
    "ExecutorBackend",
    "ProcessBackend",
    "ThreadBackend",
    "build_init_config",
    "ExecStats",
]
