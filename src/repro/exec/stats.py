"""Executor statistics: what the process backend did during one cycle."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.artifact_store import ArtifactStoreStats


@dataclass
class ExecStats:
    """One scan cycle's process-executor activity.

    Attached to :class:`~repro.engine.results.ValidationReport`
    (``exec_stats``) and surfaced on :class:`~repro.engine.batch.
    FleetSummary`; never rendered into validation reports, so output
    stays byte-identical across backends.
    """

    backend: str = "process"
    workers: int = 0
    shards: int = 0
    shard_size: int = 0
    #: Frames serialized to worker processes.
    frames_shipped: int = 0
    #: Clean frames replayed in the parent (incremental short-circuit).
    frames_local: int = 0
    #: Frames evaluated in the parent after their shard failed.
    frames_fallback: int = 0
    #: Serialized envelope/result bytes across the process boundary.
    bytes_out: int = 0
    bytes_in: int = 0
    #: Worker exceptions, deaths, and per-shard timeouts.
    worker_failures: int = 0
    #: Pool rebuilds after a dead or hung worker.
    respawns: int = 0
    #: Payloads that could not be pickled (evaluated in-parent instead).
    pickle_fallbacks: int = 0
    #: Per-shard worker wall times (drives the latency histogram).
    shard_seconds: list[float] = field(default_factory=list)
    #: Aggregated parse-cache counter deltas reported by the workers.
    worker_cache: dict[str, int] = field(default_factory=dict)
    #: Aggregated artifact-store deltas reported by the workers (None
    #: when the cycle ran without a store).
    artifact: ArtifactStoreStats | None = None

    def add_worker_cache(self, delta: dict[str, int]) -> None:
        for key, value in delta.items():
            self.worker_cache[key] = self.worker_cache.get(key, 0) + value

    def add_artifact(self, delta: ArtifactStoreStats) -> None:
        if self.artifact is None:
            self.artifact = ArtifactStoreStats()
        self.artifact.add(delta)

    @property
    def total_shard_seconds(self) -> float:
        return sum(self.shard_seconds)

    @property
    def max_shard_seconds(self) -> float:
        return max(self.shard_seconds, default=0.0)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "shards": self.shards,
            "shard_size": self.shard_size,
            "frames_shipped": self.frames_shipped,
            "frames_local": self.frames_local,
            "frames_fallback": self.frames_fallback,
            "bytes_out": self.bytes_out,
            "bytes_in": self.bytes_in,
            "worker_failures": self.worker_failures,
            "respawns": self.respawns,
            "pickle_fallbacks": self.pickle_fallbacks,
            "shard_seconds": round(self.total_shard_seconds, 6),
            "max_shard_seconds": round(self.max_shard_seconds, 6),
            "worker_cache": dict(self.worker_cache),
            "artifact": (self.artifact.to_dict()
                         if self.artifact is not None else None),
        }

    def render(self) -> str:
        line = (
            f"executor: {self.backend}, {self.workers} workers, "
            f"{self.shards} shards ({self.frames_shipped} frames shipped, "
            f"{self.frames_local} local, {self.frames_fallback} fallback), "
            f"{self.bytes_out:,} B out / {self.bytes_in:,} B in"
        )
        if self.worker_failures or self.respawns or self.pickle_fallbacks:
            line += (
                f"; {self.worker_failures} worker failures, "
                f"{self.respawns} respawns, "
                f"{self.pickle_fallbacks} pickle fallbacks"
            )
        if self.worker_cache:
            hits = self.worker_cache.get("hits", 0)
            misses = self.worker_cache.get("misses", 0)
            line += f"\nworker parse caches: {hits} hits / {misses} misses"
        if self.artifact is not None:
            line += f"\nworker {self.artifact.render()}"
        return line

    def publish(self, telemetry) -> None:
        """Emit the ``repro_exec_*`` metric families for this cycle."""
        metrics = telemetry.metrics
        metrics.counter(
            "repro_exec_shards_total",
            "Frame shards dispatched to worker processes.",
        ).inc(self.shards)
        metrics.counter(
            "repro_exec_frames_shipped_total",
            "Frames serialized to worker processes.",
        ).inc(self.frames_shipped)
        metrics.counter(
            "repro_exec_frames_fallback_total",
            "Frames evaluated in the parent after a shard failure.",
        ).inc(self.frames_fallback)
        metrics.counter(
            "repro_exec_bytes_out_total",
            "Envelope bytes serialized to worker processes.",
        ).inc(self.bytes_out)
        metrics.counter(
            "repro_exec_bytes_in_total",
            "Result bytes deserialized from worker processes.",
        ).inc(self.bytes_in)
        metrics.counter(
            "repro_exec_worker_failures_total",
            "Worker exceptions, deaths, and per-shard timeouts.",
        ).inc(self.worker_failures)
        metrics.counter(
            "repro_exec_worker_respawns_total",
            "Process-pool rebuilds after a dead or hung worker.",
        ).inc(self.respawns)
        metrics.counter(
            "repro_exec_pickle_fallbacks_total",
            "Shard payloads that could not cross the process boundary.",
        ).inc(self.pickle_fallbacks)
        hist = metrics.histogram(
            "repro_exec_shard_seconds",
            "Per-shard worker wall time.",
        )
        for seconds in self.shard_seconds:
            hist.observe(seconds)
