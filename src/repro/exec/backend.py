"""Executor backends: where a scan cycle's frames actually evaluate.

:class:`ThreadBackend` is the classic in-process fan-out (GIL threads:
cheap, great I/O overlap, no parse/evaluate parallelism).
:class:`ProcessBackend` shards frames across worker processes so
CPU-bound stages scale with cores:

- shards are **contiguous slices** of the frame list and results are
  reassembled by shard index, so reports stay byte-identical to the
  thread backend at any worker count or shard size;
- the worker pool persists across cycles (keyed by the init blob), so
  rule packs ship once per pool spawn, not once per cycle;
- failures degrade, never hang: an unpicklable payload falls back to
  threads, a worker exception falls back to in-parent evaluation of
  that shard, and a dead or hung worker (per-shard timeout) triggers a
  bounded pool respawn before the shard falls back in-parent.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import multiprocessing.pool
import time

from repro.chaos.fabric import _CHAOS, absorbed as _chaos_absorbed
from repro.telemetry import get_logger
from repro.telemetry.capture import merge_shard_capture
from repro.exec.envelope import InitConfig, ShardEnvelope, encode, decode
from repro.exec.stats import ExecStats

log = get_logger("exec")

#: Wall-time budget for one shard in a worker before the pool is
#: declared wedged (dead or hung worker) and respawned.
DEFAULT_SHARD_TIMEOUT_S = 300.0

#: Pool rebuilds tolerated per shard before it falls back in-parent.
DEFAULT_MAX_RESPAWNS = 2

#: Auto shard sizing aims for this many shards per worker -- small
#: enough to balance load, large enough to amortize envelope overhead.
_SHARDS_PER_WORKER = 2


def build_init_config(validator) -> InitConfig:
    """The per-pool worker initialization for ``validator``.

    Ships *loaded* ``(manifest, ruleset)`` pairs instead of the
    validator's resolver -- directory resolvers are closures and cannot
    cross a process boundary, but their output can.
    """
    packs = [
        (manifest, validator.ruleset_for(manifest))
        for manifest in validator.manifests()
        if manifest.enabled
    ]
    artifact = validator.artifact_store
    if artifact is not None and artifact.broken:
        artifact = None
    return InitConfig(
        packs=packs,
        lenses=validator._lenses,
        schemas=validator._schemas,
        cache_size=validator.parse_cache.maxsize,
        artifact_path=artifact.path if artifact is not None else None,
        artifact_max_bytes=artifact.max_bytes if artifact is not None else None,
        # Part of the pool key: a telemetry toggle respawns workers with
        # (or without) their live capture bundles.
        telemetry=validator.telemetry.enabled,
        # Also part of the pool key: changing the frame deadline must
        # reach resident worker validators, which a live pool would not.
        frame_deadline_s=getattr(validator, "frame_deadline_s", None),
    )


class ExecutorBackend:
    """Where :meth:`ConfigValidator.validate_frames` runs its frames."""

    name = "abstract"

    def run_cycle(self, validator, frames, prep, *, validate_one,
                  integrate, workers):
        """Evaluate ``frames``; return ``(per_frame, stats)``.

        ``per_frame`` is a list aligned with ``frames`` of
        ``validate_one``-shaped tuples, or ``None`` to make the engine
        run its built-in thread path (whole-cycle fallback).
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release pools and other resources (idempotent)."""


class ThreadBackend(ExecutorBackend):
    """The classic thread fan-out as an explicit backend object.

    The engine inlines this path when ``executor="thread"`` (no backend
    object involved); this class exists so callers can pass backend
    instances uniformly.
    """

    name = "thread"

    def run_cycle(self, validator, frames, prep, *, validate_one,
                  integrate, workers):
        # Returning None hands the frames to the engine's built-in
        # thread path -- identical behavior, no duplicated code.
        return None, None


class ProcessBackend(ExecutorBackend):
    """Shard scan cycles across a persistent worker-process pool."""

    name = "process"

    def __init__(
        self,
        *,
        shard_size: int | None = None,
        timeout_s: float = DEFAULT_SHARD_TIMEOUT_S,
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
    ):
        self.shard_size = shard_size
        self.timeout_s = timeout_s
        self.max_respawns = max_respawns
        #: Test hook: ``{shard_index: "exit" | "error"}`` fault
        #: injection for the next cycle (cleared after use).
        self.fault_shards: dict[int, str] = {}
        self._pool: multiprocessing.pool.Pool | None = None
        self._pool_key: tuple[str, int] | None = None

    # ---- pool lifecycle ------------------------------------------------

    def _ensure_pool(self, init_blob: bytes, workers: int):
        from repro.exec.worker import init_worker

        key = (hashlib.sha256(init_blob).hexdigest(), workers)
        if self._pool is not None and self._pool_key == key:
            return self._pool
        self._shutdown_pool()
        context = multiprocessing.get_context()
        self._pool = context.Pool(
            processes=workers,
            initializer=init_worker,
            initargs=(init_blob,),
        )
        self._pool_key = key
        return self._pool

    def _shutdown_pool(self, terminate: bool = False) -> None:
        pool, self._pool = self._pool, None
        self._pool_key = None
        if pool is None:
            return
        try:
            if terminate:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        except Exception:
            pass

    def close(self) -> None:
        self._shutdown_pool(terminate=True)

    def __del__(self):  # best-effort: tests may drop backends unclosed
        try:
            self._shutdown_pool(terminate=True)
        except Exception:
            pass

    # ---- validation cycles ---------------------------------------------

    def run_cycle(self, validator, frames, prep, *, validate_one,
                  integrate, workers):
        from repro.crawler.serialize import frame_to_dict
        from repro.exec.worker import evaluate_shard

        stats = ExecStats(backend=self.name, workers=workers)
        telemetry = validator.telemetry

        indexed = list(enumerate(frames))
        if prep.store is not None and prep.clean_frames:
            # Clean frames replay entirely from the parent store -- the
            # cheap path; shipping them would serialize work the store
            # already proved unnecessary.
            ship = [(i, f) for i, f in indexed
                    if f.describe() not in prep.clean_frames]
        else:
            ship = indexed
        ship_indexes = {i for i, _f in ship}
        local = [(i, f) for i, f in indexed if i not in ship_indexes]

        per_frame: list = [None] * len(frames)
        if not ship:
            for i, frame in local:
                per_frame[i] = validate_one(frame)
            stats.frames_local = len(local)
            return per_frame, stats

        try:
            init_blob = encode(build_init_config(validator))
        except Exception as error:
            stats.pickle_fallbacks += 1
            log.warning(
                "process executor: run state not picklable (%s); "
                "falling back to threads", error,
            )
            return None, stats

        # ---- shard the shipped frames (contiguous, ordered) ----------
        size = self.shard_size or max(
            1, math.ceil(len(ship) / max(1, workers * _SHARDS_PER_WORKER))
        )
        shards = [ship[k:k + size] for k in range(0, len(ship), size)]
        stats.shard_size = size
        stats.shards = len(shards)

        faults, self.fault_shards = dict(self.fault_shards), {}
        #: Shards faulted by an armed chaos plan (as opposed to the test
        #: hook): their injection / absorption is accounted parent-side,
        #: where the fire decision is made -- a killed worker cannot
        #: report its own death.
        chaos_faulted: set[int] = set()
        if _CHAOS.armed:
            for s_idx in range(len(shards)):
                if s_idx in faults:
                    continue
                rule = _CHAOS.decide("exec.worker", f"shard-{s_idx}")
                if rule is not None:
                    faults[s_idx] = rule.mode if rule.mode == "exit" else "error"
                    chaos_faulted.add(s_idx)
        payloads: dict[int, bytes | None] = {}
        clean_payloads: dict[int, bytes] = {}
        for s_idx, shard in enumerate(shards):
            try:
                store_doc = None
                if prep.store is not None:
                    store_doc = prep.store.export_slice(
                        [f.describe() for _i, f in shard])
                envelope = ShardEnvelope(
                    shard_index=s_idx,
                    frame_docs=[frame_to_dict(f) for _i, f in shard],
                    tags=prep.tags,
                    use_plans=prep.use_plans,
                    provenance=prep.provenance,
                    timings=prep.timings is not None,
                    store_doc=store_doc,
                    capture=telemetry.enabled,
                    fault=faults.get(s_idx),
                )
                payloads[s_idx] = encode(envelope)
                if s_idx in chaos_faulted:
                    # An injected fault is one-shot: a respawned retry
                    # runs the clean envelope (a really-crashed worker
                    # does not deterministically crash again), so the
                    # respawn path heals the shard instead of burning
                    # every attempt on the same scripted death.
                    envelope.fault = None
                    clean_payloads[s_idx] = encode(envelope)
            except Exception as error:
                # Chaos faults can fire while the frames serialize (the
                # fs.read site under frame_to_dict); falling back to the
                # in-parent path absorbs them like any encode failure.
                _chaos_absorbed(error)
                stats.pickle_fallbacks += 1
                log.warning(
                    "process executor: shard %d not picklable (%s); "
                    "evaluating in-parent", s_idx, error,
                )
                payloads[s_idx] = None

        results: dict[int, object] = {
            s: None for s, payload in payloads.items() if payload is None
        }
        deadline = getattr(prep, "deadline", None)

        def shard_timeout() -> float:
            # A cycle deadline caps how long the parent will wait on any
            # one shard: past the budget, collection degrades to the
            # timeout path (respawn / in-parent fallback) instead of
            # blocking the watchdog-reported cycle on a wedged worker.
            if deadline is None:
                return self.timeout_s
            remaining = deadline.remaining_s()
            if remaining is None:
                return self.timeout_s
            return min(self.timeout_s, max(0.1, remaining))

        pending = [s for s, payload in payloads.items() if payload is not None]
        attempts = {s: 0 for s in pending}
        workers_n = max(1, min(workers, len(shards)))
        #: Parent-clock dispatch / completion stamps per shard (latest
        #: attempt wins) -- the shard span's true wall position, never
        #: reconstructed from the worker-reported duration.
        dispatched: dict[int, float] = {}
        completed: dict[int, float] = {}

        # ---- submit / collect with bounded respawn --------------------
        first_round = True
        while pending:
            if not first_round:
                # A retry round means the previous pool was terminated
                # after a timeout; _ensure_pool below re-creates it.
                stats.respawns += 1
                for s in pending:
                    clean = clean_payloads.pop(s, None)
                    if clean is not None:
                        payloads[s] = clean
            first_round = False
            try:
                pool = self._ensure_pool(init_blob, workers_n)
            except Exception as error:
                log.warning(
                    "process executor: pool spawn failed (%s); "
                    "evaluating remaining shards in-parent", error,
                )
                for s in pending:
                    results[s] = None
                break
            handles = {}
            for s in pending:
                dispatched[s] = time.perf_counter()
                handles[s] = pool.apply_async(evaluate_shard, (payloads[s],))
                stats.bytes_out += len(payloads[s])
            retry: list[int] = []
            for position, s in enumerate(pending):
                wait_s = shard_timeout()
                try:
                    blob = handles[s].get(timeout=wait_s)
                except multiprocessing.TimeoutError:
                    # Dead or hung worker: the pool is suspect.  Tear it
                    # down, charge the attempt to this shard, and
                    # resubmit whatever the round had not yet delivered.
                    stats.worker_failures += 1
                    attempts[s] += 1
                    log.warning(
                        "process executor: shard %d timed out after %.0fs "
                        "(attempt %d)", s, wait_s, attempts[s],
                    )
                    self._shutdown_pool(terminate=True)
                    if (attempts[s] <= self.max_respawns
                            and (deadline is None
                                 or not deadline.cycle_expired)):
                        retry.append(s)
                    else:
                        results[s] = None
                    for later in pending[position + 1:]:
                        handle = handles[later]
                        if handle.ready():
                            try:
                                late = handle.get(timeout=0)
                                completed[later] = time.perf_counter()
                                stats.bytes_in += len(late)
                                results[later] = decode(late)
                            except Exception:
                                stats.worker_failures += 1
                                results[later] = None
                        else:
                            retry.append(later)
                    break
                except Exception as error:
                    # The worker raised (including result-encoding
                    # failures): pool is healthy, shard falls back.
                    stats.worker_failures += 1
                    log.warning(
                        "process executor: shard %d failed in worker "
                        "(%s); evaluating in-parent", s, error,
                    )
                    results[s] = None
                    continue
                completed[s] = time.perf_counter()
                stats.bytes_in += len(blob)
                try:
                    results[s] = decode(blob)
                except Exception:
                    stats.worker_failures += 1
                    results[s] = None
            pending = retry

        # ---- deterministic reassembly (frame order, not completion) ---
        for i, frame in local:
            per_frame[i] = validate_one(frame)
            stats.frames_local += 1
        for s_idx, shard in enumerate(shards):
            shard_result = results.get(s_idx)
            if (shard_result is None
                    or len(shard_result.reports) != len(shard)):
                for i, frame in shard:
                    per_frame[i] = validate_one(frame)
                    stats.frames_fallback += 1
                if s_idx in chaos_faulted:
                    # The injected worker death / error degraded to an
                    # in-parent evaluation of the same frames: absorbed.
                    _CHAOS.account.note_absorbed("exec.worker")
                continue
            stats.frames_shipped += len(shard)
            if getattr(shard_result, "chaos", None):
                # Faults absorbed inside the worker (fs/lens/rule sites,
                # frame-deadline cancellations) fold into the parent
                # account so the cycle's DegradationStats covers them.
                _CHAOS.account.merge_delta(shard_result.chaos)
            if s_idx in chaos_faulted:
                # Defensive: a chaos-faulted shard that somehow returned
                # a full result still absorbed its fault.
                _CHAOS.account.note_absorbed("exec.worker")
            stats.shard_seconds.append(shard_result.duration_s)
            if prep.store is not None and shard_result.store_doc is not None:
                prep.store.absorb_slice(shard_result.store_doc)
            if prep.timings is not None and shard_result.timings:
                for stage, (seconds, count) in shard_result.timings.items():
                    prep.timings.add(stage, seconds, count)
            if shard_result.cache:
                stats.add_worker_cache(shard_result.cache)
            if shard_result.artifact is not None:
                stats.add_artifact(shard_result.artifact)
                parent_store = getattr(validator, "artifact_store", None)
                if parent_store is not None:
                    parent_store.absorb_counters(shard_result.artifact)
            capture = shard_result.telemetry
            if telemetry.enabled:
                spans = telemetry.spans
                start_raw = dispatched.get(s_idx)
                end_raw = completed.get(s_idx)
                if start_raw is None:
                    # Shard never went through the pool this cycle
                    # (defensive); fall back to anchoring on now.
                    start_raw = time.perf_counter() - shard_result.duration_s
                duration = (end_raw - start_raw if end_raw is not None
                            else shard_result.duration_s)
                queue_s = 0.0
                if shard_result.started_wall:
                    # Worker start on the parent timeline, via the
                    # shared wall clock: time between dispatch and the
                    # worker actually picking the shard up.
                    queue_s = max(0.0, (
                        (shard_result.started_wall - spans.origin_wall)
                        - (start_raw - spans.origin_perf)
                    ))
                attrs = {
                    "frames": str(len(shard)),
                    "queue_s": f"{queue_s:.6f}",
                    "exec_s": f"{shard_result.duration_s:.6f}",
                }
                if capture is not None:
                    attrs["worker_pid"] = str(capture.pid)
                merge_shard_capture(
                    telemetry, capture,
                    name=f"shard-{s_idx}",
                    start_s=start_raw - spans.origin_perf,
                    duration_s=duration,
                    attrs=attrs,
                )
            # When the shard shipped a capture, its rule spans will
            # expand on the worker's pid lane -- integrate must not
            # record them again parent-side.  Metrics/profiler/counters
            # always fold through integrate (captures don't carry them).
            counted = telemetry.enabled and capture is not None
            for (i, frame), freport in zip(shard, shard_result.reports):
                per_frame[i] = integrate(frame, freport, counted=counted)
        return per_frame, stats

    # ---- crawling -------------------------------------------------------

    def run_crawl(self, crawler, entities, features, workers, *,
                  validator=None, strict_plugins=False):
        """Crawl ``entities`` in worker processes; None = use threads.

        Reuses the validation pool when one is alive; otherwise spawns
        one from ``validator`` (crawl shards ignore the validator state,
        but sharing one pool keeps packs shipped once).  Frames travel
        back as serialize-module documents, so a process-crawled frame
        is the same content-addressed snapshot an in-parent crawl
        produces.
        """
        from repro.crawler.serialize import frame_from_dict
        from repro.exec.worker import crawl_shard

        if not entities:
            return []
        try:
            if self._pool is None:
                if validator is None:
                    return None
                init_blob = encode(build_init_config(validator))
                self._ensure_pool(
                    init_blob, max(1, min(workers, len(entities))))
            pool = self._pool
            size = self.shard_size or max(
                1, math.ceil(len(entities)
                             / max(1, workers * _SHARDS_PER_WORKER))
            )
            shards = [entities[k:k + size]
                      for k in range(0, len(entities), size)]
            payloads = [
                encode({
                    "entities": shard,
                    "features": tuple(features),
                    "strict_plugins": strict_plugins,
                    "plugins": crawler.plugins,
                })
                for shard in shards
            ]
            handles = [pool.apply_async(crawl_shard, (payload,))
                       for payload in payloads]
            frames = []
            for handle in handles:
                docs = decode(handle.get(timeout=self.timeout_s))
                frames.extend(frame_from_dict(doc) for doc in docs)
            return frames
        except Exception as error:
            log.warning(
                "process executor: crawl fan-out failed (%s); "
                "falling back to threads", error,
            )
            if isinstance(error, multiprocessing.TimeoutError):
                self._shutdown_pool(terminate=True)
            return None
