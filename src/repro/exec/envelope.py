"""Pickle-safe task envelopes for the process executor.

Everything that crosses the process boundary is spelled out here:

- the **init blob** ships once per pool (rule packs, registries, cache
  and artifact-store configuration) via the pool initializer;
- a :class:`ShardEnvelope` ships per shard (frames as
  :func:`~repro.crawler.serialize.frame_to_dict` documents -- the same
  round-trip the agentless collector uses -- plus run options and the
  shard's verdict-store slice);
- a :class:`ShardResult` comes back per shard (one
  :class:`FrameReport` per frame, plus stats/telemetry deltas).

Envelopes are pre-pickled to ``bytes`` by the sender instead of letting
the pool plumbing pickle live objects: a payload that cannot cross the
boundary surfaces as a clean ``PicklingError`` at the call site (which
the backend turns into a thread fallback), never as a corrupted pool.
One ``dumps`` per shard also preserves object sharing -- a result
appearing in both ``placements`` and ``fresh`` crosses once.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any


def encode(obj: Any) -> bytes:
    """Pickle with the highest protocol (raises ``PicklingError`` on
    payloads that cannot cross a process boundary)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode(blob: bytes) -> Any:
    return pickle.loads(blob)


@dataclass
class InitConfig:
    """Per-pool worker initialization (pickled once per pool spawn)."""

    #: ``(manifest, ruleset)`` pairs for every enabled manifest --
    #: shipping loaded packs sidesteps unpicklable resolver closures.
    packs: list[tuple[Any, Any]]
    #: Lens / schema registries (None = worker uses the defaults).
    lenses: Any = None
    schemas: Any = None
    #: Parse-cache size for the worker's in-memory tier.
    cache_size: int | None = None
    #: Artifact-store path + budget; each worker opens its own
    #: connection to the shared sqlite database.
    artifact_path: str | None = None
    artifact_max_bytes: int | None = None
    #: Whether workers build a live telemetry bundle (spans / metrics /
    #: profiler) so shard evaluations can ship captures back.  Part of
    #: the pool key: toggling telemetry respawns the pool.
    telemetry: bool = False
    #: Per-frame soft deadline (``--frame-deadline``); workers enforce
    #: it passively at rule boundaries, exactly like the thread path.
    frame_deadline_s: float | None = None


@dataclass
class ShardEnvelope:
    """One shard of frames plus the options its evaluation needs."""

    shard_index: int
    #: Frames as ``frame_to_dict`` documents (JSON-shaped, rebuilt onto
    #: a VirtualFilesystem in the worker).
    frame_docs: list[dict]
    tags: list[str] | None = None
    use_plans: bool = True
    provenance: bool = False
    #: Whether to measure per-stage timings in the worker.
    timings: bool = False
    #: Verdict-store slice for these frames
    #: (:meth:`~repro.engine.incremental.VerdictStore.export_slice`),
    #: or None outside incremental runs.
    store_doc: dict | None = None
    #: Whether the worker should capture telemetry (spans, metric
    #: deltas, profiler rows) for this shard and return it in
    #: :attr:`ShardResult.telemetry`.
    capture: bool = False
    #: Test hook: ``"exit"`` kills the worker mid-shard, ``"error"``
    #: raises inside the worker.  Never set outside the fault tests.
    fault: str | None = None


@dataclass
class FrameReport:
    """One worker-evaluated frame, ready for the parent's merge barrier.

    Mirrors what the thread path's ``validate_one`` produces, with
    manifests flattened to entity names (the parent re-binds its own
    :class:`~repro.cvl.manifest.Manifest` objects).
    """

    frame_key: str
    #: ``(entity name, [RuleResult, ...])`` per applicable manifest.
    placements: list[tuple[str, list]]
    #: Freshly evaluated results (same objects as in ``placements``;
    #: sharing survives the single per-shard pickle).
    fresh: list
    replayed: int = 0
    #: Recomputed ``(entity, rule)`` pairs (incremental bookkeeping).
    recomputed: list[tuple[str, str]] = field(default_factory=list)
    #: Per-frame :class:`~repro.engine.plan.PlanRunStats` (or None).
    plan: Any = None
    #: Worker wall time spent evaluating this frame.
    busy_s: float = 0.0


@dataclass
class ShardResult:
    """Everything a worker sends back for one shard."""

    shard_index: int
    reports: list[FrameReport]
    #: Worker's verdict-store slice after evaluation (absorbed by the
    #: parent store), or None outside incremental runs.
    store_doc: dict | None = None
    #: ``{stage: (seconds, count)}`` deltas for StageTimings.add.
    timings: dict[str, tuple[float, int]] | None = None
    #: Worker parse-cache counter deltas for this shard.
    cache: dict[str, int] = field(default_factory=dict)
    #: Worker artifact-store deltas for this shard (None = no store).
    artifact: Any = None
    #: Worker wall time for the whole shard.
    duration_s: float = 0.0
    #: Wall-clock time evaluation began in the worker.  With
    #: ``duration_s`` this anchors the shard's true execution window on
    #: the parent's timeline (queue wait = execution start minus the
    #: parent's dispatch stamp) -- shards completing out of order keep
    #: their real positions.
    started_wall: float = 0.0
    #: Worker telemetry capture for this shard
    #: (:class:`~repro.telemetry.capture.TelemetryCapture`), or None
    #: when the envelope did not request capture.
    telemetry: Any = None
    #: Worker chaos-account delta for this shard
    #: (:meth:`~repro.chaos.fabric.ChaosAccount.delta_since`), or None
    #: when nothing degraded.  The parent folds it into its own account
    #: so ``DegradationStats`` covers faults absorbed inside workers.
    chaos: dict | None = None
