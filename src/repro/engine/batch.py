"""Fleet-scale scanning and dashboard rollups.

The production deployment (paper §5) does not show operators one report
per container -- it shows fleet dashboards: which rules fail most, which
entities are worst, how compliance breaks down per checklist tag.
:class:`BatchScanner` validates a fleet and produces those rollups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chaos.fabric import _CHAOS
from repro.crawler.crawler import Crawler
from repro.crawler.entities import Entity
from repro.crawler.frame import ConfigFrame
from repro.engine.engine import ConfigValidator
from repro.engine.parse_cache import CacheStats
from repro.engine.results import RuleResult, ValidationReport, Verdict
from repro.engine.stages import StageTimings
from repro.telemetry import RuleProfiler, Telemetry, get_logger

_SEVERITY_ORDER = ("informational", "low", "medium", "high", "critical")

log = get_logger("batch")


class ScanStageError(RuntimeError):
    """A scan cycle died mid-pipeline; carries *where*.

    ``stage`` names the pipeline stage that failed (``crawl``,
    ``validate``) and ``frame`` the target being processed when known,
    so the monitor can persist failure attribution instead of a bare
    message -- a crawl failure and a store failure need different
    responses.
    """

    def __init__(self, stage: str, error: BaseException, frame: str = ""):
        self.stage = stage
        self.frame = frame
        self.error = error
        where = f" ({frame})" if frame else ""
        super().__init__(f"{stage}{where}: {error}")


def severity_rank(severity: str) -> int:
    """Position of ``severity`` in the escalation order (unknown -> 0)."""
    try:
        return _SEVERITY_ORDER.index(severity)
    except ValueError:
        return 0


@dataclass
class RuleRollup:
    """Fleet-wide stats for one rule.

    ``errors`` and ``not_applicable`` are counted separately from
    pass/fail: a rule that errors fleet-wide must not look healthy on the
    dashboard just because it never produced a NONCOMPLIANT verdict.
    """

    entity: str
    rule_name: str
    severity: str
    failed: int = 0
    passed: int = 0
    errors: int = 0
    not_applicable: int = 0
    message: str = ""

    @property
    def checked(self) -> int:
        return self.failed + self.passed

    @property
    def failure_rate(self) -> float:
        return self.failed / self.checked if self.checked else 0.0


@dataclass
class EntityRollup:
    """Per-scanned-entity stats."""

    target: str
    failed: int = 0
    passed: int = 0
    worst_severity: str = "informational"

    @property
    def checked(self) -> int:
        return self.failed + self.passed


@dataclass
class FleetSummary:
    """Everything a fleet dashboard shows for one scan cycle."""

    report: ValidationReport
    entities_scanned: int
    elapsed_s: float
    #: Wall-clock (``time.time``) stamp at cycle start -- the time axis
    #: of the fleet-health history store.
    started_at: float = 0.0
    rules: dict[tuple[str, str], RuleRollup] = field(default_factory=dict)
    entities: dict[str, EntityRollup] = field(default_factory=dict)
    tag_failures: dict[str, int] = field(default_factory=dict)
    #: Per-stage wall time of this scan cycle (None when not collected).
    stage_timings: StageTimings | None = None
    #: Parse-cache counters snapshotted at the end of the cycle.
    cache_stats: CacheStats | None = None
    #: Per-rule / per-lens profile (None unless telemetry is enabled).
    #: Process-cumulative: a long-running scanner's rankings sharpen
    #: cycle over cycle.
    profile: RuleProfiler | None = None
    #: Incremental-revalidation stats for this cycle
    #: (:class:`repro.engine.incremental.IncrementalRunStats`); None when
    #: the validator has no verdict store.
    incremental: object | None = None
    #: Rule-plan stats for this cycle
    #: (:class:`repro.engine.plan.PlanRunStats`); None when the cycle ran
    #: with ``--no-plan``.
    plan: object | None = None
    #: Process-executor stats for this cycle
    #: (:class:`repro.exec.ExecStats`); None on the thread backend.
    exec_stats: object | None = None
    #: Parent-side artifact-store counters snapshotted at the end of the
    #: cycle (:class:`repro.engine.artifact_store.ArtifactStoreStats`);
    #: None when the validator runs without a persistent store.
    artifact_stats: object | None = None
    #: Degradation accounting for this cycle
    #: (:class:`repro.chaos.stats.DegradationStats`); None on clean
    #: cycles with no chaos plan armed.
    degradation: object | None = None

    @property
    def throughput(self) -> float:
        """Entities per second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.entities_scanned / self.elapsed_s

    def top_failing_rules(self, count: int = 10) -> list[RuleRollup]:
        return sorted(
            self.rules.values(),
            key=lambda r: (-r.failed, -severity_rank(r.severity), r.rule_name),
        )[:count]

    def erroring_rules(self, count: int = 10) -> list[RuleRollup]:
        """Rules that errored or were inapplicable somewhere in the fleet."""
        flagged = [
            rollup
            for rollup in self.rules.values()
            if rollup.errors or rollup.not_applicable
        ]
        return sorted(
            flagged,
            key=lambda r: (-r.errors, -r.not_applicable, r.rule_name),
        )[:count]

    def worst_entities(self, count: int = 10) -> list[EntityRollup]:
        return sorted(
            self.entities.values(),
            key=lambda e: (-e.failed, -severity_rank(e.worst_severity), e.target),
        )[:count]

    def failures_at_least(self, severity: str) -> list[RuleResult]:
        """Failed results at or above ``severity``."""
        threshold = severity_rank(severity)
        return [
            result
            for result in self.report.failed()
            if severity_rank(result.rule.severity) >= threshold
        ]

    def compliance_rate(self) -> float:
        counts = self.report.counts()
        checked = counts["compliant"] + counts["noncompliant"]
        return counts["compliant"] / checked if checked else 1.0


class BatchScanner:
    """Validate fleets and build dashboard summaries.

    ``workers`` parallelizes both halves of the cycle (crawl fan-out and
    per-frame validation); stage timings and parse-cache counters ride
    along on the returned :class:`FleetSummary`.
    """

    def __init__(self, validator: ConfigValidator,
                 crawler: Crawler | None = None, *, workers: int = 1,
                 cache_size: int | None = None,
                 telemetry: Telemetry | None = None):
        self._validator = validator
        if (cache_size is not None
                and validator.parse_cache.maxsize != cache_size):
            # Honor --cache-size exactly like `validate`: one shared
            # cache per cycle, resized in place so telemetry collectors
            # and the artifact-store tier keep observing the same cache.
            validator.parse_cache.resize(cache_size)
        #: Defaults to the validator's bundle so one enabled Telemetry
        #: covers the whole cycle (crawl spans included).
        self.telemetry = telemetry or validator.telemetry
        self._crawler = crawler or Crawler(telemetry=self.telemetry)
        self._workers = max(1, workers)

    def scan_entities(self, entities: list[Entity], *,
                      tags: list[str] | None = None,
                      workers: int | None = None) -> FleetSummary:
        """Crawl + validate ``entities`` and roll the results up."""
        workers = self._workers if workers is None else max(1, workers)
        timings = StageTimings()
        busy_before = self._busy_seconds()
        started_at = time.time()
        if _CHAOS.armed:
            # Injected clock skew on the cycle's wall stamp: history rows
            # and event timestamps drift like a broken-NTP host's would,
            # while every duration stays perf_counter-true.
            started_at += _CHAOS.skew("scan-cycle")
        started = time.perf_counter()
        with self.telemetry.spans.span("scan_cycle", category="cycle",
                                       entities=str(len(entities)),
                                       workers=str(workers)):
            with timings.timer("crawl"):
                try:
                    frames = self._crawler.crawl_many(
                        entities, workers=workers,
                        executor=self._validator._resolve_backend(None),
                        init_source=self._validator,
                    )
                except ScanStageError:
                    raise
                except Exception as error:
                    raise ScanStageError("crawl", error) from error
            try:
                report = self._validator.validate_frames(
                    frames, tags=tags, workers=workers, timings=timings
                )
            except ScanStageError:
                raise
            except Exception as error:
                raise ScanStageError("validate", error) from error
        return self._summarize(
            report, len(entities), time.perf_counter() - started, timings,
            workers=workers, busy_before=busy_before, started_at=started_at,
        )

    def scan_frames(self, frames: list[ConfigFrame], *,
                    tags: list[str] | None = None,
                    workers: int | None = None) -> FleetSummary:
        """Validate pre-captured frames (the decoupled pipeline)."""
        workers = self._workers if workers is None else max(1, workers)
        timings = StageTimings()
        busy_before = self._busy_seconds()
        started_at = time.time()
        if _CHAOS.armed:
            started_at += _CHAOS.skew("scan-cycle")
        started = time.perf_counter()
        with self.telemetry.spans.span("scan_cycle", category="cycle",
                                       entities=str(len(frames)),
                                       workers=str(workers)):
            try:
                report = self._validator.validate_frames(
                    frames, tags=tags, workers=workers, timings=timings
                )
            except ScanStageError:
                raise
            except Exception as error:
                raise ScanStageError("validate", error) from error
        return self._summarize(
            report, len(frames), time.perf_counter() - started, timings,
            workers=workers, busy_before=busy_before, started_at=started_at,
        )

    def _busy_seconds(self) -> float:
        """Current value of the cumulative worker-busy counter."""
        if not self.telemetry.enabled:
            return 0.0
        return self.telemetry.metrics.counter(
            "repro_worker_busy_seconds_total",
            "Aggregate worker-seconds spent validating frames.",
        ).value()

    def _summarize(
        self,
        report: ValidationReport,
        entity_count: int,
        elapsed: float,
        timings: StageTimings | None = None,
        *,
        workers: int = 1,
        busy_before: float = 0.0,
        started_at: float = 0.0,
    ) -> FleetSummary:
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.metrics.counter(
                "repro_scan_cycles_total", "Completed fleet scan cycles."
            ).inc()
            telemetry.metrics.gauge(
                "repro_workers", "Configured worker threads."
            ).set(workers)
            busy = self._busy_seconds() - busy_before
            if elapsed > 0:
                telemetry.metrics.gauge(
                    "repro_worker_utilization_ratio",
                    "Worker busy-seconds / (workers * cycle wall time) "
                    "of the most recent scan cycle.",
                ).set(min(1.0, busy / (workers * elapsed)))
            if timings is not None:
                timings.publish(telemetry.metrics)
        summary = FleetSummary(
            report=report,
            entities_scanned=entity_count,
            elapsed_s=elapsed,
            started_at=started_at or time.time() - elapsed,
            stage_timings=timings,
            cache_stats=self._validator.cache_stats(),
            profile=telemetry.profiler if telemetry.enabled else None,
            incremental=report.incremental,
            plan=report.plan,
            exec_stats=report.exec_stats,
            artifact_stats=(
                self._validator.artifact_store.stats()
                if self._validator.artifact_store is not None else None
            ),
            degradation=report.degradation,
        )
        log.info(
            "scan cycle: %d entities, %d checks in %.2fs",
            entity_count, len(report), elapsed,
        )
        for result in report:
            key = (result.entity, result.rule.name)
            rollup = summary.rules.get(key)
            if rollup is None:
                rollup = RuleRollup(
                    entity=result.entity,
                    rule_name=result.rule.name,
                    severity=result.rule.severity,
                )
                summary.rules[key] = rollup
            if result.verdict is Verdict.ERROR:
                rollup.errors += 1
                rollup.message = result.message
                continue
            if result.verdict is Verdict.NOT_APPLICABLE:
                rollup.not_applicable += 1
                continue
            entity_rollup = summary.entities.get(result.target)
            if entity_rollup is None:
                entity_rollup = EntityRollup(target=result.target)
                summary.entities[result.target] = entity_rollup
            if result.verdict is Verdict.COMPLIANT:
                rollup.passed += 1
                entity_rollup.passed += 1
            else:
                rollup.failed += 1
                rollup.message = result.message
                entity_rollup.failed += 1
                if severity_rank(result.rule.severity) > severity_rank(
                    entity_rollup.worst_severity
                ):
                    entity_rollup.worst_severity = result.rule.severity
                for tag in result.rule.tags:
                    summary.tag_failures[tag] = (
                        summary.tag_failures.get(tag, 0) + 1
                    )
        return summary


def render_fleet_summary(summary: FleetSummary, *, top: int = 10) -> str:
    """Dashboard text: compliance rate, top rules, worst entities, tags."""
    counts = summary.report.counts()
    lines = [
        f"# fleet scan: {summary.entities_scanned} entities, "
        f"{counts['total']} checks in {summary.elapsed_s:.2f}s "
        f"({summary.throughput:,.0f} entities/s)",
        f"# compliance: {summary.compliance_rate():.1%} "
        f"({counts['compliant']} pass / {counts['noncompliant']} fail / "
        f"{counts['not_applicable']} n/a / {counts['error']} error)",
        "",
        "top failing rules:",
    ]
    for rollup in summary.top_failing_rules(top):
        if not rollup.failed:
            continue
        lines.append(
            f"  {rollup.failed:4d}/{rollup.checked:<4d} "
            f"[{rollup.severity:<8s}] {rollup.entity}/{rollup.rule_name}"
        )
    lines.append("")
    lines.append("worst entities:")
    for entity_rollup in summary.worst_entities(top):
        if not entity_rollup.failed:
            continue
        lines.append(
            f"  {entity_rollup.failed:4d} findings "
            f"(worst: {entity_rollup.worst_severity})  {entity_rollup.target}"
        )
    if summary.tag_failures:
        lines.append("")
        lines.append("failures by tag:")
        ranked = sorted(
            summary.tag_failures.items(), key=lambda item: -item[1]
        )
        for tag, count in ranked[:top]:
            lines.append(f"  {count:4d}  {tag}")
    erroring = [r for r in summary.erroring_rules(top) if r.errors]
    if erroring:
        lines.append("")
        lines.append("rules with errors:")
        for rollup in erroring:
            lines.append(
                f"  {rollup.errors:4d} errors "
                f"[{rollup.severity:<8s}] {rollup.entity}/{rollup.rule_name}"
            )
    if summary.stage_timings is not None:
        lines.append("")
        lines.append("stage timings (aggregate worker-seconds):")
        for row in summary.stage_timings.render().splitlines():
            lines.append(f"  {row}")
    if summary.cache_stats is not None:
        lines.append("")
        lines.append(summary.cache_stats.render())
    if summary.incremental is not None:
        lines.append("")
        lines.append(summary.incremental.render())
    if summary.plan is not None:
        lines.append("")
        lines.append(summary.plan.render())
    if summary.exec_stats is not None:
        lines.append("")
        lines.append(summary.exec_stats.render())
    if summary.artifact_stats is not None:
        lines.append("")
        lines.append(summary.artifact_stats.render())
    if summary.degradation is not None:
        lines.append("")
        for row in summary.degradation.render().splitlines():
            lines.append(row)
    if summary.profile is not None and len(summary.profile):
        lines.append("")
        lines.append("rule/lens profile (process-cumulative):")
        for row in summary.profile.render(top=top).splitlines():
            lines.append(f"  {row}")
    return "\n".join(lines)
