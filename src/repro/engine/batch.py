"""Fleet-scale scanning and dashboard rollups.

The production deployment (paper §5) does not show operators one report
per container -- it shows fleet dashboards: which rules fail most, which
entities are worst, how compliance breaks down per checklist tag.
:class:`BatchScanner` validates a fleet and produces those rollups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.crawler.crawler import Crawler
from repro.crawler.entities import Entity
from repro.crawler.frame import ConfigFrame
from repro.engine.engine import ConfigValidator
from repro.engine.results import RuleResult, ValidationReport, Verdict

_SEVERITY_ORDER = ("informational", "low", "medium", "high", "critical")


def severity_rank(severity: str) -> int:
    """Position of ``severity`` in the escalation order (unknown -> 0)."""
    try:
        return _SEVERITY_ORDER.index(severity)
    except ValueError:
        return 0


@dataclass
class RuleRollup:
    """Fleet-wide stats for one rule."""

    entity: str
    rule_name: str
    severity: str
    failed: int = 0
    passed: int = 0
    message: str = ""

    @property
    def checked(self) -> int:
        return self.failed + self.passed

    @property
    def failure_rate(self) -> float:
        return self.failed / self.checked if self.checked else 0.0


@dataclass
class EntityRollup:
    """Per-scanned-entity stats."""

    target: str
    failed: int = 0
    passed: int = 0
    worst_severity: str = "informational"

    @property
    def checked(self) -> int:
        return self.failed + self.passed


@dataclass
class FleetSummary:
    """Everything a fleet dashboard shows for one scan cycle."""

    report: ValidationReport
    entities_scanned: int
    elapsed_s: float
    rules: dict[tuple[str, str], RuleRollup] = field(default_factory=dict)
    entities: dict[str, EntityRollup] = field(default_factory=dict)
    tag_failures: dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Entities per second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.entities_scanned / self.elapsed_s

    def top_failing_rules(self, count: int = 10) -> list[RuleRollup]:
        return sorted(
            self.rules.values(),
            key=lambda r: (-r.failed, -severity_rank(r.severity), r.rule_name),
        )[:count]

    def worst_entities(self, count: int = 10) -> list[EntityRollup]:
        return sorted(
            self.entities.values(),
            key=lambda e: (-e.failed, -severity_rank(e.worst_severity), e.target),
        )[:count]

    def failures_at_least(self, severity: str) -> list[RuleResult]:
        """Failed results at or above ``severity``."""
        threshold = severity_rank(severity)
        return [
            result
            for result in self.report.failed()
            if severity_rank(result.rule.severity) >= threshold
        ]

    def compliance_rate(self) -> float:
        counts = self.report.counts()
        checked = counts["compliant"] + counts["noncompliant"]
        return counts["compliant"] / checked if checked else 1.0


class BatchScanner:
    """Validate fleets and build dashboard summaries."""

    def __init__(self, validator: ConfigValidator, crawler: Crawler | None = None):
        self._validator = validator
        self._crawler = crawler or Crawler()

    def scan_entities(self, entities: list[Entity], *,
                      tags: list[str] | None = None) -> FleetSummary:
        """Crawl + validate ``entities`` and roll the results up."""
        started = time.perf_counter()
        frames = self._crawler.crawl_many(entities)
        return self._summarize(
            self._validator.validate_frames(frames, tags=tags),
            len(entities),
            time.perf_counter() - started,
        )

    def scan_frames(self, frames: list[ConfigFrame], *,
                    tags: list[str] | None = None) -> FleetSummary:
        """Validate pre-captured frames (the decoupled pipeline)."""
        started = time.perf_counter()
        report = self._validator.validate_frames(frames, tags=tags)
        return self._summarize(
            report, len(frames), time.perf_counter() - started
        )

    def _summarize(
        self, report: ValidationReport, entity_count: int, elapsed: float
    ) -> FleetSummary:
        summary = FleetSummary(
            report=report, entities_scanned=entity_count, elapsed_s=elapsed
        )
        for result in report:
            if result.verdict not in (Verdict.COMPLIANT, Verdict.NONCOMPLIANT):
                continue
            key = (result.entity, result.rule.name)
            rollup = summary.rules.get(key)
            if rollup is None:
                rollup = RuleRollup(
                    entity=result.entity,
                    rule_name=result.rule.name,
                    severity=result.rule.severity,
                )
                summary.rules[key] = rollup
            entity_rollup = summary.entities.get(result.target)
            if entity_rollup is None:
                entity_rollup = EntityRollup(target=result.target)
                summary.entities[result.target] = entity_rollup
            if result.verdict is Verdict.COMPLIANT:
                rollup.passed += 1
                entity_rollup.passed += 1
            else:
                rollup.failed += 1
                rollup.message = result.message
                entity_rollup.failed += 1
                if severity_rank(result.rule.severity) > severity_rank(
                    entity_rollup.worst_severity
                ):
                    entity_rollup.worst_severity = result.rule.severity
                for tag in result.rule.tags:
                    summary.tag_failures[tag] = (
                        summary.tag_failures.get(tag, 0) + 1
                    )
        return summary


def render_fleet_summary(summary: FleetSummary, *, top: int = 10) -> str:
    """Dashboard text: compliance rate, top rules, worst entities, tags."""
    counts = summary.report.counts()
    lines = [
        f"# fleet scan: {summary.entities_scanned} entities, "
        f"{counts['total']} checks in {summary.elapsed_s:.2f}s "
        f"({summary.throughput:,.0f} entities/s)",
        f"# compliance: {summary.compliance_rate():.1%} "
        f"({counts['compliant']} pass / {counts['noncompliant']} fail / "
        f"{counts['not_applicable']} n/a / {counts['error']} error)",
        "",
        "top failing rules:",
    ]
    for rollup in summary.top_failing_rules(top):
        if not rollup.failed:
            continue
        lines.append(
            f"  {rollup.failed:4d}/{rollup.checked:<4d} "
            f"[{rollup.severity:<8s}] {rollup.entity}/{rollup.rule_name}"
        )
    lines.append("")
    lines.append("worst entities:")
    for entity_rollup in summary.worst_entities(top):
        if not entity_rollup.failed:
            continue
        lines.append(
            f"  {entity_rollup.failed:4d} findings "
            f"(worst: {entity_rollup.worst_severity})  {entity_rollup.target}"
        )
    if summary.tag_failures:
        lines.append("")
        lines.append("failures by tag:")
        ranked = sorted(
            summary.tag_failures.items(), key=lambda item: -item[1]
        )
        for tag, count in ranked[:top]:
            lines.append(f"  {count:4d}  {tag}")
    return "\n".join(lines)
