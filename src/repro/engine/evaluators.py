"""Per-rule-type evaluation: a rule + a frame -> a RuleResult.

Shared verdict semantics for value-bearing rules (tree, schema, script):

1. if ``non_preferred_value`` is set and **any** found value matches it
   (under ``non_preferred_value_match``), the rule is NONCOMPLIANT;
2. otherwise, if ``preferred_value`` is set, **every** found value must
   match it (under ``preferred_value_match``) for COMPLIANT;
3. with neither list set, the rule is a presence check.

Absence of the config (no key found / file missing / runtime key missing)
is the NOT_PRESENT outcome: NONCOMPLIANT by default, COMPLIANT when the
rule says ``not_present_pass: true`` (e.g. "SSLv2 must not be configured
anywhere").
"""

from __future__ import annotations

import traceback

from repro.chaos.fabric import absorbed as _chaos_absorbed
from repro.errors import (
    FileNotFoundInFrame,
    LensError,
    PathExpressionError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.augtree.path import parse_path
from repro.augtree.tree import ConfigNode
from repro.crawler.frame import ConfigFrame
from repro.cvl.manifest import Manifest
from repro.cvl.model import PathRule, Rule, SchemaRule, ScriptRule, TreeRule
from repro.engine.normalizer import Normalizer
from repro.engine.results import Evidence, Outcome, RuleResult, Verdict
from repro.schema.query import Query


def _message(rule: Rule, outcome: Outcome) -> str:
    """Output processing: pick the rule's description for the outcome."""
    if outcome is Outcome.MATCHED:
        return rule.matched_description or f"{rule.name} matches the preferred value."
    if outcome is Outcome.NOT_PRESENT:
        return rule.not_present_description or f"{rule.name} is not present."
    if outcome in (Outcome.MATCHED_NON_PREFERRED, Outcome.NOT_MATCHED_PREFERRED):
        return (
            rule.not_matched_description
            or f"{rule.name} does not match the preferred value."
        )
    if outcome is Outcome.MISSING_DEPENDENCY:
        return f"{rule.name}: required co-configurations are absent."
    if outcome is Outcome.PLUGIN_UNAVAILABLE:
        return f"{rule.name}: runtime state is unavailable for this entity."
    return rule.not_matched_description or rule.description or rule.name


def _value_verdict(
    rule: Rule, values: list[str], *, case_insensitive: bool = False
) -> tuple[Verdict, Outcome]:
    """Apply the shared preferred / non-preferred semantics."""
    if rule.non_preferred_value:
        for value in values:
            if rule.non_preferred_match.matches(
                value, rule.non_preferred_value, case_insensitive=case_insensitive
            ):
                return Verdict.NONCOMPLIANT, Outcome.MATCHED_NON_PREFERRED
    if rule.preferred_value:
        for value in values:
            if not rule.preferred_match.matches(
                value, rule.preferred_value, case_insensitive=case_insensitive
            ):
                return Verdict.NONCOMPLIANT, Outcome.NOT_MATCHED_PREFERRED
    return Verdict.COMPLIANT, Outcome.MATCHED


def _absent_result(rule: Rule, entity: str, target: str,
                   *, not_present_pass: bool) -> RuleResult:
    verdict = Verdict.COMPLIANT if not_present_pass else Verdict.NONCOMPLIANT
    return RuleResult(
        rule=rule,
        entity=entity,
        target=target,
        verdict=verdict,
        outcome=Outcome.NOT_PRESENT,
        message=_message(rule, Outcome.NOT_PRESENT),
    )


def _error_result(rule: Rule, entity: str, target: str, error: Exception) -> RuleResult:
    """An ERROR verdict that keeps the full failure context.

    The exception class and message become evidence and, when the
    exception was actually raised (vs constructed for a message), the
    traceback lands in ``detail`` -- so a fleet dashboard can answer
    "*why* does this rule error on 400 containers" without a rerun.
    """
    detail = ""
    if error.__traceback__ is not None:
        detail = "".join(
            traceback.format_exception(type(error), error,
                                       error.__traceback__)
        ).rstrip()
    result = RuleResult(
        rule=rule,
        entity=entity,
        target=target,
        verdict=Verdict.ERROR,
        outcome=Outcome.EVALUATION_ERROR,
        message=f"{rule.name}: {error}",
        evidence=[Evidence.from_exception(error)],
        detail=detail,
    )
    if _chaos_absorbed(error):
        # An injected fault turned into an ERROR verdict: the cycle
        # absorbed it.  Mark the result volatile so the verdict store
        # never replays a chaos artifact into a fault-free cycle.
        result.volatile = True
    return result


# ---- config tree rules -------------------------------------------------------


def evaluate_tree(
    rule: TreeRule,
    frame: ConfigFrame,
    manifest: Manifest,
    normalizer: Normalizer,
) -> RuleResult:
    """Evaluate a config-tree rule (paper Listing 2)."""
    entity = manifest.entity
    target = frame.describe()
    try:
        files = normalizer.candidate_files(
            frame, manifest.config_search_paths, rule.file_context
        )
    except ReproError as exc:
        return _error_result(rule, entity, target, exc)
    lens_name = rule.lens or manifest.lens

    evidence: list[Evidence] = []
    dependency_ok = not rule.require_other_configs
    parse_errors: list[str] = []
    volatile = False
    for path in files:
        try:
            tree = normalizer.tree_for(frame, path, lens_name)
        except (LensError, FileNotFoundInFrame) as exc:
            if _chaos_absorbed(exc):
                volatile = True
            parse_errors.append(str(exc))
            continue
        scopes = _scopes(tree, rule.config_path)
        found_here = False
        try:
            name_expression = parse_path(rule.name)
        except PathExpressionError as exc:
            return _error_result(rule, entity, target, exc)
        for scope in scopes:
            for node in name_expression.match(scope):
                found_here = True
                evidence.append(
                    Evidence(
                        file=path,
                        location=node.path(),
                        value=node.value if node.value is not None else "",
                        span=node.span,
                    )
                )
        if found_here and rule.require_other_configs:
            present = {n.label for n in tree.root.walk()}
            if all(req in present for req in rule.require_other_configs):
                dependency_ok = True

    result = finalize_tree_rule(
        rule, entity, target,
        evidence=evidence, parse_errors=parse_errors, files=files,
        dependency_ok=dependency_ok,
    )
    if volatile:
        result.volatile = True
    return result


def finalize_tree_rule(
    rule: TreeRule,
    entity: str,
    target: str,
    *,
    evidence: list[Evidence],
    parse_errors: list[str],
    files: list[str],
    dependency_ok: bool,
) -> RuleResult:
    """Turn collected evidence into a tree-rule verdict.

    Shared by :func:`evaluate_tree` and the fused plan evaluator
    (:mod:`repro.engine.plan`): once both paths have gathered the same
    evidence list, this single tail guarantees identical results.
    """
    if not evidence:
        if parse_errors and not files:
            return _error_result(
                rule, entity, target, ReproError("; ".join(parse_errors))
            )
        return _absent_result(
            rule, entity, target, not_present_pass=rule.not_present_pass
        )
    if rule.first_match_only and len(evidence) > 1:
        evidence = evidence[:1]
    if not dependency_ok:
        return RuleResult(
            rule=rule,
            entity=entity,
            target=target,
            verdict=Verdict.NOT_APPLICABLE,
            outcome=Outcome.MISSING_DEPENDENCY,
            message=_message(rule, Outcome.MISSING_DEPENDENCY),
            evidence=evidence,
        )

    values = _split_values(
        [item.value for item in evidence], rule.value_separator
    )
    verdict, outcome = _value_verdict(
        rule, values, case_insensitive=rule.case_insensitive
    )
    return RuleResult(
        rule=rule,
        entity=entity,
        target=target,
        verdict=verdict,
        outcome=outcome,
        message=_message(rule, outcome),
        evidence=evidence,
    )


def _scopes(tree, config_path: list[str]) -> list[ConfigNode]:
    """Parent nodes the config key is searched under: the union over the
    rule's path alternatives; an empty alternative means the tree root."""
    scopes: dict[ConfigNode, None] = {}
    for alternative in config_path or [""]:
        alternative = alternative.strip()
        nodes = [tree.root] if not alternative else tree.match(alternative)
        # Identity-hashed nodes: the dict is an order-preserving dedup.
        scopes.update(dict.fromkeys(nodes))
    return list(scopes)


def _split_values(values: list[str], separator: str | None) -> list[str]:
    if separator is None:
        return values
    split: list[str] = []
    for value in values:
        parts = value.split(separator) if separator else value.split()
        split.extend(part.strip() for part in parts if part.strip())
    return split or values


# ---- schema rules ---------------------------------------------------------


def evaluate_schema(
    rule: SchemaRule,
    frame: ConfigFrame,
    manifest: Manifest,
    normalizer: Normalizer,
) -> RuleResult:
    """Evaluate a schema rule (paper Listing 3).

    The query's matching rows are projected to ``query_columns``; each row
    becomes one found value (multi-column projections joined with ``:``).
    An empty result set contributes the single found value ``""`` so rules
    can assert emptiness/non-emptiness the way Listing 3 does
    (``non_preferred_value: [""]`` = "the row must exist").
    """
    entity = manifest.entity
    target = frame.describe()
    parser_name = rule.schema_parser or manifest.schema_parser
    try:
        files = normalizer.candidate_files(
            frame, manifest.config_search_paths, rule.file_context
        )
        if not rule.file_context and parser_name:
            # Keep only files the named parser recognizes, unless the rule
            # pinned explicit files.  No recognized file means the config is
            # absent -- never feed unrelated files to the wrong parser.
            parser = normalizer.schemas.get(parser_name)
            if parser.file_patterns:
                files = normalizer.candidate_files(
                    frame,
                    manifest.config_search_paths,
                    list(parser.file_patterns),
                )
    except ReproError as exc:
        return _error_result(rule, entity, target, exc)
    if not files:
        return _absent_result(
            rule, entity, target, not_present_pass=rule.not_present_pass
        )

    query = Query(rule.query_constraints, rule.query_columns)
    evidence: list[Evidence] = []
    try:
        for path in files:
            table = normalizer.table_for(frame, path, parser_name)
            for projected in query.execute(table, rule.query_constraints_value):
                evidence.append(
                    Evidence(file=path, location=table.name, value=":".join(projected))
                )
    except (SchemaError, QueryError, FileNotFoundInFrame) as exc:
        return _error_result(rule, entity, target, exc)

    values = [item.value for item in evidence] or [""]
    verdict, outcome = _value_verdict(rule, values)
    if not evidence and verdict is Verdict.COMPLIANT and not rule.non_preferred_value:
        # No rows and nothing to assert about absent rows: treat as absent.
        return _absent_result(
            rule, entity, target, not_present_pass=rule.not_present_pass
        )
    return RuleResult(
        rule=rule,
        entity=entity,
        target=target,
        verdict=verdict,
        outcome=outcome,
        message=_message(rule, outcome),
        evidence=evidence,
    )


# ---- path rules ------------------------------------------------------------


def evaluate_path(
    rule: PathRule, frame: ConfigFrame, manifest: Manifest
) -> RuleResult:
    """Evaluate a path/metadata rule (paper Listing 4)."""
    entity = manifest.entity
    target = frame.describe()
    path = rule.name
    exists = frame.exists(path)

    if not rule.expects_existence():
        if exists:
            return RuleResult(
                rule=rule,
                entity=entity,
                target=target,
                verdict=Verdict.NONCOMPLIANT,
                outcome=Outcome.PRESENT_UNEXPECTEDLY,
                message=rule.not_matched_description
                or f"{path} exists but must not.",
                evidence=[Evidence(file=path)],
            )
        return RuleResult(
            rule=rule,
            entity=entity,
            target=target,
            verdict=Verdict.COMPLIANT,
            outcome=Outcome.MATCHED,
            message=rule.matched_description or f"{path} is absent as required.",
        )

    if not exists:
        return _absent_result(rule, entity, target, not_present_pass=False)

    stat = frame.stat(path)
    problems: list[str] = []
    if rule.ownership is not None:
        if rule.ownership not in (stat.ownership, stat.ownership_names):
            problems.append(
                f"ownership is {stat.ownership} ({stat.ownership_names}), "
                f"expected {rule.ownership}"
            )
    if rule.permission is not None and stat.mode != rule.permission:
        problems.append(
            f"permission is {stat.octal_mode}, expected {format(rule.permission, 'o')}"
        )
    if rule.permission_mask is not None and stat.mode & ~rule.permission_mask:
        problems.append(
            f"permission {stat.octal_mode} exceeds mask "
            f"{format(rule.permission_mask, 'o')}"
        )

    if problems:
        return RuleResult(
            rule=rule,
            entity=entity,
            target=target,
            verdict=Verdict.NONCOMPLIANT,
            outcome=Outcome.METADATA_MISMATCH,
            message=rule.not_matched_description or f"{path}: " + "; ".join(problems),
            evidence=[Evidence(file=path, value=stat.octal_mode)],
            detail="; ".join(problems),
        )
    return RuleResult(
        rule=rule,
        entity=entity,
        target=target,
        verdict=Verdict.COMPLIANT,
        outcome=Outcome.MATCHED,
        message=rule.matched_description or f"{path} metadata is as required.",
        evidence=[Evidence(file=path, value=stat.octal_mode)],
    )


# ---- script rules --------------------------------------------------------------


def evaluate_script(
    rule: ScriptRule, frame: ConfigFrame, manifest: Manifest
) -> RuleResult:
    """Evaluate a script rule against plugin-extracted runtime state."""
    entity = manifest.entity
    target = frame.describe()
    try:
        plugin, key = rule.plugin_and_key()
    except ReproError as exc:
        return _error_result(rule, entity, target, exc)
    namespace = frame.runtime.get(plugin)
    if namespace is None:
        return RuleResult(
            rule=rule,
            entity=entity,
            target=target,
            verdict=Verdict.NOT_APPLICABLE,
            outcome=Outcome.PLUGIN_UNAVAILABLE,
            message=_message(rule, Outcome.PLUGIN_UNAVAILABLE),
        )
    value = namespace.get(key)
    if value is None:
        return _absent_result(
            rule, entity, target, not_present_pass=rule.not_present_pass
        )
    verdict, outcome = _value_verdict(rule, [value])
    return RuleResult(
        rule=rule,
        entity=entity,
        target=target,
        verdict=verdict,
        outcome=outcome,
        message=_message(rule, outcome),
        evidence=[Evidence(location=f"{plugin}:{key}", value=value)],
    )
