"""Content-addressed parse cache shared across frames and scan cycles.

The fleet workloads the paper's production deployment validates are
highly redundant: N containers spawned from one image carry byte-identical
config files, and successive scan cycles re-crawl mostly-unchanged
entities.  Keying parsed artifacts by ``sha256(file content)`` + parser
name (instead of the frame they came from) makes every duplicate file a
cache hit -- identical content parses exactly once per process, no matter
how many frames or cycles it appears in.

Cached artifacts (:class:`~repro.augtree.tree.ConfigTree`,
:class:`~repro.schema.table.SchemaTable`) are treated as immutable by the
evaluators; the evidence ``file`` field always comes from the evaluator's
own path, never from the cached artifact, so sharing one parse between
files that happen to have equal content is observationally safe.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

#: Default number of parsed artifacts kept (LRU).  Sized for a scan cycle
#: over a few thousand distinct config files; override per validator with
#: ``cache_size`` or per cache with ``maxsize``.
DEFAULT_CACHE_SIZE = 4096


def content_digest(text: str) -> str:
    """Hex sha256 of a config file's text (the cache's address)."""
    return hashlib.sha256(text.encode("utf-8", "surrogateescape")).hexdigest()


def content_digest_and_size(text: str) -> tuple[str, int]:
    """``(content_digest(text), encoded byte length)`` in one encode.

    The byte length matches the digested bytes (UTF-8 with
    surrogateescape), so ``bytes_parsed``/``bytes_deduped`` count true
    bytes for non-ASCII configs instead of character counts.
    """
    data = text.encode("utf-8", "surrogateescape")
    return hashlib.sha256(data).hexdigest(), len(data)


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`ParseCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    bytes_parsed: int = 0    # bytes that actually went through a parser
    bytes_deduped: int = 0   # bytes served from cache instead of re-parsing

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def render(self) -> str:
        """One dashboard line, e.g. for :func:`render_fleet_summary`."""
        return (
            f"parse cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate), {self.entries} entries, "
            f"{self.bytes_parsed:,} B parsed, {self.bytes_deduped:,} B deduped"
        )


class ParseCache:
    """Bounded, thread-safe LRU of parsed config artifacts.

    Keys are ``(content digest, artifact kind, parser name)`` tuples; the
    kind tag ("tree" vs "table") keeps a lens and a schema parser that
    share a name from colliding.  ``maxsize=0`` disables caching entirely
    (every lookup parses), which is how benchmarks reproduce the
    pre-cache sequential baseline.

    ``store`` attaches a persistent second tier (an
    :class:`~repro.engine.artifact_store.ArtifactStore`): in-memory
    misses consult it before parsing, and freshly parsed artifacts are
    written through, so identical content parses once per fleet rather
    than once per process.  Store-served lookups still count as
    in-memory misses here, but their bytes are credited to the store's
    ``bytes_loaded`` instead of ``bytes_parsed`` -- ``bytes_parsed``
    keeps meaning "bytes that actually went through a parser".
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE, *, store=None):
        self._maxsize = max(0, maxsize)
        self._store = store
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, str, str], Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._bytes_parsed = 0
        self._bytes_deduped = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def store(self):
        """The persistent second tier, or None."""
        return self._store

    def get_or_parse(
        self,
        key: tuple[str, str, str],
        nbytes: int,
        parse: Callable[[], Any],
    ) -> Any:
        """Return the cached artifact for ``key``, parsing on first sight.

        ``parse`` runs outside the lock so a slow parse never blocks other
        workers' hits; two threads racing the same cold key may both parse
        (both count as misses) and the first store wins.  Parser
        exceptions propagate and cache nothing, matching the uncached
        semantics.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                self._bytes_deduped += nbytes
                return cached
        value = None
        from_store = False
        if self._store is not None:
            value = self._store.load(key, nbytes)
            from_store = value is not None
        if value is None:
            value = parse()
        with self._lock:
            self._misses += 1
            if not from_store:
                self._bytes_parsed += nbytes
            if self._maxsize:
                if key in self._entries:
                    self._entries.move_to_end(key)
                else:
                    self._entries[key] = value
                    while len(self._entries) > self._maxsize:
                        self._entries.popitem(last=False)
                        self._evictions += 1
        if self._store is not None and not from_store:
            self._store.save(key, value, nbytes)
        return value

    def attach_to(self, registry) -> None:
        """Expose this cache's counters on a telemetry metrics registry.

        Registered as a pull-style collector: samples refresh from
        :meth:`stats` right before each scrape/render, so the parsing
        hot path pays nothing for the metrics plumbing.  Idempotent per
        (cache, registry) pair.
        """
        hits = registry.counter(
            "repro_parse_cache_hits_total",
            "Parse-cache lookups served without re-parsing.")
        misses = registry.counter(
            "repro_parse_cache_misses_total",
            "Parse-cache lookups that ran a parser.")
        evictions = registry.counter(
            "repro_parse_cache_evictions_total",
            "Artifacts dropped by the LRU bound.")
        bytes_parsed = registry.counter(
            "repro_parse_cache_parsed_bytes_total",
            "Config bytes that actually went through a parser.")
        bytes_deduped = registry.counter(
            "repro_parse_cache_deduped_bytes_total",
            "Config bytes served from cache instead of re-parsing.")
        entries = registry.gauge(
            "repro_parse_cache_entries",
            "Parsed artifacts currently cached.")

        def collect() -> None:
            stats = self.stats()
            hits.set(stats.hits)
            misses.set(stats.misses)
            evictions.set(stats.evictions)
            bytes_parsed.set(stats.bytes_parsed)
            bytes_deduped.set(stats.bytes_deduped)
            entries.set(stats.entries)

        registry.register_collector(f"parse_cache:{id(self)}", collect)

    def resize(self, maxsize: int) -> None:
        """Change the LRU bound in place (evicting oldest entries if the
        cache shrinks).

        In-place so everything already holding this cache -- normalizers,
        telemetry collectors, the artifact-store tier -- keeps observing
        the same object; counters are preserved.  ``0`` disables caching.
        """
        with self._lock:
            self._maxsize = max(0, maxsize)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                bytes_parsed=self._bytes_parsed,
                bytes_deduped=self._bytes_deduped,
            )

    def clear(self) -> None:
        """Drop entries and counters (a fresh cold cache)."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0
            self._bytes_parsed = self._bytes_deduped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
