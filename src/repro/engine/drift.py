"""Drift analysis: compare two validation reports.

Production usage (paper §5) scans entities continuously; what operators
act on is the *delta* -- which checks regressed since the last scan, or
how a running container diverges from the image it was started from.
:func:`diff_reports` aligns two reports by (target, entity, rule) and
buckets the changes; :func:`render_drift` prints the operator-facing
summary and :func:`drift_to_dict` the machine-readable one (``repro
drift --json``, the monitor's event stream).

The target participates in the alignment key so fleet-wide reports --
where many frames carry the same component (six nginx containers all
produce an ``nginx`` entity) -- diff per frame instead of collapsing
onto one another.  For single-entity reports the behavior is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.results import RuleResult, ValidationReport, Verdict

#: Alignment key of one rule evaluation across runs.
DriftKey = tuple[str, str, str]   # (target, entity, rule name)


@dataclass
class DriftEntry:
    """One (target, entity, rule) whose verdict changed between runs."""

    entity: str
    rule_name: str
    before: Verdict | None   # None: rule absent in the earlier report
    after: Verdict | None    # None: rule absent in the later report
    message: str = ""
    target: str = ""         # frame the verdict belongs to, e.g. "container:web1"
    severity: str = ""

    @property
    def regressed(self) -> bool:
        return (
            self.after is Verdict.NONCOMPLIANT
            and self.before is not Verdict.NONCOMPLIANT
        )

    @property
    def fixed(self) -> bool:
        return (
            self.before is Verdict.NONCOMPLIANT
            and self.after is Verdict.COMPLIANT
        )

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "entity": self.entity,
            "rule": self.rule_name,
            "before": self.before.value if self.before else None,
            "after": self.after.value if self.after else None,
            "severity": self.severity,
            "message": self.message,
            "regressed": self.regressed,
            "fixed": self.fixed,
        }


@dataclass
class DriftReport:
    """All verdict changes between two runs."""

    baseline: str
    current: str
    entries: list[DriftEntry] = field(default_factory=list)

    def regressions(self) -> list[DriftEntry]:
        return [entry for entry in self.entries if entry.regressed]

    def fixes(self) -> list[DriftEntry]:
        return [entry for entry in self.entries if entry.fixed]

    def appeared(self) -> list[DriftEntry]:
        return [entry for entry in self.entries if entry.before is None]

    def disappeared(self) -> list[DriftEntry]:
        return [entry for entry in self.entries if entry.after is None]

    def regressions_at_least(self, severity: str) -> list[DriftEntry]:
        """Regressions at or above ``severity`` (CI gating)."""
        from repro.engine.batch import severity_rank

        threshold = severity_rank(severity)
        return [
            entry
            for entry in self.regressions()
            if severity_rank(entry.severity) >= threshold
        ]

    @property
    def clean(self) -> bool:
        return not self.regressions()

    def __len__(self) -> int:
        return len(self.entries)


def _index(report: ValidationReport) -> dict[DriftKey, RuleResult]:
    return {
        (result.target, result.entity, result.rule.name): result
        for result in report
    }


def diff_reports(
    baseline: ValidationReport, current: ValidationReport
) -> DriftReport:
    """Changes from ``baseline`` to ``current`` (aligned by
    target+entity+rule)."""
    before_index = _index(baseline)
    after_index = _index(current)
    drift = DriftReport(baseline=baseline.target, current=current.target)
    for key in sorted(set(before_index) | set(after_index)):
        before = before_index.get(key)
        after = after_index.get(key)
        before_verdict = before.verdict if before else None
        after_verdict = after.verdict if after else None
        if before_verdict == after_verdict:
            continue
        witness = after or before
        drift.entries.append(
            DriftEntry(
                target=key[0],
                entity=key[1],
                rule_name=key[2],
                before=before_verdict,
                after=after_verdict,
                message=(after.message if after else (before.message if before else "")),
                severity=witness.rule.severity if witness else "",
            )
        )
    return drift


def drift_to_dict(drift: DriftReport) -> dict:
    """Machine-readable drift report (``repro drift --json``)."""
    return {
        "baseline": drift.baseline,
        "current": drift.current,
        "summary": {
            "changes": len(drift),
            "regressions": len(drift.regressions()),
            "fixes": len(drift.fixes()),
            "appeared": len(drift.appeared()),
            "disappeared": len(drift.disappeared()),
        },
        "entries": [entry.to_dict() for entry in drift.entries],
    }


def render_drift(drift: DriftReport) -> str:
    """Operator-facing drift summary."""
    lines = [
        f"# drift: {drift.baseline}  ->  {drift.current}",
        f"# {len(drift)} change(s): {len(drift.regressions())} regressed, "
        f"{len(drift.fixes())} fixed, {len(drift.appeared())} new, "
        f"{len(drift.disappeared())} gone",
    ]
    for label, entries in (
        ("REGRESSED", drift.regressions()),
        ("FIXED", drift.fixes()),
    ):
        for entry in entries:
            before = entry.before.value if entry.before else "absent"
            after = entry.after.value if entry.after else "absent"
            lines.append(
                f"[{label}] {entry.entity}: {entry.rule_name} "
                f"({before} -> {after}) -- {entry.message}"
            )
    return "\n".join(lines)
