"""Drift analysis: compare two validation reports.

Production usage (paper §5) scans entities continuously; what operators
act on is the *delta* -- which checks regressed since the last scan, or
how a running container diverges from the image it was started from.
:func:`diff_reports` aligns two reports by (entity, rule) and buckets the
changes; :func:`render_drift` prints the operator-facing summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.results import RuleResult, ValidationReport, Verdict


@dataclass
class DriftEntry:
    """One (entity, rule) whose verdict changed between runs."""

    entity: str
    rule_name: str
    before: Verdict | None   # None: rule absent in the earlier report
    after: Verdict | None    # None: rule absent in the later report
    message: str = ""

    @property
    def regressed(self) -> bool:
        return (
            self.after is Verdict.NONCOMPLIANT
            and self.before is not Verdict.NONCOMPLIANT
        )

    @property
    def fixed(self) -> bool:
        return (
            self.before is Verdict.NONCOMPLIANT
            and self.after is Verdict.COMPLIANT
        )


@dataclass
class DriftReport:
    """All verdict changes between two runs."""

    baseline: str
    current: str
    entries: list[DriftEntry] = field(default_factory=list)

    def regressions(self) -> list[DriftEntry]:
        return [entry for entry in self.entries if entry.regressed]

    def fixes(self) -> list[DriftEntry]:
        return [entry for entry in self.entries if entry.fixed]

    def appeared(self) -> list[DriftEntry]:
        return [entry for entry in self.entries if entry.before is None]

    def disappeared(self) -> list[DriftEntry]:
        return [entry for entry in self.entries if entry.after is None]

    @property
    def clean(self) -> bool:
        return not self.regressions()

    def __len__(self) -> int:
        return len(self.entries)


def _index(report: ValidationReport) -> dict[tuple[str, str], RuleResult]:
    return {(result.entity, result.rule.name): result for result in report}


def diff_reports(
    baseline: ValidationReport, current: ValidationReport
) -> DriftReport:
    """Changes from ``baseline`` to ``current`` (aligned by entity+rule)."""
    before_index = _index(baseline)
    after_index = _index(current)
    drift = DriftReport(baseline=baseline.target, current=current.target)
    for key in sorted(set(before_index) | set(after_index)):
        before = before_index.get(key)
        after = after_index.get(key)
        before_verdict = before.verdict if before else None
        after_verdict = after.verdict if after else None
        if before_verdict == after_verdict:
            continue
        drift.entries.append(
            DriftEntry(
                entity=key[0],
                rule_name=key[1],
                before=before_verdict,
                after=after_verdict,
                message=(after.message if after else (before.message if before else "")),
            )
        )
    return drift


def render_drift(drift: DriftReport) -> str:
    """Operator-facing drift summary."""
    lines = [
        f"# drift: {drift.baseline}  ->  {drift.current}",
        f"# {len(drift)} change(s): {len(drift.regressions())} regressed, "
        f"{len(drift.fixes())} fixed, {len(drift.appeared())} new, "
        f"{len(drift.disappeared())} gone",
    ]
    for label, entries in (
        ("REGRESSED", drift.regressions()),
        ("FIXED", drift.fixes()),
    ):
        for entry in entries:
            before = entry.before.value if entry.before else "absent"
            after = entry.after.value if entry.after else "absent"
            lines.append(
                f"[{label}] {entry.entity}: {entry.rule_name} "
                f"({before} -> {after}) -- {entry.message}"
            )
    return "\n".join(lines)
