"""Validation results: what the rule engine produces.

A :class:`RuleResult` records one rule evaluated against one entity:
the verdict, a finer-grained *outcome* (why), the chosen human-readable
message (the output-processing module picks it from the rule's
description keywords), and the evidence (which file/value/row the verdict
rests on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.cvl.model import Rule


class Verdict(Enum):
    """The four terminal states of a rule evaluation."""

    COMPLIANT = "compliant"
    NONCOMPLIANT = "noncompliant"
    NOT_APPLICABLE = "not_applicable"
    ERROR = "error"


class Outcome(Enum):
    """Why the verdict came out the way it did."""

    MATCHED = "matched"                       # preferred satisfied
    MATCHED_NON_PREFERRED = "matched_non_preferred"
    NOT_MATCHED_PREFERRED = "not_matched_preferred"
    NOT_PRESENT = "not_present"               # config key / file / path absent
    PRESENT_UNEXPECTEDLY = "present_unexpectedly"   # path rules with exists: false
    MISSING_DEPENDENCY = "missing_dependency"       # require_other_configs unmet
    METADATA_MISMATCH = "metadata_mismatch"         # ownership / permission
    PLUGIN_UNAVAILABLE = "plugin_unavailable"
    EVALUATION_ERROR = "evaluation_error"
    COMPOSITE = "composite"


@dataclass
class Evidence:
    """Where a found value came from."""

    file: str = ""
    location: str = ""   # tree path, row line, runtime key, ...
    value: str = ""
    #: Source location (:class:`repro.augtree.tree.SourceSpan`) recorded by
    #: the lens, when known.  Never rendered here -- provenance records
    #: surface it -- and excluded from equality so span-aware and span-less
    #: results stay interchangeable.
    span: object = field(default=None, repr=False, compare=False)

    @classmethod
    def from_exception(cls, error: BaseException) -> "Evidence":
        """Evidence for an ERROR verdict: exception class + message.

        The full traceback rides on :attr:`RuleResult.detail` (it is
        multi-line); the evidence line keeps the machine-matchable
        ``exception:<ClassName>`` location.
        """
        return cls(
            location=f"exception:{type(error).__name__}",
            value=str(error),
        )

    def render(self) -> str:
        parts = []
        if self.value != "":
            parts.append(f"value {self.value!r}")
        if self.location:
            parts.append(f"at {self.location}")
        if self.file:
            parts.append(f"in {self.file}")
        return " ".join(parts)


@dataclass
class RuleResult:
    """One rule evaluated against one entity."""

    rule: Rule
    entity: str                      # component name (manifest entity)
    target: str                      # frame description, e.g. "container:web1"
    verdict: Verdict
    outcome: Outcome
    message: str = ""
    evidence: list[Evidence] = field(default_factory=list)
    detail: str = ""                 # free-form extra (composite term dump...)
    duration_s: float = 0.0          # wall time spent evaluating this rule
    started_s: float = 0.0           # perf_counter stamp at evaluation start
    #: Structured provenance (:class:`repro.engine.provenance.
    #: ProvenanceRecord`); attached only when the run asked for it, and
    #: excluded from equality/repr so provenance-on and -off results
    #: compare equal.  The engine stores a deferred-construction marker
    #: here -- a ``(route, reader, frame)`` tuple shared by every result
    #: of a frame -- and the :attr:`provenance` property materializes
    #: the record on first read, so the scan cycle pays one attribute
    #: store per result instead of full record construction (the
    #: telemetry cost model: expansion happens at export/read time).
    _provenance: object = field(default=None, repr=False, compare=False)

    @property
    def provenance(self):
        value = self._provenance
        if type(value) is tuple:
            # Deferred marker from the engine: build the record now.
            # Imported here to keep results free of a provenance import
            # cycle (provenance reads Evidence from this module).
            from repro.engine.provenance import build_provenance

            route, reader, frame = value
            value = build_provenance(self, route=route, reader=reader,
                                     frame=frame)
            self._provenance = value
        elif callable(value):
            value = value()
            self._provenance = value
        return value

    @provenance.setter
    def provenance(self, value) -> None:
        self._provenance = value

    @property
    def passed(self) -> bool:
        return self.verdict is Verdict.COMPLIANT

    @property
    def failed(self) -> bool:
        return self.verdict is Verdict.NONCOMPLIANT

    def found_values(self) -> list[str]:
        return [item.value for item in self.evidence]

    def __repr__(self) -> str:
        return (
            f"RuleResult({self.rule.name!r}, {self.entity!r}, "
            f"{self.verdict.value}, {self.outcome.value})"
        )


@dataclass
class ValidationReport:
    """All results from one validation run."""

    target: str
    results: list[RuleResult] = field(default_factory=list)
    #: Incremental-run statistics
    #: (:class:`repro.engine.incremental.IncrementalRunStats`; untyped here
    #: to keep this module free of engine imports).  None on full runs.
    incremental: object = field(default=None, repr=False, compare=False)
    #: Rule-plan statistics (:class:`repro.engine.plan.PlanRunStats`);
    #: None when the run used the unplanned engine (``--no-plan``).
    #: Like ``incremental``, never rendered into reports.
    plan: object = field(default=None, repr=False, compare=False)
    #: Process-executor statistics (:class:`repro.exec.stats.ExecStats`);
    #: None on thread-backend runs.  Never rendered into reports, so
    #: output stays byte-identical across backends.
    exec_stats: object = field(default=None, repr=False, compare=False)
    #: Degradation accounting (:class:`repro.chaos.stats.DegradationStats`);
    #: None on clean runs with no chaos plan armed.  Rendered into
    #: JSON/JUnit output *only* when the cycle actually degraded, so
    #: clean reports stay byte-identical to pre-chaos output.
    degradation: object = field(default=None, repr=False, compare=False)

    def add(self, result: RuleResult) -> None:
        self.results.append(result)

    def extend(self, results: list[RuleResult]) -> None:
        self.results.extend(results)

    # ---- selection -----------------------------------------------------

    def passed(self) -> list[RuleResult]:
        return [r for r in self.results if r.verdict is Verdict.COMPLIANT]

    def failed(self) -> list[RuleResult]:
        return [r for r in self.results if r.verdict is Verdict.NONCOMPLIANT]

    def errors(self) -> list[RuleResult]:
        return [r for r in self.results if r.verdict is Verdict.ERROR]

    def not_applicable(self) -> list[RuleResult]:
        return [r for r in self.results if r.verdict is Verdict.NOT_APPLICABLE]

    def with_tag(self, tag: str) -> "ValidationReport":
        subset = ValidationReport(target=self.target)
        subset.results = [r for r in self.results if r.rule.has_tag(tag)]
        return subset

    def for_entity(self, entity: str) -> list[RuleResult]:
        return [r for r in self.results if r.entity == entity]

    def by_severity(self, severity: str) -> list[RuleResult]:
        return [r for r in self.results if r.rule.severity == severity]

    def slowest(self, count: int = 10) -> list[RuleResult]:
        """The most expensive evaluations of the run (ops view)."""
        return sorted(
            self.results, key=lambda r: r.duration_s, reverse=True
        )[:count]

    # ---- summary ---------------------------------------------------------

    def counts(self) -> dict[str, int]:
        tally = {verdict.value: 0 for verdict in Verdict}
        for result in self.results:
            tally[result.verdict.value] += 1
        tally["total"] = len(self.results)
        return tally

    @property
    def compliant(self) -> bool:
        """True when nothing failed and nothing errored."""
        return not self.failed() and not self.errors()

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)
