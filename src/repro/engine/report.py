"""Output processing: validation results -> human- and machine-readable
reports (paper Fig. 1's last stage).

The text renderer combines each result's verdict with the rule's
descriptions and suggested action, exactly as the paper describes:
"It combines the rule engine's validation result with a rule description,
validation output description and a possible suggestive action."
"""

from __future__ import annotations

import json

from repro.engine.results import RuleResult, ValidationReport, Verdict

_BADGES = {
    Verdict.COMPLIANT: "PASS",
    Verdict.NONCOMPLIANT: "FAIL",
    Verdict.NOT_APPLICABLE: "N/A ",
    Verdict.ERROR: "ERR ",
}


def render_result(result: RuleResult, *, verbose: bool = False) -> str:
    """One result as a single line (plus evidence lines when verbose)."""
    badge = _BADGES[result.verdict]
    line = f"[{badge}] {result.entity}: {result.rule.name} -- {result.message}"
    if result.rule.tags:
        line += f"  ({' '.join(result.rule.tags)})"
    if not verbose:
        return line
    lines = [line]
    for item in result.evidence:
        rendered = item.render()
        if rendered:
            lines.append(f"        {rendered}")
    if result.verdict is Verdict.ERROR and result.detail:
        # The captured traceback: indented so it reads as part of the
        # result block, prefixed so log scrapers can skip it.
        for row in result.detail.splitlines():
            lines.append(f"        | {row}")
    if result.failed and result.rule.suggested_action:
        lines.append(f"        action: {result.rule.suggested_action}")
    return "\n".join(lines)


def render_text(
    report: ValidationReport,
    *,
    verbose: bool = False,
    only_failures: bool = False,
) -> str:
    """Full text report with a summary footer."""
    lines = [f"# ConfigValidator report for {report.target}"]
    for result in report:
        if only_failures and not result.failed and result.verdict is not Verdict.ERROR:
            continue
        lines.append(render_result(result, verbose=verbose))
    counts = report.counts()
    lines.append(
        f"# {counts['total']} checks: {counts['compliant']} passed, "
        f"{counts['noncompliant']} failed, {counts['not_applicable']} n/a, "
        f"{counts['error']} errors"
    )
    return "\n".join(lines)


def result_to_dict(result: RuleResult) -> dict:
    payload = {
        "rule": result.rule.name,
        "rule_type": result.rule.rule_type,
        "entity": result.entity,
        "target": result.target,
        "verdict": result.verdict.value,
        "outcome": result.outcome.value,
        "severity": result.rule.severity,
        "message": result.message,
        "tags": list(result.rule.tags),
        "suggested_action": result.rule.suggested_action,
        "evidence": [
            {"file": e.file, "location": e.location, "value": e.value}
            for e in result.evidence
        ],
        "detail": result.detail,
    }
    if result.provenance is not None:
        # Only present on --provenance runs, keeping default JSON output
        # byte-identical to provenance-free engines.
        payload["provenance"] = result.provenance.to_dict()
    return payload


def render_json(report: ValidationReport, *, indent: int | None = 2) -> str:
    """Machine-readable report (one document per run)."""
    doc = {
        "target": report.target,
        "summary": report.counts(),
        "results": [result_to_dict(result) for result in report],
    }
    degradation = getattr(report, "degradation", None)
    if degradation is not None and degradation.degraded:
        # Only present on cycles that actually degraded, keeping clean
        # runs byte-identical to pre-chaos output.
        doc["degraded"] = True
        doc["degradation"] = degradation.to_dict()
    return json.dumps(doc, indent=indent, sort_keys=False)


def render_junit(report: ValidationReport, *, suite_name: str = "configvalidator") -> str:
    """JUnit-style XML so CI systems can consume validation runs.

    Verdict mapping: NONCOMPLIANT -> ``<failure>``, ERROR -> ``<error>``,
    NOT_APPLICABLE -> ``<skipped>``, COMPLIANT -> plain testcase.
    """
    from xml.sax.saxutils import escape, quoteattr

    counts = report.counts()
    degradation = getattr(report, "degradation", None)
    degraded = degradation is not None and degradation.degraded
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f"<testsuite name={quoteattr(suite_name)} "
        f'tests="{counts["total"]}" failures="{counts["noncompliant"]}" '
        f'errors="{counts["error"]}" skipped="{counts["not_applicable"]}">',
    ]
    if degraded:
        # Marker for CI consumers: verdicts in this suite were produced
        # by a degraded cycle (injected faults, quarantined frames, or
        # deadline cancellations).  Absent on clean runs.
        lines.append(
            "  <properties>"
            '<property name="degraded" value="true"/>'
            "</properties>"
        )
    for result in report:
        case_name = quoteattr(result.rule.name)
        class_name = quoteattr(f"{result.target}.{result.entity}")
        if result.verdict is Verdict.COMPLIANT:
            lines.append(
                f"  <testcase classname={class_name} name={case_name}/>"
            )
            continue
        lines.append(
            f"  <testcase classname={class_name} name={case_name}>"
        )
        message = escape(result.message)
        if result.verdict is Verdict.NONCOMPLIANT:
            failure_message = result.message
            record = result.provenance
            anchor = (record.first_spanned_anchor()
                      if record is not None else None)
            if anchor is not None:
                # Provenance runs anchor CI failure messages to source.
                failure_message = f"{anchor.location()}: {failure_message}"
            body = escape(
                "\n".join(item.render() for item in result.evidence)
            )
            lines.append(
                f'    <failure message="{escape(failure_message, {chr(34): "&quot;"})}"'
                f" type={quoteattr(result.outcome.value)}>{body}</failure>"
            )
        elif result.verdict is Verdict.ERROR:
            body = message
            if result.detail:
                body += "\n" + escape(result.detail)
            error_type = next(
                (
                    item.location.split(":", 1)[1]
                    for item in result.evidence
                    if item.location.startswith("exception:")
                ),
                result.outcome.value,
            )
            lines.append(
                f"    <error type={quoteattr(error_type)}>{body}</error>"
            )
        else:
            lines.append(f"    <skipped>{message}</skipped>")
        lines.append("  </testcase>")
    lines.append("</testsuite>")
    return "\n".join(lines) + "\n"


def summarize_by_entity(report: ValidationReport) -> dict[str, dict[str, int]]:
    """Per-entity pass/fail tally (used by fleet-scale reporting)."""
    tally: dict[str, dict[str, int]] = {}
    for result in report:
        bucket = tally.setdefault(
            result.entity, {v.value: 0 for v in Verdict}
        )
        bucket[result.verdict.value] += 1
    return tally
