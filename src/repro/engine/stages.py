"""Per-stage wall-time instrumentation for the validation pipeline.

The paper's Figure 1 stages map onto the scan cycle as:

* ``crawl``     -- Config Extractor (entity -> frame)
* ``discover``  -- file discovery under manifest search paths
* ``parse``     -- Data Normalizer (lens / schema parsing, cache misses only)
* ``evaluate``  -- Rule Engine, per-entity rules
* ``composite`` -- Rule Engine, cross-entity conjunction/disjunction

With ``workers > 1`` the totals are summed across worker threads, so a
stage's time is aggregate worker-seconds and may exceed the cycle's
wall-clock elapsed time; the ratio between stages is what matters for
capacity planning.

:class:`StageTimings` is a *view over a metrics registry*: each stage is
one labelled child of a ``repro_stage_latency_seconds`` histogram, which
is where the per-stage min/max/mean come from.  By default every
instance owns a private registry so timings stay scoped to one scan
cycle; :meth:`publish` folds a cycle's distribution into a long-lived
registry (the process-wide telemetry one) for Prometheus scraping.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.telemetry.metrics import Histogram, MetricsRegistry

#: Stage names in pipeline order (also the rendering order).
STAGES = ("crawl", "discover", "parse", "evaluate", "composite")

#: The histogram family behind every StageTimings view.
STAGE_METRIC = "repro_stage_latency_seconds"


class StageTimings:
    """Thread-safe accumulator of per-stage durations.

    Kept API: ``add`` / ``timer`` / ``seconds`` / ``count`` /
    ``total_seconds`` / ``as_dict`` / ``merge`` / ``render``; new:
    ``min_seconds`` / ``max_seconds`` / ``mean_seconds`` /
    ``render_extended`` / ``publish``.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self._registry = registry if registry is not None else MetricsRegistry()
        self._hist: Histogram = self._registry.histogram(
            STAGE_METRIC,
            "Validation pipeline stage latency (aggregate worker-seconds).",
            labels=("stage",),
        )

    def _check(self, stage: str) -> None:
        if stage not in STAGES:
            raise KeyError(stage)

    def add(self, stage: str, seconds: float, count: int = 1) -> None:
        self._check(stage)
        if count == 1:
            self._hist.observe(seconds, stage=stage)
        elif count > 0:
            self._hist.observe_aggregate(seconds, count, stage=stage)

    @contextmanager
    def timer(self, stage: str):
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(stage, time.perf_counter() - started)

    def seconds(self, stage: str) -> float:
        self._check(stage)
        return self._hist.sum(stage=stage)

    def count(self, stage: str) -> int:
        self._check(stage)
        return self._hist.count(stage=stage)

    def min_seconds(self, stage: str) -> float:
        """Fastest single operation of the stage (0.0 when empty)."""
        self._check(stage)
        return self._hist.min(stage=stage)

    def max_seconds(self, stage: str) -> float:
        """Slowest single operation of the stage (0.0 when empty)."""
        self._check(stage)
        return self._hist.max(stage=stage)

    def mean_seconds(self, stage: str) -> float:
        self._check(stage)
        return self._hist.mean(stage=stage)

    @property
    def total_seconds(self) -> float:
        return sum(self._hist.sum(stage=stage) for stage in STAGES)

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {
            stage: {
                "seconds": self._hist.sum(stage=stage),
                "count": float(self._hist.count(stage=stage)),
                "min": self._hist.min(stage=stage),
                "max": self._hist.max(stage=stage),
                "mean": self._hist.mean(stage=stage),
            }
            for stage in STAGES
        }

    def merge(self, other: "StageTimings") -> None:
        other.publish(self._registry)

    def publish(self, registry: MetricsRegistry) -> None:
        """Fold this accumulator's distribution into ``registry``'s
        ``repro_stage_latency_seconds`` histogram (exact sum/count and
        extremes; bucket credit at the per-stage mean)."""
        hist = registry.histogram(
            STAGE_METRIC,
            "Validation pipeline stage latency (aggregate worker-seconds).",
            labels=("stage",),
        )
        for stage, values in self.as_dict().items():
            count = int(values["count"])
            if not count:
                continue
            hist.observe_aggregate(
                values["seconds"], count,
                min_value=values["min"], max_value=values["max"],
                stage=stage,
            )

    def render(self) -> str:
        """Aligned stage table (aggregate worker-seconds)."""
        total = self.total_seconds or 1.0
        lines = [f"{'stage':<12}{'time [ms]':>12}{'share':>8}{'ops':>10}"]
        for stage in STAGES:
            seconds = self._hist.sum(stage=stage)
            lines.append(
                f"{stage:<12}{seconds * 1e3:>12.2f}"
                f"{seconds / total:>8.1%}{self._hist.count(stage=stage):>10d}"
            )
        return "\n".join(lines)

    def render_extended(self) -> str:
        """The stage table plus per-operation min/mean/max columns."""
        total = self.total_seconds or 1.0
        lines = [
            f"{'stage':<12}{'time [ms]':>12}{'share':>8}{'ops':>10}"
            f"{'min [ms]':>12}{'mean [ms]':>12}{'max [ms]':>12}"
        ]
        for stage in STAGES:
            seconds = self._hist.sum(stage=stage)
            lines.append(
                f"{stage:<12}{seconds * 1e3:>12.2f}"
                f"{seconds / total:>8.1%}{self._hist.count(stage=stage):>10d}"
                f"{self._hist.min(stage=stage) * 1e3:>12.3f}"
                f"{self._hist.mean(stage=stage) * 1e3:>12.3f}"
                f"{self._hist.max(stage=stage) * 1e3:>12.3f}"
            )
        return "\n".join(lines)
