"""Per-stage wall-time instrumentation for the validation pipeline.

The paper's Figure 1 stages map onto the scan cycle as:

* ``crawl``     -- Config Extractor (entity -> frame)
* ``discover``  -- file discovery under manifest search paths
* ``parse``     -- Data Normalizer (lens / schema parsing, cache misses only)
* ``evaluate``  -- Rule Engine, per-entity rules
* ``composite`` -- Rule Engine, cross-entity conjunction/disjunction

With ``workers > 1`` the totals are summed across worker threads, so a
stage's time is aggregate worker-seconds and may exceed the cycle's
wall-clock elapsed time; the ratio between stages is what matters for
capacity planning.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

#: Stage names in pipeline order (also the rendering order).
STAGES = ("crawl", "discover", "parse", "evaluate", "composite")


class StageTimings:
    """Thread-safe accumulator of per-stage durations."""

    def __init__(self):
        self._lock = threading.Lock()
        self._seconds = {stage: 0.0 for stage in STAGES}
        self._counts = {stage: 0 for stage in STAGES}

    def add(self, stage: str, seconds: float, count: int = 1) -> None:
        with self._lock:
            self._seconds[stage] += seconds
            self._counts[stage] += count

    @contextmanager
    def timer(self, stage: str):
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(stage, time.perf_counter() - started)

    def seconds(self, stage: str) -> float:
        with self._lock:
            return self._seconds[stage]

    def count(self, stage: str) -> int:
        with self._lock:
            return self._counts[stage]

    @property
    def total_seconds(self) -> float:
        with self._lock:
            return sum(self._seconds.values())

    def as_dict(self) -> dict[str, dict[str, float]]:
        with self._lock:
            return {
                stage: {
                    "seconds": self._seconds[stage],
                    "count": float(self._counts[stage]),
                }
                for stage in STAGES
            }

    def merge(self, other: "StageTimings") -> None:
        snapshot = other.as_dict()
        for stage, values in snapshot.items():
            self.add(stage, values["seconds"], int(values["count"]))

    def render(self) -> str:
        """Aligned stage table (aggregate worker-seconds)."""
        total = self.total_seconds or 1.0
        lines = [f"{'stage':<12}{'time [ms]':>12}{'share':>8}{'ops':>10}"]
        with self._lock:
            for stage in STAGES:
                seconds = self._seconds[stage]
                lines.append(
                    f"{stage:<12}{seconds * 1e3:>12.2f}"
                    f"{seconds / total:>8.1%}{self._counts[stage]:>10d}"
                )
        return "\n".join(lines)
